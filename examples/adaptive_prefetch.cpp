// Adaptive prefetching — the paper's stated future work (§10): "general,
// adaptive prefetching methods that can learn to hide input/output latency
// by automatically classifying and predicting access patterns."
//
// One process reads a file in three successive regimes — sequential,
// strided, random — through a PPFS mount with the adaptive prefetcher.  The
// example prints what the on-line classifier believed during each regime and
// how the cache hit rate responded.
//
//   $ ./examples/adaptive_prefetch
#include <cstdio>
#include <iostream>

#include "hw/machine.hpp"
#include "ppfs/ppfs.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"

using namespace paraio;

int main() {
  sim::Engine engine;
  hw::Machine machine(engine, hw::MachineConfig::paragon_xps(2, 4));
  ppfs::PpfsParams params;
  params.prefetch = ppfs::PrefetchPolicy::kAdaptive;
  params.prefetch_depth = 4;
  params.cache_blocks = 512;
  ppfs::Ppfs fs(machine, params);

  struct RegimeReport {
    const char* name;
    const char* classified;
    double seconds;
    std::uint64_t hits;
    std::uint64_t misses;
    std::uint64_t speculative_used;
    std::uint64_t issued;
  };
  std::vector<RegimeReport> reports;
  std::uint64_t issued_before = 0;

  auto driver = [&]() -> sim::Task<> {
    io::OpenOptions create;
    create.mode = io::AccessMode::kUnix;
    create.create = true;
    auto f = co_await fs.open(0, "/demo/big", create);
    co_await f->write(32 * 1024 * 1024);
    co_await f->close();

    io::OpenOptions ro;
    ro.mode = io::AccessMode::kUnix;
    auto g = co_await fs.open(0, "/demo/big", ro);
    sim::Rng rng(11);

    auto snapshot = [&](const char* name,
                        double t0,
                        const ppfs::CacheStats& before) {
      const auto& now = fs.node_cache(0).stats();
      const ppfs::PpfsFile& handle = static_cast<ppfs::PpfsFile&>(*g);
      reports.push_back(RegimeReport{
          name, ppfs::to_string(handle.classifier().pattern()),
          engine.now() - t0, now.hits - before.hits,
          now.misses - before.misses,
          now.prefetched_used - before.prefetched_used,
          fs.counters().prefetch_issued - issued_before});
      issued_before = fs.counters().prefetch_issued;
    };

    // Regime 1: sequential streaming.
    ppfs::CacheStats before = fs.node_cache(0).stats();
    double t0 = engine.now();
    for (int i = 0; i < 64; ++i) {
      (void)co_await g->read(64 * 1024);
      co_await engine.delay(0.05);
    }
    snapshot("sequential", t0, before);

    // Regime 2: strided probing (4 KB every 256 KB).
    before = fs.node_cache(0).stats();
    t0 = engine.now();
    for (int i = 0; i < 64; ++i) {
      co_await g->seek(8 * 1024 * 1024 + i * 256 * 1024ULL);
      (void)co_await g->read(4096);
      co_await engine.delay(0.05);
    }
    snapshot("strided", t0, before);

    // Regime 3: random probes — the prefetcher should stand down.
    before = fs.node_cache(0).stats();
    t0 = engine.now();
    for (int i = 0; i < 64; ++i) {
      co_await g->seek(rng.uniform_int(0, 511) * 64 * 1024ULL);
      (void)co_await g->read(4096);
      co_await engine.delay(0.05);
    }
    snapshot("random", t0, before);
    co_await g->close();
  };

  engine.spawn(driver());
  engine.run();

  std::printf("%-12s %-12s %10s %8s %8s %12s %8s\n", "regime", "classified",
              "seconds", "hits", "misses", "spec. used", "issued");
  for (const auto& r : reports) {
    std::printf("%-12s %-12s %10.2f %8llu %8llu %12llu %8llu\n", r.name,
                r.classified, r.seconds,
                static_cast<unsigned long long>(r.hits),
                static_cast<unsigned long long>(r.misses),
                static_cast<unsigned long long>(r.speculative_used),
                static_cast<unsigned long long>(r.issued));
  }
  std::cout << "\nthe classifier commits to sequential and strided regimes "
               "and largely stands down on random\naccess — the adaptive "
               "behaviour the paper's conclusions call for.\n";
  return 0;
}
