// Checkpointing — the second of the paper's I/O classes (§2): "production
// runs of scientific codes may span hours or even days ... In addition,
// users often use computation checkpoints as a basis for parametric
// studies, repeatedly modifying a subset of the checkpoint data values and
// restarting the computation."
//
// A long-running computation checkpoints its distributed state every
// interval.  The run is "killed" partway; a parametric restart then reads
// the latest checkpoint back, each node patches a small subset of its
// values, and the computation continues to completion.  Reported: the cost
// of taking checkpoints, the restart read burst, and how little the
// parametric patch writes.
//
//   $ ./examples/checkpoint_restart
#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "hw/machine.hpp"
#include "pablo/instrument.hpp"
#include "ppfs/ppfs.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/task_group.hpp"

using namespace paraio;

namespace {

constexpr std::uint32_t kNodes = 16;
constexpr std::uint64_t kStatePerNode = 2 * 1024 * 1024;
constexpr double kStepTime = 3.0;
constexpr int kStepsPerCheckpoint = 5;
constexpr int kTotalSteps = 30;
constexpr int kCrashAfterStep = 17;

std::string checkpoint_path(int epoch) {
  return "/ckpt/state." + std::to_string(epoch);
}

double jittered_step(sim::Rng& rng) {
  return kStepTime * rng.uniform(0.95, 1.05);
}

sim::Task<> worker(hw::Machine& m, io::FileSystem& fs, io::NodeId node,
                   sim::Barrier& barrier, int first_step, int last_step,
                   bool patch_before_start) {
  sim::Rng rng(node + 1);
  if (patch_before_start) {
    // Parametric restart: read the whole checkpoint, patch a small subset.
    const int epoch = first_step / kStepsPerCheckpoint;
    io::OpenOptions ro;
    ro.mode = io::AccessMode::kUnix;
    auto f = co_await fs.open(node, checkpoint_path(epoch), ro);
    co_await f->seek(node * kStatePerNode);
    (void)co_await f->read(kStatePerNode);
    // Patch ~1% of the state in place (the parametric modification).
    for (int i = 0; i < 4; ++i) {
      co_await f->seek(node * kStatePerNode +
                       rng.uniform_int(0, kStatePerNode / 4096 - 1) * 4096);
      co_await f->write(4096);
    }
    co_await f->close();
  }
  for (int step = first_step; step < last_step; ++step) {
    co_await m.engine().delay(jittered_step(rng));
    if ((step + 1) % kStepsPerCheckpoint == 0) {
      co_await barrier.arrive_and_wait();  // consistent checkpoint
      const int epoch = (step + 1) / kStepsPerCheckpoint;
      io::OpenOptions wo;
      wo.mode = io::AccessMode::kUnix;
      wo.create = true;
      auto f = co_await fs.open(node, checkpoint_path(epoch), wo);
      co_await f->seek(node * kStatePerNode);
      co_await f->write(kStatePerNode);
      co_await f->close();
    }
  }
}

}  // namespace

int main() {
  sim::Engine engine;
  hw::Machine machine(engine, hw::MachineConfig::paragon_xps(kNodes, 4));
  ppfs::Ppfs ppfs(machine, ppfs::PpfsParams::write_behind_aggregation());
  pablo::InstrumentedFs fs(ppfs, engine);
  pablo::Trace trace;
  fs.add_sink(trace);
  sim::Barrier barrier(engine, kNodes);

  double crash_time = 0, restart_time = 0;
  auto driver = [&]() -> sim::Task<> {
    // Original run up to the "crash".
    sim::TaskGroup group(engine);
    for (io::NodeId n = 0; n < kNodes; ++n) {
      group.spawn(worker(machine, fs, n, barrier, 0, kCrashAfterStep,
                         /*patch_before_start=*/false));
    }
    co_await group.join();
    crash_time = engine.now();

    // Restart from the last completed checkpoint with patched parameters.
    const int resume_step =
        (kCrashAfterStep / kStepsPerCheckpoint) * kStepsPerCheckpoint;
    restart_time = engine.now();
    sim::TaskGroup restart(engine);
    for (io::NodeId n = 0; n < kNodes; ++n) {
      restart.spawn(worker(machine, fs, n, barrier, resume_step, kTotalSteps,
                           /*patch_before_start=*/true));
    }
    co_await restart.join();
  };
  engine.spawn(driver());
  const double end = engine.run();

  const int lost_steps =
      kCrashAfterStep % kStepsPerCheckpoint;  // work redone after restart
  std::printf("run: %d steps of %.0f s on %u nodes, checkpoint every %d "
              "steps (%.1f MB per node)\n",
              kTotalSteps, kStepTime, kNodes, kStepsPerCheckpoint,
              kStatePerNode / 1e6);
  std::printf("crash after step %d at t=%.0f s; restarted from step %d "
              "(%d steps of work lost)\n",
              kCrashAfterStep, crash_time,
              (kCrashAfterStep / kStepsPerCheckpoint) * kStepsPerCheckpoint,
              lost_steps);
  std::printf("completed at t=%.0f s\n\n", end);

  analysis::OperationTable ops(trace);
  std::cout << analysis::to_text(
      ops, "I/O over the whole run (checkpoints + restart + patches)");
  std::cout << "\nthe checkpoint writes dominate volume; the restart is one "
               "read burst; the parametric\npatch is tiny — §2's checkpoint "
               "class in one picture.\n";
  return 0;
}
