// Off-line trace analysis — the Pablo workflow's second half: load a
// self-describing trace file and reduce it every way the library knows.
//
//   $ ./examples/characterize escat /tmp/escat.sddf
//   $ ./examples/trace_analysis /tmp/escat.sddf
//
// With no argument it generates a small demonstration trace first.
#include <iostream>
#include <string>

#include "analysis/report.hpp"
#include "analysis/tables.hpp"
#include "analysis/timeline.hpp"
#include "core/experiment.hpp"
#include "pablo/sddf.hpp"
#include "pablo/summary.hpp"

using namespace paraio;

int main(int argc, char** argv) {
  std::string path;
  if (argc > 1) {
    path = argv[1];
  } else {
    path = "/tmp/paraio_demo_trace.sddf";
    std::cout << "no trace given; generating a small ESCAT run into " << path
              << "\n\n";
    core::ExperimentConfig cfg = core::escat_experiment();
    auto& app = std::get<apps::EscatConfig>(cfg.app);
    app.nodes = 16;
    app.iterations = 8;
    app.seek_free_iterations = 2;
    cfg.machine = hw::MachineConfig::paragon_xps(16, 4);
    const auto r = core::run_experiment(cfg);
    pablo::write_trace_file(path, r.trace);
  }

  const pablo::Trace trace = pablo::read_trace_file(path);
  std::cout << "loaded " << trace.size() << " events spanning ["
            << trace.start_time() << ", " << trace.end_time() << "] s, "
            << trace.files().size() << " files\n\n";

  analysis::OperationTable ops(trace);
  std::cout << analysis::to_text(ops, "Operation table");
  std::cout << '\n';

  // The three Pablo real-time reductions can equally run post hoc.
  pablo::FileLifetimeSummary lifetime;
  lifetime.absorb(trace);
  std::cout << "File lifetimes:\n";
  for (const auto& [id, entry] : lifetime.files()) {
    std::cout << "  " << trace.file_name(id) << ": "
              << entry.counters.total_ops() << " ops, open "
              << entry.open_time << " s\n";
  }

  pablo::TimeWindowSummary windows((trace.end_time() - trace.start_time()) /
                                       8.0 +
                                   1e-9);
  windows.absorb(trace);
  std::cout << "\nActivity by time window (ops per eighth of the run):\n  ";
  for (const auto& [idx, counters] : windows.windows()) {
    std::cout << counters.total_ops() << ' ';
  }
  std::cout << "\n\n";

  analysis::PlotOptions po;
  po.log_y = true;
  po.title = "Write timeline from the loaded trace";
  std::cout << analysis::ascii_plot(
      analysis::timeline(trace, analysis::OpFamily::kWrites), po);
  return 0;
}
