// Quickstart: build a small simulated parallel machine, mount PFS, run a
// few instrumented I/O operations from two "compute node" processes, and
// print the captured characterization.
//
//   $ ./examples/quickstart
#include <iostream>

#include "analysis/tables.hpp"
#include "hw/machine.hpp"
#include "pablo/instrument.hpp"
#include "pablo/summary.hpp"
#include "pfs/pfs.hpp"
#include "sim/engine.hpp"

using namespace paraio;

int main() {
  // 1. A machine: 4 compute nodes, 2 I/O nodes with RAID-3 arrays.
  sim::Engine engine;
  hw::Machine machine(engine, hw::MachineConfig::paragon_xps(4, 2));

  // 2. A parallel file system, wrapped with Pablo-style instrumentation.
  pfs::Pfs pfs(machine);
  pablo::InstrumentedFs fs(pfs, engine);
  pablo::Trace trace;                       // full event capture
  pablo::FileLifetimeSummary lifetime;      // real-time reduction
  fs.add_sink(trace);
  fs.add_sink(lifetime);

  // 3. Application processes are coroutines; file operations take simulated
  //    time determined by the machine and file-system models.
  auto writer = [&](io::NodeId node) -> sim::Task<> {
    io::OpenOptions opts;
    opts.mode = io::AccessMode::kUnix;
    opts.create = true;
    auto file = co_await fs.open(node, "/demo/data", opts);
    for (int i = 0; i < 8; ++i) {
      co_await file->seek(node * (1 << 20) + i * 4096);
      co_await file->write(4096);
    }
    co_await file->close();
  };
  auto reader = [&](io::NodeId node) -> sim::Task<> {
    co_await engine.delay(2.0);  // start after some data exists
    io::OpenOptions opts;
    opts.mode = io::AccessMode::kUnix;
    auto file = co_await fs.open(node, "/demo/data", opts);
    co_await file->seek(0);
    std::uint64_t n = 1;
    while (n > 0) n = co_await file->read(64 * 1024);
    co_await file->close();
  };
  engine.spawn(writer(0));
  engine.spawn(writer(1));
  engine.spawn(reader(2));

  // 4. Run the simulation and analyze the trace.
  const double end = engine.run();
  std::cout << "simulated " << end << " s, captured " << trace.size()
            << " I/O events\n\n";
  analysis::OperationTable table(trace);
  std::cout << analysis::to_text(table, "Operation summary");

  std::cout << "\nPer-file lifetime summary:\n";
  for (const auto& [id, entry] : lifetime.files()) {
    std::cout << "  " << trace.file_name(id) << ": "
              << entry.counters.bytes_written << " B written, "
              << entry.counters.bytes_read << " B read, open "
              << entry.open_time << " s\n";
  }
  return 0;
}
