// Policy tuning: the paper's closing argument (§8, §10) is that no single
// file-system policy serves all access patterns — "exploitation of
// input/output access pattern knowledge in caching and prefetching systems
// is crucial".  This example runs three canonical workload shapes against
// four PPFS policy mixes and prints the resulting wall-clock matrix: each
// workload is won by a different configuration.
//
//   $ ./examples/policy_tuning
#include <cstdio>
#include <iostream>
#include <vector>

#include "hw/machine.hpp"
#include "ppfs/ppfs.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/task_group.hpp"

using namespace paraio;

namespace {

// --- workload shapes --------------------------------------------------------

// Checkpoint: every node dribbles small records into its own region of a
// shared file (ESCAT's phase-2 shape).
sim::Task<> checkpoint_node(hw::Machine& m, io::FileSystem& fs,
                            io::NodeId node) {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  o.create = true;
  auto f = co_await fs.open(node, "/w/checkpoint", o);
  for (int i = 0; i < 64; ++i) {
    co_await m.engine().delay(0.05);
    co_await f->seek(node * (1 << 20) + i * 2048);
    co_await f->write(2048);
  }
  co_await f->close();
}

// Scan: every node streams a large private file sequentially (HTF's SCF
// shape).
sim::Task<> scan_node(hw::Machine& m, io::FileSystem& fs, io::NodeId node) {
  const std::string path = "/w/scan." + std::to_string(node);
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  o.create = true;
  auto f = co_await fs.open(node, path, o);
  co_await f->write(8 * 1024 * 1024);
  co_await f->flush();
  co_await f->seek(0);
  for (int i = 0; i < 32; ++i) {
    (void)co_await f->read(256 * 1024);
    co_await m.engine().delay(0.1);  // compute on the chunk
  }
  co_await f->close();
}

// Probe: random small reads over a large file (index lookup shape; the
// "highly irregular" end of the paper's spectrum).
sim::Task<> probe_node(hw::Machine& m, io::FileSystem& fs, io::NodeId node) {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  o.create = true;
  auto f = co_await fs.open(node, "/w/probe", o);
  if (node == 0) {
    co_await f->write(8 * 1024 * 1024);
    co_await f->flush();
  }
  co_await m.engine().delay(1.0);  // let node 0 populate
  sim::Rng rng(77 + node);
  for (int i = 0; i < 64; ++i) {
    co_await f->seek(rng.uniform_int(0, 127) * 64 * 1024);
    (void)co_await f->read(512);
  }
  co_await f->close();
}

template <typename Workload>
double run_workload(Workload workload, const ppfs::PpfsParams& params,
                    std::size_t nodes) {
  sim::Engine engine;
  hw::Machine machine(engine,
                      hw::MachineConfig::paragon_xps(nodes, 4));
  ppfs::Ppfs fs(machine, params);
  auto driver = [&]() -> sim::Task<> {
    sim::TaskGroup group(engine);
    for (io::NodeId n = 0; n < nodes; ++n) {
      group.spawn(workload(machine, fs, n));
    }
    co_await group.join();
  };
  engine.spawn(driver());
  return engine.run();
}

}  // namespace

int main() {
  struct Policy {
    const char* name;
    ppfs::PpfsParams params;
  };
  std::vector<Policy> policies;
  policies.push_back({"no policies", ppfs::PpfsParams::no_policies()});
  {
    ppfs::PpfsParams p = ppfs::PpfsParams::no_policies();
    p.write_behind = true;
    p.aggregation = true;
    policies.push_back({"write-behind+agg", p});
  }
  {
    ppfs::PpfsParams p;
    p.write_behind = false;
    p.prefetch = ppfs::PrefetchPolicy::kSequential;
    p.prefetch_depth = 4;
    policies.push_back({"cache+seq-prefetch", p});
  }
  {
    ppfs::PpfsParams p;
    p.prefetch = ppfs::PrefetchPolicy::kAdaptive;
    p.prefetch_depth = 4;
    policies.push_back({"all adaptive", p});
  }

  struct Row {
    const char* name;
    double (*run)(const ppfs::PpfsParams&);
  };
  auto run_checkpoint = [](const ppfs::PpfsParams& p) {
    return run_workload(
        [](hw::Machine& m, io::FileSystem& fs, io::NodeId n) {
          return checkpoint_node(m, fs, n);
        },
        p, 16);
  };
  auto run_scan = [](const ppfs::PpfsParams& p) {
    return run_workload(
        [](hw::Machine& m, io::FileSystem& fs, io::NodeId n) {
          return scan_node(m, fs, n);
        },
        p, 4);  // light enough load that prefetch has headroom
  };
  auto run_probe = [](const ppfs::PpfsParams& p) {
    return run_workload(
        [](hw::Machine& m, io::FileSystem& fs, io::NodeId n) {
          return probe_node(m, fs, n);
        },
        p, 16);
  };

  std::cout << "wall-clock seconds by (workload x policy); lower is "
               "better\n\n";
  std::printf("%-22s", "");
  for (const auto& p : policies) std::printf(" %18s", p.name);
  std::printf("\n");

  const char* names[] = {"checkpoint (ESCAT-like)", "scan (HTF-like)",
                         "probe (random)"};
  int w = 0;
  for (auto runner : {+run_checkpoint, +run_scan, +run_probe}) {
    std::printf("%-22s", names[w++]);
    for (const auto& p : policies) {
      std::printf(" %18.2f", runner(p.params));
    }
    std::printf("\n");
  }
  std::cout << "\nno column wins every row — the paper's conclusion that "
               "policy must follow access pattern.\n";
  return 0;
}
