// Trace-driven file-system evaluation: capture an application once, then
// replay its exact request stream against candidate mounts.
//
//   $ ./examples/replay_trace            # captures a small ESCAT run
//   $ ./examples/replay_trace my.sddf    # replays a stored trace
//
// This is the workflow the paper's characterization enables — §5.2's PPFS
// port is exactly "same stream, different policies".
#include <cstdio>
#include <iostream>

#include "apps/replay.hpp"
#include "core/experiment.hpp"
#include "pablo/sddf.hpp"

using namespace paraio;

namespace {

template <typename MakeFs>
apps::ReplayStats replay_on(const pablo::Trace& trace, MakeFs make_fs,
                            std::size_t nodes) {
  sim::Engine engine;
  hw::Machine machine(engine, hw::MachineConfig::paragon_xps(nodes, 16));
  auto fs = make_fs(machine);
  apps::Replay replay(machine, *fs, trace);
  auto driver = [](apps::Replay& r, io::FileSystem& bare) -> sim::Task<> {
    co_await r.stage(bare);
    co_await r.run();
  };
  engine.spawn(driver(replay, *fs));
  engine.run();
  return replay.stats();
}

}  // namespace

int main(int argc, char** argv) {
  pablo::Trace trace;
  if (argc > 1) {
    trace = pablo::read_trace_file(argv[1]);
    std::cout << "loaded " << trace.size() << " events from " << argv[1]
              << "\n\n";
  } else {
    std::cout << "capturing a reduced ESCAT run on PFS...\n\n";
    core::ExperimentConfig cfg = core::escat_experiment();
    auto& app = std::get<apps::EscatConfig>(cfg.app);
    app.nodes = 32;
    app.iterations = 12;
    app.seek_free_iterations = 3;
    app.first_cycle_compute = 20.0;
    app.last_cycle_compute = 10.0;
    cfg.machine = hw::MachineConfig::paragon_xps(32, 16);
    trace = core::run_experiment(cfg).trace;
  }

  // Highest node id in the trace bounds the machine we need.
  io::NodeId max_node = 0;
  for (const auto& e : trace.events()) max_node = std::max(max_node, e.node);
  const std::size_t nodes = max_node + 1;

  struct Row {
    const char* name;
    apps::ReplayStats stats;
  };
  std::vector<Row> rows;
  rows.push_back({"PFS (ESCAT calibration)",
                  replay_on(trace,
                            [](hw::Machine& m) {
                              return std::make_unique<pfs::Pfs>(
                                  m, core::escat_pfs_params());
                            },
                            nodes)});
  rows.push_back({"PPFS, no policies",
                  replay_on(trace,
                            [](hw::Machine& m) {
                              return std::make_unique<ppfs::Ppfs>(
                                  m, ppfs::PpfsParams::no_policies());
                            },
                            nodes)});
  rows.push_back({"PPFS, write-behind + aggregation",
                  replay_on(trace,
                            [](hw::Machine& m) {
                              return std::make_unique<ppfs::Ppfs>(
                                  m,
                                  ppfs::PpfsParams::write_behind_aggregation());
                            },
                            nodes)});

  std::printf("%-34s %14s %14s\n", "mount", "I/O node-s", "duration (s)");
  for (const Row& row : rows) {
    std::printf("%-34s %14.2f %14.2f\n", row.name, row.stats.io_node_time,
                row.stats.duration);
  }
  std::cout << "\nsame request stream, three file systems: the think time "
               "is reproduced, the I/O cost is\nwhatever each mount "
               "delivers — capture once, evaluate designs forever.\n";
  return 0;
}
