// Characterize one of the paper's applications end to end and export the
// trace for off-line analysis:
//
//   $ ./examples/characterize escat
//   $ ./examples/characterize render /tmp/render.sddf
//   $ ./examples/characterize htf
//
// Prints the operation and size tables, the access-pattern census (§10's
// "majority of request patterns are sequential"), and optionally writes the
// full event trace in the self-describing format.  Accepts the obs flags
// (--metrics PATH, --chrome-trace PATH, --sample-period S); see
// docs/OBSERVABILITY.md.
#include <fstream>
#include <iostream>
#include <string>

#include "analysis/op_stats.hpp"
#include "analysis/pattern.hpp"
#include "analysis/phases.hpp"
#include "analysis/survival.hpp"
#include "analysis/tables.hpp"
#include "core/experiment.hpp"
#include "core/obs_options.hpp"
#include "core/report.hpp"
#include "pablo/sddf.hpp"

using namespace paraio;

int main(int argc, char** argv) {
  core::ObsOptions obs = core::ObsOptions::parse(argc, argv);
  const std::string app = argc > 1 ? argv[1] : "escat";
  core::ExperimentConfig cfg;
  if (app == "escat") {
    cfg = core::escat_experiment();
  } else if (app == "render") {
    cfg = core::render_experiment();
  } else if (app == "htf") {
    cfg = core::htf_experiment();
  } else {
    std::cerr << "usage: " << argv[0] << " {escat|render|htf} [trace.sddf] [report.md]\n";
    return 1;
  }

  obs.install(cfg);
  std::cout << "running " << app << " on the simulated Paragon XP/S...\n";
  const core::ExperimentResult r = core::run_experiment(cfg);
  std::cout << "simulated run time: " << r.run_end - r.run_start << " s, "
            << r.trace.size() << " I/O events\n";
  for (const auto& [name, t] : r.phases.phases()) {
    std::cout << "  phase '" << name << "' ends at " << t - r.run_start
              << " s\n";
  }
  std::cout << '\n';

  analysis::OperationTable ops(r.trace);
  std::cout << analysis::to_text(ops, "Operation table");
  std::cout << '\n';
  analysis::SizeTable sizes(r.trace);
  std::cout << analysis::to_text(sizes, "Request-size classes");
  std::cout << "  read sizes bimodal: "
            << (sizes.read_histogram().is_bimodal() ? "yes" : "no") << "\n\n";

  analysis::OperationStats op_stats(r.trace);
  std::cout << analysis::to_text(op_stats,
                                 "Operation duration/size statistics");
  std::cout << '\n';

  std::cout << "Detected I/O phases (no application knowledge used):\n"
            << analysis::to_text(analysis::detect_phases(r.trace)) << '\n';

  const auto survival = analysis::write_survival(r.trace);
  std::cout << "Write survival (paper §8): " << 100.0 * survival.survival_fraction()
            << "% of written bytes survive to the end of the run\n\n";

  const auto streams = analysis::classify_trace(r.trace);
  const auto mix = analysis::pattern_mix(streams);
  std::cout << "Access-pattern census over " << mix.total()
            << " per-(file,node,direction) streams:\n"
            << "  sequential " << mix.sequential << ", strided " << mix.strided
            << ", random " << mix.random << ", too-short " << mix.single
            << "\n";

  if (argc > 2) {
    pablo::write_trace_file(argv[2], r.trace);
    std::cout << "\ntrace written to " << argv[2]
              << " (analyze with examples/trace_analysis)\n";
  }
  if (argc > 3) {
    core::ReportOptions ro;
    ro.title = "I/O characterization: " + app;
    std::ofstream out(argv[3]);
    out << core::report(r, ro);
    std::cout << "markdown report written to " << argv[3] << "\n";
  }
  if (!obs.finish()) return 1;
  if (!obs.metrics_path().empty()) {
    std::cout << "metrics dump written to " << obs.metrics_path() << "\n";
  }
  if (!obs.chrome_path().empty()) {
    std::cout << "Chrome trace written to " << obs.chrome_path()
              << " (load in ui.perfetto.dev)\n";
  }
  return 0;
}
