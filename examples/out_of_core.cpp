// Out-of-core computation — the third of the paper's I/O classes (§2):
// "many important problems have data structures far too large for primary
// memory storage to ever be economically viable."
//
// An out-of-core matrix transpose: a matrix of `kPanels` x `kPanels` square
// panels lives in a scratch file; each node holds one panel row in memory
// at a time.  Pass 1 writes the matrix by panel rows; pass 2 produces the
// transpose by reading panel *columns* (a strided pattern) and writing the
// result by rows.  Run under two PPFS mounts to see what the strided pass
// costs and what adaptive prefetch recovers.
//
//   $ ./examples/out_of_core
#include <cstdio>
#include <iostream>

#include "hw/machine.hpp"
#include "ppfs/ppfs.hpp"
#include "sim/engine.hpp"
#include "sim/task_group.hpp"

using namespace paraio;

namespace {

constexpr std::uint32_t kNodes = 8;
constexpr std::uint32_t kPanels = 16;           // kPanels x kPanels grid
constexpr std::uint64_t kPanelBytes = 256 * 1024;

std::uint64_t panel_offset(std::uint32_t row, std::uint32_t col) {
  return (static_cast<std::uint64_t>(row) * kPanels + col) * kPanelBytes;
}

// Node n owns panel rows n, n+kNodes, ...
sim::Task<> transpose_node(hw::Machine& m, io::FileSystem& fs,
                           io::NodeId node, double* strided_seconds) {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  o.create = true;
  auto src = co_await fs.open(node, "/ooc/matrix", o);
  auto dst = co_await fs.open(node, "/ooc/transposed", o);

  // Pass 1: populate owned panel rows (sequential within each row).
  for (std::uint32_t row = node; row < kPanels; row += kNodes) {
    co_await src->seek(panel_offset(row, 0));
    for (std::uint32_t col = 0; col < kPanels; ++col) {
      co_await m.engine().delay(0.01);  // generate the panel
      co_await src->write(kPanelBytes);
    }
  }
  co_await src->flush();

  // Pass 2: for each owned output row, read the input *column* (stride =
  // one panel row of the file) and write the output row sequentially.
  const double t0 = m.engine().now();
  for (std::uint32_t row = node; row < kPanels; row += kNodes) {
    for (std::uint32_t col = 0; col < kPanels; ++col) {
      co_await src->seek(panel_offset(col, row));  // column-major visit
      (void)co_await src->read(kPanelBytes);
      co_await m.engine().delay(0.005);  // transpose the panel in memory
    }
    co_await dst->seek(panel_offset(row, 0));
    for (std::uint32_t col = 0; col < kPanels; ++col) {
      co_await dst->write(kPanelBytes);
    }
  }
  *strided_seconds += m.engine().now() - t0;
  co_await src->close();
  co_await dst->close();
}

double run(const ppfs::PpfsParams& params, double* strided_seconds) {
  sim::Engine engine;
  hw::Machine machine(engine, hw::MachineConfig::paragon_xps(kNodes, 4));
  ppfs::Ppfs fs(machine, params);
  auto driver = [&]() -> sim::Task<> {
    sim::TaskGroup group(engine);
    for (io::NodeId n = 0; n < kNodes; ++n) {
      group.spawn(transpose_node(machine, fs, n, strided_seconds));
    }
    co_await group.join();
  };
  engine.spawn(driver());
  return engine.run();
}

}  // namespace

int main() {
  const double total_mb =
      kPanels * static_cast<double>(kPanels) * kPanelBytes / 1e6;
  std::cout << "out-of-core transpose of a " << total_mb << " MB matrix ("
            << kPanels << "x" << kPanels << " panels of " << kPanelBytes / 1024
            << " KB) on " << kNodes << " nodes\n\n";

  struct Mount {
    const char* name;
    ppfs::PpfsParams params;
  };
  Mount mounts[2] = {{"PPFS, no policies", ppfs::PpfsParams::no_policies()},
                     {"PPFS, adaptive prefetch + write-behind", {}}};
  mounts[1].params.prefetch = ppfs::PrefetchPolicy::kAdaptive;
  mounts[1].params.prefetch_depth = 4;
  mounts[1].params.cache_blocks = 128;

  std::printf("  %-40s %12s %22s\n", "mount", "total (s)",
              "strided pass node-s");
  for (const Mount& mnt : mounts) {
    double strided = 0;
    const double total = run(mnt.params, &strided);
    std::printf("  %-40s %12.2f %22.2f\n", mnt.name, total, strided);
  }
  std::cout << "\nthe strided column-read pass is where out-of-core "
               "algorithms live or die — the paper's\n§2 point that larger "
               "memories shrink but never eliminate this class of I/O.\n";
  return 0;
}
