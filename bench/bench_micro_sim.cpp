// Microbenchmarks of the simulation substrate (google-benchmark): event
// queue, coroutine scheduling, synchronization, striping, and the PPFS
// bookkeeping structures.  These bound how large a simulated machine the
// toolkit can handle per wall-clock second.
#include <benchmark/benchmark.h>

#include "pfs/stripe.hpp"
#include "ppfs/cache.hpp"
#include "ppfs/extent.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"

namespace {

using namespace paraio;

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < n; ++i) {
      q.schedule(static_cast<double>((i * 7919) % 104729), [] {});
    }
    while (!q.empty()) q.pop().second();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1000)->Arg(100000);

void BM_EngineTimerChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    auto proc = [](sim::Engine& eng, int steps) -> sim::Task<> {
      for (int i = 0; i < steps; ++i) co_await eng.delay(1.0);
    };
    e.spawn(proc(e, n));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EngineTimerChain)->Arg(1000)->Arg(100000);

void BM_EngineManyProcesses(benchmark::State& state) {
  const int procs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    auto proc = [](sim::Engine& eng) -> sim::Task<> {
      for (int i = 0; i < 10; ++i) co_await eng.delay(1.0);
    };
    for (int p = 0; p < procs; ++p) e.spawn(proc(e));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * procs * 10);
}
BENCHMARK(BM_EngineManyProcesses)->Arg(128)->Arg(4096);

void BM_ChannelPingPong(benchmark::State& state) {
  const int msgs = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::Channel<int> ch(e, 8);
    auto producer = [](sim::Channel<int>& c, int n) -> sim::Task<> {
      for (int i = 0; i < n; ++i) co_await c.send(i);
    };
    auto consumer = [](sim::Channel<int>& c, int n) -> sim::Task<> {
      for (int i = 0; i < n; ++i) (void)co_await c.recv();
    };
    e.spawn(producer(ch, msgs));
    e.spawn(consumer(ch, msgs));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * msgs);
}
BENCHMARK(BM_ChannelPingPong)->Arg(10000);

void BM_SemaphoreContention(benchmark::State& state) {
  const int tasks = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Engine e;
    sim::Semaphore sem(e, 1);
    auto proc = [](sim::Engine& eng, sim::Semaphore& s) -> sim::Task<> {
      for (int i = 0; i < 16; ++i) {
        co_await s.acquire();
        co_await eng.delay(0.001);
        s.release();
      }
    };
    for (int t = 0; t < tasks; ++t) e.spawn(proc(e, sem));
    e.run();
  }
  state.SetItemsProcessed(state.iterations() * tasks * 16);
}
BENCHMARK(BM_SemaphoreContention)->Arg(64);

void BM_StripeDecompose(benchmark::State& state) {
  pfs::StripeParams params;
  params.unit = 64 * 1024;
  params.io_nodes = 16;
  pfs::StripeMap map(params);
  sim::Rng rng(1);
  for (auto _ : state) {
    const auto offset = rng.uniform_int(0, 1u << 30);
    const auto segs = map.decompose(offset, 3 * 1024 * 1024);
    benchmark::DoNotOptimize(segs.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StripeDecompose);

void BM_ExtentSetSequentialInserts(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ppfs::ExtentSet set;
    for (int i = 0; i < n; ++i) {
      set.insert(static_cast<std::uint64_t>(i) * 2048, 2048);
    }
    benchmark::DoNotOptimize(set.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExtentSetSequentialInserts)->Arg(1000);

void BM_BlockCacheLookups(benchmark::State& state) {
  ppfs::BlockCache cache(1024);
  for (std::uint64_t b = 0; b < 1024; ++b) cache.insert({1, b});
  sim::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup({1, rng.uniform_int(0, 2047)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockCacheLookups);

void BM_RngThroughput(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngThroughput);

}  // namespace

BENCHMARK_MAIN();
