// Microbenchmarks of the simulation kernel hot path: event queue churn,
// same-instant bursts, cancellation, coroutine timer chains, process fan-out,
// and the synchronization primitives.  These bound how large a simulated
// machine the toolkit can handle per wall-clock second, so their events/sec
// numbers are the repo's tracked performance trajectory:
//
//   $ bench_micro_sim --json build/bench_micro_sim.json
//   $ tools/check_bench.py BENCH_micro_sim.json build/bench_micro_sim.json
//
// The committed baseline lives in BENCH_micro_sim.json; docs/PERF.md
// describes the recording/refresh workflow and the CI regression gate.
// Scenarios run with NO observers attached — they measure the fast path.
// (Data-structure micros that don't involve the kernel live in
// bench_micro_structs.)
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sim/channel.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace {

using namespace paraio;

/// One scenario repetition: returns (kernel events processed, simulated
/// seconds covered).
using ScenarioFn = std::pair<double, double> (*)();

struct Scenario {
  const char* name;
  ScenarioFn run;
};

// --- event-queue scenarios (no engine, raw schedule/pop) -------------------

template <int N>
std::pair<double, double> queue_churn() {
  sim::EventQueue q;
  for (int i = 0; i < N; ++i) {
    q.schedule(static_cast<double>((i * 7919) % 104729), [] {});
  }
  double last = 0.0;
  while (!q.empty()) {
    auto [when, action] = q.pop();
    last = when;
    action();
  }
  return {static_cast<double>(N), last};
}

// Interleaved schedule/pop around a rolling time horizon: the steady-state
// shape of a running simulation (queue stays small, events keep arriving).
std::pair<double, double> queue_rolling_horizon() {
  constexpr int kEvents = 100000;
  constexpr int kWindow = 64;
  sim::EventQueue q;
  int scheduled = 0;
  for (; scheduled < kWindow; ++scheduled) {
    q.schedule(static_cast<double>((scheduled * 13) % 97), [] {});
  }
  double last = 0.0;
  while (!q.empty()) {
    auto [when, action] = q.pop();
    last = when;
    action();
    if (scheduled < kEvents) {
      q.schedule(when + static_cast<double>((scheduled * 13) % 97), [] {});
      ++scheduled;
    }
  }
  return {static_cast<double>(kEvents), last};
}

// Every event at the same instant: the tie-break path (barriers, collective
// wake-ups) and the dense bucket the golden stress config guards.
std::pair<double, double> queue_same_instant() {
  constexpr int kEvents = 20000;
  sim::EventQueue q;
  for (int i = 0; i < kEvents; ++i) q.schedule(5.0, [] {});
  while (!q.empty()) q.pop().second();
  return {static_cast<double>(kEvents), 5.0};
}

std::pair<double, double> queue_cancel_half() {
  constexpr int kEvents = 20000;
  sim::EventQueue q;
  std::vector<sim::EventId> ids;
  ids.reserve(kEvents);
  for (int i = 0; i < kEvents; ++i) {
    ids.push_back(q.schedule(static_cast<double>((i * 31) % 1009), [] {}));
  }
  for (int i = 0; i < kEvents; i += 2) (void)q.cancel(ids[static_cast<std::size_t>(i)]);
  while (!q.empty()) q.pop().second();
  return {static_cast<double>(kEvents), 0.0};
}

// --- engine scenarios (coroutines, sync primitives) ------------------------

std::pair<double, double> timer_chain() {
  constexpr int kSteps = 100000;
  sim::Engine e;
  auto proc = [](sim::Engine& eng, int steps) -> sim::Task<> {
    for (int i = 0; i < steps; ++i) co_await eng.delay(1.0);
  };
  e.spawn(proc(e, kSteps));
  e.run();
  return {static_cast<double>(e.events_executed()), e.now()};
}

std::pair<double, double> many_processes() {
  constexpr int kProcs = 4096;
  sim::Engine e;
  auto proc = [](sim::Engine& eng) -> sim::Task<> {
    for (int i = 0; i < 10; ++i) co_await eng.delay(1.0);
  };
  for (int p = 0; p < kProcs; ++p) e.spawn(proc(e));
  e.run();
  return {static_cast<double>(e.events_executed()), e.now()};
}

std::pair<double, double> channel_pingpong() {
  constexpr int kMsgs = 10000;
  sim::Engine e;
  sim::Channel<int> ch(e, 8);
  auto producer = [](sim::Channel<int>& c, int n) -> sim::Task<> {
    for (int i = 0; i < n; ++i) co_await c.send(i);
  };
  auto consumer = [](sim::Channel<int>& c, int n) -> sim::Task<> {
    for (int i = 0; i < n; ++i) (void)co_await c.recv();
  };
  e.spawn(producer(ch, kMsgs));
  e.spawn(consumer(ch, kMsgs));
  e.run();
  return {static_cast<double>(e.events_executed()), e.now()};
}

std::pair<double, double> semaphore_contention() {
  constexpr int kTasks = 64;
  sim::Engine e;
  sim::Semaphore sem(e, 1);
  auto proc = [](sim::Engine& eng, sim::Semaphore& s) -> sim::Task<> {
    for (int i = 0; i < 16; ++i) {
      co_await s.acquire();
      co_await eng.delay(0.001);
      s.release();
    }
  };
  for (int t = 0; t < kTasks; ++t) e.spawn(proc(e, sem));
  e.run();
  return {static_cast<double>(e.events_executed()), e.now()};
}

// Spawn-heavy fork/join shape: short-lived coroutines created in waves, the
// allocation-rate stress for coroutine frames.
std::pair<double, double> spawn_waves() {
  // maybe_unused: only read inside the capture-less driver coroutine (a
  // constant expression, not an odr-use), which GCC's
  // -Wunused-but-set-variable fails to see as a use.
  [[maybe_unused]] constexpr int kWaves = 200;
  [[maybe_unused]] constexpr int kPerWave = 256;
  sim::Engine e;
  auto worker = [](sim::Engine& eng) -> sim::Task<> {
    co_await eng.delay(0.5);
  };
  auto driver = [](sim::Engine& eng, auto spawn_worker) -> sim::Task<> {
    for (int w = 0; w < kWaves; ++w) {
      spawn_worker(eng, kPerWave);
      co_await eng.delay(1.0);
    }
  };
  auto spawn_worker = [&worker](sim::Engine& eng, int n) {
    for (int i = 0; i < n; ++i) eng.spawn(worker(eng));
  };
  e.spawn(driver(e, spawn_worker));
  e.run();
  return {static_cast<double>(e.events_executed()), e.now()};
}

constexpr Scenario kScenarios[] = {
    {"queue_churn_1k", &queue_churn<1000>},
    {"queue_churn_100k", &queue_churn<100000>},
    {"queue_rolling_horizon_100k", &queue_rolling_horizon},
    {"queue_same_instant_20k", &queue_same_instant},
    {"queue_cancel_half_20k", &queue_cancel_half},
    {"timer_chain_100k", &timer_chain},
    {"many_processes_4096x10", &many_processes},
    {"channel_pingpong_10k", &channel_pingpong},
    {"semaphore_contention_64x16", &semaphore_contention},
    {"spawn_waves_200x256", &spawn_waves},
};

/// Runs `s` repeatedly until at least `min_wall_ms` of host time has been
/// measured (with one untimed warm-up rep) and reports the FASTEST rep.
/// Best-of, not average-of: the simulator is deterministic, so every rep
/// does identical work and the fastest one is the measurement least
/// disturbed by scheduler preemption or a noisy co-tenant — the same
/// reasoning as minimum-time benchmarking.  Throughput on a shared host
/// only ever loses time to interference; it never gains any.
bench::ScenarioRecord measure(const Scenario& s, double min_wall_ms) {
  (void)s.run();  // warm-up: page in code, grow pools to steady state
  double best_ms = 0.0;
  double events = 0.0;
  double sim_time = 0.0;
  const bench::WallTimer total;
  do {
    const bench::WallTimer rep;
    const auto [ev, st] = s.run();
    const double ms = rep.elapsed_ms();
    if (best_ms == 0.0 || ms < best_ms) {
      best_ms = ms;
      events = ev;
      sim_time = st;
    }
  } while (total.elapsed_ms() < min_wall_ms);
  bench::ScenarioRecord rec;
  rec.name = s.name;
  rec.events = events;
  rec.wall_ms = best_ms;
  rec.events_per_sec = events / (best_ms / 1000.0);
  rec.sim_time = sim_time;
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  // Keep one full run cheap (~3 s) while giving each scenario enough wall
  // time that events/sec is stable to a few percent on an idle host.
  const double min_wall_ms = 250.0;

  std::printf("=== simulation-kernel microbenchmarks (no observers) ===\n");
  std::printf("%-28s %14s %10s %16s\n", "scenario", "events", "wall_ms",
              "events/sec");
  std::vector<bench::ScenarioRecord> records;
  std::string csv = "scenario,events,wall_ms,events_per_sec\n";
  for (const Scenario& s : kScenarios) {
    const bench::ScenarioRecord rec = measure(s, min_wall_ms);
    std::printf("%-28s %14.0f %10.1f %16.0f\n", rec.name.c_str(), rec.events,
                rec.wall_ms, rec.events_per_sec);
    csv += rec.name + "," + std::to_string(rec.events) + "," +
           std::to_string(rec.wall_ms) + "," +
           std::to_string(rec.events_per_sec) + "\n";
    records.push_back(rec);
  }

  bench::write_csv(opt, "micro_sim.csv", csv);
  bench::write_scenarios_json(opt, "micro_sim", records);
  return 0;
}
