// Microbenchmarks of the instrumentation layer (google-benchmark),
// quantifying the paper's §3.1 claim: "instrumentation overhead is modest
// for input/output data capture and is largely independent of the choice of
// real-time data reduction or trace output".
//
// Measured here as *host* cost per traced operation: full trace capture vs.
// each real-time reduction vs. all of them at once, plus trace file I/O.
#include <benchmark/benchmark.h>

#include <sstream>

#include "pablo/sddf.hpp"
#include "pablo/summary.hpp"
#include "pablo/trace.hpp"
#include "sim/random.hpp"

namespace {

using namespace paraio;
using pablo::IoEvent;
using pablo::Op;

IoEvent sample_event(sim::Rng& rng) {
  IoEvent e;
  e.timestamp = rng.uniform(0, 10000);
  e.duration = rng.uniform(0, 0.5);
  e.node = static_cast<io::NodeId>(rng.uniform_int(0, 127));
  e.file = static_cast<io::FileId>(rng.uniform_int(1, 16));
  e.op = static_cast<Op>(rng.uniform_int(0, 4));
  e.offset = rng.uniform_int(0, 1u << 30);
  e.requested = rng.uniform_int(64, 1 << 20);
  e.transferred = e.requested;
  return e;
}

void BM_TraceCapture(benchmark::State& state) {
  sim::Rng rng(1);
  const IoEvent e = sample_event(rng);
  pablo::Trace trace;
  for (auto _ : state) {
    trace.on_event(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TraceCapture);

void BM_LifetimeReduction(benchmark::State& state) {
  sim::Rng rng(2);
  pablo::FileLifetimeSummary summary;
  for (auto _ : state) {
    summary.on_event(sample_event(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LifetimeReduction);

void BM_TimeWindowReduction(benchmark::State& state) {
  sim::Rng rng(3);
  pablo::TimeWindowSummary summary(10.0);
  for (auto _ : state) {
    summary.on_event(sample_event(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimeWindowReduction);

void BM_FileRegionReduction(benchmark::State& state) {
  sim::Rng rng(4);
  pablo::FileRegionSummary summary(1 << 20);
  for (auto _ : state) {
    summary.on_event(sample_event(rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FileRegionReduction);

void BM_AllSinksTogether(benchmark::State& state) {
  sim::Rng rng(5);
  pablo::Trace trace;
  pablo::FileLifetimeSummary lifetime;
  pablo::TimeWindowSummary window(10.0);
  pablo::FileRegionSummary region(1 << 20);
  for (auto _ : state) {
    const IoEvent e = sample_event(rng);
    trace.on_event(e);
    lifetime.on_event(e);
    window.on_event(e);
    region.on_event(e);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AllSinksTogether);

void BM_TraceWriteRead(benchmark::State& state) {
  sim::Rng rng(6);
  pablo::Trace trace;
  trace.on_file(1, "/bench/file");
  for (int i = 0; i < 10000; ++i) trace.on_event(sample_event(rng));
  for (auto _ : state) {
    std::stringstream buffer;
    pablo::write_trace(buffer, trace);
    const pablo::Trace loaded = pablo::read_trace(buffer);
    benchmark::DoNotOptimize(loaded.size());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_TraceWriteRead);

}  // namespace

BENCHMARK_MAIN();
