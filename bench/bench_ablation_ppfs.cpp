// §5.2 ablation: porting ESCAT to PPFS with write-behind and global request
// aggregation "effectively eliminated the behavior seen in Figure 4".
//
// Three mounts of the same application:
//   * PFS                         — the baseline (the paper's Table 1 run);
//   * PPFS with no policies       — client/server FS, everything off;
//   * PPFS write-behind + aggregation — the paper's ported configuration.
//
// Reported per mount: I/O node time by op class, physical disk accesses,
// ION aggregation factor, and the Figure-4 write-burst structure.
#include <iostream>

#include "analysis/tables.hpp"
#include "analysis/timeline.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"

namespace {

struct MountResult {
  std::string name;
  paraio::core::ExperimentResult result;
};

paraio::apps::EscatConfig scaled_escat() {
  // Full-size ESCAT; identical across mounts.
  return paraio::apps::EscatConfig{};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace paraio;
  const bench::Options opt = bench::parse_args(argc, argv);

  std::cout << "=== Ablation (paper §5.2): ESCAT write phase under file-"
               "system policies ===\n\n";

  std::vector<MountResult> mounts;
  {
    core::ExperimentConfig cfg = core::escat_experiment();
    cfg.app = scaled_escat();
    mounts.push_back({"PFS (paper baseline)", core::run_experiment(cfg)});
  }
  {
    core::ExperimentConfig cfg = core::escat_experiment();
    cfg.app = scaled_escat();
    cfg.filesystem = core::FsChoice::ppfs(ppfs::PpfsParams::no_policies());
    mounts.push_back({"PPFS, no policies", core::run_experiment(cfg)});
  }
  {
    core::ExperimentConfig cfg = core::escat_experiment();
    cfg.app = scaled_escat();
    cfg.filesystem =
        core::FsChoice::ppfs(ppfs::PpfsParams::write_behind_aggregation());
    mounts.push_back(
        {"PPFS, write-behind + aggregation", core::run_experiment(cfg)});
  }
  {
    // §8's "two level buffering at compute nodes and input/output nodes":
    // the tuned mount plus a server-side block cache at every ION, which
    // also accelerates the phase-3 reload reads.
    core::ExperimentConfig cfg = core::escat_experiment();
    cfg.app = scaled_escat();
    ppfs::PpfsParams params = ppfs::PpfsParams::write_behind_aggregation();
    params.ion_cache_blocks = 4096;
    cfg.filesystem = core::FsChoice::ppfs(params);
    mounts.push_back({"PPFS, two-level (client + ION cache)",
                      core::run_experiment(cfg)});
  }

  std::string csv = "mount,io_node_time_s,write_time_s,seek_time_s,"
                    "write_bursts,run_time_s\n";
  for (const MountResult& m : mounts) {
    analysis::OperationTable t(m.result.trace);
    const double quad_end = m.result.phases.end_of("quadrature");
    pablo::Trace quad;
    for (const auto& e : m.result.trace.events()) {
      if (e.op == pablo::Op::kWrite && e.timestamp < quad_end) {
        quad.on_event(e);
      }
    }
    auto clusters = analysis::bursts(quad, analysis::OpFamily::kWrites, 30.0);

    std::cout << "--- " << m.name << " ---\n";
    std::cout << "  total I/O node time: " << t.all().node_time << " s\n";
    std::cout << "  write node time:     "
              << t.row(pablo::Op::kWrite).node_time << " s\n";
    std::cout << "  seek node time:      "
              << t.row(pablo::Op::kSeek).node_time << " s\n";
    std::cout << "  read node time:      "
              << t.row(pablo::Op::kRead).node_time << " s\n";
    std::cout << "  write bursts (Fig 4 clusters): " << clusters.size()
              << "\n";
    std::cout << "  run time: " << m.result.run_end - m.result.run_start
              << " s\n\n";
    csv += m.name + "," + std::to_string(t.all().node_time) + "," +
           std::to_string(t.row(pablo::Op::kWrite).node_time) + "," +
           std::to_string(t.row(pablo::Op::kSeek).node_time) + "," +
           std::to_string(clusters.size()) + "," +
           std::to_string(m.result.run_end - m.result.run_start) + "\n";
  }

  const double baseline_write =
      analysis::OperationTable(mounts[0].result.trace)
          .row(pablo::Op::kWrite)
          .node_time;
  const double tuned_write =
      analysis::OperationTable(mounts[2].result.trace)
          .row(pablo::Op::kWrite)
          .node_time;
  std::cout << "write-time reduction (PFS -> PPFS tuned): "
            << baseline_write / tuned_write << "x\n";
  std::cout << "paper: the tuned policies \"effectively eliminated\" the "
               "Figure-4 write cost.\n";

  bench::write_csv(opt, "ablation_ppfs.csv", csv);
  return 0;
}
