// Reproduces the HTF characterization: Tables 5-6 and Figures 9-17.
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/tables.hpp"
#include "analysis/timeline.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace paraio;
  const bench::Options opt = bench::parse_args(argc, argv);

  std::cout << "=== HTF (Hartree-Fock) on simulated Paragon XP/S, 128 nodes, "
               "16 atoms ===\n";
  obs::Registry registry;
  core::ExperimentConfig cfg = core::htf_experiment();
  cfg.hooks.metrics = &registry;
  const bench::WallTimer timer;
  const core::ExperimentResult r = core::run_experiment(cfg);
  const double wall_ms = timer.elapsed_ms();
  bench::write_json(opt, {.name = "bench_htf",
                          .params = {{"app", "htf"},
                                     {"nodes", "128"},
                                     {"ions", "16"},
                                     {"fs", "pfs"}},
                          .sim_time = r.run_end - r.run_start,
                          .wall_ms = wall_ms,
                          .metrics = &registry});
  const double setup_end = r.phases.end_of("psetup");
  const double pargos_end = r.phases.end_of("pargos");
  const double scf_end = r.phases.end_of("pscf");
  std::cout << "phase durations: psetup " << setup_end - r.run_start
            << " s, pargos " << pargos_end - setup_end << " s, pscf "
            << scf_end - pargos_end
            << " s (paper: 127 / 1,173 / 1,008 s)\n\n";

  struct Phase {
    const char* name;
    const char* paper;
    double t0, t1;
    const char* sizes_ref;
  };
  const Phase phases[] = {
      {"HTF Initialization",
       "All 832 ops, 7.27MB; Read 371/3.52MB/27.8%; Write 452/3.74MB/10.0%; "
       "Seek 2; Open 4/57.0%; Close 3",
       0.0, setup_end, "Read 151/220/0/0; Write 218/234/0/0"},
      {"HTF Integral Calculation",
       "All 17,854 ops, 699MB; Read 145/34,393B; Write 8,535/698.96MB/31.2%; "
       "Seek 130; Open 130/63.4%; Close 129; Lsize 128; Forflush 8,657/5.0%",
       setup_end, pargos_end, "Read 143/2/0/0; Write 2/1/8,532/0"},
      {"HTF Self-Consistent Field Calculation",
       "All 52,832 ops, 4.21GB; Read 51,499/4.20GB/98.4%; Write "
       "207/3.85MB/0.02%; Seek 813; Open 157/1.6%; Close 156",
       pargos_end, scf_end, "Read 165/109/51,225/0; Write 43/158/6/0"},
  };

  int idx = 0;
  for (const Phase& p : phases) {
    analysis::OperationTable t(r.trace, p.t0, p.t1);
    std::cout << analysis::to_text(
        t, std::string("Table 5 (") + p.name + ")");
    std::cout << "  paper reference: " << p.paper << "\n\n";
    analysis::SizeTable s(r.trace, p.t0, p.t1);
    std::cout << analysis::to_text(
        s, std::string("Table 6 (") + p.name + ")");
    std::cout << "  paper reference: " << p.sizes_ref << "\n\n";
    bench::write_csv(opt, "htf_table5_" + std::to_string(idx) + ".csv",
                     analysis::to_csv(t));
    bench::write_csv(opt, "htf_table6_" + std::to_string(idx) + ".csv",
                     analysis::to_csv(s));
    ++idx;
  }

  struct Fig {
    const char* title;
    analysis::OpFamily family;
    double t0, t1;
    const char* csv;
  };
  const Fig figs[] = {
      {"Figure 9: Read timeline (HTF initialization)",
       analysis::OpFamily::kReads, 0.0, setup_end, "htf_fig9.csv"},
      {"Figure 10: Write timeline (HTF initialization)",
       analysis::OpFamily::kWrites, 0.0, setup_end, "htf_fig10.csv"},
      {"Figure 11: Read timeline (HTF integral calculation)",
       analysis::OpFamily::kReads, setup_end, pargos_end, "htf_fig11.csv"},
      {"Figure 12: Write timeline (HTF integral calculation)",
       analysis::OpFamily::kWrites, setup_end, pargos_end, "htf_fig12.csv"},
      {"Figure 13: Read timeline (HTF self-consistent field)",
       analysis::OpFamily::kReads, pargos_end, scf_end, "htf_fig13.csv"},
      {"Figure 14: Write timeline (HTF self-consistent field)",
       analysis::OpFamily::kWrites, pargos_end, scf_end, "htf_fig14.csv"},
  };
  for (const Fig& f : figs) {
    auto series = analysis::timeline(r.trace, f.family, f.t0, f.t1);
    bench::write_csv(opt, f.csv, analysis::to_csv(series));
    if (opt.figures) {
      analysis::PlotOptions po;
      po.log_y = true;
      po.title = std::string(f.title) + ", size (bytes)";
      std::cout << analysis::ascii_plot(series, po) << '\n';
    }
  }

  // Figures 15-17: per-phase file access maps.
  const struct {
    const char* title;
    double t0, t1;
    const char* csv;
  } maps[] = {
      {"Figure 15: File access timeline (HTF initialization)", 0.0, setup_end,
       "htf_fig15.csv"},
      {"Figure 16: File access timeline (HTF integral calculation)",
       setup_end, pargos_end, "htf_fig16.csv"},
      {"Figure 17: File access timeline (HTF self-consistent field)",
       pargos_end, scf_end, "htf_fig17.csv"},
  };
  for (const auto& m : maps) {
    auto series = analysis::file_access_map(r.trace, m.t0, m.t1);
    bench::write_csv(opt, m.csv, analysis::to_csv(series));
    if (opt.figures) {
      analysis::PlotOptions po;
      po.title = std::string(m.title) + ", file id; r/w marks";
      std::cout << analysis::ascii_plot(series, po) << '\n';
    }
  }
  return 0;
}
