// Workload mixes (§8): "The impact of file system changes on real
// applications or application mixes depends on much more complex
// application structure, suggesting that the development of larger
// application skeletons and workload mixes are an essential part of
// developing high performance input/output systems."
//
// Two skeletons share one machine: a checkpoint-style writer (ESCAT-like
// bursts of small records) and a scan-style reader (HTF-SCF-like record
// streaming).  Each runs solo and then mixed, on PFS and on tuned PPFS;
// the slowdown factors quantify the interference — and show that the
// policy fix for one workload also changes how it *interferes*.
#include <cstdio>
#include <iostream>
#include <memory>

#include "apps/synthetic.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "sim/task_group.hpp"

namespace {

using namespace paraio;

constexpr std::uint32_t kNodes = 32;  // 16 checkpointers + 16 scanners

apps::SyntheticConfig checkpoint_cfg() {
  apps::SyntheticConfig cfg = apps::SyntheticPresets::checkpoint(16, 24, 2048);
  cfg.file_prefix = "/mix/checkpoint";
  cfg.seed = 1;
  return cfg;
}

apps::SyntheticConfig scan_cfg() {
  apps::SyntheticConfig cfg = apps::SyntheticPresets::scan(16, 48, 81920);
  cfg.file_prefix = "/mix/scan";
  cfg.seed = 2;
  return cfg;
}

struct MixResult {
  double checkpoint_span = 0;
  double scan_span = 0;
};

/// Runs the selected workloads (either or both) and returns their spans.
MixResult run(bool with_checkpoint, bool with_scan, bool use_ppfs) {
  sim::Engine engine;
  hw::Machine machine(engine, hw::MachineConfig::paragon_xps(kNodes, 4));
  std::unique_ptr<io::FileSystem> fs;
  if (use_ppfs) {
    ppfs::PpfsParams p = ppfs::PpfsParams::write_behind_aggregation();
    p.prefetch = ppfs::PrefetchPolicy::kAdaptive;
    fs = std::make_unique<ppfs::Ppfs>(machine, p);
  } else {
    fs = std::make_unique<pfs::Pfs>(machine, core::escat_pfs_params());
  }

  MixResult result;
  auto driver = [&]() -> sim::Task<> {
    apps::Synthetic checkpoint(machine, *fs, checkpoint_cfg());
    apps::Synthetic scan(machine, *fs, scan_cfg());
    if (with_checkpoint) co_await checkpoint.stage(*fs);
    if (with_scan) co_await scan.stage(*fs);

    sim::TaskGroup group(engine);
    const double t0 = engine.now();
    auto timed = [&engine, t0](apps::Synthetic& app,
                               double* span) -> sim::Task<> {
      co_await app.run();
      *span = engine.now() - t0;
    };
    if (with_checkpoint) {
      group.spawn(timed(checkpoint, &result.checkpoint_span));
    }
    if (with_scan) group.spawn(timed(scan, &result.scan_span));
    co_await group.join();
  };
  engine.spawn(driver());
  engine.run();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::cout << "=== Workload mix interference (paper §8) ===\n"
            << "16 checkpoint writers (24 x 2 KB bursts) + 16 scan readers "
               "(48 x 80 KB) on 4 I/O nodes\n\n";

  std::string csv = "fs,workload,solo_s,mixed_s,slowdown\n";
  for (bool use_ppfs : {false, true}) {
    const char* fs_name = use_ppfs ? "PPFS tuned" : "PFS";
    const MixResult solo_ckpt = run(true, false, use_ppfs);
    const MixResult solo_scan = run(false, true, use_ppfs);
    const MixResult mixed = run(true, true, use_ppfs);
    std::printf("%s:\n", fs_name);
    std::printf("  %-12s solo %8.2f s   mixed %8.2f s   slowdown %5.2fx\n",
                "checkpoint", solo_ckpt.checkpoint_span,
                mixed.checkpoint_span,
                mixed.checkpoint_span / solo_ckpt.checkpoint_span);
    std::printf("  %-12s solo %8.2f s   mixed %8.2f s   slowdown %5.2fx\n\n",
                "scan", solo_scan.scan_span, mixed.scan_span,
                mixed.scan_span / solo_scan.scan_span);
    csv += std::string(fs_name) + ",checkpoint," +
           std::to_string(solo_ckpt.checkpoint_span) + "," +
           std::to_string(mixed.checkpoint_span) + "," +
           std::to_string(mixed.checkpoint_span / solo_ckpt.checkpoint_span) +
           "\n";
    csv += std::string(fs_name) + ",scan," +
           std::to_string(solo_scan.scan_span) + "," +
           std::to_string(mixed.scan_span) + "," +
           std::to_string(mixed.scan_span / solo_scan.scan_span) + "\n";
  }
  std::cout << "shape check: on PFS the checkpoint bursts and the scan "
               "stream interfere through the\nshared control servers and "
               "arrays; tuned PPFS absorbs the small writes client-side, "
               "so the\nmix behaves nearly like the solo runs — isolated "
               "kernels mispredict both.\n";
  bench::write_csv(opt, "workload_mix.csv", csv);
  return 0;
}
