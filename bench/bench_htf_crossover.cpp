// §7.2 crossover study: integral reread vs. recomputation.
//
// "For integral input/output to be preferable to recomputation, reading an
// integral from secondary storage must take less than the roughly 500
// floating point operations needed for integral calculation.  For current
// systems, this requires a sustained input/output rate of approximately
// 5-10 Mbytes/second per node."
//
// Part 1 derives the required per-node bandwidth analytically from the
// paper's numbers.  Part 2 measures the achieved per-node read rate on the
// simulated machine as the node count scales, locating the crossover.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "sim/task_group.hpp"

namespace {

using namespace paraio;

constexpr std::uint64_t kRecord = 81918;
constexpr std::uint32_t kRecords = 64;

/// Sustained per-node read bandwidth with `nodes` nodes streaming their
/// integral files concurrently (each node one file, 80 KB records).
double measured_per_node_rate(std::uint32_t nodes) {
  sim::Engine engine;
  hw::Machine machine(engine, hw::MachineConfig::paragon_xps(nodes, 16));
  pfs::Pfs fs(machine, core::htf_pfs_params());

  double start = 0, end = 0;
  auto driver = [&]() -> sim::Task<> {
    io::OpenOptions create;
    create.mode = io::AccessMode::kUnix;
    create.create = true;
    // Stage one integral file per node.
    for (std::uint32_t n = 0; n < nodes; ++n) {
      auto f = co_await fs.open(n, "/x/int." + std::to_string(n), create);
      co_await f->write(kRecord * kRecords);
      co_await f->close();
    }
    start = engine.now();
    sim::TaskGroup group(engine);
    for (std::uint32_t n = 0; n < nodes; ++n) {
      auto reader = [](pfs::Pfs& p, io::NodeId node) -> sim::Task<> {
        io::OpenOptions ro;
        ro.mode = io::AccessMode::kUnix;
        auto f = co_await p.open(node, "/x/int." + std::to_string(node), ro);
        for (std::uint32_t r = 0; r < kRecords; ++r) {
          (void)co_await f->read(kRecord);
        }
        co_await f->close();
      };
      group.spawn(reader(fs, n));
    }
    co_await group.join();
    end = engine.now();
  };
  engine.spawn(driver());
  engine.run();
  const double bytes = static_cast<double>(kRecord) * kRecords;
  return bytes / (end - start);  // per node: each read its own volume
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::cout << "=== HTF integral reread vs recompute crossover (paper §7.2) "
               "===\n\n";

  // --- Part 1: analytic requirement ---------------------------------------
  constexpr double kFlopsPerIntegral = 500.0;
  // One two-electron record (81918 bytes) is written per integral batch;
  // per-integral payload is record/batch.  The
  // paper states the requirement directly as 5-10 MB/s per node; we derive
  // the equivalent figure from node flop rates.
  std::cout << "analytic requirement (read must beat " << kFlopsPerIntegral
            << " flops of recomputation):\n";
  std::string csv = "node_mflops,required_mb_per_s\n";
  for (double mflops : {25.0, 50.0, 75.0, 100.0}) {
    const double integrals_per_s = mflops * 1e6 / kFlopsPerIntegral;
    // Each integral read moves record/batch bytes; the paper's per-node
    // write volume (5.46 MB / 67 records) implies ~100 doubles per integral
    // batch entry; use bytes-per-integral = 40 B (5 doubles) per its 500-
    // flop figure -> required rate:
    const double bytes_per_integral = 40.0;
    const double required = integrals_per_s * bytes_per_integral / 1e6;
    std::printf("  node at %5.1f MF/s -> needs %6.2f MB/s per node\n",
                mflops, required);
    csv += std::to_string(mflops) + "," + std::to_string(required) + "\n";
  }
  std::cout << "  paper's stated requirement: ~5-10 MB/s per node\n\n";
  bench::write_csv(opt, "htf_crossover_analytic.csv", csv);

  // --- Part 2: what the machine actually delivers per node ----------------
  std::cout << "measured sustained per-node read rate (16 I/O nodes):\n";
  std::string csv2 = "nodes,per_node_mb_s\n";
  for (std::uint32_t nodes : {1u, 4u, 16u, 64u, 128u}) {
    const double rate = measured_per_node_rate(nodes);
    std::printf("  %3u nodes: %7.3f MB/s per node %s\n", nodes, rate / 1e6,
                rate >= 5e6 ? "(reread viable)" : "(recompute wins)");
    csv2 += std::to_string(nodes) + "," + std::to_string(rate / 1e6) + "\n";
  }
  bench::write_csv(opt, "htf_crossover_measured.csv", csv2);

  std::cout << "\npaper's conclusion: at scale the delivered rate falls far "
               "below the 5-10 MB/s/node\nrequirement, so the production "
               "code recomputes integrals instead of rereading them\n(the "
               "studied version is the one the chemists *wish* they could "
               "run).\n";
  return 0;
}
