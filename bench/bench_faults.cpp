// Graceful degradation under hardware faults (docs/FAULTS.md,
// docs/CHECKPOINT.md).
//
// Part 1 runs each paper application on a PPFS mount at a reduced scale
// under three scenarios — fault-free, degraded RAID (one drive of ION 0's
// array fails mid-run), and ION failover (ION 1 crashes mid-run and never
// returns) — and reports how the run time and the recovery machinery
// respond: degraded accesses, retries, failovers, and dirty data lost.
//
// Part 2 measures the checkpoint subsystem: the ESCAT skeleton checkpoints
// every other cycle through the host-side write absorber vs the plain
// write-behind baseline, fault-free and under a mid-run ION crash.  The
// headline number is checkpoint overhead — simulated seconds inside
// checkpoint epochs over useful run seconds — plus the data-loss window at
// the crash instant.
//
// The paper's Paragon put a five-disk RAID-3 array on every I/O node
// precisely so a single disk failure would not stop a run; this bench
// quantifies what that choice (plus PPFS client-side retry/failover and
// log-absorbed checkpoints) costs when the fault actually happens.
//
// --json emits the schema-1 scenario format that tools/check_bench.py
// regression-gates on events_per_sec; the per-scenario "params" objects
// carry the fault/checkpoint measurements.
#include <cstdio>
#include <iostream>
#include <string>
#include <variant>
#include <vector>

#include "bench_util.hpp"
#include "ckpt/checkpoint.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"

namespace {

using namespace paraio;

core::ExperimentConfig small_config(core::AppConfig app) {
  core::ExperimentConfig cfg;
  const bool render = std::holds_alternative<apps::RenderConfig>(app);
  cfg.machine = hw::MachineConfig::paragon_xps(render ? 9 : 8, 4);
  cfg.filesystem = core::FsChoice::ppfs();  // the fault-aware mount
  cfg.app = std::move(app);
  return cfg;
}

core::AppConfig make_app(const std::string& name) {
  if (name == "escat") {
    apps::EscatConfig c;
    c.nodes = 8;
    c.iterations = 6;
    c.seek_free_iterations = 2;
    c.first_cycle_compute = 5.0;
    c.last_cycle_compute = 2.0;
    c.energy_phase_compute = 3.0;
    return c;
  }
  if (name == "render") {
    apps::RenderConfig c;
    c.renderers = 8;
    c.frames = 5;
    c.large_reads_3mb = 8;
    c.large_reads_15mb = 16;
    c.header_reads = 4;
    c.frame_compute = 0.5;
    return c;
  }
  apps::HtfConfig c;
  c.nodes = 8;
  c.integral_writes_total = 40;
  c.scf_iterations = 2;
  c.scf_extra_large_reads = 3;
  c.integral_compute_per_record = 1.0;
  c.scf_compute_per_iteration = 5.0;
  c.setup_compute = 2.0;
  return c;
}

core::ExperimentConfig checkpointed_escat(ckpt::CkptBackend backend) {
  core::ExperimentConfig cfg = small_config(make_app("escat"));
  cfg.checkpoint.enabled = true;
  cfg.checkpoint.every = 2;
  cfg.checkpoint.state_bytes = 256 * 1024;
  cfg.checkpoint.chunk_bytes = 64 * 1024;
  cfg.checkpoint.backend = backend;
  return cfg;
}

/// Runs one experiment under the wall timer and records it as a gated
/// throughput scenario (events = kernel events).
bench::ScenarioRecord run_scenario(const std::string& name,
                                   const core::ExperimentConfig& cfg,
                                   core::ExperimentResult* out) {
  const bench::WallTimer timer;
  core::ExperimentResult result = core::run_experiment(cfg);
  bench::ScenarioRecord rec;
  rec.name = name;
  rec.events = static_cast<double>(result.kernel_events);
  rec.wall_ms = timer.elapsed_ms();
  rec.events_per_sec =
      rec.wall_ms > 0.0 ? rec.events / (rec.wall_ms / 1000.0) : 0.0;
  rec.sim_time = result.run_end - result.run_start;
  if (out != nullptr) *out = std::move(result);
  return rec;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::vector<bench::ScenarioRecord> scenarios;

  std::cout << "=== Fault injection: fault-free vs degraded RAID-3 vs ION "
               "failover (PPFS mounts) ===\n\n";
  std::printf("  %-6s %-10s | %9s %8s | %9s %8s %9s %10s\n", "app",
              "scenario", "run (s)", "slowdown", "degraded", "retries",
              "failover", "lost (B)");

  std::string csv =
      "app,scenario,run_s,slowdown,degraded_accesses,retries,failovers,"
      "dirty_bytes_lost\n";

  for (const char* app : {"escat", "render", "htf"}) {
    const core::ExperimentConfig base = small_config(make_app(app));
    core::ExperimentResult clean;
    bench::ScenarioRecord clean_rec =
        run_scenario(std::string(app) + "/fault-free", base, &clean);
    const double mid = (clean.run_start + clean.run_end) / 2.0;

    core::ExperimentConfig degraded = base;
    degraded.fault_plan.add({mid, fault::FaultKind::kDiskFail, 0, 1, 0.0});

    core::ExperimentConfig failover = base;
    failover.fault_plan.add({mid, fault::FaultKind::kIonCrash, 1, 0, 0.0});

    struct Scenario {
      const char* name;
      core::ExperimentResult result;
      bench::ScenarioRecord record;
    };
    core::ExperimentResult degraded_result;
    core::ExperimentResult failover_result;
    bench::ScenarioRecord degraded_rec = run_scenario(
        std::string(app) + "/degraded", degraded, &degraded_result);
    bench::ScenarioRecord failover_rec = run_scenario(
        std::string(app) + "/failover", failover, &failover_result);
    const double clean_s = clean.run_end - clean.run_start;

    Scenario runs[] = {
        {"fault-free", std::move(clean), std::move(clean_rec)},
        {"degraded", std::move(degraded_result), std::move(degraded_rec)},
        {"failover", std::move(failover_result), std::move(failover_rec)}};
    for (Scenario& s : runs) {
      const double run_s = s.result.run_end - s.result.run_start;
      const double slowdown = run_s / clean_s;
      std::printf("  %-6s %-10s | %9.1f %7.3fx | %9llu %8llu %9llu %10llu\n",
                  app, s.name, run_s, slowdown,
                  static_cast<unsigned long long>(
                      s.result.raid_faults.degraded_accesses),
                  static_cast<unsigned long long>(s.result.recovery.retries),
                  static_cast<unsigned long long>(s.result.recovery.failovers),
                  static_cast<unsigned long long>(
                      s.result.recovery.dirty_bytes_lost));
      csv += std::string(app) + "," + s.name + "," + std::to_string(run_s) +
             "," + std::to_string(slowdown) + "," +
             std::to_string(s.result.raid_faults.degraded_accesses) + "," +
             std::to_string(s.result.recovery.retries) + "," +
             std::to_string(s.result.recovery.failovers) + "," +
             std::to_string(s.result.recovery.dirty_bytes_lost) + "\n";
      s.record.params.emplace_back("run_s", run_s);
      s.record.params.emplace_back("slowdown", slowdown);
      s.record.params.emplace_back(
          "degraded_accesses",
          static_cast<double>(s.result.raid_faults.degraded_accesses));
      s.record.params.emplace_back(
          "retries", static_cast<double>(s.result.recovery.retries));
      s.record.params.emplace_back(
          "failovers", static_cast<double>(s.result.recovery.failovers));
      s.record.params.emplace_back(
          "dirty_bytes_lost",
          static_cast<double>(s.result.recovery.dirty_bytes_lost));
      scenarios.push_back(std::move(s.record));
    }
    std::cout << "\n";
  }

  // --- checkpoint overhead: absorber vs plain write-behind ------------------

  std::cout << "=== Checkpoints: host-side write absorber vs plain "
               "write-behind (ESCAT, every 2nd cycle) ===\n\n";
  std::printf("  %-13s %-10s | %9s %9s %8s | %7s %10s %10s\n", "backend",
              "scenario", "run (s)", "ckpt (s)", "overhead", "commits",
              "loss (s)", "lost (B)");
  csv += "backend,scenario,run_s,ckpt_s,overhead,commits,loss_window_s,"
         "dirty_bytes_lost\n";

  struct CkptVariant {
    const char* backend;
    ckpt::CkptBackend kind;
  };
  for (const CkptVariant& variant :
       {CkptVariant{"ckpt-absorber", ckpt::CkptBackend::kAbsorber},
        CkptVariant{"ckpt-plain", ckpt::CkptBackend::kWriteBehind}}) {
    const core::ExperimentConfig base = checkpointed_escat(variant.kind);
    core::ExperimentResult clean;
    bench::ScenarioRecord clean_rec = run_scenario(
        std::string(variant.backend) + "/fault-free", base, &clean);
    const double mid = (clean.run_start + clean.run_end) / 2.0;

    core::ExperimentConfig crash = base;
    crash.fault_plan.add({mid, fault::FaultKind::kIonCrash, 1, 0, 0.0});
    crash.fault_plan.add(
        {clean.run_end, fault::FaultKind::kIonRestart, 1, 0, 0.0});
    core::ExperimentResult crashed;
    bench::ScenarioRecord crash_rec = run_scenario(
        std::string(variant.backend) + "/ion-crash", crash, &crashed);

    struct Scenario {
      const char* name;
      core::ExperimentResult result;
      bench::ScenarioRecord record;
    };
    Scenario runs[] = {
        {"fault-free", std::move(clean), std::move(clean_rec)},
        {"ion-crash", std::move(crashed), std::move(crash_rec)}};
    for (Scenario& s : runs) {
      const double run_s = s.result.run_end - s.result.run_start;
      const ckpt::CheckpointStats& cs = s.result.checkpoint;
      // Checkpoint-to-useful-work overhead: simulated seconds spent inside
      // checkpoint epochs per second of everything else the run did.
      const double overhead =
          run_s > cs.checkpoint_time
              ? cs.checkpoint_time / (run_s - cs.checkpoint_time)
              : 0.0;
      std::printf(
          "  %-13s %-10s | %9.1f %9.4f %7.4fx | %7llu %10.2f %10llu\n",
          variant.backend, s.name, run_s, cs.checkpoint_time, overhead,
          static_cast<unsigned long long>(cs.epochs_committed),
          cs.data_loss_window,
          static_cast<unsigned long long>(s.result.absorber.dirty_bytes_lost));
      csv += std::string(variant.backend) + "," + s.name + "," +
             std::to_string(run_s) + "," + std::to_string(cs.checkpoint_time) +
             "," + std::to_string(overhead) + "," +
             std::to_string(cs.epochs_committed) + "," +
             std::to_string(cs.data_loss_window) + "," +
             std::to_string(s.result.absorber.dirty_bytes_lost) + "\n";
      s.record.params.emplace_back("run_s", run_s);
      s.record.params.emplace_back("ckpt_s", cs.checkpoint_time);
      s.record.params.emplace_back("ckpt_overhead", overhead);
      s.record.params.emplace_back(
          "commits", static_cast<double>(cs.epochs_committed));
      s.record.params.emplace_back("data_loss_window_s", cs.data_loss_window);
      s.record.params.emplace_back("last_commit_s", cs.last_commit_time);
      s.record.params.emplace_back(
          "absorber_acked_bytes",
          static_cast<double>(s.result.absorber.acked_bytes));
      s.record.params.emplace_back(
          "absorber_lost_bytes",
          static_cast<double>(s.result.absorber.dirty_bytes_lost));
      scenarios.push_back(std::move(s.record));
    }
    std::cout << "\n";
  }

  std::cout
      << "RAID-3 absorbs a single disk failure for the cost of the parity-"
         "reconstruction penalty on reads\n(writes are unaffected), while an "
         "ION crash costs one refusal round trip plus backoff per request\n"
         "before the stripe is re-routed to a surviving I/O node — the run "
         "completes either way, with no\ndirty data lost.  Checkpoints "
         "through the host-side absorber acknowledge at log-append speed,\n"
         "so their barrier-to-commit overhead stays low even while an ION is "
         "down — the background drain\nabsorbs the retries and failovers "
         "that the plain write-behind backend pays for inside the epoch.\n";

  bench::write_csv(opt, "faults.csv", csv);
  bench::write_scenarios_json(opt, "bench_faults", scenarios);
  return 0;
}
