// Graceful degradation under hardware faults (docs/FAULTS.md).
//
// Runs each paper application on a PPFS mount at a reduced scale under
// three scenarios — fault-free, degraded RAID (one drive of ION 0's array
// fails mid-run), and ION failover (ION 1 crashes mid-run and never
// returns) — and reports how the run time and the recovery machinery
// respond: degraded accesses, retries, failovers, and dirty data lost.
//
// The paper's Paragon put a five-disk RAID-3 array on every I/O node
// precisely so a single disk failure would not stop a run; this bench
// quantifies what that choice (plus PPFS client-side retry/failover) costs
// when the fault actually happens.
#include <cstdio>
#include <iostream>
#include <string>
#include <variant>

#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"

namespace {

using namespace paraio;

core::ExperimentConfig small_config(core::AppConfig app) {
  core::ExperimentConfig cfg;
  const bool render = std::holds_alternative<apps::RenderConfig>(app);
  cfg.machine = hw::MachineConfig::paragon_xps(render ? 9 : 8, 4);
  cfg.filesystem = core::FsChoice::ppfs();  // the fault-aware mount
  cfg.app = std::move(app);
  return cfg;
}

core::AppConfig make_app(const std::string& name) {
  if (name == "escat") {
    apps::EscatConfig c;
    c.nodes = 8;
    c.iterations = 6;
    c.seek_free_iterations = 2;
    c.first_cycle_compute = 5.0;
    c.last_cycle_compute = 2.0;
    c.energy_phase_compute = 3.0;
    return c;
  }
  if (name == "render") {
    apps::RenderConfig c;
    c.renderers = 8;
    c.frames = 5;
    c.large_reads_3mb = 8;
    c.large_reads_15mb = 16;
    c.header_reads = 4;
    c.frame_compute = 0.5;
    return c;
  }
  apps::HtfConfig c;
  c.nodes = 8;
  c.integral_writes_total = 40;
  c.scf_iterations = 2;
  c.scf_extra_large_reads = 3;
  c.integral_compute_per_record = 1.0;
  c.scf_compute_per_iteration = 5.0;
  c.setup_compute = 2.0;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);

  std::cout << "=== Fault injection: fault-free vs degraded RAID-3 vs ION "
               "failover (PPFS mounts) ===\n\n";
  std::printf("  %-6s %-10s | %9s %8s | %9s %8s %9s %10s\n", "app",
              "scenario", "run (s)", "slowdown", "degraded", "retries",
              "failover", "lost (B)");

  std::string csv =
      "app,scenario,run_s,slowdown,degraded_accesses,retries,failovers,"
      "dirty_bytes_lost\n";
  std::vector<std::pair<std::string, std::string>> json_params;
  const bench::WallTimer timer;

  for (const char* app : {"escat", "render", "htf"}) {
    const core::ExperimentConfig base = small_config(make_app(app));
    const core::ExperimentResult clean = core::run_experiment(base);
    const double mid = (clean.run_start + clean.run_end) / 2.0;

    core::ExperimentConfig degraded = base;
    degraded.fault_plan.add({mid, fault::FaultKind::kDiskFail, 0, 1, 0.0});

    core::ExperimentConfig failover = base;
    failover.fault_plan.add({mid, fault::FaultKind::kIonCrash, 1, 0, 0.0});

    struct Scenario {
      const char* name;
      core::ExperimentResult result;
    };
    for (const Scenario& s :
         {Scenario{"fault-free", clean},
          Scenario{"degraded", core::run_experiment(degraded)},
          Scenario{"failover", core::run_experiment(failover)}}) {
      const double run_s = s.result.run_end - s.result.run_start;
      const double slowdown =
          run_s / (clean.run_end - clean.run_start);
      std::printf("  %-6s %-10s | %9.1f %7.3fx | %9llu %8llu %9llu %10llu\n",
                  app, s.name, run_s, slowdown,
                  static_cast<unsigned long long>(
                      s.result.raid_faults.degraded_accesses),
                  static_cast<unsigned long long>(s.result.recovery.retries),
                  static_cast<unsigned long long>(s.result.recovery.failovers),
                  static_cast<unsigned long long>(
                      s.result.recovery.dirty_bytes_lost));
      csv += std::string(app) + "," + s.name + "," + std::to_string(run_s) +
             "," + std::to_string(slowdown) + "," +
             std::to_string(s.result.raid_faults.degraded_accesses) + "," +
             std::to_string(s.result.recovery.retries) + "," +
             std::to_string(s.result.recovery.failovers) + "," +
             std::to_string(s.result.recovery.dirty_bytes_lost) + "\n";
      const std::string key = std::string(app) + "." + s.name;
      json_params.emplace_back(key + ".run_s", std::to_string(run_s));
      json_params.emplace_back(
          key + ".retries", std::to_string(s.result.recovery.retries));
      json_params.emplace_back(
          key + ".failovers", std::to_string(s.result.recovery.failovers));
    }
    std::cout << "\n";
  }

  std::cout
      << "RAID-3 absorbs a single disk failure for the cost of the parity-"
         "reconstruction penalty on reads\n(writes are unaffected), while an "
         "ION crash costs one refusal round trip plus backoff per request\n"
         "before the stripe is re-routed to a surviving I/O node — the run "
         "completes either way, with no\ndirty data lost.\n";

  bench::write_csv(opt, "faults.csv", csv);
  bench::write_json(opt, {.name = "bench_faults",
                          .params = json_params,
                          .sim_time = 0.0,
                          .wall_ms = timer.elapsed_ms(),
                          .metrics = nullptr});
  return 0;
}
