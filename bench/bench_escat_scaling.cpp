// §5.2 extrapolation: "the complexity of the quadrature data volume grows
// as O(N^3) ... for current problems, with N ~ 10, computation dominates.
// Their research goal is N ~ 50, or two orders of magnitude more data.  In
// short, research practice and the behavior of this code would change
// dramatically were higher performance input/output possible."
//
// Sweeps the electron-scattering outcome count N: quadrature volume scales
// as (N/10)^3 with the per-cycle computation held at the N=10 calibration,
// and reports the I/O share of the run under PFS and under tuned PPFS.
// Expected shape: I/O negligible at N=10, dominant well before N=50 on
// PFS, and pushed out by roughly an order of magnitude by PPFS policies.
#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"

namespace {

using namespace paraio;

struct Point {
  double io_share;      // I/O node-time / (nodes * run time)
  double run_seconds;
};

Point run_point(int n_outcomes, bool tuned_ppfs) {
  core::ExperimentConfig cfg = core::escat_experiment();
  auto& app = std::get<apps::EscatConfig>(cfg.app);
  // Downscale the machine to keep the sweep fast; the ratio is what counts.
  app.nodes = 32;
  cfg.machine = hw::MachineConfig::paragon_xps(32, 16);
  // O(N^3) data growth: N^3 more quadrature records (the record itself —
  // one integral block — stays 2 KB), with the total computation held
  // fixed, so each compute/write cycle carries proportionally more I/O.
  const double scale = std::pow(n_outcomes / 10.0, 3.0);
  app.iterations = static_cast<std::uint32_t>(16 * scale);
  app.seek_free_iterations = 2;
  app.first_cycle_compute = 40.0 / scale;
  app.last_cycle_compute = 20.0 / scale;
  if (tuned_ppfs) {
    cfg.filesystem =
        core::FsChoice::ppfs(ppfs::PpfsParams::write_behind_aggregation());
  }
  const auto r = core::run_experiment(cfg);
  analysis::OperationTable t(r.trace);
  const double run = r.run_end - r.run_start;
  const double node_seconds = run * app.nodes;
  return Point{t.all().node_time / node_seconds, run};
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::cout << "=== ESCAT problem scaling (paper §5.2): quadrature volume "
               "grows O(N^3) ===\n\n";
  std::printf("  %4s | %22s | %22s\n", "N", "PFS I/O share / run(s)",
              "PPFS-tuned share / run(s)");
  std::string csv = "n_outcomes,pfs_io_share,pfs_run_s,ppfs_io_share,"
                    "ppfs_run_s\n";
  for (int n : {10, 16, 25, 40}) {
    const Point pfs = run_point(n, false);
    const Point ppfs = run_point(n, true);
    std::printf("  %4d | %12.1f%% %9.0f | %12.1f%% %9.0f\n", n,
                pfs.io_share * 100, pfs.run_seconds, ppfs.io_share * 100,
                ppfs.run_seconds);
    csv += std::to_string(n) + "," + std::to_string(pfs.io_share) + "," +
           std::to_string(pfs.run_seconds) + "," +
           std::to_string(ppfs.io_share) + "," +
           std::to_string(ppfs.run_seconds) + "\n";
  }
  std::cout << "\nshape check: computation dominates at N~10; on PFS the "
               "run is I/O-bound long before the\nchemists' N~50 goal, "
               "while tuned PPFS policies defer the wall — the paper's "
               "argument that\nbetter I/O systems would change research "
               "practice.\n";
  bench::write_csv(opt, "escat_scaling.csv", csv);
  return 0;
}
