// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <chrono>  // paraio-lint: allow(wall-clock)
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace paraio::bench {

struct Options {
  bool figures = false;       // render ASCII figures
  std::string csv_dir;        // write CSV series when non-empty
  std::string json_path;      // write a machine-readable record when non-empty
};

inline Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--figures") {
      opt.figures = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      opt.csv_dir = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      opt.json_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--figures] [--csv DIR] [--json PATH]\n"
                << "  --figures   render the paper's figures as ASCII plots\n"
                << "  --csv DIR   also write table/figure data as CSV\n"
                << "  --json PATH write a {name, params, sim_time, wall_ms, "
                   "metrics} record\n";
      std::exit(0);
    }
  }
  return opt;
}

inline void write_csv(const Options& opt, const std::string& name,
                      const std::string& contents) {
  if (opt.csv_dir.empty()) return;
  std::filesystem::create_directories(opt.csv_dir);
  std::ofstream out(opt.csv_dir + "/" + name);
  out << contents;
  std::cout << "  [csv] " << opt.csv_dir << "/" << name << "\n";
}

/// Wall-clock stopwatch for the --json record.  The simulator itself never
/// reads the host clock (paraio-lint enforces it); benches may, to report
/// how long reproducing a table took on the host.
class WallTimer {
 public:
  [[nodiscard]] double elapsed_ms() const {
    const auto end = std::chrono::steady_clock::now();  // paraio-lint: allow(wall-clock)
    return std::chrono::duration<double, std::milli>(end - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_ =  // paraio-lint: allow(wall-clock)
      std::chrono::steady_clock::now();  // paraio-lint: allow(wall-clock)
};

/// One machine-readable result per bench run:
///   {"name": ..., "params": {...}, "sim_time": s, "wall_ms": ms,
///    "metrics": {"counter name": v, ..., "gauge name": v, ...}}
struct JsonRecord {
  std::string name;
  std::vector<std::pair<std::string, std::string>> params;  // key -> value
  double sim_time = 0.0;       // simulated seconds (measured run)
  double wall_ms = 0.0;        // host milliseconds for the whole experiment
  const obs::Registry* metrics = nullptr;  // optional: counters + gauges
};

inline void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

/// One throughput scenario inside a multi-scenario bench (bench_micro_sim,
/// bench_production): how many kernel events (or data-structure items) were
/// processed, how long the host took, and how much simulated time was
/// covered (0 when the scenario has no simulation clock).  The JSON these
/// serialize into is the format tools/check_bench.py regression-gates
/// against; bump "schema" if a field changes meaning.
struct ScenarioRecord {
  std::string name;
  double events = 0.0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double sim_time = 0.0;
  /// Optional scenario-specific measurements (recovery counts, checkpoint
  /// overhead fractions, ...).  Serialized as a "params" object; the gate
  /// in tools/check_bench.py ignores fields it does not know, so adding
  /// entries here does not require a schema bump.
  std::vector<std::pair<std::string, double>> params;
};

inline void write_scenarios_json(const Options& opt,
                                 const std::string& bench_name,
                                 const std::vector<ScenarioRecord>& scenarios) {
  if (opt.json_path.empty()) return;
  std::string out = "{\n  \"name\": ";
  append_json_string(out, bench_name);
  out += ",\n  \"schema\": 1,\n  \"scenarios\": [";
  bool first = true;
  for (const ScenarioRecord& s : scenarios) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\": ";
    append_json_string(out, s.name);
    out += ", \"events\": " + obs::format_double(s.events);
    out += ", \"wall_ms\": " + obs::format_double(s.wall_ms);
    out += ", \"events_per_sec\": " + obs::format_double(s.events_per_sec);
    out += ", \"sim_time\": " + obs::format_double(s.sim_time);
    if (!s.params.empty()) {
      out += ", \"params\": {";
      bool first_param = true;
      for (const auto& [key, value] : s.params) {
        if (!first_param) out += ", ";
        first_param = false;
        append_json_string(out, key);
        out += ": " + obs::format_double(value);
      }
      out += "}";
    }
    out += "}";
  }
  out += first ? "]\n}\n" : "\n  ]\n}\n";
  std::ofstream file(opt.json_path);
  file << out;
  std::cout << "  [json] " << opt.json_path << "\n";
}

inline void write_json(const Options& opt, const JsonRecord& record) {
  if (opt.json_path.empty()) return;
  std::string out = "{\n  \"name\": ";
  append_json_string(out, record.name);
  out += ",\n  \"params\": {";
  bool first = true;
  for (const auto& [key, value] : record.params) {
    if (!first) out += ", ";
    first = false;
    append_json_string(out, key);
    out += ": ";
    append_json_string(out, value);
  }
  out += "},\n  \"sim_time\": " + obs::format_double(record.sim_time);
  out += ",\n  \"wall_ms\": " + obs::format_double(record.wall_ms);
  out += ",\n  \"metrics\": {";
  first = true;
  if (record.metrics != nullptr) {
    for (const auto& [name, counter] : record.metrics->counters()) {
      if (!first) out += ",";
      first = false;
      out += "\n    ";
      append_json_string(out, name);
      out += ": " + std::to_string(counter.value());
    }
    for (const auto& [name, gauge] : record.metrics->gauges()) {
      if (!first) out += ",";
      first = false;
      out += "\n    ";
      append_json_string(out, name);
      out += ": " + obs::format_double(gauge.value());
    }
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  std::ofstream file(opt.json_path);
  file << out;
  std::cout << "  [json] " << opt.json_path << "\n";
}

}  // namespace paraio::bench
