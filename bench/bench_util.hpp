// Shared helpers for the table/figure reproduction binaries.
#pragma once

#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>

namespace paraio::bench {

struct Options {
  bool figures = false;       // render ASCII figures
  std::string csv_dir;        // write CSV series when non-empty
};

inline Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--figures") {
      opt.figures = true;
    } else if (arg == "--csv" && i + 1 < argc) {
      opt.csv_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0] << " [--figures] [--csv DIR]\n"
                << "  --figures   render the paper's figures as ASCII plots\n"
                << "  --csv DIR   also write table/figure data as CSV\n";
      std::exit(0);
    }
  }
  return opt;
}

inline void write_csv(const Options& opt, const std::string& name,
                      const std::string& contents) {
  if (opt.csv_dir.empty()) return;
  std::filesystem::create_directories(opt.csv_dir);
  std::ofstream out(opt.csv_dir + "/" + name);
  out << contents;
  std::cout << "  [csv] " << opt.csv_dir << "/" << name << "\n";
}

}  // namespace paraio::bench
