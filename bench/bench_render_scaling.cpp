// §6.2 extrapolation: RENDER's output demands.  "Current images are output
// with a resolution of 640x512 with 24-bit color; with higher resolution
// data bases and higher output resolutions (3000x2000), corresponding
// increases in the computation and output are required ... the current
// system requires several seconds per frame, but higher frame rates (ten
// or as high as thirty) are desirable."
//
// Sweeps the output resolution and the output sink (per-frame disk files
// vs. the HiPPi frame buffer) and reports achieved frames/second.
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/experiment.hpp"

namespace {

using namespace paraio;

double frames_per_second(std::uint64_t frame_bytes, bool framebuffer,
                         double frame_compute) {
  core::ExperimentConfig cfg = core::render_experiment();
  auto& app = std::get<apps::RenderConfig>(cfg.app);
  app.renderers = 32;
  cfg.machine = hw::MachineConfig::paragon_xps(33, 16);
  app.frames = 24;
  app.large_reads_3mb = 16;
  app.large_reads_15mb = 32;
  app.frame_bytes = frame_bytes;
  app.to_framebuffer = framebuffer;
  app.frame_compute = frame_compute;
  const auto r = core::run_experiment(cfg);
  const double render_phase =
      r.run_end - r.phases.end_of("initialization");
  return app.frames / render_phase;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::cout << "=== RENDER output scaling (paper §6.2): resolution and sink "
               "vs. frame rate ===\n\n";

  struct Res {
    const char* name;
    std::uint64_t bytes;
  };
  const Res resolutions[] = {
      {"640x512x24", 640ULL * 512 * 3},
      {"1280x1024x24", 1280ULL * 1024 * 3},
      {"3000x2000x24", 3000ULL * 2000 * 3},
  };

  std::string csv = "resolution,compute_s,disk_fps,hippi_fps\n";
  std::printf("  %-14s %10s | %10s %10s\n", "resolution", "compute/s",
              "disk fps", "HiPPi fps");
  for (const Res& res : resolutions) {
    for (double compute : {2.0, 0.2}) {  // today's renderer vs a 10x one
      const double disk = frames_per_second(res.bytes, false, compute);
      const double hippi = frames_per_second(res.bytes, true, compute);
      std::printf("  %-14s %10.1f | %10.2f %10.2f\n", res.name, compute,
                  disk, hippi);
      csv += std::string(res.name) + "," + std::to_string(compute) + "," +
             std::to_string(disk) + "," + std::to_string(hippi) + "\n";
    }
  }
  std::cout << "\nshape check: at 640x512 the machine delivers 'several "
               "seconds per frame' limited by\ncomputation; with faster "
               "rendering the sink becomes the limit, HiPPi beats per-frame "
               "disk\nfiles, and the 10-30 fps goal at 3000x2000 exceeds "
               "both — the streaming-output problem\nthe paper flags as "
               "unaddressed.\n";
  bench::write_csv(opt, "render_scaling.csv", csv);
  return 0;
}
