// Production-scale runs — the configurations the paper describes but did
// not trace in full:
//
//  * ESCAT: "Production data sets generate similar behavior, but with ten
//    to twenty hour executions on 512 processors" (§5);
//  * RENDER: "Full production runs consist of 5000 or more frames and
//    execute for approximately thirty minutes", streaming to the HiPPi
//    frame buffer rather than to disk (§6).
//
// Checks that the calibrated models extrapolate into the stated envelopes
// with no re-tuning, and reports where the I/O time goes at scale.
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/tables.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace paraio;
  const bench::Options opt = bench::parse_args(argc, argv);
  std::string csv = "run,duration_s,io_node_time_s\n";
  std::vector<bench::ScenarioRecord> scenarios;

  {
    std::cout << "=== ESCAT production: 512 nodes, 5x quadrature data ===\n";
    core::ExperimentConfig cfg = core::escat_experiment();
    cfg.machine = hw::MachineConfig::paragon_xps(512, 16);
    auto& app = std::get<apps::EscatConfig>(cfg.app);
    app.nodes = 512;
    app.iterations = 260;  // production data set: ~5x the test set
    const bench::WallTimer timer;
    const auto r = core::run_experiment(cfg);
    bench::ScenarioRecord rec;
    rec.name = "escat_production_512n";
    rec.wall_ms = timer.elapsed_ms();
    rec.events = static_cast<double>(r.kernel_events);
    rec.events_per_sec = rec.events / (rec.wall_ms / 1000.0);
    rec.sim_time = r.run_end;
    scenarios.push_back(rec);
    const double hours = (r.run_end - r.run_start) / 3600.0;
    analysis::OperationTable t(r.trace);
    std::printf("  run time %.1f h (paper: 10-20 h);  I/O node time %.0f s; "
                "seek+write share %.1f%%\n\n",
                hours, t.all().node_time,
                t.row(pablo::Op::kSeek).pct_io_time +
                    t.row(pablo::Op::kWrite).pct_io_time);
    csv += "escat_production," + std::to_string(r.run_end - r.run_start) +
           "," + std::to_string(t.all().node_time) + "\n";
  }

  {
    std::cout << "=== RENDER production: 5000 frames to the HiPPi frame "
               "buffer ===\n";
    core::ExperimentConfig cfg = core::render_experiment();
    auto& app = std::get<apps::RenderConfig>(cfg.app);
    app.frames = 5000;
    app.to_framebuffer = true;
    app.frame_compute = 0.2;  // production-tuned renderer (30 min / 5000)
    const bench::WallTimer timer;
    const auto r = core::run_experiment(cfg);
    bench::ScenarioRecord rec;
    rec.name = "render_production_5000f";
    rec.wall_ms = timer.elapsed_ms();
    rec.events = static_cast<double>(r.kernel_events);
    rec.events_per_sec = rec.events / (rec.wall_ms / 1000.0);
    rec.sim_time = r.run_end;
    scenarios.push_back(rec);
    const double render_minutes =
        (r.run_end - r.phases.end_of("initialization")) / 60.0;
    const double fps =
        app.frames /
        (r.run_end - r.phases.end_of("initialization"));
    std::printf("  render phase %.1f min for 5000 frames (paper: ~30 min), "
                "%.1f frames/s\n",
                render_minutes, fps);
    analysis::OperationTable t(r.trace);
    std::printf("  file-system writes during rendering: %llu (all output "
                "streams to the frame buffer)\n\n",
                static_cast<unsigned long long>(
                    t.row(pablo::Op::kWrite).count));
    csv += "render_production," + std::to_string(r.run_end - r.run_start) +
           "," + std::to_string(t.all().node_time) + "\n";
  }

  std::cout << "the calibrations extrapolate: production envelopes are "
               "reached with no per-scale re-tuning.\n";
  bench::write_csv(opt, "production.csv", csv);
  bench::write_scenarios_json(opt, "production", scenarios);
  return 0;
}
