// Reproduces the RENDER characterization: Tables 3-4 and Figures 6-8.
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/tables.hpp"
#include "analysis/timeline.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace paraio;
  const bench::Options opt = bench::parse_args(argc, argv);

  std::cout << "=== RENDER (terrain rendering) on simulated Paragon XP/S, "
               "gateway + 128 renderers, 100 frames ===\n";
  obs::Registry registry;
  core::ExperimentConfig cfg = core::render_experiment();
  cfg.hooks.metrics = &registry;
  const bench::WallTimer timer;
  const core::ExperimentResult r = core::run_experiment(cfg);
  const double wall_ms = timer.elapsed_ms();
  const double duration = r.run_end - r.run_start;
  const double init = r.phases.end_of("initialization") - r.run_start;
  std::cout << "run time: " << duration << " s, initialization " << init
            << " s (paper: ~470 s total, init ends ~210 s)\n\n";
  bench::write_json(opt, {.name = "bench_render",
                          .params = {{"app", "render"},
                                     {"nodes", "129"},
                                     {"ions", "16"},
                                     {"fs", "pfs"}},
                          .sim_time = duration,
                          .wall_ms = wall_ms,
                          .metrics = &registry});

  analysis::OperationTable t3(r.trace);
  std::cout << analysis::to_text(
      t3, "Table 3: Number, size, and duration of I/O operations (RENDER)");
  std::cout << "  paper reference: Read 121/8,457B; AsynchRead "
               "436/880,849,125B/2.8%; I/O Wait 436/53.7%;\n"
               "                   Write 300/98,305,400B/19.3%; Seek 4; Open "
               "106/19.9%; Close 101/4.2%\n\n";

  analysis::SizeTable t4(r.trace);
  std::cout << analysis::to_text(t4, "Table 4: Read/write sizes (RENDER)");
  std::cout << "  paper reference: Read 121 / 0 / 0 / 436;  Write 200 / 0 / "
               "0 / 100\n\n";

  const double read_s = t3.row(pablo::Op::kIoWait).node_time +
                        t3.row(pablo::Op::kAsyncRead).node_time;
  std::cout << "effective gateway read throughput: "
            << static_cast<double>(t3.row(pablo::Op::kAsyncRead).bytes) /
                   read_s / 1e6
            << " MB/s (paper: ~9.5 MB/s)\n\n";

  bench::write_csv(opt, "render_table3.csv", analysis::to_csv(t3));
  bench::write_csv(opt, "render_table4.csv", analysis::to_csv(t4));

  const auto reads = analysis::timeline(r.trace, analysis::OpFamily::kReads);
  const auto writes = analysis::timeline(r.trace, analysis::OpFamily::kWrites);
  const auto files = analysis::file_access_map(r.trace);
  bench::write_csv(opt, "render_fig6_reads.csv", analysis::to_csv(reads));
  bench::write_csv(opt, "render_fig7_writes.csv", analysis::to_csv(writes));
  bench::write_csv(opt, "render_fig8_files.csv", analysis::to_csv(files));

  if (opt.figures) {
    analysis::PlotOptions po;
    po.log_y = true;
    po.title = "Figure 6: Read operation timeline (RENDER), size (bytes)";
    std::cout << analysis::ascii_plot(reads, po) << '\n';
    po.title = "Figure 7: Write operation timeline (RENDER), size (bytes)";
    std::cout << analysis::ascii_plot(writes, po) << '\n';
    analysis::PlotOptions fo;
    fo.title = "Figure 8: File access timeline (RENDER), file id; r/w marks";
    std::cout << analysis::ascii_plot(files, fo) << '\n';
  }
  return 0;
}
