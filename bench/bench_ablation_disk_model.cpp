// Design-decision ablation (DESIGN.md §2, decision 2): how sensitive are the
// headline characterization results to the disk service-time parameters?
//
// Sweeps the positioning cost (average seek) and the media rate and re-runs
// a reduced ESCAT experiment, reporting the seek+write share of I/O time and
// the Figure-4 cluster count.  The paper's qualitative findings should be —
// and are — robust to the disk model, because the dominant costs are file-
// system control-path serialization, not media time.
#include <cstdio>
#include <iostream>
#include <stdexcept>

#include "analysis/tables.hpp"
#include "analysis/timeline.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "hw/scheduler.hpp"
#include "sim/random.hpp"

int main(int argc, char** argv) {
  using namespace paraio;
  const bench::Options opt = bench::parse_args(argc, argv);

  std::cout << "=== Ablation: disk service-time model vs. ESCAT conclusions "
               "===\n\n";
  std::string csv = "avg_seek_ms,media_mb_s,seek_write_pct,write_clusters\n";

  std::printf("  %10s %10s | %16s %14s\n", "seek (ms)", "media MB/s",
              "seek+write %time", "write clusters");
  for (double seek_ms : {4.0, 12.0, 36.0}) {
    for (double media : {1.25e6, 2.5e6, 10e6}) {
      core::ExperimentConfig cfg = core::escat_experiment();
      cfg.machine.raid.disk.avg_seek = seek_ms * 1e-3;
      cfg.machine.raid.disk.media_rate = media;
      auto& app = std::get<apps::EscatConfig>(cfg.app);
      app.nodes = 32;
      app.iterations = 16;
      app.seek_free_iterations = 2;
      cfg.machine.compute_nodes = 32;
      const auto r = core::run_experiment(cfg);

      analysis::OperationTable t(r.trace);
      const double pct = t.row(pablo::Op::kSeek).pct_io_time +
                         t.row(pablo::Op::kWrite).pct_io_time;
      pablo::Trace quad;
      const double quad_end = r.phases.end_of("quadrature");
      for (const auto& e : r.trace.events()) {
        if (e.op == pablo::Op::kWrite && e.timestamp < quad_end) {
          quad.on_event(e);
        }
      }
      const auto clusters =
          analysis::bursts(quad, analysis::OpFamily::kWrites, 10.0);
      std::printf("  %10.1f %10.2f | %15.1f%% %14zu\n", seek_ms, media / 1e6,
                  pct, clusters.size());
      csv += std::to_string(seek_ms) + "," + std::to_string(media / 1e6) +
             "," + std::to_string(pct) + "," +
             std::to_string(clusters.size()) + "\n";
    }
  }
  std::cout << "\nacross a 9x parameter grid the seek+write dominance and "
               "the write-cluster structure persist:\nthe characterization "
               "is a property of the request stream and control path, not "
               "of disk details.\n\n";
  bench::write_csv(opt, "ablation_disk_model.csv", csv);

  // Second question (§3): how much can the device driver recover by disk-
  // arm scheduling once requests do reach the array?  Random backlogs under
  // FIFO vs SCAN (elevator) with the distance-dependent seek model.
  std::cout << "--- disk-arm scheduling: random backlog of 2 KB requests "
               "(distance-seek model) ---\n";
  std::string csv2 = "backlog,fifo_s,scan_s,speedup\n";
  for (int backlog : {8, 32, 128}) {
    auto run = [backlog](hw::DiskSchedPolicy policy) {
      sim::Engine engine;
      hw::Raid3Params params;
      params.disk.distance_seek = true;
      hw::Raid3Array array(engine, params);
      hw::ScheduledArray sched(engine, array, policy);
      sim::Rng rng(11);
      auto proc = [](hw::ScheduledArray& s, std::uint64_t off) -> sim::Task<> {
        const hw::DiskOutcome r = co_await s.access(off, 2048);
        if (r.failed) throw std::runtime_error("fault-free array refused");
      };
      for (int i = 0; i < backlog; ++i) {
        engine.spawn(proc(sched, rng.uniform_int(0, 10000) * 100'000));
      }
      return engine.run();
    };
    const double fifo = run(hw::DiskSchedPolicy::kFifo);
    const double scan = run(hw::DiskSchedPolicy::kScan);
    std::printf("  backlog %4d: FIFO %7.3f s  SCAN %7.3f s  (%.2fx)\n",
                backlog, fifo, scan, fifo / scan);
    csv2 += std::to_string(backlog) + "," + std::to_string(fifo) + "," +
            std::to_string(scan) + "," + std::to_string(fifo / scan) + "\n";
  }
  std::cout << "SCAN's gain grows with queue depth — worthwhile below the "
               "aggregation layer, but it cannot\nrecover the per-request "
               "software costs that dominate the applications' tables.\n";
  bench::write_csv(opt, "ablation_disk_sched.csv", csv2);
  return 0;
}
