// §6.2 study: RENDER's gateway read strategy.
//
// The developers explicitly prefetched with asynchronous reads and measured
// ~9.5 MB/s; synchronous reads were slower, and "parallel access using the
// M_UNIX mode was empirically determined not to improve code performance".
// This bench sweeps the gateway's read-ahead depth (0 = synchronous) and
// also measures the rejected alternative: all renderers reading the data
// set in parallel themselves.
#include <iostream>

#include "analysis/tables.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"
#include "sim/task_group.hpp"

namespace {

using namespace paraio;

double init_read_seconds(const core::ExperimentResult& r) {
  analysis::OperationTable t(r.trace, 0.0,
                             r.phases.end_of("initialization"));
  return t.row(pablo::Op::kIoWait).node_time +
         t.row(pablo::Op::kAsyncRead).node_time +
         t.row(pablo::Op::kRead).node_time;
}

/// The rejected design: every renderer reads its slice of the data set
/// directly (parallel M_UNIX access, no gateway mediation).
double parallel_read_seconds() {
  sim::Engine engine;
  hw::Machine machine(engine, hw::MachineConfig::paragon_xps(129, 16));
  pfs::Pfs fs(machine, core::render_pfs_params());
  apps::RenderConfig cfg;
  const std::uint64_t total = cfg.data_set_bytes();
  const std::uint64_t per_node = total / cfg.renderers;

  double start = 0.0, end = 0.0;
  auto driver = [&]() -> sim::Task<> {
    // Stage the data set.
    io::OpenOptions create;
    create.mode = io::AccessMode::kUnix;
    create.create = true;
    auto f = co_await fs.open(cfg.gateway_node(), "/render/all", create);
    co_await f->write(total);
    co_await f->close();

    start = engine.now();
    sim::TaskGroup group(engine);
    for (std::uint32_t node = 0; node < cfg.renderers; ++node) {
      auto reader = [](pfs::Pfs& p, io::NodeId n,
                       std::uint64_t offset, std::uint64_t len) -> sim::Task<> {
        io::OpenOptions ro;
        ro.mode = io::AccessMode::kUnix;
        auto h = co_await p.open(n, "/render/all", ro);
        co_await h->seek(offset);
        // Read in 1.5 MB requests like the gateway does.
        std::uint64_t remaining = len;
        while (remaining > 0) {
          const std::uint64_t chunk = std::min<std::uint64_t>(remaining,
                                                              1536 * 1024);
          (void)co_await h->read(chunk);
          remaining -= chunk;
        }
        co_await h->close();
      };
      group.spawn(reader(fs, node, node * per_node, per_node));
    }
    co_await group.join();
    end = engine.now();
  };
  engine.spawn(driver());
  engine.run();
  return end - start;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);

  std::cout << "=== RENDER gateway read strategy (paper §6.2) ===\n";
  std::cout << "data set: " << apps::RenderConfig{}.data_set_bytes() / 1e6
            << " MB in 4 files; paper measured ~9.5 MB/s with async "
               "prefetch\n\n";

  std::string csv = "strategy,read_seconds,throughput_mb_s\n";
  const double volume =
      static_cast<double>(apps::RenderConfig{}.data_set_bytes());

  for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
    core::ExperimentConfig cfg = core::render_experiment();
    auto& app = std::get<apps::RenderConfig>(cfg.app);
    app.read_ahead = depth;
    app.frames = 1;  // initialization is what we measure
    const auto r = core::run_experiment(cfg);
    const double secs = init_read_seconds(r);
    const double mbps = volume / secs / 1e6;
    std::cout << "  async read-ahead depth " << depth << ": " << secs
              << " s, " << mbps << " MB/s\n";
    csv += "read_ahead_" + std::to_string(depth) + "," +
           std::to_string(secs) + "," + std::to_string(mbps) + "\n";
  }

  const double par = parallel_read_seconds();
  std::cout << "  all-nodes parallel read:   " << par << " s, "
            << volume / par / 1e6 << " MB/s wall\n";
  csv += "parallel_all_nodes," + std::to_string(par) + "," +
         std::to_string(volume / par / 1e6) + "\n";
  std::cout << "\npaper: parallel M_UNIX access \"was empirically determined "
               "not to improve code performance\";\n"
               "the gateway remains the distribution bottleneck either "
               "way.\n";

  bench::write_csv(opt, "render_throughput.csv", csv);
  return 0;
}
