// Reproduces the ESCAT characterization: Tables 1-2 and Figures 2-5.
#include <iostream>

#include "analysis/report.hpp"
#include "analysis/tables.hpp"
#include "analysis/timeline.hpp"
#include "bench_util.hpp"
#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace paraio;
  const bench::Options opt = bench::parse_args(argc, argv);

  std::cout << "=== ESCAT (electron scattering) on simulated Paragon XP/S, "
               "128 nodes ===\n";
  obs::Registry registry;
  core::ExperimentConfig cfg = core::escat_experiment();
  cfg.hooks.metrics = &registry;
  const bench::WallTimer timer;
  const core::ExperimentResult r = core::run_experiment(cfg);
  const double wall_ms = timer.elapsed_ms();
  const double duration = r.run_end - r.run_start;
  std::cout << "run time: " << duration << " s (paper: ~6,000 s)\n\n";
  bench::write_json(opt, {.name = "bench_escat",
                          .params = {{"app", "escat"},
                                     {"nodes", "128"},
                                     {"ions", "16"},
                                     {"fs", "pfs"}},
                          .sim_time = duration,
                          .wall_ms = wall_ms,
                          .metrics = &registry});

  analysis::OperationTable t1(r.trace);
  std::cout << analysis::to_text(
      t1, "Table 1: Number, size, and duration of I/O operations (ESCAT)");
  std::cout << "  paper reference: All 26,418-26,448 ops, 60,983,136 B; "
               "Read 560/34.2MB/0.21%;\n"
               "                   Write 13,330/26.76MB/41.9%; Seek "
               "12,034/53.8%; Open 262/3.0%; Close 262/1.0%\n\n";

  analysis::SizeTable t2(r.trace);
  std::cout << analysis::to_text(t2, "Table 2: Read/write sizes (ESCAT)");
  std::cout << "  paper reference: Read 297 / 3 / 260 / 0;  Write 13,330 / 0 "
               "/ 0 / 0\n\n";

  bench::write_csv(opt, "escat_table1.csv", analysis::to_csv(t1));
  bench::write_csv(opt, "escat_table2.csv", analysis::to_csv(t2));

  // Figure 4 quantification: write-group spacing across the quadrature phase.
  {
    const double quad_end = r.phases.end_of("quadrature");
    pablo::Trace quad;
    for (const auto& e : r.trace.events()) {
      if (e.op == pablo::Op::kWrite && e.timestamp < quad_end) {
        quad.on_event(e);
      }
    }
    auto clusters = analysis::bursts(quad, analysis::OpFamily::kWrites, 30.0);
    auto gaps = analysis::burst_gaps(clusters);
    std::cout << "Figure 4 structure: " << clusters.size()
              << " write groups";
    if (!gaps.empty()) {
      std::cout << ", first gap " << gaps.front() << " s, last gap "
                << gaps.back() << " s, trend " << analysis::gap_trend(gaps)
                << " s/group (paper: ~160 s shrinking to ~80 s)";
    }
    std::cout << "\n\n";
  }

  const auto reads = analysis::timeline(r.trace, analysis::OpFamily::kReads);
  const auto writes = analysis::timeline(r.trace, analysis::OpFamily::kWrites);
  const auto files = analysis::file_access_map(r.trace);
  bench::write_csv(opt, "escat_fig2_reads.csv", analysis::to_csv(reads));
  bench::write_csv(opt, "escat_fig4_writes.csv", analysis::to_csv(writes));
  bench::write_csv(opt, "escat_fig5_files.csv", analysis::to_csv(files));

  if (opt.figures) {
    analysis::PlotOptions po;
    po.log_y = true;
    po.title = "Figure 2: Read operation timeline (ESCAT), size (bytes)";
    std::cout << analysis::ascii_plot(reads, po) << '\n';

    const double init_end = r.phases.end_of("initialization");
    po.title = "Figure 3: Read operation detail (ESCAT initial phase)";
    std::cout << analysis::ascii_plot(
                     analysis::timeline(r.trace, analysis::OpFamily::kReads,
                                        0.0, init_end + 1.0),
                     po)
              << '\n';

    po.title = "Figure 4: Write operation timeline (ESCAT), size (bytes)";
    std::cout << analysis::ascii_plot(writes, po) << '\n';

    analysis::PlotOptions fo;
    fo.title = "Figure 5: File access timeline (ESCAT), file id; r/w marks";
    std::cout << analysis::ascii_plot(files, fo) << '\n';
  }
  return 0;
}
