// Microbenchmarks of the data-structure substrate (google-benchmark):
// striping arithmetic and the PPFS bookkeeping structures.  These have no
// simulation clock, so they live apart from bench_micro_sim, whose
// events/sec numbers feed the tracked performance trajectory.
#include <benchmark/benchmark.h>

#include "pfs/stripe.hpp"
#include "ppfs/cache.hpp"
#include "ppfs/extent.hpp"
#include "sim/random.hpp"

namespace {

using namespace paraio;

void BM_StripeDecompose(benchmark::State& state) {
  pfs::StripeParams params;
  params.unit = 64 * 1024;
  params.io_nodes = 16;
  pfs::StripeMap map(params);
  sim::Rng rng(1);
  for (auto _ : state) {
    const auto offset = rng.uniform_int(0, 1u << 30);
    const auto segs = map.decompose(offset, 3 * 1024 * 1024);
    benchmark::DoNotOptimize(segs.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StripeDecompose);

void BM_ExtentSetSequentialInserts(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ppfs::ExtentSet set;
    for (int i = 0; i < n; ++i) {
      set.insert(static_cast<std::uint64_t>(i) * 2048, 2048);
    }
    benchmark::DoNotOptimize(set.total_bytes());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ExtentSetSequentialInserts)->Arg(1000);

void BM_BlockCacheLookups(benchmark::State& state) {
  ppfs::BlockCache cache(1024);
  for (std::uint64_t b = 0; b < 1024; ++b) cache.insert({1, b});
  sim::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.lookup({1, rng.uniform_int(0, 2047)}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockCacheLookups);

void BM_RngThroughput(benchmark::State& state) {
  sim::Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_u64());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RngThroughput);

}  // namespace

BENCHMARK_MAIN();
