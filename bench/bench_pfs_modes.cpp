// PFS access-mode comparison (§3.2, §5.2, §8): the same N-writers-one-file
// workload under each applicable access mode, plus the matched read-back
// pattern.  Quantifies why ESCAT chose M_UNIX + seeks over M_RECORD for
// writing (layout control for later contiguous reads) and what the
// shared-pointer modes cost — "either a richer set of file modes is needed,
// or the application must be redesigned".
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "hw/machine.hpp"
#include "pfs/pfs.hpp"
#include "sim/engine.hpp"
#include "sim/task_group.hpp"

namespace {

using namespace paraio;

constexpr std::uint32_t kNodes = 32;
constexpr std::uint32_t kRecordsPerNode = 16;
constexpr std::uint64_t kRecord = 2048;

struct Outcome {
  double write_seconds = 0;
  double read_seconds = 0;
};

/// Writes kRecordsPerNode records from every node under `mode`, then each
/// node reads back its own data.
Outcome run_mode(io::AccessMode mode) {
  sim::Engine engine;
  hw::Machine machine(engine, hw::MachineConfig::paragon_xps(kNodes, 16));
  pfs::Pfs fs(machine);
  Outcome out;

  auto driver = [&]() -> sim::Task<> {
    const double t0 = engine.now();
    sim::TaskGroup writers(engine);
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      auto writer = [](pfs::Pfs& p, sim::Engine& eng, io::AccessMode m,
                       std::uint32_t node) -> sim::Task<> {
        io::OpenOptions o;
        o.mode = m;
        o.create = true;
        o.parties = kNodes;
        o.rank = node;
        o.record_size = kRecord;
        auto f = co_await p.open(node, "/modes/shared", o);
        for (std::uint32_t r = 0; r < kRecordsPerNode; ++r) {
          co_await eng.delay(0.01);  // a sliver of compute
          if (m == io::AccessMode::kUnix || m == io::AccessMode::kAsync) {
            // Application-managed layout: contiguous per node (ESCAT's
            // choice, at the price of a seek RPC per record).
            co_await f->seek(node * kRecordsPerNode * kRecord + r * kRecord);
          }
          co_await f->write(kRecord);
        }
        co_await f->close();
      };
      writers.spawn(writer(fs, engine, mode, n));
    }
    co_await writers.join();
    out.write_seconds = engine.now() - t0;

    // Read-back: every node retrieves its own kRecordsPerNode records.
    const double t1 = engine.now();
    sim::TaskGroup readers(engine);
    for (std::uint32_t n = 0; n < kNodes; ++n) {
      auto reader = [](pfs::Pfs& p, io::AccessMode m,
                       std::uint32_t node) -> sim::Task<> {
        io::OpenOptions o;
        o.parties = kNodes;
        o.rank = node;
        if (m == io::AccessMode::kUnix || m == io::AccessMode::kAsync) {
          // Contiguous layout: one seek, one large read.
          o.mode = io::AccessMode::kUnix;
          auto f = co_await p.open(node, "/modes/shared", o);
          co_await f->seek(node * kRecordsPerNode * kRecord);
          (void)co_await f->read(kRecordsPerNode * kRecord);
          co_await f->close();
        } else {
          // Interleaved layout (groups of N records in node order): the
          // node's data is scattered — kRecordsPerNode record reads.
          o.mode = io::AccessMode::kRecord;
          o.record_size = kRecord;
          auto f = co_await p.open(node, "/modes/shared", o);
          for (std::uint32_t r = 0; r < kRecordsPerNode; ++r) {
            (void)co_await f->read(kRecord);
          }
          co_await f->close();
        }
      };
      readers.spawn(reader(fs, mode, n));
    }
    co_await readers.join();
    out.read_seconds = engine.now() - t1;
  };
  engine.spawn(driver());
  engine.run();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Options opt = bench::parse_args(argc, argv);
  std::cout << "=== PFS access modes: " << kNodes << " writers, "
            << kRecordsPerNode << " x " << kRecord
            << " B records each, then read-back of own data ===\n\n";

  struct Case {
    const char* name;
    io::AccessMode mode;
  };
  const Case cases[] = {
      {"M_UNIX (seek/write)", io::AccessMode::kUnix},
      {"M_LOG", io::AccessMode::kLog},
      {"M_SYNC", io::AccessMode::kSync},
      {"M_RECORD", io::AccessMode::kRecord},
      {"M_GLOBAL", io::AccessMode::kGlobal},
  };
  std::string csv = "mode,write_s,read_s\n";
  std::printf("  %-20s %12s %12s\n", "mode", "write (s)", "read-back (s)");
  for (const Case& c : cases) {
    const Outcome o = run_mode(c.mode);
    std::printf("  %-20s %12.2f %12.2f\n", c.name, o.write_seconds,
                o.read_seconds);
    csv += std::string(c.name) + "," + std::to_string(o.write_seconds) +
           "," + std::to_string(o.read_seconds) + "\n";
  }
  std::cout
      << "\nshape check (paper §5.2): M_RECORD is the cheapest way to write "
         "but scatters each node's\ndata into interleaved records, so the "
         "read-back needs many small accesses instead of one\nlarge one; "
         "M_UNIX pays a seek RPC per record to buy the contiguous layout.  "
         "ESCAT's\nquadrature files are written once and reread at every "
         "collision energy, so the authors\naccepted the write-side seek "
         "cost — and Table 1 shows how much it was.  \"Either a richer\nset "
         "of file modes is needed, or the application must be "
         "redesigned.\"\n";
  bench::write_csv(opt, "pfs_modes.csv", csv);
  return 0;
}
