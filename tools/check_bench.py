#!/usr/bin/env python3
"""Benchmark regression gate over the schema-1 bench JSON snapshots.

Compares a freshly measured bench JSON (written by a bench binary's --json
flag) against the committed baseline snapshot (BENCH_*.json at the repo
root) and fails when any scenario's events_per_sec dropped by more than the
threshold (default 20%).

    check_bench.py BASELINE CURRENT... [--threshold 0.20]

Several CURRENT files may be given — repeated runs of the same bench — and
each scenario is gated on the best of them.  This extends minimum-time
benchmarking across process invocations: the simulator is deterministic, so
a run only ever loses throughput to host interference, and a real
regression is the one thing all repetitions agree on.

Exit status 1 on a regression or a scenario that disappeared from the
current run.  Set PARAIO_BENCH_SOFT=1 to downgrade failures to warnings
(exit 0) — for machines whose throughput is not comparable to the one the
baseline was recorded on.  Improvements and new scenarios never fail; the
expected workflow is to re-record the snapshot when they are intentional
(see docs/PERF.md).
"""

import argparse
import json
import os
import sys


def load_scenarios(path):
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") != 1:
        sys.exit(f"{path}: unsupported bench schema {doc.get('schema')!r}")
    return {s["name"]: s for s in doc.get("scenarios", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed snapshot (BENCH_*.json)")
    parser.add_argument("current", nargs="+",
                        help="freshly measured bench JSON (several runs "
                             "allowed; each scenario gates on the best)")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="allowed fractional events_per_sec drop (default 0.20)",
    )
    args = parser.parse_args()

    base = load_scenarios(args.baseline)
    cur = {}
    for path in args.current:
        for name, s in load_scenarios(path).items():
            best = cur.get(name)
            if best is None or s["events_per_sec"] > best["events_per_sec"]:
                cur[name] = s
    soft = os.environ.get("PARAIO_BENCH_SOFT") == "1"

    width = max((len(n) for n in base), default=8)
    failures = []
    print(f"{'scenario':<{width}}  {'baseline':>12}  {'current':>12}  delta")
    for name, b in sorted(base.items()):
        c = cur.get(name)
        if c is None:
            failures.append(f"{name}: missing from current run")
            print(f"{name:<{width}}  {b['events_per_sec']:>12.0f}  "
                  f"{'MISSING':>12}  -")
            continue
        ratio = c["events_per_sec"] / b["events_per_sec"]
        marker = ""
        if ratio < 1.0 - args.threshold:
            failures.append(
                f"{name}: {b['events_per_sec']:.0f} -> "
                f"{c['events_per_sec']:.0f} events/sec "
                f"({(1.0 - ratio) * 100:.1f}% drop, limit "
                f"{args.threshold * 100:.0f}%)")
            marker = "  REGRESSION"
        print(f"{name:<{width}}  {b['events_per_sec']:>12.0f}  "
              f"{c['events_per_sec']:>12.0f}  {(ratio - 1.0) * 100:+6.1f}%"
              f"{marker}")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<{width}}  {'(new)':>12}  "
              f"{cur[name]['events_per_sec']:>12.0f}  -")

    if failures:
        label = "warning" if soft else "error"
        for f in failures:
            print(f"{label}: {f}", file=sys.stderr)
        if soft:
            print("PARAIO_BENCH_SOFT=1: regressions downgraded to warnings",
                  file=sys.stderr)
            return 0
        return 1
    print("bench check OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
