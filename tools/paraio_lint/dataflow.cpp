#include "paraio_lint/dataflow.hpp"

#include <algorithm>
#include <deque>

namespace paraio::lint {

std::vector<FactSet> solve_forward(
    const FunctionCfg& cfg,
    const std::function<FactSet(int, const FactSet&)>& transfer,
    DataflowStats* stats) {
  const std::size_t n = cfg.nodes.size();
  std::vector<FactSet> in(n), out(n);

  // Nodes are created in source order, which approximates reverse postorder
  // for the mostly-structured graphs the builder emits; seeding the
  // worklist in that order converges in one or two sweeps for loop-free
  // functions.
  std::deque<int> worklist;
  std::vector<char> queued(n, 1);
  for (std::size_t i = 0; i < n; ++i) worklist.push_back(static_cast<int>(i));

  // With a monotone transfer each node can be re-queued at most once per
  // fact added to its IN set, so visits are bounded by nodes * facts; the
  // cap only trips on a buggy (non-monotone) transfer.
  const std::size_t cap = 64 + n * n * 4 + n * 1024;
  std::size_t visits = 0;
  bool capped = false;

  while (!worklist.empty()) {
    if (++visits > cap) {
      capped = true;
      break;
    }
    const int idx = worklist.front();
    worklist.pop_front();
    queued[static_cast<std::size_t>(idx)] = 0;

    out[static_cast<std::size_t>(idx)] =
        transfer(idx, in[static_cast<std::size_t>(idx)]);

    for (int succ : cfg.nodes[static_cast<std::size_t>(idx)].succs) {
      const auto& from = out[static_cast<std::size_t>(idx)];
      FactSet& target = in[static_cast<std::size_t>(succ)];
      const std::size_t before = target.size();
      target.insert(from.begin(), from.end());
      if (target.size() != before && !queued[static_cast<std::size_t>(succ)]) {
        queued[static_cast<std::size_t>(succ)] = 1;
        worklist.push_back(succ);
      }
    }
  }

  if (stats) {
    stats->node_visits = visits;
    stats->capped = capped;
  }
  return in;
}

std::vector<FactSet> GenKill::solve(const FunctionCfg& cfg,
                                    DataflowStats* stats) const {
  return solve_forward(
      cfg,
      [this](int idx, const FactSet& in_set) {
        const auto i = static_cast<std::size_t>(idx);
        FactSet out_set;
        std::set_difference(in_set.begin(), in_set.end(), kill[i].begin(),
                            kill[i].end(),
                            std::inserter(out_set, out_set.end()));
        out_set.insert(gen[i].begin(), gen[i].end());
        return out_set;
      },
      stats);
}

}  // namespace paraio::lint
