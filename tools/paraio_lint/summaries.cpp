#include "paraio_lint/summaries.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <tuple>

#include "paraio_lint/dataflow.hpp"
#include "paraio_lint/taint_sources.hpp"
#include "paraio_lint/text.hpp"

namespace paraio::lint {

namespace {

using namespace paraio::lint::text;

constexpr std::size_t npos = std::string::npos;

// The summary fixpoint is monotone in every field except the net-lock
// subtraction, so a cap is belt-and-braces; hitting it just freezes the
// current (conservative-ish) values rather than failing the run.
constexpr std::size_t kSccIterationCap = 16;

/// `fn`'s body text, body-local offsets, nested function bodies blanked.
std::string masked_body(const FileAnalysis& file, const FunctionCfg& fn) {
  return masked_function_text(file.stripped, file.cfgs, fn);
}

struct LockSite {
  std::string name;      // receiver identifier (`mu_` in `mu_.lock()`)
  bool awaited = false;  // `co_await` earlier in the same sub-statement
};

/// Direct `recv.lock()` / `recv->lock()` / `recv.unlock()` sites in `body`.
void collect_lock_sites(const std::string& body, std::vector<LockSite>* acq,
                        std::vector<std::string>* rel) {
  for (std::string_view word : {"lock", "unlock"}) {
    for (const std::size_t pos : find_word(body, word)) {
      const std::size_t after = skip_spaces(body, pos + word.size());
      if (after >= body.size() || body[after] != '(') continue;
      if (pos == 0) continue;
      std::size_t recv_end = npos;
      if (body[pos - 1] == '.') {
        recv_end = pos - 1;
      } else if (pos >= 2 && body[pos - 2] == '-' && body[pos - 1] == '>') {
        recv_end = pos - 2;
      }
      if (recv_end == npos || recv_end == 0) continue;
      const std::size_t ident_last = prev_nonspace(body, recv_end);
      if (ident_last == npos || !is_ident(body[ident_last])) continue;
      const std::string name = read_ident_backward(body, ident_last);
      if (name.empty() || name == "this") continue;
      if (word == "unlock") {
        rel->push_back(name);
        continue;
      }
      LockSite site;
      site.name = name;
      const std::size_t stmt = body.find_last_of(";{}", pos);
      const std::size_t from = stmt == npos ? 0 : stmt + 1;
      site.awaited = body.substr(from, pos - from).find("co_await") != npos;
      acq->push_back(site);
    }
  }
}

struct Assign {
  std::string lhs;   // trailing identifier of the assigned expression
  std::string base;  // leading identifier (`cfg` in `cfg.budget = ...`)
  bool compound = false;  // += and friends: never kills
  std::size_t rhs_lo = 0;
  std::size_t rhs_hi = 0;
};

/// Leading identifier of an lvalue expression, skipping `*`, `(`, `&`.
std::string leading_ident(const std::string& expr) {
  std::size_t p = 0;
  while (p < expr.size() &&
         (expr[p] == ' ' || expr[p] == '\t' || expr[p] == '\n' ||
          expr[p] == '*' || expr[p] == '(' || expr[p] == '&')) {
    ++p;
  }
  if (p >= expr.size() || !is_ident_start(expr[p])) return "";
  return read_ident(expr, p);
}

/// Assignments in `body`, one fragment per ';'-delimited piece (for-headers
/// split into their clauses, which is harmless: each clause is scanned on
/// its own).
std::vector<Assign> collect_assigns(const std::string& body) {
  std::vector<Assign> assigns;
  std::size_t frag_lo = 0;
  for (std::size_t i = 0; i <= body.size(); ++i) {
    if (i < body.size() && body[i] != ';') continue;
    const std::size_t frag_hi = i;
    // First '=' at paren/bracket depth 0 that is not a comparison.
    int depth = 0;
    std::size_t eq = npos;
    for (std::size_t j = frag_lo; j < frag_hi; ++j) {
      const char c = body[j];
      if (c == '(' || c == '[') ++depth;
      if (c == ')' || c == ']') --depth;
      if (c != '=' || depth != 0) continue;
      if (j + 1 < frag_hi && body[j + 1] == '=') {
        ++j;
        continue;
      }
      if (j > frag_lo && (body[j - 1] == '=' || body[j - 1] == '!' ||
                          body[j - 1] == '<' || body[j - 1] == '>')) {
        continue;
      }
      eq = j;
      break;
    }
    frag_lo = i + 1;
    if (eq == npos) continue;
    Assign a;
    std::size_t lhs_hi = eq;
    if (eq > 0 && std::string("+-*/%&|^").find(body[eq - 1]) != npos) {
      a.compound = true;
      lhs_hi = eq - 1;
    }
    const std::size_t lo = body.find_last_of(";{}", eq) == npos
                               ? 0
                               : body.find_last_of(";{}", eq) + 1;
    const std::string lhs_text = body.substr(lo, lhs_hi - lo);
    a.lhs = trailing_ident(lhs_text);
    a.base = leading_ident(lhs_text);
    a.rhs_lo = eq + 1;
    a.rhs_hi = frag_hi;
    if (a.lhs.empty()) continue;
    assigns.push_back(std::move(a));
  }
  return assigns;
}

/// `return` / `co_return` expression ranges in `body`.
std::vector<std::pair<std::size_t, std::size_t>> collect_returns(
    const std::string& body) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::string_view word : {"return", "co_return"}) {
    for (const std::size_t pos : find_word(body, word)) {
      // `return` positions also match inside `co_return`; find_word already
      // rejects those via the identifier-boundary test.
      const std::size_t lo = pos + word.size();
      const std::size_t hi = body.find(';', lo);
      if (hi == npos || hi <= lo) continue;
      out.emplace_back(lo, hi);
    }
  }
  return out;
}

/// Everything about one function the fixpoint re-reads each iteration,
/// computed once.
struct FnLocal {
  const FunctionCfg* cfg = nullptr;
  const FileAnalysis* file = nullptr;
  std::string body;             // masked, body-local offsets
  std::vector<NodeCall> calls;  // over `body`
  std::vector<std::size_t> awaits;  // `co_await` positions in `body`
  bool has_co_yield = false;
  std::vector<LockSite> acquires;
  std::vector<std::string> releases;
  std::vector<Assign> assigns;
  std::vector<std::pair<std::size_t, std::size_t>> returns;
  std::map<std::string, int> ref_params;  // ref/ptr param name -> index
  std::set<int> direct_escapes;           // ref/ptr params read past a suspension
};

FnLocal analyze_fn(const FileAnalysis& file, const FunctionCfg& cfg) {
  FnLocal local;
  local.cfg = &cfg;
  local.file = &file;
  local.body = masked_body(file, cfg);
  local.calls = find_calls(local.body);
  local.awaits = find_word(local.body, "co_await");
  local.has_co_yield = !find_word(local.body, "co_yield").empty();
  collect_lock_sites(local.body, &local.acquires, &local.releases);
  local.assigns = collect_assigns(local.body);
  local.returns = collect_returns(local.body);
  for (std::size_t i = 0; i < cfg.params.size(); ++i) {
    const CfgParam& p = cfg.params[i];
    if ((p.is_reference || p.is_pointer) && !p.name.empty()) {
      local.ref_params.emplace(p.name, static_cast<int>(i));
    }
  }

  // Direct escape: a ref/ptr parameter read in a node reachable from a
  // suspension point of this function (same reachability the
  // suspension-lifetime check uses).
  if (!local.ref_params.empty() && cfg.nodes.size() > 2) {
    GenKill gk(cfg.nodes.size());
    bool any_suspend = false;
    for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
      if (cfg.nodes[n].suspends) {
        gk.gen[n].insert(static_cast<int>(n));
        any_suspend = true;
      }
    }
    if (any_suspend) {
      const std::vector<FactSet> in = gk.solve(cfg);
      for (std::size_t n = 0; n < cfg.nodes.size(); ++n) {
        if (in[n].empty() || cfg.nodes[n].hi <= cfg.nodes[n].lo) continue;
        const std::string node_text =
            masked_node_text(file.stripped, file.cfgs, cfg, cfg.nodes[n]);
        for (const auto& [name, idx] : local.ref_params) {
          if (!find_word(node_text, name).empty()) {
            local.direct_escapes.insert(idx);
          }
        }
      }
    }
  }
  return local;
}

bool same_summary(const FunctionSummary& a, const FunctionSummary& b) {
  return std::tie(a.havoc, a.coroutine, a.may_suspend, a.returns_tainted,
                  a.taint_label, a.tainted_out_params, a.escaping_params,
                  a.lock_acquire_params, a.lock_acquire_names,
                  a.lock_release_params, a.lock_release_names) ==
         std::tie(b.havoc, b.coroutine, b.may_suspend, b.returns_tainted,
                  b.taint_label, b.tainted_out_params, b.escaping_params,
                  b.lock_acquire_params, b.lock_acquire_names,
                  b.lock_release_params, b.lock_release_names);
}

/// One evaluation of `id`'s summary against the current summary table.
FunctionSummary evaluate(const CallGraph& graph,
                         const std::vector<FunctionSummary>& current,
                         const FnLocal& local) {
  const FunctionCfg& cfg = *local.cfg;
  FunctionSummary out;
  out.coroutine = cfg.is_coroutine;

  // --- may-suspend -------------------------------------------------------
  if (cfg.is_coroutine) {
    if (local.has_co_yield) out.may_suspend = true;
    for (const std::size_t pos : local.awaits) {
      if (out.may_suspend) break;
      if (awaited_expr_may_suspend(local.body, pos, graph, current)) {
        out.may_suspend = true;
      }
    }
  }

  // --- locks -------------------------------------------------------------
  std::set<std::string> acquired;
  std::set<std::string> released;
  for (const LockSite& site : local.acquires) {
    if (site.awaited) acquired.insert(site.name);
  }
  for (const std::string& name : local.releases) released.insert(name);
  for (const NodeCall& call : local.calls) {
    const FunctionSummary callee = summary_for_call(graph, current, call.name);
    if (callee.havoc) continue;
    // A coroutine callee only runs when awaited; a plain call to it just
    // materialises the task object.
    if (callee.coroutine && !call.awaited) continue;
    const auto map_arg = [&](int k) -> std::string {
      const auto uk = static_cast<std::size_t>(k);
      return uk < call.args.size() ? call.args[uk] : std::string();
    };
    for (const int k : callee.lock_acquire_params) {
      const std::string arg = map_arg(k);
      if (!arg.empty()) acquired.insert(arg);
    }
    for (const std::string& n : callee.lock_acquire_names) acquired.insert(n);
    for (const int k : callee.lock_release_params) {
      const std::string arg = map_arg(k);
      if (!arg.empty()) released.insert(arg);
    }
    for (const std::string& n : callee.lock_release_names) released.insert(n);
  }
  for (const std::string& name : acquired) {
    if (released.count(name) != 0) continue;
    const auto it = local.ref_params.find(name);
    if (it != local.ref_params.end()) {
      out.lock_acquire_params.insert(it->second);
    } else {
      out.lock_acquire_names.insert(name);
    }
  }
  for (const std::string& name : released) {
    if (acquired.count(name) != 0) continue;
    const auto it = local.ref_params.find(name);
    if (it != local.ref_params.end()) {
      out.lock_release_params.insert(it->second);
    } else {
      out.lock_release_names.insert(name);
    }
  }

  // --- taint -------------------------------------------------------------
  // Flow-insensitive fixpoint over the assigned-variable set.  No kill:
  // once a name has held tainted data inside this body, the summary treats
  // it as tainted, which keeps the fixpoint monotone.
  std::set<std::string> tainted;
  std::string label;
  const auto range_tainted = [&](std::size_t lo, std::size_t hi) {
    if (range_has_taint_source(local.body, lo, hi)) {
      if (label.empty()) label = taint_source_label(local.body, lo, hi);
      return true;
    }
    for (const std::string& t : tainted) {
      if (has_word_in(local.body, lo, hi, t)) return true;
    }
    for (const NodeCall& call : local.calls) {
      if (call.pos < lo || call.pos >= hi) continue;
      const FunctionSummary callee =
          summary_for_call(graph, current, call.name);
      if (callee.havoc || !callee.returns_tainted) continue;
      if (label.empty()) label = callee.taint_label;
      return true;
    }
    return false;
  };
  for (bool changed = true; changed;) {
    changed = false;
    for (const NodeCall& call : local.calls) {
      const FunctionSummary callee =
          summary_for_call(graph, current, call.name);
      if (callee.havoc) continue;
      for (const int k : callee.tainted_out_params) {
        const auto uk = static_cast<std::size_t>(k);
        if (uk >= call.args.size() || call.args[uk].empty()) continue;
        if (tainted.insert(call.args[uk]).second) {
          if (label.empty()) label = callee.taint_label;
          changed = true;
        }
      }
    }
    for (const Assign& a : local.assigns) {
      if (!range_tainted(a.rhs_lo, a.rhs_hi) &&
          !(a.compound && tainted.count(a.lhs) != 0)) {
        continue;
      }
      if (tainted.insert(a.lhs).second) changed = true;
      if (!a.base.empty() && a.base != a.lhs &&
          tainted.insert(a.base).second) {
        changed = true;
      }
    }
  }
  for (const auto& [lo, hi] : local.returns) {
    if (range_tainted(lo, hi)) {
      out.returns_tainted = true;
      break;
    }
  }
  for (const auto& [name, idx] : local.ref_params) {
    if (tainted.count(name) != 0) out.tainted_out_params.insert(idx);
  }
  if ((out.returns_tainted || !out.tainted_out_params.empty())) {
    out.taint_label = label.empty() ? "a nondeterministic source" : label;
  }

  // --- escape ------------------------------------------------------------
  out.escaping_params = local.direct_escapes;
  for (const NodeCall& call : local.calls) {
    const FunctionSummary callee = summary_for_call(graph, current, call.name);
    if (callee.havoc) continue;
    for (const int k : callee.escaping_params) {
      const auto uk = static_cast<std::size_t>(k);
      if (uk >= call.args.size() || call.args[uk].empty()) continue;
      const auto it = local.ref_params.find(call.args[uk]);
      if (it != local.ref_params.end()) {
        out.escaping_params.insert(it->second);
      }
    }
  }
  return out;
}

}  // namespace

FunctionSummary havoc_summary() {
  FunctionSummary s;
  s.havoc = true;
  s.may_suspend = true;  // see the header: the one pessimistic havoc field
  return s;
}

FunctionSummary summary_for_call(const CallGraph& graph,
                                 const std::vector<FunctionSummary>& summaries,
                                 const std::string& name) {
  const std::vector<int>* targets = graph.resolve(name);
  if (targets == nullptr || targets->empty()) return havoc_summary();
  FunctionSummary merged;
  merged.coroutine = true;
  for (const int t : *targets) {
    const FunctionSummary& s = summaries[static_cast<std::size_t>(t)];
    merged.coroutine = merged.coroutine && s.coroutine;
    merged.may_suspend = merged.may_suspend || s.may_suspend;
    if (s.returns_tainted && !merged.returns_tainted) {
      merged.returns_tainted = true;
      merged.taint_label = s.taint_label;
    }
    if (merged.taint_label.empty()) merged.taint_label = s.taint_label;
    merged.tainted_out_params.insert(s.tainted_out_params.begin(),
                                     s.tainted_out_params.end());
    merged.escaping_params.insert(s.escaping_params.begin(),
                                  s.escaping_params.end());
    merged.lock_acquire_params.insert(s.lock_acquire_params.begin(),
                                      s.lock_acquire_params.end());
    merged.lock_acquire_names.insert(s.lock_acquire_names.begin(),
                                     s.lock_acquire_names.end());
    merged.lock_release_params.insert(s.lock_release_params.begin(),
                                      s.lock_release_params.end());
    merged.lock_release_names.insert(s.lock_release_names.begin(),
                                     s.lock_release_names.end());
  }
  return merged;
}

bool awaited_expr_may_suspend(const std::string& text, std::size_t pos,
                              const CallGraph& graph,
                              const std::vector<FunctionSummary>& summaries) {
  std::size_t p = pos;
  if (text.compare(pos, 8, "co_await") == 0) p = pos + 8;
  p = skip_spaces(text, p);
  if (p >= text.size() || !is_ident_start(text[p])) {
    return true;  // awaiting a parenthesised/temporary expression: unknown
  }
  // Walk a qualified/member chain `a::b.c->d`; the last identifier is the
  // callee name when the chain ends in '('.
  std::string last;
  while (p < text.size() && is_ident_start(text[p])) {
    std::size_t end = p;
    last = read_ident(text, p, &end);
    p = end;
    if (text.compare(p, 2, "::") == 0) {
      p += 2;
    } else if (text.compare(p, 2, "->") == 0) {
      p += 2;
    } else if (p < text.size() && text[p] == '.') {
      p += 1;
    } else {
      break;
    }
  }
  if (p >= text.size() || text[p] != '(') {
    return true;  // awaiting a stored awaitable, not a call: unknown
  }
  const std::vector<int>* targets = graph.resolve(last);
  if (targets == nullptr || targets->empty()) return true;
  for (const int t : *targets) {
    const FunctionSummary& s = summaries[static_cast<std::size_t>(t)];
    // Awaiting a non-coroutine's return value means a hand-written
    // awaitable we cannot see through; assume it parks.
    if (!s.coroutine || s.may_suspend) return true;
  }
  return false;
}

std::vector<FunctionSummary> compute_summaries(
    const CallGraph& graph, const std::vector<FileAnalysis>& files,
    SummaryStats* stats) {
  std::vector<FunctionSummary> summaries(graph.fns.size());
  std::vector<FnLocal> locals;
  locals.reserve(graph.fns.size());
  for (const CallGraph::Fn& fn : graph.fns) {
    const FileAnalysis& file = files[fn.file];
    locals.push_back(analyze_fn(file, file.cfgs[fn.cfg]));
    summaries[locals.size() - 1].coroutine = locals.back().cfg->is_coroutine;
  }

  std::size_t max_iterations = 0;
  for (const std::vector<int>& scc : graph.sccs) {
    std::size_t iterations = 0;
    for (bool changed = true;
         changed && iterations < kSccIterationCap;) {
      changed = false;
      ++iterations;
      for (const int id : scc) {
        const auto uid = static_cast<std::size_t>(id);
        FunctionSummary next = evaluate(graph, summaries, locals[uid]);
        if (!same_summary(next, summaries[uid])) {
          summaries[uid] = std::move(next);
          changed = true;
        }
      }
    }
    max_iterations = std::max(max_iterations, iterations);
  }
  if (stats != nullptr) {
    stats->sccs = graph.sccs.size();
    stats->max_fixpoint_iterations = max_iterations;
  }
  return summaries;
}

// ---------------------------------------------------------------------------
// Cross-LP shared-state audit

namespace {

struct GlobalVar {
  std::size_t file = 0;
  std::string name;
  std::size_t pos = 0;  // of the name, in the stripped text
};

/// Namespace-scope mutable variable declarations in `stripped`.
/// Heuristic by design: statements at namespace/global brace depth that
/// declare a named object and are not const/constexpr/using/typedef/extern
/// or function/type declarations.  Array declarators and namespace-scope
/// brace initialisers are skipped rather than mis-parsed.
std::vector<GlobalVar> collect_globals(std::size_t file_index,
                                       const std::string& stripped) {
  std::vector<GlobalVar> globals;
  // Brace kinds: 'n' namespace, 'o' other (function/type/initialiser).
  std::vector<char> scopes;
  std::size_t stmt_lo = 0;
  const auto at_namespace_scope = [&]() {
    return std::all_of(scopes.begin(), scopes.end(),
                       [](char c) { return c == 'n'; });
  };
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    const char c = stripped[i];
    if (c == '{') {
      // Classify by the statement prefix: `namespace ... {` opens another
      // namespace scope, anything else (type, function, initialiser) hides
      // its contents from the global scan.
      const std::string head = stripped.substr(stmt_lo, i - stmt_lo);
      const bool is_ns = !find_word(head, "namespace").empty() &&
                         find_word(head, "enum").empty() &&
                         head.find('(') == npos && head.find('=') == npos;
      scopes.push_back(is_ns ? 'n' : 'o');
      stmt_lo = i + 1;
      continue;
    }
    if (c == '}') {
      if (!scopes.empty()) scopes.pop_back();
      stmt_lo = i + 1;
      continue;
    }
    if (c != ';') continue;
    const std::size_t lo = stmt_lo;
    const std::size_t hi = i;
    stmt_lo = i + 1;
    if (!at_namespace_scope()) continue;
    const std::string stmt = trim(stripped.substr(lo, hi - lo));
    if (stmt.empty() || stmt.find('#') != npos) continue;
    // Function declarations, member-function out-of-line definitions,
    // templates, type declarations, aliases, immutables: all skipped.
    static constexpr std::string_view kSkipWords[] = {
        "const",   "constexpr", "using",    "typedef", "extern",
        "template", "friend",    "operator", "struct",  "class",
        "enum",    "union",     "namespace", "static_assert", "return"};
    bool skip = false;
    for (const std::string_view w : kSkipWords) {
      if (has_word_in(stmt, 0, stmt.size(), w)) {
        skip = true;
        break;
      }
    }
    if (skip) continue;
    // A '(' before any '=' means a function declaration (or a constructor
    // call we cannot attribute); only keep plain `Type name;` and
    // `Type name = init;` shapes.
    const std::size_t eq = stmt.find('=');
    const std::size_t paren = stmt.find('(');
    if (paren != npos && (eq == npos || paren < eq)) continue;
    const std::string decl = eq == npos ? stmt : trim(stmt.substr(0, eq));
    if (decl.empty() || !is_ident(decl.back())) continue;  // arrays etc.
    const std::string name = trailing_ident(decl);
    if (name.empty() || name == decl) continue;  // need a type token before
    GlobalVar g;
    g.file = file_index;
    g.name = name;
    // Position of the declared name, made absolute: last word occurrence
    // of `name` within the raw (untrimmed) statement range.
    g.pos = lo;
    std::size_t scan = lo;
    while (scan < hi) {
      const std::size_t found = stripped.find(name, scan);
      if (found == npos || found >= hi) break;
      const bool left_ok = found == 0 || !is_ident(stripped[found - 1]);
      const std::size_t after = found + name.size();
      const bool right_ok = after >= hi || !is_ident(stripped[after]);
      if (left_ok && right_ok) g.pos = found;
      scan = after;
    }
    globals.push_back(std::move(g));
  }
  return globals;
}

struct Access {
  int fn = -1;
  std::size_t pos = 0;  // body-local
  bool write = false;
  bool mediated = false;
};

/// Whether the occurrence of `name` at `pos` in `body` is a write.
bool occurrence_is_write(const std::string& body, std::size_t pos,
                         const std::string& name) {
  const std::size_t after = skip_spaces(body, pos + name.size());
  if (after < body.size()) {
    const char c = body[after];
    if (c == '=' && (after + 1 >= body.size() || body[after + 1] != '=')) {
      return true;
    }
    if ((c == '+' || c == '-' || c == '*' || c == '/' || c == '%' ||
         c == '&' || c == '|' || c == '^') &&
        after + 1 < body.size() && body[after + 1] == '=') {
      return true;
    }
    if ((c == '+' && after + 1 < body.size() && body[after + 1] == '+') ||
        (c == '-' && after + 1 < body.size() && body[after + 1] == '-')) {
      return true;
    }
    if (c == '.' || (c == '-' && after + 1 < body.size() &&
                     body[after + 1] == '>')) {
      const std::size_t m = after + (c == '.' ? 1 : 2);
      std::size_t end = m;
      const std::string method = read_ident(body, m, &end);
      static constexpr std::string_view kMutators[] = {
          "push_back", "emplace_back", "push", "pop", "insert", "erase",
          "clear",     "resize",       "store", "fetch_add", "assign"};
      for (const std::string_view w : kMutators) {
        if (method == w) return true;
      }
    }
  }
  // Prefix ++/--.
  const std::size_t before = prev_nonspace(body, pos);
  if (before != npos && before > 0 &&
      ((body[before] == '+' && body[before - 1] == '+') ||
       (body[before] == '-' && body[before - 1] == '-'))) {
    return true;
  }
  return false;
}

/// Whether the sub-statement around `pos` routes through the event queue.
bool statement_is_mediated(const std::string& body, std::size_t pos) {
  const std::size_t stmt = body.find_last_of(";{}", pos);
  const std::size_t from = stmt == npos ? 0 : stmt + 1;
  std::size_t to = body.find(';', pos);
  if (to == npos) to = body.size();
  return has_word_in(body, from, to, "schedule") ||
         has_word_in(body, from, to, "schedule_at") ||
         body.substr(from, to - from).find(".send(") != npos;
}

}  // namespace

LpAudit cross_lp_audit(const CallGraph& graph,
                       const std::vector<FileAnalysis>& files,
                       const std::set<std::string>& entry_names) {
  LpAudit audit;

  std::vector<GlobalVar> globals;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    for (GlobalVar& g : collect_globals(fi, files[fi].stripped)) {
      globals.push_back(std::move(g));
    }
  }
  if (globals.empty()) {
    audit.report =
        "cross-LP shared-state audit: no namespace-scope mutable state\n";
    return audit;
  }

  // Entry-name reachability: for every function, the set of logical-process
  // entry points (by name) whose call trees include it.
  std::vector<std::set<std::string>> reaching(graph.fns.size());
  for (const std::string& entry : entry_names) {
    const std::vector<int>* roots = graph.resolve(entry);
    if (roots == nullptr) continue;
    std::vector<int> work(roots->begin(), roots->end());
    while (!work.empty()) {
      const int id = work.back();
      work.pop_back();
      const auto uid = static_cast<std::size_t>(id);
      if (!reaching[uid].insert(entry).second) continue;
      for (const int callee : graph.callees[uid]) work.push_back(callee);
    }
  }

  // Accesses per global, over every function body in the same project.
  struct GlobalReport {
    const GlobalVar* var = nullptr;
    std::set<std::string> entries;
    std::vector<Access> writes;  // unmediated only
    std::size_t reads = 0;
    std::size_t mediated_writes = 0;
  };
  std::vector<GlobalReport> reports;
  for (const GlobalVar& g : globals) {
    GlobalReport report;
    report.var = &g;
    for (std::size_t id = 0; id < graph.fns.size(); ++id) {
      const CallGraph::Fn& fn = graph.fns[id];
      if (fn.file != g.file) continue;  // name matching is per-file
      const FileAnalysis& file = files[fn.file];
      const FunctionCfg& cfg = file.cfgs[fn.cfg];
      const std::string body = masked_body(file, cfg);
      const std::vector<std::size_t> hits = find_word(body, g.name);
      if (hits.empty()) continue;
      report.entries.insert(reaching[id].begin(), reaching[id].end());
      for (const std::size_t pos : hits) {
        if (!occurrence_is_write(body, pos, g.name)) {
          ++report.reads;
          continue;
        }
        if (statement_is_mediated(body, pos)) {
          ++report.mediated_writes;
          continue;
        }
        Access a;
        a.fn = static_cast<int>(id);
        a.pos = pos;
        a.write = true;
        report.writes.push_back(a);
      }
    }
    if (report.entries.size() >= 2 && !report.writes.empty()) {
      reports.push_back(std::move(report));
    }
  }

  // Rank: most entry points first, then most unmediated writes.
  std::sort(reports.begin(), reports.end(),
            [](const GlobalReport& a, const GlobalReport& b) {
              if (a.entries.size() != b.entries.size()) {
                return a.entries.size() > b.entries.size();
              }
              if (a.writes.size() != b.writes.size()) {
                return a.writes.size() > b.writes.size();
              }
              return a.var->name < b.var->name;
            });

  std::ostringstream report;
  report << "cross-LP shared-state audit: " << reports.size()
         << " shared global(s) with unmediated writes\n";
  std::size_t rank = 0;
  for (const GlobalReport& r : reports) {
    const FileAnalysis& file = files[r.var->file];
    const std::vector<std::size_t> starts = line_starts(file.stripped);
    report << "  [" << ++rank << "] " << r.var->name << " (" << file.path
           << ":" << line_of(starts, r.var->pos) << ") — entries:";
    bool first = true;
    for (const std::string& e : r.entries) {
      report << (first ? " " : ", ") << e;
      first = false;
    }
    report << "; unmediated writes: " << r.writes.size()
           << "; mediated: " << r.mediated_writes << "; reads: " << r.reads
           << "\n";

    std::ostringstream entries_text;
    first = true;
    for (const std::string& e : r.entries) {
      entries_text << (first ? "" : ", ") << "'" << e << "'";
      first = false;
    }
    for (const Access& w : r.writes) {
      const CallGraph::Fn& fn = graph.fns[static_cast<std::size_t>(w.fn)];
      const FunctionCfg& cfg = files[fn.file].cfgs[fn.cfg];
      const std::size_t abs = cfg.body_lo + w.pos;
      LpWrite finding;
      finding.file = file.path;
      finding.line = line_of(starts, abs);
      finding.col = col_of(starts, abs);
      finding.message =
          "namespace-scope state '" + r.var->name +
          "' is written here without event-queue mediation but is "
          "reachable from " +
          std::to_string(r.entries.size()) +
          " logical-process entry points (" + entries_text.str() +
          "); shared mutable state across LPs blocks conservative "
          "parallel DES";
      audit.findings.push_back(std::move(finding));
    }
  }
  if (reports.empty()) {
    report.str("");
    report << "cross-LP shared-state audit: no multi-entry shared state "
              "with unmediated writes\n";
  }
  audit.report = report.str();
  return audit;
}

}  // namespace paraio::lint
