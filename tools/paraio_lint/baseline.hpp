// SARIF baseline support (`--baseline=path`).
//
// A baseline is a previously emitted SARIF log (`--sarif=`) checked into the
// tree.  Findings that match a baseline entry on (ruleId, file) are accepted
// — reported as externally suppressed rather than failing the run — so a
// new check can land before every pre-existing hit is fixed.  Matching is
// deliberately coarse (no line numbers): lines shift on every edit, and a
// baseline that rots with each refactor is worse than none.
//
// Stale entries cut the other way: a baseline entry that no current finding
// matches means the debt was paid off, and the run fails until the entry is
// deleted.  That keeps the file shrink-only.
#pragma once

#include <string>
#include <vector>

#include "paraio_lint/lint.hpp"

namespace paraio::lint {

struct BaselineEntry {
  std::string rule;  // SARIF ruleId
  std::string uri;   // SARIF artifactLocation.uri
};

/// Extracts (ruleId, uri) pairs from a SARIF log produced by to_sarif().
/// Tolerant token scan, not a full JSON parse: entries live in the
/// "results" array, each with "ruleId" preceding its "uri".
std::vector<BaselineEntry> parse_baseline(const std::string& sarif);

/// Marks every finding that matches a baseline entry (same rule, same file
/// modulo path-suffix slack, not already inline-suppressed) as `baselined`.
/// Returns the stale entries — those that matched nothing.
std::vector<BaselineEntry> apply_baseline(
    const std::vector<BaselineEntry>& entries, std::vector<Finding>* findings);

}  // namespace paraio::lint
