// Pass 3 of the linter, part two: bottom-up function summaries over the
// call graph's SCC condensation, plus the cross-LP shared-state audit.
//
// Each function body is abstracted once into a FunctionSummary the flow
// checks can consult at call sites:
//
//   * may_suspend      — the body can actually park the coroutine: it
//     co_yields, or co_awaits something that is not provably a
//     never-suspending coroutine (resolved, coroutine body, !may_suspend).
//   * net locks        — sim::Mutex acquisitions still held when the
//     function returns (and releases with no matching acquisition), by
//     parameter index or by member/global name, so `co_await grab(mu_)`
//     extends the caller's held set and `drop(mu_)` shrinks it.
//   * taint transfer   — the return value derives from a nondeterminism
//     source (directly or through callees), and by-reference parameters
//     the body writes tainted data into.
//   * escaping params  — reference/pointer parameters read on a path after
//     a suspension point of the callee (or handed further down a call
//     chain that does), so a detached coroutine passing its reference into
//     the callee dangles even though its own CFG shows no use-after-await.
//
// Summaries are computed over SCCs in bottom-up order with a fixpoint per
// SCC, so mutual recursion converges; each property starts optimistic
// (false/empty) and only grows.
//
// Unresolved call targets (std::, declared-but-undefined externs) get the
// *havoc* summary: no information.  Havoc is pessimistic where pessimism is
// cheap and checkable — an unknown awaitable is assumed to park, which is
// what keeps `co_await engine.delay(...)` counting as a real suspension —
// and deliberately empty everywhere else: claiming that every unknown
// callee leaks references, taints its return, or holds locks would flag
// essentially every call site in the tree, so those facts are only ever
// derived from bodies the linter has actually seen.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "paraio_lint/callgraph.hpp"

namespace paraio::lint {

struct FunctionSummary {
  bool havoc = false;      // unresolved target: no body to summarize
  bool coroutine = false;  // body contains co_await/co_yield/co_return
  bool may_suspend = false;

  bool returns_tainted = false;
  std::string taint_label;  // source description when returns_tainted
  std::set<int> tainted_out_params;  // by-ref params written tainted

  std::set<int> escaping_params;  // ref/ptr params read past a suspension

  // Net lock effect on return (see header comment).
  std::set<int> lock_acquire_params;
  std::set<std::string> lock_acquire_names;
  std::set<int> lock_release_params;
  std::set<std::string> lock_release_names;
};

struct SummaryStats {
  std::size_t sccs = 0;
  std::size_t max_fixpoint_iterations = 0;  // worst SCC, in passes
};

/// The no-information summary handed out for unresolved call targets.
FunctionSummary havoc_summary();

/// Summaries indexed like `graph.fns`, computed bottom-up over the SCCs.
std::vector<FunctionSummary> compute_summaries(
    const CallGraph& graph, const std::vector<FileAnalysis>& files,
    SummaryStats* stats = nullptr);

/// Merged summary for a call to `name`: the union over the overload set
/// (overload-set conservatism), or havoc when the name resolves to nothing.
FunctionSummary summary_for_call(const CallGraph& graph,
                                 const std::vector<FunctionSummary>& summaries,
                                 const std::string& name);

/// Whether the `co_await` at `pos` in `text` can actually park the
/// coroutine.  False only for an awaited call to a resolved function whose
/// every overload is a coroutine with may_suspend == false (e.g. a helper
/// that only co_returns): awaiting those completes synchronously, which is
/// what makes a `while (true) { co_await noop(); }` loop a livelock.
bool awaited_expr_may_suspend(const std::string& text, std::size_t pos,
                              const CallGraph& graph,
                              const std::vector<FunctionSummary>& summaries);

// ---------------------------------------------------------------------------
// Cross-LP shared-state audit (the parallel-DES-readiness report)

/// One unmediated write to shared state reachable from several
/// logical-process entry points.  Kept free of lint.hpp types so the
/// summary layer does not depend on the check catalog; lint.cpp adapts
/// these into catalog findings.
struct LpWrite {
  std::string file;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string message;
};

struct LpAudit {
  std::vector<LpWrite> findings;
  std::string report;  // ranked human-readable audit, one global per row
};

/// Audits namespace-scope mutable state against the logical-process entry
/// points (`entry_names`, the detached-spawn coroutines): a global written
/// without event-queue mediation (no schedule/send in the statement's
/// node) and reachable — through the call graph — from two or more
/// distinct entry points is a parallelization hazard.
LpAudit cross_lp_audit(const CallGraph& graph,
                       const std::vector<FileAnalysis>& files,
                       const std::set<std::string>& entry_names);

}  // namespace paraio::lint
