// Nondeterminism-source vocabulary shared by the determinism-taint flow
// check (flow_checks.cpp) and the function-summary pass (summaries.cpp):
// both must agree on what "tainted" means or a summary computed in pass 3
// would disagree with the caller-side check that consumes it in pass 4.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "paraio_lint/text.hpp"

namespace paraio::lint {

/// Whether [lo, hi) of `body` mentions a nondeterminism source: a wall-clock
/// read, libc randomness, or a pointer-identity cast.
inline bool range_has_taint_source(const std::string& body, std::size_t lo,
                                   std::size_t hi) {
  using text::has_word_in;
  using text::is_ident;
  using text::skip_spaces;
  static constexpr std::string_view kSources[] = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "random_device",
      "drand48",       "lrand48",       "mrand48",
      "uintptr_t",     "intptr_t",
  };
  for (std::string_view w : kSources) {
    if (has_word_in(body, lo, hi, w)) return true;
  }
  // `rand(` / `srand(` as calls.
  for (std::string_view w : {"rand", "srand"}) {
    std::size_t pos = lo;
    while (pos < hi &&
           (pos = body.find(w, pos)) != std::string::npos && pos < hi) {
      const bool left_ok = pos == 0 || !is_ident(body[pos - 1]);
      const std::size_t after = pos + w.size();
      if (left_ok && after < hi && skip_spaces(body, after) < hi &&
          body[skip_spaces(body, after)] == '(' &&
          (after >= body.size() || !is_ident(body[after]))) {
        return true;
      }
      pos = after;
    }
  }
  return false;
}

/// Human label for the first source found in [lo, hi).
inline const char* taint_source_label(const std::string& body, std::size_t lo,
                                      std::size_t hi) {
  using text::has_word_in;
  static constexpr std::string_view kClock[] = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime"};
  for (std::string_view w : kClock) {
    if (has_word_in(body, lo, hi, w)) return "wall-clock";
  }
  for (std::string_view w :
       {"random_device", "drand48", "lrand48", "mrand48", "rand", "srand"}) {
    if (has_word_in(body, lo, hi, w)) return "libc randomness";
  }
  if (has_word_in(body, lo, hi, "uintptr_t") ||
      has_word_in(body, lo, hi, "intptr_t")) {
    return "pointer identity";
  }
  return "a nondeterministic source";
}

}  // namespace paraio::lint
