// paraio-lint: project-specific static analysis for the paraio tree.
//
// A deliberately small, token/heuristic-based linter (no libclang): it knows
// nothing about C++ semantics beyond comment/string stripping, balanced
// template arguments, and line structure, but that is enough to catch the
// three bug classes that break the golden-trace guarantee:
//
//   * determinism hazards  — iteration over unordered containers in
//     trace-affecting code, wall-clock reads, raw libc randomness,
//     pointer-keyed ordered containers;
//   * coroutine-lifetime hazards — captures in coroutine lambdas, awaitables
//     constructed and dropped without co_await, discarded Task<T> results;
//   * layering violations — a lower simulator layer including a higher one,
//     or apps reaching past the hw::Machine facade into device internals.
//
// Findings print in compiler format (`file:line: error: [id] message`) and
// can be suppressed per line with `// paraio-lint: allow(<id>[,<id>...])`.
#pragma once

#include <cstddef>
#include <set>
#include <string>
#include <vector>

namespace paraio::lint {

enum class Severity { kWarning, kError };

/// One registered check.  Ids are stable and documented in docs/LINTING.md.
struct CheckInfo {
  const char* id;
  Severity severity;
  const char* summary;
};

/// Catalog of every check the linter knows, in reporting order.
const std::vector<CheckInfo>& checks();

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  const char* check = "";
  Severity severity = Severity::kError;
  std::string message;
  bool suppressed = false;
};

/// One source file loaded into memory.
struct SourceFile {
  std::string path;     // as given on the command line (used in findings)
  std::string content;  // raw bytes
};

/// Cross-file facts gathered in a first pass over the whole input set:
/// container variables declared unordered anywhere (so a member declared in
/// a header is recognized when its .cpp iterates it), and, per file, the
/// names of functions returning sim::Task<...> (checked against statements
/// in that file and its sibling .cpp/.hpp).
struct ProjectIndex {
  std::set<std::string> unordered_names;
  // file path -> Task-returning function/method names declared there
  std::vector<std::pair<std::string, std::set<std::string>>> task_fns;
};

struct Options {
  std::set<std::string> disabled;  // check ids turned off globally
};

/// Pass 1: build the cross-file index.
ProjectIndex index_project(const std::vector<SourceFile>& files);

/// Pass 2: lint one file.  Returns every finding, including suppressed ones
/// (callers count them separately).
std::vector<Finding> lint_file(const SourceFile& file,
                               const ProjectIndex& index,
                               const Options& options);

/// Replaces comments, string literals, and char literals with spaces while
/// preserving line structure.  Exposed for tests.
std::string strip_comments_and_strings(const std::string& source);

}  // namespace paraio::lint
