// paraio-lint: project-specific static analysis for the paraio tree.
//
// A deliberately small, token/heuristic-based linter (no libclang): it knows
// nothing about C++ semantics beyond comment/string stripping, balanced
// template arguments, and line structure, but that is enough to catch the
// bug classes that break the golden-trace guarantee:
//
//   * determinism hazards  — iteration over unordered containers in
//     trace-affecting code, wall-clock reads, raw libc randomness,
//     pointer-keyed ordered containers;
//   * coroutine-lifetime hazards — captures in coroutine lambdas, awaitables
//     constructed and dropped without co_await, discarded Task<T> results,
//     stack-local references escaping into detached coroutines;
//   * concurrency hazards — lock-acquisition order cycles across the whole
//     tree, a channel sent and received by the same task;
//   * layering violations — a lower simulator layer including a higher one,
//     or apps reaching past the hw::Machine facade into device internals.
//
// The linter runs in four passes.  Pass 1 (index_project) builds a
// whole-program symbol table: container variables declared unordered
// anywhere (including through `using`/`typedef` aliases), every function
// returning sim::Task<...> in any translation unit, channel declarations
// with their boundedness, the cross-file lock-acquisition graph, and the
// names of coroutines handed to detached spawns.  Pass 2 builds a
// per-function statement-level control-flow graph (cfg.hpp) and runs
// forward dataflow over it (dataflow.hpp).  Pass 3 builds a whole-program
// call graph over those CFGs (callgraph.hpp) and computes bottom-up
// function summaries over its SCC condensation (summaries.hpp) — may-
// suspend, net lock effect, taint transfer, parameter escape — plus the
// cross-LP shared-state audit.  Pass 4 (lint_file) applies the per-file
// checks — token-level and flow-sensitive, now summary-aware at call
// sites — against that global knowledge, so a Task<> coroutine declared
// in one file and discarded in another is still caught, a reference read
// after a co_await is only flagged when a suspension actually dominates
// it, and a lock handed to a suspending callee is still seen.
//
// Findings print in compiler format (`file:line:col: error: [id] message`)
// and can be suppressed per line with `// paraio-lint: allow(<id>[,<id>...])`.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "paraio_lint/callgraph.hpp"
#include "paraio_lint/summaries.hpp"

namespace paraio::lint {

enum class Severity { kWarning, kError };

/// Process exit codes, stable across releases (documented in LINTING.md):
/// clean (0), findings/doc-drift (1), usage or internal error (2).
enum ExitCode : int {
  kExitClean = 0,
  kExitFindings = 1,
  kExitInternalError = 2,
};

/// One registered check.  Ids are stable and documented in docs/LINTING.md
/// (the `--check-docs` gate keeps the two in sync).
struct CheckInfo {
  const char* id;
  Severity severity;
  const char* summary;
  const char* detail;  // multi-sentence rationale, shown by `--explain <id>`
};

/// Catalog of every check the linter knows, in reporting order.
const std::vector<CheckInfo>& checks();

/// Catalog of every CLI flag the driver (main.cpp) parses, without the
/// `=value` suffix.  `--check-docs` holds docs/LINTING.md to this list the
/// same way it holds it to the check catalog, so a renamed or removed flag
/// cannot leave stale documentation behind.
const std::vector<const char*>& cli_flags();

/// Catalog entry for `id`, or nullptr for an unknown id.
const CheckInfo* find_check(std::string_view id);

struct Finding {
  std::string file;
  std::size_t line = 0;  // 1-based
  std::size_t col = 0;   // 1-based; 0 when only the line is known
  const char* check = "";
  Severity severity = Severity::kError;
  std::string message;
  bool suppressed = false;  // inline `// paraio-lint: allow(...)`
  bool baselined = false;   // matched a `--baseline=` SARIF entry
};

/// One source file loaded into memory.
struct SourceFile {
  std::string path;     // as given on the command line (used in findings)
  std::string content;  // raw bytes
};

/// Cross-file facts gathered in a first pass over the whole input set.
struct ProjectIndex {
  /// Container variables (and type aliases, resolved to fixpoint) declared
  /// unordered anywhere, so a member declared in a header is recognized when
  /// its .cpp iterates it.
  std::set<std::string> unordered_names;

  /// Per file: Task-returning function/method names declared there (used
  /// with sibling-file visibility, where the match is precise).
  std::vector<std::pair<std::string, std::set<std::string>>> task_fns;
  /// Whole-program union of Task-returning names, minus names that some
  /// file also declares with a non-Task return type (those stay
  /// sibling-only: a global match on an ambiguous name like `run` would
  /// misfire on every class that has a non-coroutine `run()`).
  std::set<std::string> global_task_fns;

  /// Whole-program names of functions whose declared return type is (or
  /// wraps, as in sim::Task<io::IoOutcome>) an identifier ending in
  /// "Outcome" — the typed I/O error channel a call site must inspect.
  std::set<std::string> outcome_fns;

  /// Channel variables by declared boundedness (kUnbounded => unbounded).
  std::set<std::string> bounded_channels;
  std::set<std::string> unbounded_channels;

  /// Cross-file lock-acquisition graph: one edge per "acquired `to` while
  /// holding `from`" site, with the acquiring location.
  struct LockEdge {
    std::string from;
    std::string to;
    std::string file;
    std::size_t line = 0;
    std::size_t col = 0;
  };
  std::vector<LockEdge> lock_edges;

  /// Whole-program findings (currently lock-order cycles), computed once at
  /// index time and emitted by lint_file for the file they name.
  std::vector<Finding> global_findings;

  /// Names of coroutines handed to a *detached* spawn
  /// (`engine.spawn(name(...))` / `spawn_daemon(name(...))`) anywhere in
  /// the tree.  Their frames outlive the caller's stack, so the
  /// suspension-lifetime check treats their reference/pointer parameters
  /// as dangling once a suspension point has passed.
  std::set<std::string> detached_fns;

  /// Pass 3 artifacts: the whole-program call graph, one FunctionSummary
  /// per call-graph function (indexed like `call_graph.fns`), and the
  /// cross-LP shared-state audit report (findings are folded into
  /// `global_findings`; the ranked text lives here for `--lp-report`).
  CallGraph call_graph;
  std::vector<FunctionSummary> summaries;
  std::string lp_report;
};

struct Options {
  std::set<std::string> disabled;  // check ids turned off globally
};

/// Aggregate statistics for one lint run, accumulated across files by the
/// driver.  `dataflow_bailouts` must stay zero: a capped solve means a
/// non-monotone transfer function (a linter bug), and the driver reports it
/// as an internal error rather than shipping a silently-truncated analysis.
struct LintRunStats {
  std::size_t functions = 0;         // function CFGs built
  std::size_t dataflow_solves = 0;   // fixpoint solves run
  std::size_t dataflow_bailouts = 0; // solves stopped by the iteration cap
};

/// Whole-program analysis statistics for `--stats`: per-pass wall time and
/// the call-graph/summary shape.
struct AnalysisStats {
  double index_ms = 0.0;    // pass 1: symbol index
  double cfg_ms = 0.0;      // pass 2: CFG construction (all files)
  double summary_ms = 0.0;  // pass 3: call graph + summaries + LP audit
  std::size_t call_graph_fns = 0;
  std::size_t call_graph_edges = 0;
  std::size_t unresolved_calls = 0;
  std::size_t scc_count = 0;
  std::size_t max_fixpoint_iterations = 0;
};

/// Passes 1–3: build the cross-file index, the per-file CFGs, the call
/// graph, the function summaries, and the cross-LP audit.
ProjectIndex index_project(const std::vector<SourceFile>& files,
                           AnalysisStats* stats = nullptr);

/// Pass 4: lint one file (CFG construction, dataflow, checks).
/// Returns every finding, including suppressed ones (callers count them
/// separately).  `stats`, when given, accumulates across calls.
std::vector<Finding> lint_file(const SourceFile& file,
                               const ProjectIndex& index,
                               const Options& options,
                               LintRunStats* stats = nullptr);

/// Collapses findings that share (check, file, line, col) — a header
/// linted through several translation units reports once.  Keeps the
/// first of each group (input order otherwise preserved); a suppressed or
/// baselined duplicate never shadows an active finding.
void dedupe_findings(std::vector<Finding>* findings);

/// The `--check-docs` two-way gate against an already-loaded document:
/// every catalog id must appear in `doc` as `` `id` `` and every
/// backticked token that looks like a check id must be in the catalog.
/// The CLI flag list (cli_flags()) is held to the same two-way contract.
/// Returns kExitClean or kExitFindings; drift details go to `err`.
int check_docs_text(const std::string& doc, const std::string& doc_name,
                    std::ostream& err);

/// Replaces comments, string literals, and char literals with spaces while
/// preserving line structure.  Exposed for tests.
std::string strip_comments_and_strings(const std::string& source);

}  // namespace paraio::lint
