// Pass 3 of the linter, part one: a whole-program call graph over the
// per-file CFGs (cfg.hpp).
//
// Calls are discovered by scanning each function's masked node text for
// `ident(` shapes and resolved purely by name against every function body
// in the input set, with overload-set conservatism: a name that matches
// several definitions gets an edge to each of them, and the consumers merge
// their summaries (union).  Method calls resolve by their unqualified name
// (the CFG builder records `Foo::bar` definitions as "bar"), and a lambda
// bound to a name (`auto relay = [&] ... ;`) is registered under that name
// so `relay()` resolves to the lambda's body.  A call whose name matches no
// body in the input set — std:: entry points, declared-but-undefined
// externs — is *unresolved*; the summary pass hands those a havoc summary.
//
// The graph is condensed into strongly connected components (iterative
// Tarjan) emitted bottom-up (callees before callers), which is the order
// the summary fixpoint wants: each SCC sees final summaries for everything
// it calls, and mutual recursion is handled by iterating inside the SCC.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "paraio_lint/cfg.hpp"

namespace paraio::lint {

/// Pass-2 artifacts for one file, the unit the whole-program passes
/// consume: the stripped text plus every function CFG built over it.
struct FileAnalysis {
  std::string path;
  std::string stripped;
  std::vector<FunctionCfg> cfgs;
};

/// One syntactic call site within a node's masked text (offsets node-local).
struct NodeCall {
  std::string name;        // callee's trailing identifier
  std::size_t pos = 0;     // offset of the callee identifier
  bool awaited = false;    // `co_await` earlier in the same sub-statement
  bool has_receiver = false;  // `expr.name(` / `expr->name(`
  std::vector<std::string> args;           // trailing ident per argument
  std::vector<std::size_t> arg_pos;        // offset of that ident ("" -> 0)
};

/// All call sites in `text` (a masked node or body excerpt), in order.
std::vector<NodeCall> find_calls(const std::string& text);

struct CallGraph {
  struct Fn {
    std::size_t file = 0;  // index into the FileAnalysis vector
    std::size_t cfg = 0;   // index into files[file].cfgs
    std::string name;      // unqualified; bound name for named lambdas
  };

  std::vector<Fn> fns;
  /// Overload sets: every fn id sharing a name.  Names absent here are
  /// unresolved externals.
  std::map<std::string, std::vector<int>> by_name;
  /// Resolved callee fn ids per caller, deduplicated.
  std::vector<std::vector<int>> callees;
  /// SCCs in bottom-up order: every SCC appears after the SCCs it calls
  /// into (mutual recursion shares one component).
  std::vector<std::vector<int>> sccs;

  std::size_t edge_count = 0;        // resolved call edges (deduplicated)
  std::size_t unresolved_calls = 0;  // call sites matching no known body

  /// Overload set for `name`, or nullptr when the name resolves to no
  /// function body in the input set.
  const std::vector<int>* resolve(const std::string& name) const {
    const auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : &it->second;
  }
};

CallGraph build_call_graph(const std::vector<FileAnalysis>& files);

}  // namespace paraio::lint
