#include "paraio_lint/cfg.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "paraio_lint/text.hpp"

namespace paraio::lint {

namespace {

using namespace paraio::lint::text;

constexpr std::size_t npos = std::string::npos;

bool is_specifier(std::string_view w) {
  return w == "const" || w == "noexcept" || w == "override" || w == "final" ||
         w == "mutable";
}

bool is_control_head(std::string_view w) {
  return w == "if" || w == "while" || w == "for" || w == "switch" ||
         w == "catch" || w == "constexpr";
}

/// Words that can precede '{' but never open a function body.
bool is_block_keyword(std::string_view w) {
  return w == "else" || w == "do" || w == "try" || w == "struct" ||
         w == "class" || w == "union" || w == "enum" || w == "namespace" ||
         w == "return" || w == "co_return" || w == "co_yield" ||
         w == "co_await" || w == "new" || w == "delete" || w == "extern" ||
         w == "public" || w == "private" || w == "protected" ||
         w == "default" || w == "case" || w == "throw" || w == "operator" ||
         w == "requires" || w == "export";
}

struct Shape {
  std::string name;
  bool is_lambda = false;
  std::string captures;
  std::size_t header_lo = 0;
  std::size_t params_lo = 0;  // '(' of the parameter list (== params_hi when
  std::size_t params_hi = 0;  // the lambda has no parameter list)
  std::size_t body_lo = 0;
  std::size_t body_hi = 0;
};

/// Walk backward from a type token at [q_begin, ...) through a trailing
/// return type (`-> sim::Task<io::IoOutcome>&`), looking for the "->".
/// Returns the position just before the '-' on success, npos on failure.
std::size_t consume_trailing_return(const std::string& s,
                                    std::size_t q_begin) {
  std::size_t q = q_begin;  // first char of the rightmost consumed token
  for (int guard = 0; guard < 64; ++guard) {
    const std::size_t r = prev_nonspace(s, q);
    if (r == npos) return npos;
    const char c = s[r];
    if (c == '>' && r > 0 && s[r - 1] == '-') {
      return r - 1;  // found the arrow
    }
    if (c == ':' && r > 0 && s[r - 1] == ':') {
      const std::size_t r2 = prev_nonspace(s, r - 1);
      if (r2 == npos || !is_ident(s[r2])) return npos;
      std::size_t b = 0;
      read_ident_backward(s, r2, &b);
      q = b;
      continue;
    }
    if (c == '>') {  // template argument list, backward
      const std::size_t open = rskip_balanced(s, r, '<', '>');
      if (open == npos) return npos;
      q = open;
      continue;
    }
    if (c == '&' || c == '*') {
      q = r;
      continue;
    }
    if (is_ident(c)) {
      std::size_t b = 0;
      const std::string w = read_ident_backward(s, r, &b);
      if (is_block_keyword(w) || is_control_head(w)) return npos;
      q = b;
      continue;
    }
    return npos;  // ';', '{', '(' ... — not inside a trailing return type
  }
  return npos;
}

/// Classifies the '{' at `brace`.  Walks backward through specifiers,
/// trailing return types, and constructor member-initializer lists to the
/// parameter list (or lambda introducer).
bool classify_brace(const std::string& s, std::size_t brace, Shape* out) {
  std::size_t p = prev_nonspace(s, brace);
  for (int guard = 0; guard < 256; ++guard) {
    if (p == npos) return false;
    const char c = s[p];
    if (is_ident(c)) {
      std::size_t b = 0;
      const std::string w = read_ident_backward(s, p, &b);
      if (is_specifier(w)) {
        p = prev_nonspace(s, b);
        continue;
      }
      if (is_block_keyword(w) || is_control_head(w)) return false;
      // Possibly the tail of a trailing return type.
      const std::size_t before_arrow = consume_trailing_return(s, b);
      if (before_arrow == npos) return false;
      p = before_arrow == 0 ? npos : prev_nonspace(s, before_arrow);
      continue;
    }
    if (c == '>') {
      // `-> T` where T's last char is '>': part of a trailing return.
      const std::size_t open = rskip_balanced(s, p, '<', '>');
      if (open == npos) return false;
      const std::size_t before_arrow = consume_trailing_return(s, open);
      if (before_arrow == npos) return false;
      p = before_arrow == 0 ? npos : prev_nonspace(s, before_arrow);
      continue;
    }
    if (c == '}') {
      // Braced member initializer `m_{x}` in a ctor init list.
      const std::size_t open = rskip_balanced(s, p, '{', '}');
      if (open == npos) return false;
      const std::size_t name_end = prev_nonspace(s, open);
      if (name_end == npos || !is_ident(s[name_end])) return false;
      std::size_t b = 0;
      read_ident_backward(s, name_end, &b);
      const std::size_t prior = prev_nonspace(s, b);
      if (prior == npos) return false;
      if (s[prior] == ',' ||
          (s[prior] == ':' && !(prior > 0 && s[prior - 1] == ':'))) {
        p = prev_nonspace(s, prior);
        continue;
      }
      return false;
    }
    if (c == ')') {
      const std::size_t open = rskip_balanced(s, p, '(', ')');
      if (open == npos) return false;
      const std::size_t before = prev_nonspace(s, open);
      if (before == npos) return false;
      if (s[before] == ']') {
        // Lambda: `[caps](params) ... {`.
        const std::size_t lb = rskip_balanced(s, before, '[', ']');
        if (lb == npos) return false;
        const std::size_t intro = prev_nonspace(s, lb);
        if (intro != npos &&
            (is_ident(s[intro]) || s[intro] == ')' || s[intro] == ']')) {
          return false;  // subscript, not a lambda introducer
        }
        out->is_lambda = true;
        out->captures = trim(s.substr(lb + 1, before - lb - 1));
        out->header_lo = lb;
        out->params_lo = open;
        out->params_hi = p;
        return true;
      }
      if (!is_ident(s[before])) return false;
      std::size_t b = 0;
      const std::string w = read_ident_backward(s, before, &b);
      if (is_control_head(w) || is_block_keyword(w)) return false;
      const std::size_t prior = prev_nonspace(s, b);
      // Member-initializer segment `name(args)` preceded by ',' or ':'.
      if (prior != npos &&
          (s[prior] == ',' ||
           (s[prior] == ':' && !(prior > 0 && s[prior - 1] == ':')))) {
        p = prev_nonspace(s, prior);
        continue;
      }
      out->name = w;
      out->header_lo = b;
      out->params_lo = open;
      out->params_hi = p;
      return true;
    }
    if (c == ']') {
      // Lambda without a parameter list: `[caps] {`.
      const std::size_t lb = rskip_balanced(s, p, '[', ']');
      if (lb == npos) return false;
      const std::size_t intro = prev_nonspace(s, lb);
      if (intro != npos &&
          (is_ident(s[intro]) || s[intro] == ')' || s[intro] == ']')) {
        return false;
      }
      out->is_lambda = true;
      out->captures = trim(s.substr(lb + 1, p - lb - 1));
      out->header_lo = lb;
      out->params_lo = out->params_hi = p;  // empty parameter list
      return true;
    }
    return false;
  }
  return false;
}

void parse_params(const std::string& s, std::size_t lo, std::size_t hi,
                  std::vector<CfgParam>* out) {
  if (lo >= hi) return;
  // Split [lo, hi) (inside the parens) on depth-0 commas.
  std::vector<std::pair<std::size_t, std::size_t>> parts;
  std::size_t begin = lo;
  int depth = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    const char c = s[i];
    if (c == '<' || c == '(' || c == '[' || c == '{') ++depth;
    if (c == '>' || c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      parts.emplace_back(begin, i);
      begin = i + 1;
    }
  }
  parts.emplace_back(begin, hi);
  for (const auto& [plo, phi] : parts) {
    CfgParam param;
    int d = 0;
    std::size_t name_begin = npos, name_end = npos;
    std::size_t tokens = 0;
    for (std::size_t i = plo; i < phi; ++i) {
      const char c = s[i];
      if (c == '<' || c == '(' || c == '[' || c == '{') ++d;
      if (c == '>' || c == ')' || c == ']' || c == '}') --d;
      if (d != 0) continue;
      if (c == '=') break;  // default argument
      if (c == '&') param.is_reference = true;
      if (c == '*') param.is_pointer = true;
      if (is_ident_start(c) && (i == plo || !is_ident(s[i - 1]))) {
        std::size_t e = i;
        read_ident(s, i, &e);
        name_begin = i;
        name_end = e;
        ++tokens;
        i = e - 1;
      }
    }
    // A single token is a type-only (unnamed) parameter.
    if (tokens < 2 || name_begin == npos) continue;
    param.name = s.substr(name_begin, name_end - name_begin);
    if (param.name.empty() || !is_ident_start(param.name[0])) continue;
    out->push_back(std::move(param));
  }
}

// ---------------------------------------------------------------------------
// Statement parser

class Builder {
 public:
  Builder(const std::string& s, FunctionCfg* cfg) : s_(s), cfg_(cfg) {}

  bool build(std::size_t body_lo, std::size_t body_hi) {
    cfg_->nodes.clear();
    cfg_->nodes.push_back(CfgNode{CfgNode::Kind::kEntry, 0, 0, false, {}});
    cfg_->nodes.push_back(CfgNode{CfgNode::Kind::kExit, 0, 0, false, {}});
    std::vector<int> exits =
        parse_stmts(body_lo + 1, body_hi - 1, {FunctionCfg::kEntry},
                    /*switch_head=*/-1);
    link(exits, FunctionCfg::kExit);
    return ok_;
  }

 private:
  struct LoopCtx {
    int continue_target;
    std::vector<int>* breaks;
  };

  int new_node(CfgNode::Kind kind, std::size_t lo, std::size_t hi) {
    CfgNode node;
    node.kind = kind;
    node.lo = lo;
    node.hi = hi;
    node.suspends = has_word_in(s_, lo, hi, "co_await") ||
                    has_word_in(s_, lo, hi, "co_yield");
    cfg_->nodes.push_back(std::move(node));
    return static_cast<int>(cfg_->nodes.size()) - 1;
  }

  void link(const std::vector<int>& preds, int to) {
    for (int p : preds) {
      auto& succs = cfg_->nodes[static_cast<std::size_t>(p)].succs;
      bool dup = false;
      for (int existing : succs) dup = dup || existing == to;
      if (!dup) succs.push_back(to);
    }
  }

  /// End (one past ';') of the plain statement starting at `pos`, balancing
  /// parens/brackets/braces so lambda bodies and initializer lists are
  /// swallowed whole.
  std::size_t stmt_end(std::size_t pos, std::size_t hi) {
    int depth = 0;
    for (std::size_t i = pos; i < hi; ++i) {
      const char c = s_[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ';' && depth <= 0) return i + 1;
    }
    return hi;
  }

  /// One statement (or block) starting at `*pos`; advances `*pos` past it
  /// and returns the fallthrough predecessors for whatever comes next.
  std::vector<int> parse_one(std::size_t* pos, std::size_t hi,
                             std::vector<int> preds, int switch_head) {
    *pos = skip_spaces(s_, *pos);
    if (*pos >= hi) return preds;
    const char c = s_[*pos];
    if (c == ';') {
      ++*pos;
      return preds;
    }
    if (c == '{') {
      const std::size_t past = skip_balanced(s_, *pos, '{', '}');
      if (past == npos || past > hi + 1) {
        ok_ = false;
        *pos = hi;
        return preds;
      }
      auto exits = parse_stmts(*pos + 1, past - 1, std::move(preds), -1);
      *pos = past;
      return exits;
    }
    if (is_ident_start(c)) {
      std::size_t end = *pos;
      const std::string word = read_ident(s_, *pos, &end);
      if (word == "if") return parse_if(pos, end, hi, std::move(preds));
      if (word == "while") return parse_while(pos, end, hi, std::move(preds));
      if (word == "for") return parse_while(pos, end, hi, std::move(preds));
      if (word == "do") return parse_do(pos, end, hi, std::move(preds));
      if (word == "switch") {
        return parse_switch(pos, end, hi, std::move(preds));
      }
      if (word == "try") return parse_try(pos, end, hi, std::move(preds));
      if (word == "case" || word == "default") {
        // Label: fall through from the previous statement plus a dispatch
        // edge from the enclosing switch head.
        std::size_t colon = end;
        int depth = 0;
        while (colon < hi) {
          const char ch = s_[colon];
          if (ch == '(' || ch == '[' || ch == '<') ++depth;
          if (ch == ')' || ch == ']' || ch == '>') --depth;
          if (ch == ':' && depth == 0 &&
              !(colon + 1 < hi && s_[colon + 1] == ':')) {
            break;
          }
          ++colon;
        }
        *pos = colon < hi ? colon + 1 : hi;
        if (switch_head >= 0) preds.push_back(switch_head);
        return preds;
      }
      if (word == "break") {
        const int node = new_node(CfgNode::Kind::kStatement, *pos,
                                  stmt_end(*pos, hi));
        link(preds, node);
        if (!break_targets_.empty()) break_targets_.back()->push_back(node);
        *pos = cfg_->nodes[static_cast<std::size_t>(node)].hi;
        return {};
      }
      if (word == "continue") {
        const int node = new_node(CfgNode::Kind::kStatement, *pos,
                                  stmt_end(*pos, hi));
        link(preds, node);
        if (!loops_.empty()) link({node}, loops_.back().continue_target);
        *pos = cfg_->nodes[static_cast<std::size_t>(node)].hi;
        return {};
      }
      if (word == "return" || word == "co_return" || word == "throw" ||
          word == "goto") {
        const int node = new_node(CfgNode::Kind::kStatement, *pos,
                                  stmt_end(*pos, hi));
        link(preds, node);
        if (word != "goto") link({node}, FunctionCfg::kExit);
        *pos = cfg_->nodes[static_cast<std::size_t>(node)].hi;
        return {};
      }
      if (word == "else") {
        // Dangling else without a preceding if at this level: treat the
        // branch as an ordinary statement.
        *pos = end;
        return parse_one(pos, hi, std::move(preds), switch_head);
      }
    }
    const std::size_t send = stmt_end(*pos, hi);
    const int node = new_node(CfgNode::Kind::kStatement, *pos, send);
    link(preds, node);
    *pos = send;
    return {node};
  }

  std::vector<int> parse_stmts(std::size_t lo, std::size_t hi,
                               std::vector<int> preds, int switch_head) {
    std::size_t pos = lo;
    while (ok_) {
      pos = skip_spaces(s_, pos);
      if (pos >= hi) break;
      const std::size_t before = pos;
      preds = parse_one(&pos, hi, std::move(preds), switch_head);
      if (pos <= before) {  // no forward progress: bail out
        ok_ = false;
        break;
      }
    }
    return preds;
  }

  /// `(...)` condition header starting at or after `after_kw`; returns the
  /// condition node and advances `*pos` past the closing paren.
  int parse_cond_head(std::size_t stmt_lo, std::size_t after_kw,
                      std::size_t hi, std::size_t* pos) {
    std::size_t p = skip_spaces(s_, after_kw);
    // `if constexpr (...)`
    if (p < hi && is_ident_start(s_[p])) {
      std::size_t e = p;
      const std::string w = read_ident(s_, p, &e);
      if (w == "constexpr") p = skip_spaces(s_, e);
    }
    if (p >= hi || s_[p] != '(') {
      ok_ = false;
      *pos = hi;
      return -1;
    }
    const std::size_t past = skip_balanced(s_, p, '(', ')');
    if (past == npos || past > hi) {
      ok_ = false;
      *pos = hi;
      return -1;
    }
    *pos = past;
    return new_node(CfgNode::Kind::kCondition, stmt_lo, past);
  }

  std::vector<int> parse_if(std::size_t* pos, std::size_t kw_end,
                            std::size_t hi, std::vector<int> preds) {
    const std::size_t stmt_lo = *pos;
    const int cond = parse_cond_head(stmt_lo, kw_end, hi, pos);
    if (cond < 0) return preds;
    link(preds, cond);
    auto then_exits = parse_one(pos, hi, {cond}, -1);
    std::size_t q = skip_spaces(s_, *pos);
    if (q < hi && is_ident_start(s_[q])) {
      std::size_t e = q;
      const std::string w = read_ident(s_, q, &e);
      if (w == "else") {
        *pos = e;
        auto else_exits = parse_one(pos, hi, {cond}, -1);
        then_exits.insert(then_exits.end(), else_exits.begin(),
                          else_exits.end());
        return then_exits;
      }
    }
    then_exits.push_back(cond);  // no else: condition can fall through
    return then_exits;
  }

  std::vector<int> parse_while(std::size_t* pos, std::size_t kw_end,
                               std::size_t hi, std::vector<int> preds) {
    const std::size_t stmt_lo = *pos;
    const int cond = parse_cond_head(stmt_lo, kw_end, hi, pos);
    if (cond < 0) return preds;
    link(preds, cond);
    std::vector<int> breaks;
    loops_.push_back(LoopCtx{cond, &breaks});
    break_targets_.push_back(&breaks);
    auto body_exits = parse_one(pos, hi, {cond}, -1);
    break_targets_.pop_back();
    loops_.pop_back();
    link(body_exits, cond);  // back edge
    std::vector<int> after{cond};
    after.insert(after.end(), breaks.begin(), breaks.end());
    return after;
  }

  std::vector<int> parse_do(std::size_t* pos, std::size_t kw_end,
                            std::size_t hi, std::vector<int> preds) {
    const std::size_t stmt_lo = *pos;
    // Head marker so the back edge has a target known before the body is
    // parsed; the while-condition node is fixed up afterwards.
    const int head = new_node(CfgNode::Kind::kStatement, stmt_lo, kw_end);
    link(preds, head);
    const int cond = new_node(CfgNode::Kind::kCondition, kw_end, kw_end);
    std::vector<int> breaks;
    loops_.push_back(LoopCtx{cond, &breaks});
    break_targets_.push_back(&breaks);
    *pos = kw_end;
    auto body_exits = parse_one(pos, hi, {head}, -1);
    break_targets_.pop_back();
    loops_.pop_back();
    // `while (...) ;`
    std::size_t p = skip_spaces(s_, *pos);
    std::size_t cond_lo = p, cond_hi = p;
    if (p < hi && is_ident_start(s_[p])) {
      std::size_t e = p;
      const std::string w = read_ident(s_, p, &e);
      if (w == "while") {
        const std::size_t open = skip_spaces(s_, e);
        if (open < hi && s_[open] == '(') {
          const std::size_t past = skip_balanced(s_, open, '(', ')');
          if (past != npos && past <= hi) {
            cond_lo = p;
            cond_hi = past;
            std::size_t semi = skip_spaces(s_, past);
            *pos = (semi < hi && s_[semi] == ';') ? semi + 1 : past;
          }
        }
      }
    }
    if (cond_hi == cond_lo) ok_ = false;
    cfg_->nodes[static_cast<std::size_t>(cond)].lo = cond_lo;
    cfg_->nodes[static_cast<std::size_t>(cond)].hi = cond_hi;
    cfg_->nodes[static_cast<std::size_t>(cond)].suspends =
        has_word_in(s_, cond_lo, cond_hi, "co_await") ||
        has_word_in(s_, cond_lo, cond_hi, "co_yield");
    link(body_exits, cond);
    link({cond}, head);  // back edge
    std::vector<int> after{cond};
    after.insert(after.end(), breaks.begin(), breaks.end());
    return after;
  }

  std::vector<int> parse_switch(std::size_t* pos, std::size_t kw_end,
                                std::size_t hi, std::vector<int> preds) {
    const std::size_t stmt_lo = *pos;
    const int head = parse_cond_head(stmt_lo, kw_end, hi, pos);
    if (head < 0) return preds;
    link(preds, head);
    std::size_t p = skip_spaces(s_, *pos);
    if (p >= hi || s_[p] != '{') {
      ok_ = false;
      *pos = hi;
      return {head};
    }
    const std::size_t past = skip_balanced(s_, p, '{', '}');
    if (past == npos || past > hi + 1) {
      ok_ = false;
      *pos = hi;
      return {head};
    }
    std::vector<int> breaks;
    break_targets_.push_back(&breaks);
    auto body_exits = parse_stmts(p + 1, past - 1, {}, head);
    break_targets_.pop_back();
    *pos = past;
    std::vector<int> after{head};  // no matching case / no default
    after.insert(after.end(), body_exits.begin(), body_exits.end());
    after.insert(after.end(), breaks.begin(), breaks.end());
    return after;
  }

  std::vector<int> parse_try(std::size_t* pos, std::size_t kw_end,
                             std::size_t hi, std::vector<int> preds) {
    const std::vector<int> before = preds;
    *pos = kw_end;
    auto try_exits = parse_one(pos, hi, std::move(preds), -1);
    std::vector<int> all = try_exits;
    for (;;) {
      const std::size_t q = skip_spaces(s_, *pos);
      if (q >= hi || !is_ident_start(s_[q])) break;
      std::size_t e = q;
      const std::string w = read_ident(s_, q, &e);
      if (w != "catch") break;
      const int handler = parse_cond_head(q, e, hi, pos);
      if (handler < 0) break;
      // The exception can be thrown anywhere in the try block, so the
      // handler is reachable from before it and from every exit of it.
      link(before, handler);
      link(try_exits, handler);
      auto h_exits = parse_one(pos, hi, {handler}, -1);
      all.insert(all.end(), h_exits.begin(), h_exits.end());
    }
    return all;
  }

  const std::string& s_;
  FunctionCfg* cfg_;
  bool ok_ = true;
  std::vector<LoopCtx> loops_;
  std::vector<std::vector<int>*> break_targets_;
};

}  // namespace

std::vector<FunctionCfg> build_cfgs(const std::string& stripped) {
  std::vector<FunctionCfg> out;
  std::size_t pos = 0;
  while ((pos = stripped.find('{', pos)) != npos) {
    Shape shape;
    if (!classify_brace(stripped, pos, &shape)) {
      ++pos;
      continue;
    }
    const std::size_t past = skip_balanced(stripped, pos, '{', '}');
    if (past == npos) {
      ++pos;
      continue;
    }
    FunctionCfg cfg;
    cfg.name = shape.name;
    cfg.is_lambda = shape.is_lambda;
    cfg.captures = shape.captures;
    cfg.header_lo = shape.header_lo;
    cfg.body_lo = pos;
    cfg.body_hi = past;
    if (shape.params_hi > shape.params_lo) {
      parse_params(stripped, shape.params_lo + 1, shape.params_hi,
                   &cfg.params);
    }
    Builder builder(stripped, &cfg);
    if (!builder.build(pos, past)) {
      // Parse failure: keep the function with entry/exit only so callers
      // know it exists but has no analyzable flow.
      cfg.nodes.resize(2);
      cfg.nodes[0].succs.clear();
      cfg.nodes[1].succs.clear();
    }
    out.push_back(std::move(cfg));
    ++pos;  // nested lambdas inside this body are discovered too
  }

  // Fix up suspension flags and coroutine-ness so that a nested function's
  // body does not leak `co_await` into its enclosing statement node.
  for (FunctionCfg& fn : out) {
    std::vector<std::pair<std::size_t, std::size_t>> inner;
    for (const FunctionCfg& other : out) {
      if (&other == &fn) continue;
      if (other.body_lo > fn.body_lo && other.body_hi <= fn.body_hi) {
        inner.emplace_back(other.body_lo, other.body_hi);
      }
    }
    auto masked_has = [&](std::size_t lo, std::size_t hi,
                          std::string_view word) {
      std::size_t cursor = lo;
      bool found = false;
      // Scan the gaps between inner bodies (inner ranges are disjoint or
      // nested; nested sub-ranges are covered by their outermost parent).
      std::vector<std::pair<std::size_t, std::size_t>> holes = inner;
      std::sort(holes.begin(), holes.end());
      for (const auto& [ilo, ihi] : holes) {
        if (ihi <= cursor || ilo >= hi) continue;
        if (ilo > cursor) {
          found = found || has_word_in(stripped, cursor, std::min(ilo, hi),
                                       word);
        }
        cursor = std::max(cursor, ihi);
      }
      if (cursor < hi) found = found || has_word_in(stripped, cursor, hi, word);
      return found;
    };
    if (!inner.empty()) {
      for (CfgNode& node : fn.nodes) {
        if (!node.suspends) continue;
        node.suspends = masked_has(node.lo, node.hi, "co_await") ||
                        masked_has(node.lo, node.hi, "co_yield");
      }
    }
    fn.is_coroutine = masked_has(fn.body_lo, fn.body_hi, "co_await") ||
                      masked_has(fn.body_lo, fn.body_hi, "co_yield") ||
                      masked_has(fn.body_lo, fn.body_hi, "co_return");
  }
  return out;
}

std::string masked_node_text(const std::string& stripped,
                             const std::vector<FunctionCfg>& all,
                             const FunctionCfg& fn, const CfgNode& node) {
  std::string out = stripped.substr(node.lo, node.hi - node.lo);
  for (const FunctionCfg& other : all) {
    if (&other == &fn) continue;
    if (!(other.body_lo > fn.body_lo && other.body_hi <= fn.body_hi)) {
      continue;  // not nested inside this function
    }
    const std::size_t lo = std::max(other.body_lo, node.lo);
    const std::size_t hi = std::min(other.body_hi, node.hi);
    for (std::size_t i = lo; i < hi; ++i) {
      if (out[i - node.lo] != '\n') out[i - node.lo] = ' ';
    }
  }
  return out;
}

std::string masked_function_text(const std::string& stripped,
                                 const std::vector<FunctionCfg>& all,
                                 const FunctionCfg& fn) {
  std::string out = stripped.substr(fn.body_lo, fn.body_hi - fn.body_lo);
  for (const FunctionCfg& other : all) {
    if (&other == &fn) continue;
    if (!(other.body_lo > fn.body_lo && other.body_hi <= fn.body_hi)) {
      continue;  // not nested inside this function
    }
    for (std::size_t i = other.body_lo; i < other.body_hi; ++i) {
      if (out[i - fn.body_lo] != '\n') out[i - fn.body_lo] = ' ';
    }
  }
  return out;
}

}  // namespace paraio::lint
