#include "paraio_lint/flow_checks.hpp"

#include <algorithm>
#include <map>
#include <string_view>

#include "paraio_lint/dataflow.hpp"
#include "paraio_lint/text.hpp"

namespace paraio::lint {

namespace {

using namespace paraio::lint::text;

constexpr std::size_t npos = std::string::npos;

void add_at(std::vector<Finding>* out, const char* id,
            const std::vector<std::size_t>& starts, std::size_t pos,
            std::string message) {
  const CheckInfo* info = find_check(id);
  out->push_back(Finding{"", line_of(starts, pos), col_of(starts, pos),
                         info->id, info->severity, std::move(message), false,
                         false});
}

std::vector<FactSet> solve(const FlowContext& ctx, const FunctionCfg& fn,
                           const GenKill& gk) {
  DataflowStats stats;
  auto in = gk.solve(fn, &stats);
  if (ctx.stats) {
    ctx.stats->dataflow_solves += 1;
    ctx.stats->dataflow_bailouts += stats.capped ? 1 : 0;
  }
  return in;
}

// ---------------------------------------------------------------------------
// suspension-lifetime

struct DangerName {
  std::string name;
  std::string why;  // "reference parameter", "by-reference capture", ...
};

/// Splits a lambda capture list into items at top-level commas.
std::vector<std::string> capture_items(const std::string& captures) {
  std::vector<std::string> items;
  std::size_t begin = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= captures.size(); ++i) {
    const char c = i < captures.size() ? captures[i] : ',';
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      const std::string item = trim(captures.substr(begin, i - begin));
      if (!item.empty()) items.push_back(item);
      begin = i + 1;
    }
  }
  return items;
}

/// Whether a coroutine lambda's closure can die before the frame resumes:
/// the lambda is written inline inside an escaping spawn's argument list,
/// or it is bound to a name (`auto name = [...]`) that is invoked inside
/// one.  Lambdas awaited in place or spawned through a joined TaskGroup
/// keep their closure alive and are skipped.
bool lambda_escapes(const FlowContext& ctx, const FunctionCfg& fn) {
  for (const auto& [lo, hi] : ctx.escaping_spawns) {
    if (fn.header_lo >= lo && fn.header_lo < hi) return true;
  }
  std::size_t p = prev_nonspace(ctx.stripped, fn.header_lo);
  if (p == npos || ctx.stripped[p] != '=') return false;
  p = prev_nonspace(ctx.stripped, p);
  if (p == npos || !is_ident(ctx.stripped[p])) return false;
  const std::string name = read_ident_backward(ctx.stripped, p);
  if (name.empty()) return false;
  for (const auto& [lo, hi] : ctx.escaping_spawns) {
    std::size_t at = lo;
    while (at < hi &&
           (at = ctx.stripped.find(name, at)) != npos && at < hi) {
      const bool left_ok = at == 0 || !is_ident(ctx.stripped[at - 1]);
      const std::size_t after = at + name.size();
      if (left_ok && after < hi && !is_ident(ctx.stripped[after]) &&
          ctx.stripped[skip_spaces(ctx.stripped, after)] == '(') {
        return true;
      }
      at = after;
    }
  }
  return false;
}

void check_one_suspension_lifetime(const FlowContext& ctx,
                                   const FunctionCfg& fn,
                                   std::vector<Finding>* out) {
  if (!fn.is_coroutine || fn.nodes.size() <= 2) return;

  std::vector<DangerName> danger;
  bool implicit_members = false;  // `this` in scope: members (`name_`) too
  if (fn.is_lambda) {
    if (!lambda_escapes(ctx, fn)) return;
    for (const std::string& item : capture_items(fn.captures)) {
      if (item == "&" || item == "=") {
        implicit_members = true;  // default capture reaches `this`
        continue;
      }
      if (item == "this") {
        implicit_members = true;
        continue;
      }
      if (item.rfind("*this", 0) == 0) continue;  // by-value copy: safe
      if (item[0] == '&') {
        // `&name` or `&name = expr` (init capture by reference).
        const std::string name =
            read_ident(item, skip_spaces(item, 1));
        if (!name.empty()) {
          danger.push_back({name, "by-reference capture '&" + name + "'"});
        }
      }
      // By-value captures die with the closure; the temporary-closure case
      // is coro-lambda-capture's territory.
    }
  } else if (!fn.name.empty() && ctx.index.detached_fns.contains(fn.name)) {
    for (const CfgParam& p : fn.params) {
      if (!p.is_reference && !p.is_pointer) continue;
      danger.push_back(
          {p.name, std::string(p.is_reference ? "reference" : "pointer") +
                       " parameter '" + p.name + "' of detached coroutine '" +
                       fn.name + "'"});
    }
  }
  if (danger.empty() && !implicit_members) return;

  // Facts: the node ids of suspension points.
  GenKill gk(fn.nodes.size());
  bool any_suspension = false;
  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    if (fn.nodes[i].suspends) {
      gk.gen[i].insert(static_cast<int>(i));
      any_suspension = true;
    }
  }
  if (!any_suspension) return;
  const auto in = solve(ctx, fn, gk);

  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    const CfgNode& node = fn.nodes[i];
    if (in[i].empty() || node.hi <= node.lo) continue;
    const int first_susp = *in[i].begin();
    const std::size_t susp_line = line_of(
        ctx.line_starts,
        fn.nodes[static_cast<std::size_t>(first_susp)].lo);
    const std::string body = masked_node_text(ctx.stripped, ctx.cfgs, fn,
                                              node);

    auto report = [&](std::size_t at, const std::string& what) {
      add_at(out, "suspension-lifetime", ctx.line_starts, node.lo + at,
             what + " read after the suspension point at line " +
                 std::to_string(susp_line) +
                 ": the coroutine frame can outlive what the name refers "
                 "to; pass by value or move ownership into the frame");
    };

    for (const DangerName& d : danger) {
      const auto uses = find_word(body, d.name);
      if (!uses.empty()) report(uses.front(), d.why);
    }
    if (implicit_members) {
      // `this` escapes into the frame: flag explicit `this` and the first
      // member access (trailing-underscore naming convention).
      const auto this_uses = find_word(body, "this");
      std::size_t member_use = npos;
      std::string member;
      for (std::size_t p = 0; p < body.size(); ++p) {
        if (!is_ident_start(body[p]) || (p > 0 && is_ident(body[p - 1]))) {
          continue;
        }
        std::size_t e = p;
        const std::string w = read_ident(body, p, &e);
        if (w.size() > 1 && w.back() == '_') {
          member_use = p;
          member = w;
          break;
        }
        p = e;
      }
      if (!this_uses.empty() &&
          (member_use == npos || this_uses.front() < member_use)) {
        report(this_uses.front(), "captured 'this'");
      } else if (member_use != npos) {
        report(member_use, "member '" + member + "' (through captured 'this')");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// lock-across-suspension

struct LockSite {
  std::size_t pos = 0;     // absolute offset of the receiver expression
  std::string name;        // receiver's trailing identifier
  bool acquire = false;
};

/// co_await-ed `.lock(` and plain `.unlock(` sites within one node's masked
/// text (positions absolute).  Deliberately sim::Mutex-only: holding a
/// Semaphore capacity token across a delay is how the hardware layer models
/// device service time (disk gates, NIC slots, ION service semaphores), so
/// `.acquire()`/`.release()` regions are exempt.
std::vector<LockSite> node_lock_sites(const std::string& body,
                                      std::size_t base) {
  struct Pattern {
    const char* text;
    bool acquire;
  };
  static constexpr Pattern kPatterns[] = {
      {".lock(", true},
      {"->lock(", true},
      {".unlock(", false},
      {"->unlock(", false},
  };
  std::vector<LockSite> sites;
  for (const Pattern& p : kPatterns) {
    const std::string needle(p.text);
    std::size_t pos = 0;
    while ((pos = body.find(needle, pos)) != npos) {
      const std::size_t at = pos;
      pos += needle.size();
      // Receiver: trailing identifier, subscripts stripped.
      std::size_t i = at;
      if (i > 0 && body[i - 1] == ']') {
        int depth = 0;
        while (i > 0) {
          --i;
          if (body[i] == ']') ++depth;
          if (body[i] == '[' && --depth == 0) break;
        }
      }
      if (i == 0 || !is_ident(body[i - 1])) continue;
      LockSite site;
      site.name = read_ident_backward(body, i - 1);
      site.pos = base + at;
      site.acquire = p.acquire;
      if (!site.name.empty()) sites.push_back(site);
    }
  }
  std::sort(sites.begin(), sites.end(),
            [](const LockSite& a, const LockSite& b) { return a.pos < b.pos; });
  return sites;
}

void check_one_lock_across_suspension(const FlowContext& ctx,
                                      const FunctionCfg& fn,
                                      std::vector<Finding>* out) {
  if (!fn.is_coroutine || fn.nodes.size() <= 2) return;

  // Collect acquisition/release sites per node; facts are acquisition-site
  // indices so the report can name the exact acquisition line.
  struct Acq {
    std::size_t node;
    LockSite site;
  };
  std::vector<Acq> acqs;
  std::vector<std::vector<LockSite>> releases(fn.nodes.size());
  std::vector<std::string> bodies(fn.nodes.size());
  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    const CfgNode& node = fn.nodes[i];
    if (node.hi <= node.lo) continue;
    bodies[i] = masked_node_text(ctx.stripped, ctx.cfgs, fn, node);
    for (LockSite& site : node_lock_sites(bodies[i], node.lo)) {
      if (site.acquire) {
        // Only a co_awaited acquisition takes the lock (a bare one is
        // missing-co-await's finding, not a held region).
        if (!node.suspends) continue;
        acqs.push_back(Acq{i, std::move(site)});
      } else {
        releases[i].push_back(std::move(site));
      }
    }
  }
  if (acqs.empty()) return;

  GenKill gk(fn.nodes.size());
  for (std::size_t a = 0; a < acqs.size(); ++a) {
    gk.gen[acqs[a].node].insert(static_cast<int>(a));
  }
  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    for (const LockSite& rel : releases[i]) {
      for (std::size_t a = 0; a < acqs.size(); ++a) {
        if (acqs[a].site.name == rel.name) {
          gk.kill[i].insert(static_cast<int>(a));
        }
      }
    }
  }
  const auto in = solve(ctx, fn, gk);

  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    const CfgNode& node = fn.nodes[i];
    if (!node.suspends || in[i].empty()) continue;
    const std::size_t susp =
        node.lo + std::min(bodies[i].find("co_await"),
                           bodies[i].find("co_yield"));
    // One report per lock name held here, at the suspension site.
    std::set<std::string> reported;
    for (int a : in[i]) {
      const Acq& acq = acqs[static_cast<std::size_t>(a)];
      if (!reported.insert(acq.site.name).second) continue;
      add_at(out, "lock-across-suspension", ctx.line_starts, susp,
             "'" + acq.site.name + "' (acquired at line " +
                 std::to_string(line_of(ctx.line_starts, acq.site.pos)) +
                 ") is held across this suspension point: while the task is "
                 "parked, any task that needs the lock deadlocks behind it; "
                 "release before suspending or keep the critical section "
                 "synchronous");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-taint

bool range_has_source(const std::string& body, std::size_t lo,
                      std::size_t hi) {
  static constexpr std::string_view kSources[] = {
      "system_clock",  "steady_clock", "high_resolution_clock",
      "gettimeofday",  "clock_gettime", "random_device",
      "drand48",       "lrand48",       "mrand48",
      "uintptr_t",     "intptr_t",
  };
  for (std::string_view w : kSources) {
    if (has_word_in(body, lo, hi, w)) return true;
  }
  // `rand(` / `srand(` as calls.
  for (std::string_view w : {"rand", "srand"}) {
    std::size_t pos = lo;
    while (pos < hi && (pos = body.find(w, pos)) != npos && pos < hi) {
      const bool left_ok = pos == 0 || !is_ident(body[pos - 1]);
      const std::size_t after = pos + w.size();
      if (left_ok && after < hi && skip_spaces(body, after) < hi &&
          body[skip_spaces(body, after)] == '(' &&
          (after >= body.size() || !is_ident(body[after]))) {
        return true;
      }
      pos = after;
    }
  }
  return false;
}

const char* source_label(const std::string& body, std::size_t lo,
                         std::size_t hi) {
  static constexpr std::string_view kClock[] = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime"};
  for (std::string_view w : kClock) {
    if (has_word_in(body, lo, hi, w)) return "wall-clock";
  }
  for (std::string_view w :
       {"random_device", "drand48", "lrand48", "mrand48", "rand", "srand"}) {
    if (has_word_in(body, lo, hi, w)) return "libc randomness";
  }
  if (has_word_in(body, lo, hi, "uintptr_t") ||
      has_word_in(body, lo, hi, "intptr_t")) {
    return "pointer identity";
  }
  return "a nondeterministic source";
}

/// Sink call names: scheduling and every trace/metrics publication path.
bool is_sink_name(std::string_view w) {
  return w == "schedule" || w == "schedule_at" || w == "add" ||
         w == "observe" || w == "record" || w == "emit" || w == "trace" ||
         w == "publish" || w == "log";
}

struct TaintEvent {
  enum class Kind { kAssign, kSink };
  Kind kind = Kind::kAssign;
  std::size_t pos = 0;      // in node-local text
  int lhs = -1;             // kAssign
  bool compound = false;    // kAssign: `+=` etc. never un-taints
  std::size_t rhs_lo = 0, rhs_hi = 0;  // kAssign rhs / kSink args
  std::string sink_name;    // kSink
};

struct NodePlan {
  std::string body;
  std::vector<TaintEvent> events;   // sorted by pos
  std::vector<int> loop_taints;     // range-for over unordered container
};

class TaintAnalysis {
 public:
  TaintAnalysis(const FlowContext& ctx, const FunctionCfg& fn)
      : ctx_(ctx), fn_(fn) {}

  void run(std::vector<Finding>* out) {
    plans_.resize(fn_.nodes.size());
    bool interesting = false;
    for (std::size_t i = 0; i < fn_.nodes.size(); ++i) {
      build_plan(i);
      interesting = interesting || !plans_[i].events.empty() ||
                    !plans_[i].loop_taints.empty();
    }
    if (!interesting) return;

    DataflowStats stats;
    const auto in = solve_forward(
        fn_,
        [this](int idx, const FactSet& in_set) {
          return transfer(static_cast<std::size_t>(idx), in_set);
        },
        &stats);
    if (ctx_.stats) {
      ctx_.stats->dataflow_solves += 1;
      ctx_.stats->dataflow_bailouts += stats.capped ? 1 : 0;
    }

    for (std::size_t i = 0; i < fn_.nodes.size(); ++i) {
      report_node(i, in[i], out);
    }
  }

 private:
  int id_of(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(names_.size());
    ids_.emplace(name, id);
    names_.push_back(name);
    return id;
  }

  bool rhs_tainted(const NodePlan& plan, const TaintEvent& ev,
                   const FactSet& cur) const {
    if (range_has_source(plan.body, ev.rhs_lo, ev.rhs_hi)) return true;
    for (int v : cur) {
      if (has_word_in(plan.body, ev.rhs_lo, ev.rhs_hi,
                      names_[static_cast<std::size_t>(v)])) {
        return true;
      }
    }
    return false;
  }

  FactSet transfer(std::size_t idx, const FactSet& in_set) {
    const NodePlan& plan = plans_[idx];
    FactSet cur = in_set;
    for (int v : plan.loop_taints) cur.insert(v);
    for (const TaintEvent& ev : plan.events) {
      if (ev.kind != TaintEvent::Kind::kAssign) continue;
      if (rhs_tainted(plan, ev, cur)) {
        cur.insert(ev.lhs);
      } else if (!ev.compound) {
        cur.erase(ev.lhs);  // overwritten with a clean value
      }
    }
    return cur;
  }

  void build_plan(std::size_t idx) {
    const CfgNode& node = fn_.nodes[idx];
    NodePlan& plan = plans_[idx];
    if (node.hi <= node.lo) return;
    plan.body = masked_node_text(ctx_.stripped, ctx_.cfgs, fn_, node);
    collect_loop_taints(node, &plan);
    collect_assigns(&plan);
    collect_sinks(&plan);
    std::sort(plan.events.begin(), plan.events.end(),
              [](const TaintEvent& a, const TaintEvent& b) {
                return a.pos < b.pos;
              });
  }

  /// `for (decl : container)` headers over an unordered container taint
  /// the loop variable(s): their values are stable, but the *order* they
  /// arrive in is not, and anything accumulated from them inherits it.
  void collect_loop_taints(const CfgNode& node, NodePlan* plan) {
    if (node.kind != CfgNode::Kind::kCondition) return;
    const std::string& body = plan->body;
    const std::size_t kw = skip_spaces(body, 0);
    if (read_ident(body, kw) != "for") return;
    const std::size_t open = body.find('(', kw);
    if (open == npos) return;
    int depth = 0;
    std::size_t colon = npos;
    for (std::size_t i = open; i < body.size(); ++i) {
      const char c = body[i];
      if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
      if (c == ';') return;  // classic for loop
      if (c == ':' && depth == 1 &&
          !(i + 1 < body.size() && body[i + 1] == ':') &&
          !(i > 0 && body[i - 1] == ':')) {
        colon = i;
        break;
      }
    }
    if (colon == npos) return;
    const std::string container = trailing_ident(
        body.substr(colon + 1, body.rfind(')') - colon - 1));
    if (container.empty() || !ctx_.index.unordered_names.contains(container)) {
      return;
    }
    // Loop variable(s): structured binding `[a, b]` or a single declarator.
    const std::string decl = body.substr(open + 1, colon - open - 1);
    const std::size_t bracket = decl.find('[');
    if (bracket != npos) {
      const std::size_t close = decl.find(']', bracket);
      std::size_t p = bracket + 1;
      while (p < close) {
        p = skip_spaces(decl, p);
        if (p >= close) break;
        if (is_ident_start(decl[p])) {
          std::size_t e = p;
          const std::string name = read_ident(decl, p, &e);
          plan->loop_taints.push_back(id_of(name));
          p = e;
        } else {
          ++p;
        }
      }
    } else {
      const std::string name = trailing_ident(decl);
      if (!name.empty()) plan->loop_taints.push_back(id_of(name));
    }
  }

  void collect_assigns(NodePlan* plan) {
    const std::string& body = plan->body;
    // Segment on top-level ';' so `a = f(x); b = a;` updates in order.
    std::size_t begin = 0;
    int depth = 0;
    for (std::size_t i = 0; i <= body.size(); ++i) {
      const char c = i < body.size() ? body[i] : ';';
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (!(c == ';' && depth <= 0)) continue;
      parse_assign(body, begin, i, plan);
      begin = i + 1;
    }
  }

  void parse_assign(const std::string& body, std::size_t lo, std::size_t hi,
                    NodePlan* plan) {
    int depth = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const char c = body[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c != '=' || depth != 0) continue;
      const char prev = i > lo ? body[i - 1] : '\0';
      const char next = i + 1 < hi ? body[i + 1] : '\0';
      if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
          prev == '>') {
        if (prev == '=' || next == '=') ++i;  // comparison, skip both chars
        continue;
      }
      const bool compound = prev == '+' || prev == '-' || prev == '*' ||
                            prev == '/' || prev == '%' || prev == '&' ||
                            prev == '|' || prev == '^';
      std::size_t lhs_end = i - (compound ? 1 : 0);
      const std::string lhs =
          trailing_ident(body.substr(lo, lhs_end - lo));
      if (lhs.empty() || !is_ident_start(lhs[0])) return;
      TaintEvent ev;
      ev.kind = TaintEvent::Kind::kAssign;
      ev.pos = i;
      ev.lhs = id_of(lhs);
      ev.compound = compound;
      ev.rhs_lo = i + 1;
      ev.rhs_hi = hi;
      plan->events.push_back(std::move(ev));
      return;  // one assignment per sub-statement
    }
  }

  void collect_sinks(NodePlan* plan) {
    const std::string& body = plan->body;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (!is_ident_start(body[i]) || (i > 0 && is_ident(body[i - 1]))) {
        continue;
      }
      std::size_t e = i;
      const std::string w = read_ident(body, i, &e);
      if (is_sink_name(w)) {
        const std::size_t open = skip_spaces(body, e);
        if (open < body.size() && body[open] == '(') {
          const std::size_t past = skip_balanced(body, open, '(', ')');
          if (past != npos) {
            TaintEvent ev;
            ev.kind = TaintEvent::Kind::kSink;
            ev.pos = i;
            ev.sink_name = w;
            ev.rhs_lo = open + 1;
            ev.rhs_hi = past - 1;
            plan->events.push_back(std::move(ev));
          }
        }
      }
      i = e;
    }
  }

  void report_node(std::size_t idx, const FactSet& in_set,
                   std::vector<Finding>* out) {
    const NodePlan& plan = plans_[idx];
    if (plan.events.empty()) return;
    FactSet cur = in_set;
    for (int v : plan.loop_taints) cur.insert(v);
    for (const TaintEvent& ev : plan.events) {
      if (ev.kind == TaintEvent::Kind::kAssign) {
        if (rhs_tainted(plan, ev, cur)) {
          cur.insert(ev.lhs);
        } else if (!ev.compound) {
          cur.erase(ev.lhs);
        }
        continue;
      }
      // Sink: flag a tainted variable argument or a direct source use.
      std::string carrier;
      for (int v : cur) {
        if (has_word_in(plan.body, ev.rhs_lo, ev.rhs_hi,
                        names_[static_cast<std::size_t>(v)])) {
          carrier = names_[static_cast<std::size_t>(v)];
          break;
        }
      }
      const bool direct =
          carrier.empty() && range_has_source(plan.body, ev.rhs_lo, ev.rhs_hi);
      if (carrier.empty() && !direct) continue;
      const char* source = source_label(plan.body, ev.rhs_lo, ev.rhs_hi);
      std::string message;
      if (!carrier.empty()) {
        message = "'" + carrier +
                  "' carries a value derived from a nondeterministic source "
                  "into '" +
                  ev.sink_name +
                  "()': the result can differ run to run and break "
                  "trace/schedule reproducibility; derive it from "
                  "sim::Engine::now() or sim::Rng instead";
      } else {
        message = std::string("argument of '") + ev.sink_name +
                  "()' comes straight from " + source +
                  ": the result can differ run to run and break "
                  "trace/schedule reproducibility; derive it from "
                  "sim::Engine::now() or sim::Rng instead";
      }
      add_at(out, "determinism-taint", ctx_.line_starts,
             fn_.nodes[idx].lo + ev.pos, std::move(message));
    }
  }

  const FlowContext& ctx_;
  const FunctionCfg& fn_;
  std::map<std::string, int> ids_;
  std::vector<std::string> names_;
  std::vector<NodePlan> plans_;
};

}  // namespace

void check_suspension_lifetime(const FlowContext& ctx,
                               std::vector<Finding>* out) {
  for (const FunctionCfg& fn : ctx.cfgs) {
    check_one_suspension_lifetime(ctx, fn, out);
  }
}

void check_lock_across_suspension(const FlowContext& ctx,
                                  std::vector<Finding>* out) {
  for (const FunctionCfg& fn : ctx.cfgs) {
    check_one_lock_across_suspension(ctx, fn, out);
  }
}

void check_determinism_taint(const FlowContext& ctx,
                             std::vector<Finding>* out) {
  for (const FunctionCfg& fn : ctx.cfgs) {
    if (fn.nodes.size() <= 2) continue;
    TaintAnalysis analysis(ctx, fn);
    analysis.run(out);
  }
}

}  // namespace paraio::lint
