#include "paraio_lint/flow_checks.hpp"

#include <algorithm>
#include <map>
#include <string_view>

#include "paraio_lint/callgraph.hpp"
#include "paraio_lint/dataflow.hpp"
#include "paraio_lint/summaries.hpp"
#include "paraio_lint/taint_sources.hpp"
#include "paraio_lint/text.hpp"

namespace paraio::lint {

namespace {

using namespace paraio::lint::text;

constexpr std::size_t npos = std::string::npos;

void add_at(std::vector<Finding>* out, const char* id,
            const std::vector<std::size_t>& starts, std::size_t pos,
            std::string message) {
  const CheckInfo* info = find_check(id);
  out->push_back(Finding{"", line_of(starts, pos), col_of(starts, pos),
                         info->id, info->severity, std::move(message), false,
                         false});
}

std::vector<FactSet> solve(const FlowContext& ctx, const FunctionCfg& fn,
                           const GenKill& gk) {
  DataflowStats stats;
  auto in = gk.solve(fn, &stats);
  if (ctx.stats) {
    ctx.stats->dataflow_solves += 1;
    ctx.stats->dataflow_bailouts += stats.capped ? 1 : 0;
  }
  return in;
}

// ---------------------------------------------------------------------------
// suspension-lifetime

struct DangerName {
  std::string name;
  std::string why;  // "reference parameter", "by-reference capture", ...
};

/// Splits a lambda capture list into items at top-level commas.
std::vector<std::string> capture_items(const std::string& captures) {
  std::vector<std::string> items;
  std::size_t begin = 0;
  int depth = 0;
  for (std::size_t i = 0; i <= captures.size(); ++i) {
    const char c = i < captures.size() ? captures[i] : ',';
    if (c == '(' || c == '[' || c == '{' || c == '<') ++depth;
    if (c == ')' || c == ']' || c == '}' || c == '>') --depth;
    if (c == ',' && depth == 0) {
      const std::string item = trim(captures.substr(begin, i - begin));
      if (!item.empty()) items.push_back(item);
      begin = i + 1;
    }
  }
  return items;
}

/// Whether a coroutine lambda's closure can die before the frame resumes:
/// the lambda is written inline inside an escaping spawn's argument list,
/// or it is bound to a name (`auto name = [...]`) that is invoked inside
/// one.  Lambdas awaited in place or spawned through a joined TaskGroup
/// keep their closure alive and are skipped.
bool lambda_escapes(const FlowContext& ctx, const FunctionCfg& fn) {
  for (const auto& [lo, hi] : ctx.escaping_spawns) {
    if (fn.header_lo >= lo && fn.header_lo < hi) return true;
  }
  std::size_t p = prev_nonspace(ctx.stripped, fn.header_lo);
  if (p == npos || ctx.stripped[p] != '=') return false;
  p = prev_nonspace(ctx.stripped, p);
  if (p == npos || !is_ident(ctx.stripped[p])) return false;
  const std::string name = read_ident_backward(ctx.stripped, p);
  if (name.empty()) return false;
  for (const auto& [lo, hi] : ctx.escaping_spawns) {
    std::size_t at = lo;
    while (at < hi &&
           (at = ctx.stripped.find(name, at)) != npos && at < hi) {
      const bool left_ok = at == 0 || !is_ident(ctx.stripped[at - 1]);
      const std::size_t after = at + name.size();
      if (left_ok && after < hi && !is_ident(ctx.stripped[after]) &&
          ctx.stripped[skip_spaces(ctx.stripped, after)] == '(') {
        return true;
      }
      at = after;
    }
  }
  return false;
}

void check_one_suspension_lifetime(const FlowContext& ctx,
                                   const FunctionCfg& fn,
                                   std::vector<Finding>* out) {
  if (!fn.is_coroutine || fn.nodes.size() <= 2) return;

  std::vector<DangerName> danger;
  bool implicit_members = false;  // `this` in scope: members (`name_`) too
  if (fn.is_lambda) {
    if (!lambda_escapes(ctx, fn)) return;
    for (const std::string& item : capture_items(fn.captures)) {
      if (item == "&" || item == "=") {
        implicit_members = true;  // default capture reaches `this`
        continue;
      }
      if (item == "this") {
        implicit_members = true;
        continue;
      }
      if (item.rfind("*this", 0) == 0) continue;  // by-value copy: safe
      if (item[0] == '&') {
        // `&name` or `&name = expr` (init capture by reference).
        const std::string name =
            read_ident(item, skip_spaces(item, 1));
        if (!name.empty()) {
          danger.push_back({name, "by-reference capture '&" + name + "'"});
        }
      }
      // By-value captures die with the closure; the temporary-closure case
      // is coro-lambda-capture's territory.
    }
  } else if (!fn.name.empty() && ctx.index.detached_fns.contains(fn.name)) {
    for (const CfgParam& p : fn.params) {
      if (!p.is_reference && !p.is_pointer) continue;
      danger.push_back(
          {p.name, std::string(p.is_reference ? "reference" : "pointer") +
                       " parameter '" + p.name + "' of detached coroutine '" +
                       fn.name + "'"});
    }
  }
  if (danger.empty() && !implicit_members) return;

  // Facts: the node ids of suspension points.
  GenKill gk(fn.nodes.size());
  bool any_suspension = false;
  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    if (fn.nodes[i].suspends) {
      gk.gen[i].insert(static_cast<int>(i));
      any_suspension = true;
    }
  }
  if (!any_suspension) return;
  const auto in = solve(ctx, fn, gk);

  // (node, name) pairs already reported, so the summary-driven call-site
  // scan below never duplicates a textual finding in the same node.
  std::set<std::pair<std::size_t, std::string>> reported;

  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    const CfgNode& node = fn.nodes[i];
    if (in[i].empty() || node.hi <= node.lo) continue;
    const int first_susp = *in[i].begin();
    const std::size_t susp_line = line_of(
        ctx.line_starts,
        fn.nodes[static_cast<std::size_t>(first_susp)].lo);
    const std::string body = masked_node_text(ctx.stripped, ctx.cfgs, fn,
                                              node);

    auto report = [&](std::size_t at, const std::string& what) {
      add_at(out, "suspension-lifetime", ctx.line_starts, node.lo + at,
             what + " read after the suspension point at line " +
                 std::to_string(susp_line) +
                 ": the coroutine frame can outlive what the name refers "
                 "to; pass by value or move ownership into the frame");
    };

    for (const DangerName& d : danger) {
      const auto uses = find_word(body, d.name);
      if (!uses.empty()) {
        report(uses.front(), d.why);
        reported.emplace(i, d.name);
      }
    }
    if (implicit_members) {
      // `this` escapes into the frame: flag explicit `this` and the first
      // member access (trailing-underscore naming convention).
      const auto this_uses = find_word(body, "this");
      std::size_t member_use = npos;
      std::string member;
      for (std::size_t p = 0; p < body.size(); ++p) {
        if (!is_ident_start(body[p]) || (p > 0 && is_ident(body[p - 1]))) {
          continue;
        }
        std::size_t e = p;
        const std::string w = read_ident(body, p, &e);
        if (w.size() > 1 && w.back() == '_') {
          member_use = p;
          member = w;
          break;
        }
        p = e;
      }
      if (!this_uses.empty() &&
          (member_use == npos || this_uses.front() < member_use)) {
        report(this_uses.front(), "captured 'this'");
      } else if (member_use != npos) {
        report(member_use, "member '" + member + "' (through captured 'this')");
      }
    }
  }

  // Interprocedural leg: a danger name handed to a callee whose summary
  // says the matching parameter escapes — is read after a suspension point
  // of the *callee* — dangles even when this function's own CFG shows no
  // use after a suspension (e.g. `co_await stage(buf)` as the first
  // statement: the read happens inside the await).
  if (danger.empty()) return;
  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    const CfgNode& node = fn.nodes[i];
    if (node.hi <= node.lo) continue;
    const std::string body = masked_node_text(ctx.stripped, ctx.cfgs, fn,
                                              node);
    for (const NodeCall& call : find_calls(body)) {
      const FunctionSummary callee = summary_for_call(
          ctx.index.call_graph, ctx.index.summaries, call.name);
      if (callee.havoc || callee.escaping_params.empty()) continue;
      // A coroutine callee only runs (and suspends) when awaited.
      if (callee.coroutine && !call.awaited) continue;
      for (const int k : callee.escaping_params) {
        const auto uk = static_cast<std::size_t>(k);
        if (uk >= call.args.size()) continue;
        const std::string& arg = call.args[uk];
        for (const DangerName& d : danger) {
          if (d.name != arg) continue;
          if (!reported.emplace(i, d.name).second) continue;
          add_at(out, "suspension-lifetime", ctx.line_starts,
                 node.lo + call.arg_pos[uk],
                 d.why + " passed to '" + call.name +
                     "()', which reads it after a suspension point of its "
                     "own: the coroutine frame can outlive what the name "
                     "refers to; pass by value or move ownership into the "
                     "frame");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// lock-across-suspension

struct LockSite {
  std::size_t pos = 0;     // absolute offset of the receiver expression
  std::string name;        // receiver's trailing identifier
  bool acquire = false;
};

/// co_await-ed `.lock(` and plain `.unlock(` sites within one node's masked
/// text (positions absolute).  Deliberately sim::Mutex-only: holding a
/// Semaphore capacity token across a delay is how the hardware layer models
/// device service time (disk gates, NIC slots, ION service semaphores), so
/// `.acquire()`/`.release()` regions are exempt.
std::vector<LockSite> node_lock_sites(const std::string& body,
                                      std::size_t base) {
  struct Pattern {
    const char* text;
    bool acquire;
  };
  static constexpr Pattern kPatterns[] = {
      {".lock(", true},
      {"->lock(", true},
      {".unlock(", false},
      {"->unlock(", false},
  };
  std::vector<LockSite> sites;
  for (const Pattern& p : kPatterns) {
    const std::string needle(p.text);
    std::size_t pos = 0;
    while ((pos = body.find(needle, pos)) != npos) {
      const std::size_t at = pos;
      pos += needle.size();
      // Receiver: trailing identifier, subscripts stripped.
      std::size_t i = at;
      if (i > 0 && body[i - 1] == ']') {
        int depth = 0;
        while (i > 0) {
          --i;
          if (body[i] == ']') ++depth;
          if (body[i] == '[' && --depth == 0) break;
        }
      }
      if (i == 0 || !is_ident(body[i - 1])) continue;
      LockSite site;
      site.name = read_ident_backward(body, i - 1);
      site.pos = base + at;
      site.acquire = p.acquire;
      if (!site.name.empty()) sites.push_back(site);
    }
  }
  std::sort(sites.begin(), sites.end(),
            [](const LockSite& a, const LockSite& b) { return a.pos < b.pos; });
  return sites;
}

void check_one_lock_across_suspension(const FlowContext& ctx,
                                      const FunctionCfg& fn,
                                      std::vector<Finding>* out) {
  if (!fn.is_coroutine || fn.nodes.size() <= 2) return;

  // Collect acquisition/release sites per node; facts are acquisition-site
  // indices so the report can name the exact acquisition line.
  struct Acq {
    std::size_t node;
    LockSite site;
  };
  std::vector<Acq> acqs;
  std::vector<std::vector<LockSite>> releases(fn.nodes.size());
  std::vector<std::string> bodies(fn.nodes.size());
  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    const CfgNode& node = fn.nodes[i];
    if (node.hi <= node.lo) continue;
    bodies[i] = masked_node_text(ctx.stripped, ctx.cfgs, fn, node);
    for (LockSite& site : node_lock_sites(bodies[i], node.lo)) {
      if (site.acquire) {
        // Only a co_awaited acquisition takes the lock (a bare one is
        // missing-co-await's finding, not a held region).
        if (!node.suspends) continue;
        acqs.push_back(Acq{i, std::move(site)});
      } else {
        releases[i].push_back(std::move(site));
      }
    }
    // Summary leg: a callee with a net lock effect extends or shrinks the
    // held set here — `co_await grab(mu_)` acquires, `drop(mu_)` releases.
    for (const NodeCall& call : find_calls(bodies[i])) {
      const FunctionSummary callee = summary_for_call(
          ctx.index.call_graph, ctx.index.summaries, call.name);
      if (callee.havoc) continue;
      if (callee.coroutine && !call.awaited) continue;  // task not run
      const auto arg_name = [&](int k) -> std::string {
        const auto uk = static_cast<std::size_t>(k);
        return uk < call.args.size() ? call.args[uk] : std::string();
      };
      std::set<std::string> acq_names(callee.lock_acquire_names);
      for (const int k : callee.lock_acquire_params) {
        const std::string n = arg_name(k);
        if (!n.empty()) acq_names.insert(n);
      }
      std::set<std::string> rel_names(callee.lock_release_names);
      for (const int k : callee.lock_release_params) {
        const std::string n = arg_name(k);
        if (!n.empty()) rel_names.insert(n);
      }
      for (const std::string& n : acq_names) {
        LockSite site;
        site.pos = node.lo + call.pos;
        site.name = n;
        site.acquire = true;
        acqs.push_back(Acq{i, std::move(site)});
      }
      for (const std::string& n : rel_names) {
        LockSite site;
        site.pos = node.lo + call.pos;
        site.name = n;
        site.acquire = false;
        releases[i].push_back(std::move(site));
      }
    }
  }
  if (acqs.empty()) return;

  GenKill gk(fn.nodes.size());
  for (std::size_t a = 0; a < acqs.size(); ++a) {
    gk.gen[acqs[a].node].insert(static_cast<int>(a));
  }
  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    for (const LockSite& rel : releases[i]) {
      for (std::size_t a = 0; a < acqs.size(); ++a) {
        if (acqs[a].site.name == rel.name) {
          gk.kill[i].insert(static_cast<int>(a));
        }
      }
    }
  }
  const auto in = solve(ctx, fn, gk);

  for (std::size_t i = 0; i < fn.nodes.size(); ++i) {
    const CfgNode& node = fn.nodes[i];
    if (!node.suspends || in[i].empty()) continue;
    // Only a suspension that can actually park blocks other tasks behind
    // the lock: awaiting a callee whose every overload is a
    // never-suspending coroutine completes synchronously and is exempt.
    bool parks = !find_word(bodies[i], "co_yield").empty();
    for (const std::size_t at : find_word(bodies[i], "co_await")) {
      if (parks) break;
      parks = awaited_expr_may_suspend(bodies[i], at, ctx.index.call_graph,
                                       ctx.index.summaries);
    }
    if (!parks) continue;
    const std::size_t susp =
        node.lo + std::min(bodies[i].find("co_await"),
                           bodies[i].find("co_yield"));
    // One report per lock name held here, at the suspension site.
    std::set<std::string> reported;
    for (int a : in[i]) {
      const Acq& acq = acqs[static_cast<std::size_t>(a)];
      if (!reported.insert(acq.site.name).second) continue;
      add_at(out, "lock-across-suspension", ctx.line_starts, susp,
             "'" + acq.site.name + "' (acquired at line " +
                 std::to_string(line_of(ctx.line_starts, acq.site.pos)) +
                 ") is held across this suspension point: while the task is "
                 "parked, any task that needs the lock deadlocks behind it; "
                 "release before suspending or keep the critical section "
                 "synchronous");
    }
  }
}

// ---------------------------------------------------------------------------
// determinism-taint

// The nondeterminism-source vocabulary (range_has_taint_source,
// taint_source_label) lives in taint_sources.hpp, shared with the function
// summary pass so caller-side checks and callee summaries agree.

/// Sink call names: scheduling and every trace/metrics publication path.
bool is_sink_name(std::string_view w) {
  return w == "schedule" || w == "schedule_at" || w == "add" ||
         w == "observe" || w == "record" || w == "emit" || w == "trace" ||
         w == "publish" || w == "log";
}

struct TaintEvent {
  enum class Kind { kAssign, kSink };
  Kind kind = Kind::kAssign;
  std::size_t pos = 0;      // in node-local text
  int lhs = -1;             // kAssign
  bool compound = false;    // kAssign: `+=` etc. never un-taints
  std::size_t rhs_lo = 0, rhs_hi = 0;  // kAssign rhs / kSink args
  std::string sink_name;    // kSink
};

struct NodePlan {
  std::string body;
  std::vector<TaintEvent> events;   // sorted by pos
  std::vector<int> loop_taints;     // range-for over unordered container
  std::vector<NodeCall> calls;      // call sites (for summary taint)
  std::vector<int> force_taints;    // args matching callee tainted out-params
};

class TaintAnalysis {
 public:
  TaintAnalysis(const FlowContext& ctx, const FunctionCfg& fn)
      : ctx_(ctx), fn_(fn) {}

  void run(std::vector<Finding>* out) {
    plans_.resize(fn_.nodes.size());
    bool interesting = false;
    for (std::size_t i = 0; i < fn_.nodes.size(); ++i) {
      build_plan(i);
      interesting = interesting || !plans_[i].events.empty() ||
                    !plans_[i].loop_taints.empty();
    }
    if (!interesting) return;

    DataflowStats stats;
    const auto in = solve_forward(
        fn_,
        [this](int idx, const FactSet& in_set) {
          return transfer(static_cast<std::size_t>(idx), in_set);
        },
        &stats);
    if (ctx_.stats) {
      ctx_.stats->dataflow_solves += 1;
      ctx_.stats->dataflow_bailouts += stats.capped ? 1 : 0;
    }

    for (std::size_t i = 0; i < fn_.nodes.size(); ++i) {
      report_node(i, in[i], out);
    }
  }

 private:
  int id_of(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(names_.size());
    ids_.emplace(name, id);
    names_.push_back(name);
    return id;
  }

  /// A call in [lo, hi) whose summary says the return value is tainted,
  /// or nullptr.
  const NodeCall* tainted_call_in(const NodePlan& plan, std::size_t lo,
                                  std::size_t hi,
                                  std::string* label) const {
    for (const NodeCall& call : plan.calls) {
      if (call.pos < lo || call.pos >= hi) continue;
      const FunctionSummary callee = summary_for_call(
          ctx_.index.call_graph, ctx_.index.summaries, call.name);
      if (callee.havoc || !callee.returns_tainted) continue;
      if (label) *label = callee.taint_label;
      return &call;
    }
    return nullptr;
  }

  bool rhs_tainted(const NodePlan& plan, const TaintEvent& ev,
                   const FactSet& cur) const {
    if (range_has_taint_source(plan.body, ev.rhs_lo, ev.rhs_hi)) return true;
    for (int v : cur) {
      if (has_word_in(plan.body, ev.rhs_lo, ev.rhs_hi,
                      names_[static_cast<std::size_t>(v)])) {
        return true;
      }
    }
    return tainted_call_in(plan, ev.rhs_lo, ev.rhs_hi, nullptr) != nullptr;
  }

  FactSet transfer(std::size_t idx, const FactSet& in_set) {
    const NodePlan& plan = plans_[idx];
    FactSet cur = in_set;
    for (int v : plan.loop_taints) cur.insert(v);
    for (int v : plan.force_taints) cur.insert(v);
    for (const TaintEvent& ev : plan.events) {
      if (ev.kind != TaintEvent::Kind::kAssign) continue;
      if (rhs_tainted(plan, ev, cur)) {
        cur.insert(ev.lhs);
      } else if (!ev.compound) {
        cur.erase(ev.lhs);  // overwritten with a clean value
      }
    }
    return cur;
  }

  void build_plan(std::size_t idx) {
    const CfgNode& node = fn_.nodes[idx];
    NodePlan& plan = plans_[idx];
    if (node.hi <= node.lo) return;
    plan.body = masked_node_text(ctx_.stripped, ctx_.cfgs, fn_, node);
    plan.calls = find_calls(plan.body);
    // A callee writing taint through a by-reference out-parameter taints
    // the matching argument name for the rest of the function.
    for (const NodeCall& call : plan.calls) {
      const FunctionSummary callee = summary_for_call(
          ctx_.index.call_graph, ctx_.index.summaries, call.name);
      if (callee.havoc || callee.tainted_out_params.empty()) continue;
      for (const int k : callee.tainted_out_params) {
        const auto uk = static_cast<std::size_t>(k);
        if (uk < call.args.size() && !call.args[uk].empty()) {
          plan.force_taints.push_back(id_of(call.args[uk]));
        }
      }
    }
    collect_loop_taints(node, &plan);
    collect_assigns(&plan);
    collect_sinks(&plan);
    std::sort(plan.events.begin(), plan.events.end(),
              [](const TaintEvent& a, const TaintEvent& b) {
                return a.pos < b.pos;
              });
  }

  /// `for (decl : container)` headers over an unordered container taint
  /// the loop variable(s): their values are stable, but the *order* they
  /// arrive in is not, and anything accumulated from them inherits it.
  void collect_loop_taints(const CfgNode& node, NodePlan* plan) {
    if (node.kind != CfgNode::Kind::kCondition) return;
    const std::string& body = plan->body;
    const std::size_t kw = skip_spaces(body, 0);
    if (read_ident(body, kw) != "for") return;
    const std::size_t open = body.find('(', kw);
    if (open == npos) return;
    int depth = 0;
    std::size_t colon = npos;
    for (std::size_t i = open; i < body.size(); ++i) {
      const char c = body[i];
      if (c == '(' || c == '<' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == '>' || c == ']' || c == '}') --depth;
      if (c == ';') return;  // classic for loop
      if (c == ':' && depth == 1 &&
          !(i + 1 < body.size() && body[i + 1] == ':') &&
          !(i > 0 && body[i - 1] == ':')) {
        colon = i;
        break;
      }
    }
    if (colon == npos) return;
    const std::string container = trailing_ident(
        body.substr(colon + 1, body.rfind(')') - colon - 1));
    if (container.empty() || !ctx_.index.unordered_names.contains(container)) {
      return;
    }
    // Loop variable(s): structured binding `[a, b]` or a single declarator.
    const std::string decl = body.substr(open + 1, colon - open - 1);
    const std::size_t bracket = decl.find('[');
    if (bracket != npos) {
      const std::size_t close = decl.find(']', bracket);
      std::size_t p = bracket + 1;
      while (p < close) {
        p = skip_spaces(decl, p);
        if (p >= close) break;
        if (is_ident_start(decl[p])) {
          std::size_t e = p;
          const std::string name = read_ident(decl, p, &e);
          plan->loop_taints.push_back(id_of(name));
          p = e;
        } else {
          ++p;
        }
      }
    } else {
      const std::string name = trailing_ident(decl);
      if (!name.empty()) plan->loop_taints.push_back(id_of(name));
    }
  }

  void collect_assigns(NodePlan* plan) {
    const std::string& body = plan->body;
    // Segment on top-level ';' so `a = f(x); b = a;` updates in order.
    std::size_t begin = 0;
    int depth = 0;
    for (std::size_t i = 0; i <= body.size(); ++i) {
      const char c = i < body.size() ? body[i] : ';';
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (!(c == ';' && depth <= 0)) continue;
      parse_assign(body, begin, i, plan);
      begin = i + 1;
    }
  }

  void parse_assign(const std::string& body, std::size_t lo, std::size_t hi,
                    NodePlan* plan) {
    int depth = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const char c = body[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c != '=' || depth != 0) continue;
      const char prev = i > lo ? body[i - 1] : '\0';
      const char next = i + 1 < hi ? body[i + 1] : '\0';
      if (next == '=' || prev == '=' || prev == '!' || prev == '<' ||
          prev == '>') {
        if (prev == '=' || next == '=') ++i;  // comparison, skip both chars
        continue;
      }
      const bool compound = prev == '+' || prev == '-' || prev == '*' ||
                            prev == '/' || prev == '%' || prev == '&' ||
                            prev == '|' || prev == '^';
      std::size_t lhs_end = i - (compound ? 1 : 0);
      const std::string lhs =
          trailing_ident(body.substr(lo, lhs_end - lo));
      if (lhs.empty() || !is_ident_start(lhs[0])) return;
      TaintEvent ev;
      ev.kind = TaintEvent::Kind::kAssign;
      ev.pos = i;
      ev.lhs = id_of(lhs);
      ev.compound = compound;
      ev.rhs_lo = i + 1;
      ev.rhs_hi = hi;
      plan->events.push_back(std::move(ev));
      return;  // one assignment per sub-statement
    }
  }

  void collect_sinks(NodePlan* plan) {
    const std::string& body = plan->body;
    for (std::size_t i = 0; i < body.size(); ++i) {
      if (!is_ident_start(body[i]) || (i > 0 && is_ident(body[i - 1]))) {
        continue;
      }
      std::size_t e = i;
      const std::string w = read_ident(body, i, &e);
      if (is_sink_name(w)) {
        const std::size_t open = skip_spaces(body, e);
        if (open < body.size() && body[open] == '(') {
          const std::size_t past = skip_balanced(body, open, '(', ')');
          if (past != npos) {
            TaintEvent ev;
            ev.kind = TaintEvent::Kind::kSink;
            ev.pos = i;
            ev.sink_name = w;
            ev.rhs_lo = open + 1;
            ev.rhs_hi = past - 1;
            plan->events.push_back(std::move(ev));
          }
        }
      }
      i = e;
    }
  }

  void report_node(std::size_t idx, const FactSet& in_set,
                   std::vector<Finding>* out) {
    const NodePlan& plan = plans_[idx];
    if (plan.events.empty()) return;
    FactSet cur = in_set;
    for (int v : plan.loop_taints) cur.insert(v);
    for (int v : plan.force_taints) cur.insert(v);
    for (const TaintEvent& ev : plan.events) {
      if (ev.kind == TaintEvent::Kind::kAssign) {
        if (rhs_tainted(plan, ev, cur)) {
          cur.insert(ev.lhs);
        } else if (!ev.compound) {
          cur.erase(ev.lhs);
        }
        continue;
      }
      // Sink: flag a tainted variable argument, a direct source use, or a
      // call whose summary says the return value is tainted.
      std::string carrier;
      for (int v : cur) {
        if (has_word_in(plan.body, ev.rhs_lo, ev.rhs_hi,
                        names_[static_cast<std::size_t>(v)])) {
          carrier = names_[static_cast<std::size_t>(v)];
          break;
        }
      }
      const bool direct =
          carrier.empty() &&
          range_has_taint_source(plan.body, ev.rhs_lo, ev.rhs_hi);
      std::string callee_label;
      const NodeCall* tainted_call =
          carrier.empty() && !direct
              ? tainted_call_in(plan, ev.rhs_lo, ev.rhs_hi, &callee_label)
              : nullptr;
      if (carrier.empty() && !direct && tainted_call == nullptr) continue;
      std::string message;
      if (!carrier.empty()) {
        message = "'" + carrier +
                  "' carries a value derived from a nondeterministic source "
                  "into '" +
                  ev.sink_name +
                  "()': the result can differ run to run and break "
                  "trace/schedule reproducibility; derive it from "
                  "sim::Engine::now() or sim::Rng instead";
      } else if (direct) {
        message = std::string("argument of '") + ev.sink_name +
                  "()' comes straight from " +
                  taint_source_label(plan.body, ev.rhs_lo, ev.rhs_hi) +
                  ": the result can differ run to run and break "
                  "trace/schedule reproducibility; derive it from "
                  "sim::Engine::now() or sim::Rng instead";
      } else {
        message = std::string("argument of '") + ev.sink_name +
                  "()' comes from '" + tainted_call->name +
                  "()', whose result derives from " +
                  (callee_label.empty() ? "a nondeterministic source"
                                        : callee_label) +
                  ": the result can differ run to run and break "
                  "trace/schedule reproducibility; derive it from "
                  "sim::Engine::now() or sim::Rng instead";
      }
      add_at(out, "determinism-taint", ctx_.line_starts,
             fn_.nodes[idx].lo + ev.pos, std::move(message));
    }
  }

  const FlowContext& ctx_;
  const FunctionCfg& fn_;
  std::map<std::string, int> ids_;
  std::vector<std::string> names_;
  std::vector<NodePlan> plans_;
};

// ---------------------------------------------------------------------------
// blocking-loop-in-coroutine

/// Condition text of an unbounded-shaped loop: `true`/`1`, or a bare flag
/// (`running`, `!stop`) whose name is returned in `*flag` so the caller can
/// check whether the body ever touches it.
bool unbounded_condition(const std::string& cond, std::string* flag) {
  std::string c = trim(cond);
  if (c == "true" || c == "1") return true;
  if (!c.empty() && c[0] == '!') c = trim(c.substr(1));
  if (c.empty()) return false;
  if (!is_ident_start(c[0])) return false;
  if (!std::all_of(c.begin(), c.end(), [](char ch) { return is_ident(ch); })) {
    return false;
  }
  *flag = c;
  return true;
}

void check_one_blocking_loop(const FlowContext& ctx, const FunctionCfg& fn,
                             std::vector<Finding>* out) {
  if (!fn.is_coroutine || fn.body_hi <= fn.body_lo) return;
  const std::string body = masked_function_text(ctx.stripped, ctx.cfgs, fn);

  struct Loop {
    std::size_t kw = 0;       // loop keyword position (body-local)
    std::size_t lo = 0;       // body region
    std::size_t hi = 0;
    std::string flag;         // bare-flag condition, "" otherwise
  };
  std::vector<Loop> loops;

  for (const std::size_t kw : find_word(body, "while")) {
    const std::size_t open = skip_spaces(body, kw + 5);
    if (open >= body.size() || body[open] != '(') continue;
    const std::size_t past = skip_balanced(body, open, '(', ')');
    if (past == npos) continue;
    Loop loop;
    loop.kw = kw;
    if (!unbounded_condition(body.substr(open + 1, past - open - 2),
                             &loop.flag)) {
      continue;
    }
    const std::size_t prev = prev_nonspace(body, kw);
    if (prev != npos && body[prev] == '}') {
      // `do { ... } while (cond);` — the body precedes the keyword.
      const std::size_t blo = rskip_balanced(body, prev, '{', '}');
      if (blo == npos) continue;
      loop.lo = blo + 1;
      loop.hi = prev;
    } else {
      const std::size_t blo = skip_spaces(body, past);
      if (blo >= body.size()) continue;
      if (body[blo] == '{') {
        const std::size_t bhi = skip_balanced(body, blo, '{', '}');
        if (bhi == npos) continue;
        loop.lo = blo + 1;
        loop.hi = bhi - 1;
      } else {
        const std::size_t bhi = body.find(';', blo);
        if (bhi == npos) continue;
        loop.lo = blo;
        loop.hi = bhi;
      }
    }
    loops.push_back(std::move(loop));
  }

  for (const std::size_t kw : find_word(body, "for")) {
    const std::size_t open = skip_spaces(body, kw + 3);
    if (open >= body.size() || body[open] != '(') continue;
    const std::size_t past = skip_balanced(body, open, '(', ')');
    if (past == npos) continue;
    // `for (init; cond; step)` with an empty condition never terminates on
    // its own; a range-for or a conditioned for is bounded (or at least
    // data-dependent) and skipped.
    int depth = 0;
    std::vector<std::size_t> semis;
    for (std::size_t i = open; i < past - 1; ++i) {
      const char c = body[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == ';' && depth == 1) semis.push_back(i);
    }
    if (semis.size() != 2) continue;
    if (!trim(body.substr(semis[0] + 1, semis[1] - semis[0] - 1)).empty()) {
      continue;
    }
    Loop loop;
    loop.kw = kw;
    const std::size_t blo = skip_spaces(body, past);
    if (blo >= body.size()) continue;
    if (body[blo] == '{') {
      const std::size_t bhi = skip_balanced(body, blo, '{', '}');
      if (bhi == npos) continue;
      loop.lo = blo + 1;
      loop.hi = bhi - 1;
    } else {
      const std::size_t bhi = body.find(';', blo);
      if (bhi == npos) continue;
      loop.lo = blo;
      loop.hi = bhi;
    }
    loops.push_back(std::move(loop));
  }

  for (const Loop& loop : loops) {
    // An explicit exit makes the loop bounded-ish; a bare-flag condition
    // whose flag the body touches can flip; both are skipped — this check
    // is for loops that provably never leave on their own.
    bool escapes = false;
    for (const std::string_view w :
         {"break", "return", "co_return", "goto", "throw"}) {
      if (has_word_in(body, loop.lo, loop.hi, w)) {
        escapes = true;
        break;
      }
    }
    if (escapes) continue;
    if (!loop.flag.empty() && has_word_in(body, loop.lo, loop.hi, loop.flag)) {
      continue;
    }
    if (has_word_in(body, loop.lo, loop.hi, "co_yield")) continue;
    bool any_await = false;
    bool parks = false;
    for (const std::size_t at : find_word(body, "co_await")) {
      if (at < loop.lo || at >= loop.hi) continue;
      any_await = true;
      if (awaited_expr_may_suspend(body, at, ctx.index.call_graph,
                                   ctx.index.summaries)) {
        parks = true;
        break;
      }
    }
    if (parks) continue;
    const std::string reason =
        any_await
            ? "every co_await in this loop awaits a never-suspending "
              "coroutine and completes synchronously"
            : "no suspension point on any path through this loop";
    add_at(out, "blocking-loop-in-coroutine", ctx.line_starts,
           fn.body_lo + loop.kw,
           reason +
               ": the cooperative event loop never regains control while "
               "this coroutine spins, starving every other task and "
               "freezing simulated time; co_await a timer, channel, or "
               "I/O op inside the loop");
  }
}

}  // namespace

void check_suspension_lifetime(const FlowContext& ctx,
                               std::vector<Finding>* out) {
  for (const FunctionCfg& fn : ctx.cfgs) {
    check_one_suspension_lifetime(ctx, fn, out);
  }
}

void check_lock_across_suspension(const FlowContext& ctx,
                                  std::vector<Finding>* out) {
  for (const FunctionCfg& fn : ctx.cfgs) {
    check_one_lock_across_suspension(ctx, fn, out);
  }
}

void check_determinism_taint(const FlowContext& ctx,
                             std::vector<Finding>* out) {
  for (const FunctionCfg& fn : ctx.cfgs) {
    if (fn.nodes.size() <= 2) continue;
    TaintAnalysis analysis(ctx, fn);
    analysis.run(out);
  }
}

void check_blocking_loop(const FlowContext& ctx, std::vector<Finding>* out) {
  for (const FunctionCfg& fn : ctx.cfgs) {
    check_one_blocking_loop(ctx, fn, out);
  }
}

}  // namespace paraio::lint
