// Forward dataflow over a FunctionCfg: a small worklist solver on a
// powerset lattice of interned facts, to fixpoint.
//
// Two layers:
//
//  * solve_forward(cfg, transfer)   — generic: `transfer` maps (node index,
//    IN set) to the node's OUT set and must be monotone in IN (adding facts
//    to IN may only add facts to OUT); with a finite fact universe the
//    worklist then terminates.  The iteration cap is a belt-and-braces
//    guard against a non-monotone transfer — a capped solve is reported in
//    DataflowStats and surfaced as an internal error by the driver, never
//    silently truncated.
//
//  * GenKill                        — the common special case: per-node
//    constant gen/kill sets (OUT = (IN \ kill) ∪ gen).
//
// Fact meaning is up to the check: suspension-lifetime interns suspension
// sites, lock-across-suspension interns (lock, acquisition-site) pairs,
// determinism-taint interns tainted variable names.
#pragma once

#include <cstddef>
#include <functional>
#include <set>
#include <vector>

#include "paraio_lint/cfg.hpp"

namespace paraio::lint {

using FactSet = std::set<int>;

struct DataflowStats {
  std::size_t node_visits = 0;  // total worklist pops
  bool capped = false;          // iteration cap hit before fixpoint
};

/// IN set per node (indexed like cfg.nodes) at fixpoint.  The entry node's
/// IN is empty.  `transfer(node_index, in)` returns the node's OUT set.
std::vector<FactSet> solve_forward(
    const FunctionCfg& cfg,
    const std::function<FactSet(int, const FactSet&)>& transfer,
    DataflowStats* stats = nullptr);

/// Per-node constant gen/kill sets: OUT = (IN \ kill) ∪ gen.
struct GenKill {
  std::vector<FactSet> gen;   // indexed like cfg.nodes
  std::vector<FactSet> kill;

  explicit GenKill(std::size_t nodes) : gen(nodes), kill(nodes) {}

  std::vector<FactSet> solve(const FunctionCfg& cfg,
                             DataflowStats* stats = nullptr) const;
};

}  // namespace paraio::lint
