// Pass 4's flow-sensitive checks, built on the statement-level CFG
// (cfg.hpp), the forward dataflow solver (dataflow.hpp), and — at call
// sites — the interprocedural function summaries (summaries.hpp):
//
//   * suspension-lifetime      — a reference/pointer parameter of a
//     detached coroutine, or a by-reference capture (or `this` via a
//     default capture) of a coroutine lambda, read on a path after a
//     suspension point: the frame may outlive what the name refers to.
//     Summary-aware: a danger name handed to a callee whose summary says
//     the matching parameter escapes (is read after the callee's own
//     suspension) is flagged at the call site.
//   * lock-across-suspension   — a sim::Mutex held region that contains a
//     further co_await: while this task is parked, any task that needs the
//     lock deadlocks behind it.  Static counterpart of the runtime
//     DeadlockDetector.  (Semaphore tokens are exempt: holding one across
//     a delay is how the hw layer models device service time.)
//     Summary-aware: a callee net-acquiring a lock (`co_await grab(mu_)`)
//     extends the held set, a net-releasing one (`drop(mu_)`) shrinks it,
//     and a suspension only fires the check when its awaited expression
//     can actually park.
//   * determinism-taint        — a value derived from wall-clock, libc
//     randomness, pointer identity, or unordered-container iteration order
//     propagated through assignments into a trace/schedule/metrics sink.
//     Static counterpart of golden traces and perturbation testing.
//     Summary-aware: a call whose summary returns taint seeds the rhs, and
//     callee-tainted out-parameters taint the matching argument names.
//   * blocking-loop-in-coroutine — an unbounded-shaped loop in a coroutine
//     with no parking suspension on any path: the cooperative event loop
//     starves.  A co_await only counts if its awaited expression can
//     actually park (summaries again).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "paraio_lint/cfg.hpp"
#include "paraio_lint/lint.hpp"

namespace paraio::lint {

struct FlowContext {
  const std::string& stripped;
  const std::vector<std::size_t>& line_starts;
  const ProjectIndex& index;
  const std::vector<FunctionCfg>& cfgs;
  /// Argument regions of detached spawns with no same-block `.run()` after
  /// them — the spawned frame outlives the spawning stack.
  const std::vector<std::pair<std::size_t, std::size_t>>& escaping_spawns;
  LintRunStats* stats;  // may be nullptr
};

void check_suspension_lifetime(const FlowContext& ctx,
                               std::vector<Finding>* out);
void check_lock_across_suspension(const FlowContext& ctx,
                                  std::vector<Finding>* out);
void check_determinism_taint(const FlowContext& ctx,
                             std::vector<Finding>* out);
void check_blocking_loop(const FlowContext& ctx, std::vector<Finding>* out);

}  // namespace paraio::lint
