// Pass 3's flow-sensitive checks, built on the statement-level CFG
// (cfg.hpp) and the forward dataflow solver (dataflow.hpp):
//
//   * suspension-lifetime      — a reference/pointer parameter of a
//     detached coroutine, or a by-reference capture (or `this` via a
//     default capture) of a coroutine lambda, read on a path after a
//     suspension point: the frame may outlive what the name refers to.
//   * lock-across-suspension   — a sim::Mutex held region that contains a
//     further co_await: while this task is parked, any task that needs the
//     lock deadlocks behind it.  Static counterpart of the runtime
//     DeadlockDetector.  (Semaphore tokens are exempt: holding one across
//     a delay is how the hw layer models device service time.)
//   * determinism-taint        — a value derived from wall-clock, libc
//     randomness, pointer identity, or unordered-container iteration order
//     propagated through assignments into a trace/schedule/metrics sink.
//     Static counterpart of golden traces and perturbation testing.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "paraio_lint/cfg.hpp"
#include "paraio_lint/lint.hpp"

namespace paraio::lint {

struct FlowContext {
  const std::string& stripped;
  const std::vector<std::size_t>& line_starts;
  const ProjectIndex& index;
  const std::vector<FunctionCfg>& cfgs;
  /// Argument regions of detached spawns with no same-block `.run()` after
  /// them — the spawned frame outlives the spawning stack.
  const std::vector<std::pair<std::size_t, std::size_t>>& escaping_spawns;
  LintRunStats* stats;  // may be nullptr
};

void check_suspension_lifetime(const FlowContext& ctx,
                               std::vector<Finding>* out);
void check_lock_across_suspension(const FlowContext& ctx,
                                  std::vector<Finding>* out);
void check_determinism_taint(const FlowContext& ctx,
                             std::vector<Finding>* out);

}  // namespace paraio::lint
