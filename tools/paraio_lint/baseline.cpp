#include "paraio_lint/baseline.hpp"

#include <cstddef>

namespace paraio::lint {

namespace {

/// Value of the string literal that follows `"key":` at or after `from`,
/// or "" when absent before `until`.  Assumes to_sarif()'s output shape:
/// no whitespace around ':' and no escaped quotes inside the values we
/// care about (rule ids and repo-relative paths contain neither).
std::string string_value_after(const std::string& text, std::string_view key,
                               std::size_t from, std::size_t until,
                               std::size_t* value_pos = nullptr) {
  // Built by append rather than operator+ chains: GCC 12's -Wrestrict
  // false-positives on `const char* + std::string&&` under -O2.
  std::string needle = "\"";
  needle += key;
  needle += "\":\"";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos || at >= until) return "";
  const std::size_t begin = at + needle.size();
  const std::size_t end = text.find('"', begin);
  if (end == std::string::npos) return "";
  if (value_pos) *value_pos = at;
  return text.substr(begin, end - begin);
}

/// Same file modulo leading-directory slack: exact match, or one path is a
/// `/`-aligned suffix of the other (the linter may be invoked from the repo
/// root or from a subdirectory).
bool same_file(const std::string& a, const std::string& b) {
  if (a == b) return true;
  const auto suffix_of = [](const std::string& shorter,
                            const std::string& longer) {
    if (shorter.size() >= longer.size()) return false;
    return longer.size() - shorter.size() >= 1 &&
           longer.compare(longer.size() - shorter.size(), shorter.size(),
                          shorter) == 0 &&
           longer[longer.size() - shorter.size() - 1] == '/';
  };
  return suffix_of(a, b) || suffix_of(b, a);
}

}  // namespace

std::vector<BaselineEntry> parse_baseline(const std::string& sarif) {
  std::vector<BaselineEntry> entries;
  const std::size_t results = sarif.find("\"results\":[");
  if (results == std::string::npos) return entries;
  std::size_t pos = results;
  while (true) {
    std::size_t rule_at = 0;
    const std::string rule =
        string_value_after(sarif, "ruleId", pos, sarif.size(), &rule_at);
    if (rule.empty()) break;
    // The matching uri is the first one after this ruleId and before the
    // next result's ruleId.
    std::size_t next_rule = sarif.find("\"ruleId\":\"", rule_at + 1);
    if (next_rule == std::string::npos) next_rule = sarif.size();
    const std::string uri =
        string_value_after(sarif, "uri", rule_at, next_rule);
    if (!uri.empty()) entries.push_back(BaselineEntry{rule, uri});
    pos = next_rule;
  }
  return entries;
}

std::vector<BaselineEntry> apply_baseline(
    const std::vector<BaselineEntry>& entries,
    std::vector<Finding>* findings) {
  std::vector<std::size_t> hits(entries.size(), 0);
  for (Finding& f : *findings) {
    if (f.suppressed) continue;
    for (std::size_t i = 0; i < entries.size(); ++i) {
      if (entries[i].rule == f.check && same_file(entries[i].uri, f.file)) {
        f.baselined = true;
        ++hits[i];
        break;
      }
    }
  }
  std::vector<BaselineEntry> stale;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (hits[i] == 0) stale.push_back(entries[i]);
  }
  return stale;
}

}  // namespace paraio::lint
