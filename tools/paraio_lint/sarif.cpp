#include "paraio_lint/sarif.hpp"

#include <sstream>

namespace paraio::lint {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* level_of(Severity s) {
  return s == Severity::kError ? "error" : "warning";
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "{\"version\":\"2.1.0\","
         "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
         "\"runs\":[{\"tool\":{\"driver\":{"
         "\"name\":\"paraio-lint\","
         "\"informationUri\":\"docs/LINTING.md\","
         "\"rules\":[";
  bool first = true;
  for (const CheckInfo& c : checks()) {
    if (!first) out << ",";
    first = false;
    out << "{\"id\":\"" << json_escape(c.id) << "\","
        << "\"shortDescription\":{\"text\":\"" << json_escape(c.summary)
        << "\"},"
        << "\"fullDescription\":{\"text\":\"" << json_escape(c.detail)
        << "\"},"
        << "\"defaultConfiguration\":{\"level\":\"" << level_of(c.severity)
        << "\"}}";
  }
  out << "]}},\"results\":[";
  first = true;
  for (const Finding& f : findings) {
    if (!first) out << ",";
    first = false;
    out << "{\"ruleId\":\"" << json_escape(f.check) << "\","
        << "\"level\":\"" << level_of(f.severity) << "\","
        << "\"message\":{\"text\":\"" << json_escape(f.message) << "\"},"
        << "\"locations\":[{\"physicalLocation\":{"
        << "\"artifactLocation\":{\"uri\":\"" << json_escape(f.file) << "\"},"
        << "\"region\":{\"startLine\":" << f.line
        << ",\"startColumn\":" << (f.col == 0 ? 1 : f.col) << "}}}]";
    if (f.suppressed) {
      out << ",\"suppressions\":[{\"kind\":\"inSource\"}]";
    } else if (f.baselined) {
      // Accepted via the checked-in baseline file (--baseline=), i.e. a
      // suppression recorded outside the source text.
      out << ",\"suppressions\":[{\"kind\":\"external\"}]";
    }
    out << "}";
  }
  out << "]}]}";
  return out.str();
}

}  // namespace paraio::lint
