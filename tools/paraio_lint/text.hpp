// Token-level text helpers shared by the linter's passes (index, CFG,
// checks).  Everything operates on comment/string-stripped source, offsets
// are bytes, lines and columns are 1-based.
#pragma once

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

namespace paraio::lint::text {

inline bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

inline std::string trim(std::string s) {
  const auto b = s.find_first_not_of(" \t");
  const auto e = s.find_last_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

/// 0-based offsets of each line start, for offset -> line translation.
inline std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

inline std::size_t line_of(const std::vector<std::size_t>& starts,
                           std::size_t pos) {
  auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<std::size_t>(it - starts.begin());  // 1-based
}

inline std::size_t col_of(const std::vector<std::size_t>& starts,
                          std::size_t pos) {
  const std::size_t line = line_of(starts, pos);
  return pos - starts[line - 1] + 1;  // 1-based
}

/// Position just past the matching closer for the opener at `open`.
/// Returns npos when unbalanced (callers then give up on that site).
inline std::size_t skip_balanced(const std::string& text, std::size_t open,
                                 char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_ch) ++depth;
    if (text[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

/// Opener position matching the closer at `close`, scanning backward.
/// Returns npos when unbalanced.
inline std::size_t rskip_balanced(const std::string& text, std::size_t close,
                                  char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t i = close + 1; i > 0;) {
    --i;
    if (text[i] == close_ch) ++depth;
    if (text[i] == open_ch && --depth == 0) return i;
  }
  return std::string::npos;
}

inline std::size_t skip_spaces(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n')) {
    ++pos;
  }
  return pos;
}

/// Last non-whitespace position strictly before `pos`, or npos.
inline std::size_t prev_nonspace(const std::string& text, std::size_t pos) {
  while (pos > 0) {
    --pos;
    const char c = text[pos];
    if (c != ' ' && c != '\t' && c != '\n') return pos;
  }
  return std::string::npos;
}

inline std::string read_ident(const std::string& text, std::size_t pos,
                              std::size_t* end = nullptr) {
  std::size_t i = pos;
  while (i < text.size() && is_ident(text[i])) ++i;
  if (end) *end = i;
  return text.substr(pos, i - pos);
}

/// Identifier ending at (inclusive) `last`, reading backward.  Returns the
/// identifier and sets `*begin` to its first character.
inline std::string read_ident_backward(const std::string& text,
                                       std::size_t last,
                                       std::size_t* begin = nullptr) {
  std::size_t b = last + 1;
  while (b > 0 && is_ident(text[b - 1])) --b;
  if (begin) *begin = b;
  return text.substr(b, last + 1 - b);
}

/// Occurrences of `word` as a whole identifier.
inline std::vector<std::size_t> find_word(const std::string& text,
                                          std::string_view word) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !is_ident(text[after]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = after;
  }
  return out;
}

/// Whether `word` occurs as a whole identifier within [lo, hi).
inline bool has_word_in(const std::string& text, std::size_t lo,
                        std::size_t hi, std::string_view word) {
  std::size_t pos = lo;
  while (pos < hi && (pos = text.find(word, pos)) != std::string::npos) {
    if (pos + word.size() > hi) return false;
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !is_ident(text[after]);
    if (left_ok && right_ok) return true;
    pos = after;
  }
  return false;
}

/// Final identifier of an expression like `fs_.inflight_`, `this->buffers_`,
/// or `*handles` — the name the expression ultimately denotes.
inline std::string trailing_ident(const std::string& expr) {
  std::string e = trim(expr);
  if (e.empty()) return "";
  if (e.back() == ')') return "";  // call result
  std::size_t end = e.size();
  std::size_t begin = end;
  while (begin > 0 && is_ident(e[begin - 1])) --begin;
  return e.substr(begin, end - begin);
}

}  // namespace paraio::lint::text
