// paraio_lint command-line driver.
//
//   paraio_lint [--werror] [--disable=id[,id...]] [--sarif=path]
//               [--list-checks] paths...
//
// Paths may be files or directories (searched recursively for
// .hpp/.h/.cpp/.cc).  Findings print to stdout in compiler format
// (`file:line:col:`); with --sarif= the run is also written as a SARIF
// 2.1.0 log (self-validated before writing).  The exit code is 1 when any
// unsuppressed error (or, with --werror, warning) was found, 2 on
// usage/IO errors, 0 otherwise.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "paraio_lint/lint.hpp"
#include "paraio_lint/sarif.hpp"

namespace fs = std::filesystem;
using paraio::lint::Finding;
using paraio::lint::Severity;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

int usage() {
  std::cerr << "usage: paraio_lint [--werror] [--disable=id[,id...]] "
               "[--sarif=path] [--list-checks] <file-or-dir>...\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  paraio::lint::Options options;
  std::vector<std::string> roots;
  std::string sarif_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
      if (sarif_path.empty()) return usage();
    } else if (arg == "--list-checks") {
      for (const auto& c : paraio::lint::checks()) {
        std::cout << c.id << " ("
                  << (c.severity == Severity::kError ? "error" : "warning")
                  << "): " << c.summary << "\n";
      }
      return 0;
    } else if (arg.rfind("--disable=", 0) == 0) {
      std::stringstream ids(arg.substr(10));
      std::string id;
      while (std::getline(ids, id, ',')) {
        if (!id.empty()) options.disabled.insert(id);
      }
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          paths.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      std::cerr << "paraio_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<paraio::lint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "paraio_lint: cannot read " << p << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back({p, buf.str()});
  }

  const auto index = paraio::lint::index_project(files);
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t suppressed = 0;
  std::vector<Finding> all;
  for (const auto& file : files) {
    for (Finding& f : paraio::lint::lint_file(file, index, options)) {
      if (f.suppressed) {
        ++suppressed;
        all.push_back(std::move(f));
        continue;
      }
      const bool is_error = f.severity == Severity::kError;
      (is_error ? errors : warnings) += 1;
      std::cout << f.file << ":" << f.line << ":"
                << (f.col == 0 ? 1 : f.col) << ": "
                << (is_error ? "error" : "warning") << ": [" << f.check
                << "] " << f.message << "\n";
      all.push_back(std::move(f));
    }
  }
  std::cerr << "paraio_lint: " << files.size() << " file(s), " << errors
            << " error(s), " << warnings << " warning(s), " << suppressed
            << " suppressed\n";
  if (!sarif_path.empty()) {
    const std::string sarif = paraio::lint::to_sarif(all);
    std::string why;
    if (!paraio::obs::validate_json(sarif, &why)) {
      std::cerr << "paraio_lint: internal error: SARIF output is not valid "
                   "JSON: "
                << why << "\n";
      return 2;
    }
    std::ofstream out(sarif_path, std::ios::binary);
    out << sarif << "\n";
    if (!out) {
      std::cerr << "paraio_lint: cannot write " << sarif_path << "\n";
      return 2;
    }
  }
  if (errors > 0 || (werror && warnings > 0)) return 1;
  return 0;
}
