// paraio_lint command-line driver.
//
//   paraio_lint [--werror] [--disable=id[,id...]] [--exclude=sub[,sub...]]
//               [--sarif=path] [--baseline=path] [--lp-report=path]
//               [--stats] [--check-docs=path] [--list-checks]
//               [--explain <id>] paths...
//
// Paths may be files or directories (searched recursively for
// .hpp/.h/.cpp/.cc); `--exclude=` drops any collected path containing one
// of the given substrings (e.g. `--exclude=fixtures` when linting tests/).
// Findings print to stdout in compiler format (`file:line:col:`); with
// --sarif= the run is also written as a SARIF 2.1.0 log (self-validated
// before writing).  `--baseline=` accepts a previous SARIF log: findings
// matching it on (rule, file) are demoted to externally-suppressed, and
// baseline entries matching nothing fail the run as stale.  `--lp-report=`
// writes the ranked cross-LP shared-state audit; `--stats` prints per-pass
// wall time and the call-graph/summary shape to stderr.
//
// Exit codes are stable (ExitCode in lint.hpp): 0 clean, 1 findings /
// stale baseline / doc drift, 2 usage, IO, or internal errors.
// `--explain` and `--check-docs` follow the same contract.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "paraio_lint/baseline.hpp"
#include "paraio_lint/lint.hpp"
#include "paraio_lint/sarif.hpp"

namespace fs = std::filesystem;
using paraio::lint::Finding;
using paraio::lint::kExitClean;
using paraio::lint::kExitFindings;
using paraio::lint::kExitInternalError;
using paraio::lint::Severity;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".h" || ext == ".cpp" || ext == ".cc";
}

int usage() {
  std::cerr << "usage: paraio_lint [--werror] [--disable=id[,id...]] "
               "[--exclude=sub[,sub...]] [--sarif=path] [--baseline=path] "
               "[--lp-report=path] [--stats] [--check-docs=path] "
               "[--list-checks] [--explain <id>] <file-or-dir>...\n";
  return kExitInternalError;
}

void split_commas(const std::string& list, std::vector<std::string>* out) {
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out->push_back(item);
  }
}

int explain(const std::string& id) {
  const paraio::lint::CheckInfo* c = paraio::lint::find_check(id);
  if (c == nullptr) {
    std::cerr << "paraio_lint: unknown check '" << id
              << "' (see --list-checks)\n";
    return kExitInternalError;
  }
  std::cout << c->id << " ("
            << (c->severity == Severity::kError ? "error" : "warning")
            << ")\n  " << c->summary << "\n\n  " << c->detail << "\n";
  return kExitClean;
}

/// Thin IO wrapper over check_docs_text (lint.cpp), which holds the
/// two-way catalog <-> doc drift logic so tests can drive it directly.
int check_docs(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "paraio_lint: cannot read " << path << "\n";
    return kExitInternalError;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return paraio::lint::check_docs_text(buf.str(), path, std::cerr);
}

}  // namespace

int main(int argc, char** argv) {
  bool werror = false;
  bool print_stats = false;
  paraio::lint::Options options;
  std::vector<std::string> roots;
  std::vector<std::string> excludes;
  std::string sarif_path;
  std::string baseline_path;
  std::string lp_report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--werror") {
      werror = true;
    } else if (arg == "--stats") {
      print_stats = true;
    } else if (arg.rfind("--sarif=", 0) == 0) {
      sarif_path = arg.substr(8);
      if (sarif_path.empty()) return usage();
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
      if (baseline_path.empty()) return usage();
    } else if (arg.rfind("--lp-report=", 0) == 0) {
      lp_report_path = arg.substr(12);
      if (lp_report_path.empty()) return usage();
    } else if (arg.rfind("--check-docs=", 0) == 0) {
      return check_docs(arg.substr(13));
    } else if (arg == "--list-checks") {
      for (const auto& c : paraio::lint::checks()) {
        std::cout << c.id << " ("
                  << (c.severity == Severity::kError ? "error" : "warning")
                  << "): " << c.summary << "\n";
      }
      return 0;
    } else if (arg.rfind("--explain=", 0) == 0) {
      return explain(arg.substr(10));
    } else if (arg == "--explain") {
      if (i + 1 >= argc) return usage();
      return explain(argv[i + 1]);
    } else if (arg.rfind("--disable=", 0) == 0) {
      std::vector<std::string> ids;
      split_commas(arg.substr(10), &ids);
      options.disabled.insert(ids.begin(), ids.end());
    } else if (arg.rfind("--exclude=", 0) == 0) {
      split_commas(arg.substr(10), &excludes);
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) return usage();

  std::vector<std::string> paths;
  for (const std::string& root : roots) {
    std::error_code ec;
    if (fs::is_directory(root, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (entry.is_regular_file() && lintable(entry.path())) {
          paths.push_back(entry.path().generic_string());
        }
      }
    } else if (fs::is_regular_file(root, ec)) {
      paths.push_back(root);
    } else {
      std::cerr << "paraio_lint: no such file or directory: " << root << "\n";
      return 2;
    }
  }
  std::erase_if(paths, [&](const std::string& p) {
    return std::any_of(excludes.begin(), excludes.end(),
                       [&](const std::string& sub) {
                         return p.find(sub) != std::string::npos;
                       });
  });
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<paraio::lint::SourceFile> files;
  files.reserve(paths.size());
  for (const std::string& p : paths) {
    std::ifstream in(p, std::ios::binary);
    if (!in) {
      std::cerr << "paraio_lint: cannot read " << p << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back({p, buf.str()});
  }

  std::vector<paraio::lint::BaselineEntry> baseline;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path, std::ios::binary);
    if (!in) {
      std::cerr << "paraio_lint: cannot read baseline " << baseline_path
                << "\n";
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    baseline = paraio::lint::parse_baseline(buf.str());
  }

  paraio::lint::AnalysisStats analysis_stats;
  const auto index = paraio::lint::index_project(files, &analysis_stats);
  paraio::lint::LintRunStats stats;
  std::vector<Finding> all;
  for (const auto& file : files) {
    for (Finding& f :
         paraio::lint::lint_file(file, index, options, &stats)) {
      all.push_back(std::move(f));
    }
  }
  // A header linted through several translation units reports each site
  // once: dedupe before the baseline is matched or anything is emitted.
  paraio::lint::dedupe_findings(&all);

  std::vector<paraio::lint::BaselineEntry> stale;
  if (!baseline_path.empty()) {
    stale = paraio::lint::apply_baseline(baseline, &all);
  }

  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t suppressed = 0;
  std::size_t baselined = 0;
  for (const Finding& f : all) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    if (f.baselined) {
      ++baselined;
      continue;
    }
    const bool is_error = f.severity == Severity::kError;
    (is_error ? errors : warnings) += 1;
    std::cout << f.file << ":" << f.line << ":" << (f.col == 0 ? 1 : f.col)
              << ": " << (is_error ? "error" : "warning") << ": [" << f.check
              << "] " << f.message << "\n";
  }
  for (const auto& entry : stale) {
    std::cerr << "paraio_lint: stale baseline entry: " << entry.rule << " @ "
              << entry.uri << " matches no current finding; delete it from "
              << baseline_path << "\n";
  }
  std::cerr << "paraio_lint: " << files.size() << " file(s), "
            << stats.functions << " function(s), " << stats.dataflow_solves
            << " dataflow solve(s), " << errors << " error(s), " << warnings
            << " warning(s), " << suppressed << " suppressed, " << baselined
            << " baselined\n";
  if (print_stats) {
    std::cerr << "paraio_lint: pass timings: index "
              << analysis_stats.index_ms << " ms, cfg "
              << analysis_stats.cfg_ms << " ms, summaries "
              << analysis_stats.summary_ms << " ms\n"
              << "paraio_lint: call graph: " << analysis_stats.call_graph_fns
              << " function(s), " << analysis_stats.call_graph_edges
              << " edge(s), " << analysis_stats.unresolved_calls
              << " unresolved call(s), " << analysis_stats.scc_count
              << " SCC(s), max fixpoint iterations "
              << analysis_stats.max_fixpoint_iterations << "\n";
  }
  if (stats.dataflow_bailouts > 0) {
    std::cerr << "paraio_lint: internal error: " << stats.dataflow_bailouts
              << " dataflow solve(s) hit the iteration cap before fixpoint "
                 "(non-monotone transfer?)\n";
    return kExitInternalError;
  }
  if (!lp_report_path.empty()) {
    std::ofstream out(lp_report_path, std::ios::binary);
    out << index.lp_report;
    if (!out) {
      std::cerr << "paraio_lint: cannot write " << lp_report_path << "\n";
      return kExitInternalError;
    }
  }
  if (!sarif_path.empty()) {
    const std::string sarif = paraio::lint::to_sarif(all);
    std::string why;
    if (!paraio::obs::validate_json(sarif, &why)) {
      std::cerr << "paraio_lint: internal error: SARIF output is not valid "
                   "JSON: "
                << why << "\n";
      return kExitInternalError;
    }
    std::ofstream out(sarif_path, std::ios::binary);
    out << sarif << "\n";
    if (!out) {
      std::cerr << "paraio_lint: cannot write " << sarif_path << "\n";
      return kExitInternalError;
    }
  }
  if (errors > 0 || (werror && warnings > 0) || !stale.empty()) {
    return kExitFindings;
  }
  return kExitClean;
}
