// Minimal SARIF 2.1.0 export for paraio-lint findings, so CI systems and
// editors that understand the Static Analysis Results Interchange Format can
// ingest the lint run as an artifact.  Only the required subset is emitted:
// one run, tool.driver with the check catalog as rules, and one result per
// finding (suppressed findings carry a `suppressions` entry rather than
// being dropped, which is what SARIF consumers expect).
#pragma once

#include <string>
#include <vector>

#include "paraio_lint/lint.hpp"

namespace paraio::lint {

/// Serializes `findings` as a SARIF 2.1.0 log (one run).  The output is
/// self-contained valid JSON; callers should still round-trip it through
/// obs::validate_json as a belt-and-braces check before shipping it.
std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace paraio::lint
