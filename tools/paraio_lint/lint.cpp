#include "paraio_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>

namespace paraio::lint {

namespace {

// ---------------------------------------------------------------------------
// Check catalog

constexpr CheckInfo kChecks[] = {
    {"unordered-iter", Severity::kError,
     "range-for over an unordered container: iteration order is "
     "implementation-defined and can reach the trace"},
    {"wall-clock", Severity::kError,
     "wall-clock read inside the simulator: all time must come from "
     "sim::Engine::now()"},
    {"raw-random", Severity::kError,
     "libc/raw randomness: all randomness must flow through sim::Rng so "
     "runs reproduce from a seed"},
    {"ptr-key-order", Severity::kWarning,
     "ordered container keyed by pointer: iteration order depends on "
     "allocation addresses"},
    {"coro-lambda-capture", Severity::kError,
     "coroutine lambda with captures: the closure dies before the first "
     "resume; pass state as parameters instead"},
    {"missing-co-await", Severity::kError,
     "awaitable constructed and dropped without co_await: the operation "
     "never runs"},
    {"discarded-task", Severity::kError,
     "Task<T>-returning call used as a plain statement: the coroutine is "
     "destroyed without ever starting"},
    {"layering", Severity::kError,
     "include crosses the layer order (sim < hw < io < pfs/pablo < ppfs < "
     "analysis < apps < core < testkit), or apps bypass the hw::Machine "
     "facade"},
};

const CheckInfo* find_check(const char* id) {
  for (const CheckInfo& c : kChecks) {
    if (std::string_view(c.id) == id) return &c;
  }
  return nullptr;
}

bool is_ident(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::string trim(std::string s) {
  const auto b = s.find_first_not_of(" \t");
  const auto e = s.find_last_not_of(" \t");
  if (b == std::string::npos) return "";
  return s.substr(b, e - b + 1);
}

/// 0-based offsets of each line start, for offset -> line translation.
std::vector<std::size_t> line_starts(const std::string& text) {
  std::vector<std::size_t> starts{0};
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') starts.push_back(i + 1);
  }
  return starts;
}

std::size_t line_of(const std::vector<std::size_t>& starts, std::size_t pos) {
  auto it = std::upper_bound(starts.begin(), starts.end(), pos);
  return static_cast<std::size_t>(it - starts.begin());  // 1-based
}

/// Position just past the matching closer for the opener at `open`.
/// Returns npos when unbalanced (we then give up on that site).
std::size_t skip_balanced(const std::string& text, std::size_t open,
                          char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t i = open; i < text.size(); ++i) {
    if (text[i] == open_ch) ++depth;
    if (text[i] == close_ch && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::size_t skip_spaces(const std::string& text, std::size_t pos) {
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n')) {
    ++pos;
  }
  return pos;
}

std::string read_ident(const std::string& text, std::size_t pos,
                       std::size_t* end = nullptr) {
  std::size_t i = pos;
  while (i < text.size() && is_ident(text[i])) ++i;
  if (end) *end = i;
  return text.substr(pos, i - pos);
}

/// Occurrences of `word` as a whole identifier.
std::vector<std::size_t> find_word(const std::string& text,
                                   std::string_view word) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok = pos == 0 || !is_ident(text[pos - 1]);
    const std::size_t after = pos + word.size();
    const bool right_ok = after >= text.size() || !is_ident(text[after]);
    if (left_ok && right_ok) out.push_back(pos);
    pos = after;
  }
  return out;
}

/// Final identifier of an expression like `fs_.inflight_`, `this->buffers_`,
/// or `*handles` — the name the range-for actually iterates.
std::string trailing_ident(const std::string& expr) {
  std::string e = trim(expr);
  if (e.empty()) return "";
  if (e.back() == ')') return "";  // call result; resolved via declared names
  std::size_t end = e.size();
  std::size_t begin = end;
  while (begin > 0 && is_ident(e[begin - 1])) --begin;
  return e.substr(begin, end - begin);
}

// ---------------------------------------------------------------------------
// Per-line suppressions: `// paraio-lint: allow(id[,id...])`

std::vector<std::set<std::string>> parse_suppressions(
    const std::string& raw, const std::vector<std::size_t>& starts) {
  std::vector<std::set<std::string>> per_line(starts.size() + 2);
  std::size_t pos = 0;
  while ((pos = raw.find("paraio-lint:", pos)) != std::string::npos) {
    const std::size_t line = line_of(starts, pos);
    std::size_t open = raw.find("allow(", pos);
    pos += 12;
    if (open == std::string::npos) continue;
    const std::size_t close = raw.find(')', open);
    if (close == std::string::npos) continue;
    // Only honor an allow() on the same line as the marker.
    if (line_of(starts, open) != line) continue;
    std::string ids = raw.substr(open + 6, close - open - 6);
    std::size_t from = 0;
    while (from <= ids.size()) {
      std::size_t comma = ids.find(',', from);
      if (comma == std::string::npos) comma = ids.size();
      const std::string id = trim(ids.substr(from, comma - from));
      if (!id.empty() && line < per_line.size()) per_line[line].insert(id);
      from = comma + 1;
    }
  }
  return per_line;
}

// ---------------------------------------------------------------------------
// Declaration scans (used by the project index)

void collect_unordered_names(const std::string& stripped,
                             std::set<std::string>* names) {
  for (const char* kind : {"std::unordered_map<", "std::unordered_set<"}) {
    std::size_t pos = 0;
    const std::string needle(kind);
    while ((pos = stripped.find(needle, pos)) != std::string::npos) {
      const std::size_t open = pos + needle.size() - 1;
      pos += needle.size();
      const std::size_t past = skip_balanced(stripped, open, '<', '>');
      if (past == std::string::npos) continue;
      std::size_t cursor = skip_spaces(stripped, past);
      while (cursor < stripped.size() &&
             (stripped[cursor] == '&' || stripped[cursor] == '*')) {
        cursor = skip_spaces(stripped, cursor + 1);
      }
      std::size_t end = cursor;
      const std::string name = read_ident(stripped, cursor, &end);
      if (name.empty()) continue;
      // `type name(` declares a function returning the container, not a
      // variable; skip those.
      if (skip_spaces(stripped, end) < stripped.size() &&
          stripped[skip_spaces(stripped, end)] == '(') {
        continue;
      }
      names->insert(name);
    }
  }
}

void collect_task_fn_names(const std::string& stripped,
                           std::set<std::string>* names) {
  std::size_t pos = 0;
  while ((pos = stripped.find("Task<", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 5;
    if (at > 0 && is_ident(stripped[at - 1])) continue;  // e.g. MyTask<
    const std::size_t past = skip_balanced(stripped, at + 4, '<', '>');
    if (past == std::string::npos) continue;
    const std::size_t cursor = skip_spaces(stripped, past);
    std::size_t end = cursor;
    const std::string name = read_ident(stripped, cursor, &end);
    if (name.empty() || name == "operator") continue;
    if (skip_spaces(stripped, end) < stripped.size() &&
        stripped[skip_spaces(stripped, end)] == '(') {
      names->insert(name);
    }
  }
}

// ---------------------------------------------------------------------------
// Individual checks.  Each appends findings (suppression is applied by the
// caller, which knows the per-line allow sets).

using Sink = std::vector<Finding>;

void add(Sink* out, const char* id, std::size_t line, std::string message) {
  const CheckInfo* info = find_check(id);
  out->push_back(
      Finding{"", line, info->id, info->severity, std::move(message), false});
}

void check_unordered_iter(const std::string& stripped,
                          const std::vector<std::size_t>& starts,
                          const std::set<std::string>& unordered_names,
                          Sink* out) {
  for (std::size_t pos : find_word(stripped, "for")) {
    const std::size_t open = skip_spaces(stripped, pos + 3);
    if (open >= stripped.size() || stripped[open] != '(') continue;
    const std::size_t past = skip_balanced(stripped, open, '(', ')');
    if (past == std::string::npos) continue;
    const std::string head = stripped.substr(open + 1, past - open - 2);
    // A range-for has a single ':' at angle/paren depth 0 (':: ' excluded).
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const char c = head[i];
      if (c == '<' || c == '(' || c == '[' || c == '{') ++depth;
      if (c == '>' || c == ')' || c == ']' || c == '}') --depth;
      if (c == ':' && depth == 0) {
        if ((i + 1 < head.size() && head[i + 1] == ':') ||
            (i > 0 && head[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
      if (c == ';') break;  // classic for loop
    }
    if (colon == std::string::npos) continue;
    const std::string name = trailing_ident(head.substr(colon + 1));
    if (!name.empty() && unordered_names.contains(name)) {
      add(out, "unordered-iter", line_of(starts, pos),
          "iteration over unordered container '" + name +
              "': order is hash/insertion dependent and breaks trace "
              "reproducibility; use std::map or iterate a sorted snapshot");
    }
  }
}

void check_wall_clock(const std::string& stripped,
                      const std::vector<std::size_t>& starts, Sink* out) {
  for (const char* word :
       {"system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime", "localtime", "gmtime", "asctime"}) {
    for (std::size_t pos : find_word(stripped, word)) {
      add(out, "wall-clock", line_of(starts, pos),
          std::string("wall-clock source '") + word +
              "' in simulator code: simulated time must come from "
              "sim::Engine::now()");
    }
  }
}

void check_raw_random(const std::string& stripped,
                      const std::vector<std::size_t>& starts, Sink* out) {
  for (const char* word : {"random_device", "drand48", "lrand48", "mrand48"}) {
    for (std::size_t pos : find_word(stripped, word)) {
      add(out, "raw-random", line_of(starts, pos),
          std::string("nondeterministic randomness '") + word +
              "': use sim::Rng so runs reproduce from a seed");
    }
  }
  for (const char* word : {"rand", "srand"}) {
    for (std::size_t pos : find_word(stripped, word)) {
      const std::size_t after = skip_spaces(stripped, pos + std::string(word).size());
      if (after < stripped.size() && stripped[after] == '(') {
        add(out, "raw-random", line_of(starts, pos),
            std::string("libc '") + word +
                "()': use sim::Rng so runs reproduce from a seed");
      }
    }
  }
}

void check_ptr_key_order(const std::string& stripped,
                         const std::vector<std::size_t>& starts, Sink* out) {
  for (const char* kind : {"std::map<", "std::set<"}) {
    const std::string needle(kind);
    std::size_t pos = 0;
    while ((pos = stripped.find(needle, pos)) != std::string::npos) {
      const std::size_t open = pos + needle.size() - 1;
      const std::size_t at = pos;
      pos += needle.size();
      // First template argument: up to a depth-0 comma or the closing '>'.
      int depth = 1;
      std::size_t i = open + 1;
      std::size_t arg_end = std::string::npos;
      for (; i < stripped.size(); ++i) {
        const char c = stripped[i];
        if (c == '<' || c == '(') ++depth;
        if (c == '>' || c == ')') --depth;
        if ((c == ',' && depth == 1) || depth == 0) {
          arg_end = i;
          break;
        }
      }
      if (arg_end == std::string::npos) continue;
      const std::string key = trim(stripped.substr(open + 1, arg_end - open - 1));
      if (!key.empty() && key.back() == '*') {
        add(out, "ptr-key-order", line_of(starts, at),
            "ordered container keyed by pointer '" + key +
                "': ordering follows allocation addresses, which differ "
                "run to run; key by a stable id instead");
      }
    }
  }
}

/// Balanced argument regions of every `spawn(...)` / `spawn_daemon(...)`
/// call, as (first-char, past-the-close) offsets into `stripped`.
std::vector<std::pair<std::size_t, std::size_t>> spawn_arg_regions(
    const std::string& stripped) {
  std::vector<std::pair<std::size_t, std::size_t>> regions;
  for (std::size_t pos = 0; (pos = stripped.find("spawn", pos)) !=
                            std::string::npos;
       pos += 5) {
    if (pos > 0 && is_ident(stripped[pos - 1])) continue;
    std::size_t after = pos + 5;
    if (stripped.compare(after, 7, "_daemon") == 0) after += 7;
    const std::size_t open = skip_spaces(stripped, after);
    if (open >= stripped.size() || stripped[open] != '(') continue;
    const std::size_t past = skip_balanced(stripped, open, '(', ')');
    if (past == std::string::npos) continue;
    regions.emplace_back(open + 1, past - 1);
  }
  return regions;
}

void check_coro_lambda_capture(const std::string& stripped,
                               const std::vector<std::size_t>& starts,
                               Sink* out) {
  const auto spawn_regions = spawn_arg_regions(stripped);
  for (std::size_t pos = 0; pos < stripped.size(); ++pos) {
    if (stripped[pos] != '[') continue;
    // Not an attribute ([[...]]) and not a subscript (prev token is a value).
    if (pos + 1 < stripped.size() && stripped[pos + 1] == '[') continue;
    if (pos > 0 && stripped[pos - 1] == '[') continue;
    std::size_t prev = pos;
    while (prev > 0 && (stripped[prev - 1] == ' ' || stripped[prev - 1] == '\t' ||
                        stripped[prev - 1] == '\n')) {
      --prev;
    }
    if (prev > 0 &&
        (is_ident(stripped[prev - 1]) || stripped[prev - 1] == ')' ||
         stripped[prev - 1] == ']')) {
      continue;  // subscript or attribute close
    }
    const std::size_t close = stripped.find(']', pos);
    if (close == std::string::npos) continue;
    const std::string captures = trim(stripped.substr(pos + 1, close - pos - 1));
    std::size_t cursor = skip_spaces(stripped, close + 1);
    std::string ret_type;
    std::size_t body_open = std::string::npos;
    if (cursor < stripped.size() && stripped[cursor] == '(') {
      const std::size_t past = skip_balanced(stripped, cursor, '(', ')');
      if (past == std::string::npos) continue;
      const std::size_t brace = stripped.find('{', past);
      if (brace == std::string::npos) continue;
      ret_type = stripped.substr(past, brace - past);
      body_open = brace;
    } else if (cursor < stripped.size() && stripped[cursor] == '{') {
      body_open = cursor;
    } else {
      continue;  // not a lambda after all
    }
    const std::size_t body_past = skip_balanced(stripped, body_open, '{', '}');
    if (body_past == std::string::npos) continue;
    const std::string body =
        stripped.substr(body_open, body_past - body_open);
    const bool coroutine = ret_type.find("Task") != std::string::npos ||
                           body.find("co_await") != std::string::npos ||
                           body.find("co_return") != std::string::npos ||
                           body.find("co_yield") != std::string::npos;
    if (!coroutine || captures.empty()) continue;
    // A named local closure (`auto proc = [&]...; spawn(proc());`) outlives
    // the run and is fine.  The UB shapes are a *temporary* closure: the
    // lambda expression written inline inside spawn(...)'s arguments, or
    // immediately invoked without being co_awaited in the same statement —
    // either way the closure (and its captures) dies while the coroutine
    // frame lives on.
    bool inline_in_spawn = false;
    for (const auto& [lo, hi] : spawn_regions) {
      if (pos > lo && pos < hi) {
        inline_in_spawn = true;
        break;
      }
    }
    bool invoked_temporary = false;
    const std::size_t next = skip_spaces(stripped, body_past);
    if (next < stripped.size() && stripped[next] == '(') {
      const std::size_t stmt_begin =
          stripped.find_last_of(";{}", pos) == std::string::npos
              ? 0
              : stripped.find_last_of(";{}", pos) + 1;
      const std::string prefix = stripped.substr(stmt_begin, pos - stmt_begin);
      invoked_temporary = prefix.find("co_await") == std::string::npos;
    }
    if (inline_in_spawn || invoked_temporary) {
      add(out, "coro-lambda-capture", line_of(starts, pos),
          "coroutine lambda captures [" + captures +
              "] as a temporary closure: the closure object is destroyed "
              "while the frame lives on; name it in a scope that outlives "
              "the run, or pass state as explicit parameters");
    }
  }
}

bool line_has_excuse(const std::string& line) {
  return line.find("co_await") != std::string::npos ||
         line.find("co_yield") != std::string::npos ||
         line.find("return") != std::string::npos ||
         line.find("spawn") != std::string::npos ||
         line.find('=') != std::string::npos;
}

void check_missing_co_await(const std::vector<std::string>& stripped_lines,
                            Sink* out) {
  static constexpr std::array<const char*, 9> kAwaitables = {
      "delay",   "yield", "wait", "acquire", "lock",
      "arrive_and_wait", "join",  "recv",    "await_turn"};
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    if (line_has_excuse(line)) continue;
    for (const char* name : kAwaitables) {
      const std::string dot = std::string(".") + name + "(";
      const std::string arrow = std::string("->") + name + "(";
      if (line.find(dot) != std::string::npos ||
          line.find(arrow) != std::string::npos) {
        add(out, "missing-co-await", i + 1,
            std::string("'") + name +
                "()' builds an awaitable that is dropped without co_await: "
                "the suspension (and any side effect) never happens");
        break;
      }
    }
  }
}

void check_discarded_task(const std::vector<std::string>& stripped_lines,
                          const std::set<std::string>& task_fns, Sink* out) {
  if (task_fns.empty()) return;
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string line = trim(stripped_lines[i]);
    if (line.empty() || line.back() != ';') continue;
    if (line_has_excuse(line)) continue;
    for (const std::string& name : task_fns) {
      const std::size_t at = line.find(name + "(");
      if (at == std::string::npos) continue;
      if (at > 0 && is_ident(line[at - 1])) continue;
      // Statement position: everything before the call must be an object
      // chain (`obj.`, `ptr->`, `ns::`), not an enclosing call or keyword.
      const std::string prefix = line.substr(0, at);
      const bool chain_only =
          prefix.find('(') == std::string::npos &&
          prefix.find(' ') == std::string::npos &&
          prefix.find("co_") == std::string::npos;
      if (!chain_only) continue;
      add(out, "discarded-task", i + 1,
          "call to Task-returning '" + name +
              "()' as a bare statement: the coroutine is destroyed before "
              "it runs; co_await it or hand it to Engine::spawn");
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Layering

struct LayerRule {
  const char* layer;
  std::set<std::string> allowed;
};

const std::vector<LayerRule>& layer_rules() {
  static const std::vector<LayerRule> kRules = {
      {"sim", {"sim"}},
      // The observability layer may read simulation/file abstractions but
      // never the device or file-system layers that publish into it (those
      // include obs, so the reverse edge would be a cycle).
      {"obs", {"obs", "pablo", "io", "sim"}},
      {"hw", {"hw", "obs", "sim"}},
      {"io", {"io", "hw", "sim"}},
      {"pfs", {"pfs", "obs", "io", "hw", "sim"}},
      {"ppfs", {"ppfs", "pfs", "obs", "io", "hw", "sim"}},
      {"pablo", {"pablo", "io", "hw", "sim"}},
      {"analysis", {"analysis", "pablo", "io", "sim"}},
      {"apps", {"apps", "analysis", "pablo", "io", "hw", "sim"}},
      {"core",
       {"core", "apps", "analysis", "pablo", "ppfs", "pfs", "obs", "io", "hw",
        "sim"}},
      {"testkit",
       {"testkit", "core", "apps", "analysis", "pablo", "ppfs", "pfs", "obs",
        "io", "hw", "sim"}},
  };
  return kRules;
}

/// hw headers src/apps may include: the Machine facade only, never device
/// internals (disk, raid, network, scheduler).
bool apps_hw_header_allowed(const std::string& header) {
  return header == "hw/machine.hpp";
}

void check_layering(const std::string& path, const std::string& raw,
                    Sink* out) {
  const std::size_t src = path.rfind("src/");
  if (src == std::string::npos) return;
  const std::string rest = path.substr(src + 4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string::npos) return;  // src/paraio.hpp umbrella
  const std::string layer = rest.substr(0, slash);
  const LayerRule* rule = nullptr;
  for (const LayerRule& r : layer_rules()) {
    if (layer == r.layer) rule = &r;
  }
  if (!rule) return;

  std::size_t line_no = 0;
  std::size_t begin = 0;
  while (begin <= raw.size()) {
    std::size_t end = raw.find('\n', begin);
    if (end == std::string::npos) end = raw.size();
    ++line_no;
    const std::string line = trim(raw.substr(begin, end - begin));
    begin = end + 1;
    if (!line.starts_with("#include \"")) continue;
    const std::size_t quote = line.find('"');
    const std::size_t quote2 = line.find('"', quote + 1);
    if (quote2 == std::string::npos) continue;
    const std::string header = line.substr(quote + 1, quote2 - quote - 1);
    const std::size_t hslash = header.find('/');
    if (hslash == std::string::npos) continue;  // same-directory include
    const std::string target = header.substr(0, hslash);
    bool known = false;
    for (const LayerRule& r : layer_rules()) {
      if (target == r.layer) known = true;
    }
    if (!known) continue;
    if (!rule->allowed.contains(target)) {
      add(out, "layering", line_no,
          "layer 'src/" + layer + "' must not include '" + header +
              "' (layer '" + target + "' is above it)");
    } else if (layer == "apps" && target == "hw" &&
               !apps_hw_header_allowed(header)) {
      add(out, "layering", line_no,
          "src/apps must program against the hw::Machine facade; include "
          "'hw/machine.hpp' instead of '" +
              header + "'");
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

const std::vector<CheckInfo>& checks() {
  static const std::vector<CheckInfo> kAll(std::begin(kChecks),
                                           std::end(kChecks));
  return kAll;
}

std::string strip_comments_and_strings(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\n') {
          out[i] = ' ';
          if (next != '\0') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\n') {
          out[i] = ' ';
          if (next != '\0') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

ProjectIndex index_project(const std::vector<SourceFile>& files) {
  ProjectIndex index;
  for (const SourceFile& f : files) {
    const std::string stripped = strip_comments_and_strings(f.content);
    collect_unordered_names(stripped, &index.unordered_names);
    std::set<std::string> task_names;
    collect_task_fn_names(stripped, &task_names);
    index.task_fns.emplace_back(f.path, std::move(task_names));
  }
  return index;
}

namespace {

/// Task-fn names visible to `path`: its own declarations plus those of the
/// sibling header/source (same stem, .hpp <-> .cpp), so member coroutines
/// declared in a header are known when linting the .cpp.
std::set<std::string> visible_task_fns(const std::string& path,
                                       const ProjectIndex& index) {
  auto stem = [](const std::string& p) {
    const std::size_t dot = p.rfind('.');
    return dot == std::string::npos ? p : p.substr(0, dot);
  };
  std::set<std::string> out;
  const std::string my_stem = stem(path);
  for (const auto& [file, names] : index.task_fns) {
    if (stem(file) == my_stem) out.insert(names.begin(), names.end());
  }
  return out;
}

}  // namespace

std::vector<Finding> lint_file(const SourceFile& file,
                               const ProjectIndex& index,
                               const Options& options) {
  const std::string stripped = strip_comments_and_strings(file.content);
  const std::vector<std::size_t> starts = line_starts(file.content);
  const auto suppressions = parse_suppressions(file.content, starts);

  std::vector<std::string> stripped_lines;
  {
    std::size_t begin = 0;
    while (begin <= stripped.size()) {
      std::size_t end = stripped.find('\n', begin);
      if (end == std::string::npos) end = stripped.size();
      stripped_lines.push_back(stripped.substr(begin, end - begin));
      if (end == stripped.size()) break;
      begin = end + 1;
    }
  }

  std::vector<Finding> findings;
  check_unordered_iter(stripped, starts, index.unordered_names, &findings);
  check_wall_clock(stripped, starts, &findings);
  check_raw_random(stripped, starts, &findings);
  check_ptr_key_order(stripped, starts, &findings);
  check_coro_lambda_capture(stripped, starts, &findings);
  check_missing_co_await(stripped_lines, &findings);
  check_discarded_task(stripped_lines, visible_task_fns(file.path, index),
                       &findings);
  check_layering(file.path, file.content, &findings);

  std::erase_if(findings, [&](const Finding& f) {
    return options.disabled.contains(f.check);
  });
  for (Finding& f : findings) {
    f.file = file.path;
    if (f.line < suppressions.size() &&
        suppressions[f.line].contains(f.check)) {
      f.suppressed = true;
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return std::string_view(a.check) < std::string_view(b.check);
            });
  return findings;
}

}  // namespace paraio::lint
