#include "paraio_lint/lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <chrono>
#include <map>
#include <ostream>
#include <tuple>

#include "paraio_lint/cfg.hpp"
#include "paraio_lint/flow_checks.hpp"
#include "paraio_lint/text.hpp"

namespace paraio::lint {

namespace {

using namespace paraio::lint::text;

// ---------------------------------------------------------------------------
// Check catalog

constexpr CheckInfo kChecks[] = {
    {"unordered-iter", Severity::kError,
     "range-for over an unordered container: iteration order is "
     "implementation-defined and can reach the trace",
     "The golden-trace tests compare event sequences byte for byte, so any "
     "value whose order depends on hashing or insertion history breaks "
     "reproducibility across standard libraries and ASLR runs.  Iterate a "
     "std::map, or copy keys into a vector and sort before iterating.  The "
     "index resolves `using` aliases, so renaming the container type does "
     "not hide it."},
    {"wall-clock", Severity::kError,
     "wall-clock read inside the simulator: all time must come from "
     "sim::Engine::now()",
     "Simulated time is a logical clock advanced by the event loop; mixing "
     "in std::chrono::system_clock or friends makes results depend on host "
     "load and wall time.  Use sim::Engine::now() for simulated timestamps. "
     "Host-side timing of the simulator itself (bench harness) carries an "
     "explicit allow() suppression."},
    {"raw-random", Severity::kError,
     "libc/raw randomness: all randomness must flow through sim::Rng so "
     "runs reproduce from a seed",
     "rand(), the *rand48 family, and std::random_device are unseeded or "
     "globally seeded, so two runs with the same --seed diverge.  sim::Rng "
     "is a splittable counter-based generator owned by the engine; every "
     "stochastic decision must draw from it (or a stream split from it)."},
    {"ptr-key-order", Severity::kWarning,
     "ordered container keyed by pointer: iteration order depends on "
     "allocation addresses",
     "std::map<T*, ...> iterates in address order, and addresses change "
     "run to run under ASLR.  If the iteration feeds a trace or a scheduling "
     "decision the run is no longer reproducible.  Key by a stable id "
     "(node index, request id) instead."},
    {"coro-lambda-capture", Severity::kError,
     "coroutine lambda with captures: the closure dies before the first "
     "resume; pass state as parameters instead",
     "A lambda's captures live in the closure object, not the coroutine "
     "frame.  When a temporary closure's coroutine suspends, the closure is "
     "destroyed at the end of the full-expression and every capture "
     "dangles.  Pass state as coroutine parameters (they are copied into "
     "the frame) or use a named function."},
    {"missing-co-await", Severity::kError,
     "awaitable constructed and dropped without co_await: the operation "
     "never runs",
     "Awaitables in this tree (Mutex::lock, Semaphore::acquire, "
     "Event::wait, Channel::send/recv, ...) are lazy: constructing one "
     "does nothing until it is co_awaited.  A bare `m.lock();` statement "
     "compiles, silently does not take the lock, and the critical section "
     "runs unprotected."},
    {"discarded-task", Severity::kError,
     "Task<T>-returning call used as a plain statement: the coroutine is "
     "destroyed without ever starting",
     "sim::Task is lazily started: the callee body runs only when the task "
     "is co_awaited or handed to spawn()/spawn_daemon().  A discarded call "
     "result destroys the suspended frame, so the work silently never "
     "happens.  The index knows every Task-returning name in the tree, so "
     "this fires across translation units."},
    {"swallowed-io-error", Severity::kError,
     "typed I/O outcome discarded: the *Outcome return value is the only "
     "failure channel; bind and inspect it",
     "I/O paths report failure through *Outcome return values, not "
     "exceptions.  co_awaiting such a call as a statement drops the only "
     "record that the operation failed, and the fault-injection tests rely "
     "on callers observing those failures.  Bind the result and branch on "
     "it."},
    {"lock-order", Severity::kWarning,
     "lock acquired in conflicting orders across the tree: some "
     "interleaving can deadlock; establish one global acquisition order",
     "The index records every `acquired B while holding A` site across all "
     "files and searches the resulting graph for cycles.  A cycle means "
     "some interleaving of tasks deadlocks even though each file looks "
     "fine locally.  Fix by choosing one global acquisition order.  The "
     "runtime DeadlockDetector catches the schedules that actually hang; "
     "this catches the ones that merely could."},
    {"channel-self-deadlock", Severity::kError,
     "bounded channel sent and received by the same coroutine: once the "
     "buffer fills the send blocks forever (nobody else drains it)",
     "A bounded channel's send suspends when the buffer is full.  If the "
     "same coroutine is also the only receiver, nothing can drain the "
     "buffer while the sender is parked, so the task deadlocks with "
     "itself.  Split producer and consumer into separate tasks or use an "
     "unbounded channel."},
    {"capture-escape", Severity::kError,
     "stack-local address escapes into a detached coroutine: the frame "
     "outlives the caller's locals; pass by value or heap-own the state",
     "engine.spawn()/spawn_daemon() detach the coroutine from the caller's "
     "scope: the frame keeps running after the caller returns.  Passing "
     "&local or a reference to a stack variable into the spawned call "
     "leaves the frame holding a dangling pointer.  Pass by value, or move "
     "ownership (unique_ptr/shared_ptr) into the frame."},
    {"layering", Severity::kError,
     "include crosses the layer order (sim < hw < io < pfs/pablo < ppfs < "
     "analysis < apps < core < testkit), or apps bypass the hw::Machine "
     "facade",
     "The simulator is layered so each subsystem can be tested in "
     "isolation and replaced (three PFS write policies, two app layers). "
     "An upward include from a lower layer, or an app reaching past the "
     "hw::Machine facade into device internals, couples layers that the "
     "experiments need to vary independently."},
    {"suspension-lifetime", Severity::kError,
     "reference parameter or by-reference capture of a coroutine read "
     "after a suspension point: the frame can outlive what it refers to",
     "Flow-sensitive (CFG + dataflow).  A detached coroutine's frame "
     "outlives its caller, so a reference/pointer parameter, a "
     "by-reference lambda capture, or `this` via a default capture is only "
     "safe to read before the first co_await: after a suspension the "
     "caller's stack may be gone.  Only reads actually reachable from a "
     "suspension point are flagged — a reference fully consumed before the "
     "first co_await is fine, which a line-based scan cannot express."},
    {"lock-across-suspension", Severity::kWarning,
     "sim::Mutex held across a co_await: tasks queueing on the lock stall "
     "until this task resumes, or deadlock",
     "Flow-sensitive (CFG + dataflow).  Mutex acquisition sites "
     "(`co_await m.lock()`) are propagated forward; `m.unlock()` kills "
     "them.  Any suspension point whose IN set still holds an acquisition "
     "is flagged with both sites.  Holding a sim::Mutex across an await "
     "serializes every waiter behind an arbitrary I/O latency, and two "
     "such regions in opposite order are the classic AB/BA deadlock the "
     "runtime DeadlockDetector reports — this check catches it before a "
     "schedule ever runs.  Semaphore capacity tokens are exempt: holding "
     "one across a delay is how the hardware layer models device service "
     "time."},
    {"determinism-taint", Severity::kError,
     "value derived from wall-clock/raw-random/pointer-identity/unordered "
     "iteration flows into a trace, schedule, or metrics sink",
     "Flow-sensitive (CFG + dataflow).  Taint starts at nondeterministic "
     "sources (wall-clock reads, libc randomness, uintptr_t pointer casts, "
     "range-for over unordered containers), propagates through "
     "assignments, and is killed by reassignment from a clean value.  A "
     "sink call (schedule/record/observe/emit/trace/...) whose argument is "
     "tainted makes the trace differ run to run even though the source "
     "and sink look innocent in isolation."},
    {"blocking-loop-in-coroutine", Severity::kError,
     "loop in a coroutine with no suspending call on any path: the event "
     "loop starves while this task spins",
     "Summary-powered (call graph + may-suspend).  The engine is "
     "cooperative: a coroutine that loops without reaching a suspension "
     "point never yields the thread, so no other event runs and simulated "
     "time stops — a livelock that looks like a hang.  A `co_await` inside "
     "the loop only counts if it can actually park: awaiting a callee "
     "whose every overload is a non-suspending coroutine (it only "
     "co_returns) completes synchronously and does not yield.  Only "
     "unbounded-shaped loops (while (true), for (;;), bare-flag "
     "conditions) are flagged; bounded compute loops are fine."},
    {"cross-lp-shared-state", Severity::kWarning,
     "unmediated write to namespace-scope state reachable from more than "
     "one logical-process entry point",
     "Summary-powered (call graph + entry reachability) — the "
     "parallel-DES-readiness audit.  Conservative parallel DES partitions "
     "the simulation into logical processes (per-ION, per-compute-node) "
     "that may only interact through timestamped events.  A namespace-"
     "scope mutable variable written without event-queue mediation "
     "(schedule/send) and reachable from two or more detached-coroutine "
     "entry points is exactly the shared state that makes such a "
     "partition unsound.  The full ranked audit is written by "
     "`--lp-report=`; route the state through a channel or own it in one "
     "LP."},
};

// Token helpers (is_ident, line_of, skip_balanced, find_word, ...) live in
// paraio_lint/text.hpp, shared with the CFG builder and the flow checks.

// ---------------------------------------------------------------------------
// Per-line suppressions: `// paraio-lint: allow(id[,id...])`

std::vector<std::set<std::string>> parse_suppressions(
    const std::string& raw, const std::vector<std::size_t>& starts) {
  std::vector<std::set<std::string>> per_line(starts.size() + 2);
  std::size_t pos = 0;
  while ((pos = raw.find("paraio-lint:", pos)) != std::string::npos) {
    const std::size_t line = line_of(starts, pos);
    std::size_t open = raw.find("allow(", pos);
    pos += 12;
    if (open == std::string::npos) continue;
    const std::size_t close = raw.find(')', open);
    if (close == std::string::npos) continue;
    // Only honor an allow() on the same line as the marker.
    if (line_of(starts, open) != line) continue;
    std::string ids = raw.substr(open + 6, close - open - 6);
    std::size_t from = 0;
    while (from <= ids.size()) {
      std::size_t comma = ids.find(',', from);
      if (comma == std::string::npos) comma = ids.size();
      const std::string id = trim(ids.substr(from, comma - from));
      if (!id.empty() && line < per_line.size()) per_line[line].insert(id);
      from = comma + 1;
    }
  }
  return per_line;
}

// ---------------------------------------------------------------------------
// Declaration scans (used by the project index)

void collect_unordered_names(const std::string& stripped,
                             std::set<std::string>* names) {
  for (const char* kind : {"std::unordered_map<", "std::unordered_set<"}) {
    std::size_t pos = 0;
    const std::string needle(kind);
    while ((pos = stripped.find(needle, pos)) != std::string::npos) {
      const std::size_t open = pos + needle.size() - 1;
      pos += needle.size();
      const std::size_t past = skip_balanced(stripped, open, '<', '>');
      if (past == std::string::npos) continue;
      std::size_t cursor = skip_spaces(stripped, past);
      while (cursor < stripped.size() &&
             (stripped[cursor] == '&' || stripped[cursor] == '*')) {
        cursor = skip_spaces(stripped, cursor + 1);
      }
      std::size_t end = cursor;
      const std::string name = read_ident(stripped, cursor, &end);
      if (name.empty()) continue;
      // `type name(` declares a function returning the container, not a
      // variable; skip those.
      if (skip_spaces(stripped, end) < stripped.size() &&
          stripped[skip_spaces(stripped, end)] == '(') {
        continue;
      }
      names->insert(name);
    }
  }
}

/// `using A = <type>;` and `typedef <type> A;` pairs, as alias -> base text.
void collect_type_aliases(const std::string& stripped,
                          std::vector<std::pair<std::string, std::string>>* out) {
  for (std::size_t pos : find_word(stripped, "using")) {
    std::size_t cursor = skip_spaces(stripped, pos + 5);
    std::size_t end = cursor;
    const std::string alias = read_ident(stripped, cursor, &end);
    if (alias.empty() || alias == "namespace") continue;
    cursor = skip_spaces(stripped, end);
    if (cursor >= stripped.size() || stripped[cursor] != '=') continue;
    const std::size_t semi = stripped.find(';', cursor);
    if (semi == std::string::npos) continue;
    out->emplace_back(alias, trim(stripped.substr(cursor + 1, semi - cursor - 1)));
  }
  for (std::size_t pos : find_word(stripped, "typedef")) {
    const std::size_t semi = stripped.find(';', pos);
    if (semi == std::string::npos) continue;
    const std::string decl = stripped.substr(pos + 7, semi - pos - 7);
    // The alias is the trailing identifier; the base is everything before.
    std::string base = trim(decl);
    std::size_t b = base.size();
    while (b > 0 && is_ident(base[b - 1])) --b;
    const std::string alias = base.substr(b);
    if (alias.empty() || b == 0) continue;
    out->emplace_back(alias, trim(base.substr(0, b)));
  }
}

/// First identifier of a type expression, past namespace qualifiers:
/// `std::unordered_map<K,V>` -> "unordered_map" wouldn't help, so this
/// keeps the qualified prefix: returns the text up to the first '<' or
/// end, trimmed (e.g. "std::unordered_map", "NodeSet").
std::string type_root(const std::string& base) {
  const std::size_t lt = base.find('<');
  return trim(lt == std::string::npos ? base : base.substr(0, lt));
}

/// Variables declared with one of `alias_names` as their type.
void collect_alias_vars(const std::string& stripped,
                        const std::set<std::string>& alias_names,
                        std::set<std::string>* names) {
  for (const std::string& alias : alias_names) {
    for (std::size_t pos : find_word(stripped, alias)) {
      std::size_t cursor = pos + alias.size();
      if (cursor < stripped.size() && stripped[cursor] == '<') {
        const std::size_t past = skip_balanced(stripped, cursor, '<', '>');
        if (past == std::string::npos) continue;
        cursor = past;
      }
      cursor = skip_spaces(stripped, cursor);
      while (cursor < stripped.size() &&
             (stripped[cursor] == '&' || stripped[cursor] == '*')) {
        cursor = skip_spaces(stripped, cursor + 1);
      }
      std::size_t end = cursor;
      const std::string name = read_ident(stripped, cursor, &end);
      if (name.empty()) continue;
      const std::size_t next = skip_spaces(stripped, end);
      if (next < stripped.size() && stripped[next] == '(') continue;
      names->insert(name);
    }
  }
}

constexpr std::array<const char*, 24> kNonTypeKeywords = {
    "return",   "co_return", "co_await", "co_yield", "if",       "while",
    "for",      "switch",    "case",     "else",     "do",       "new",
    "delete",   "throw",     "goto",     "sizeof",   "using",    "typedef",
    "template", "typename",  "operator", "not",      "and",      "or"};

bool is_non_type_keyword(const std::string& word) {
  return std::any_of(kNonTypeKeywords.begin(), kNonTypeKeywords.end(),
                     [&](const char* k) { return word == k; });
}

/// Function declarations/definitions: `name(` whose preceding token is a
/// return type.  Records, per name, whether a Task<...> and/or a non-Task
/// return type was seen anywhere.  Qualified definitions
/// (`sim::Task<> Foo::bar(...)`) are handled by skipping `X::` chains.
void collect_fn_decls(const std::string& stripped,
                      std::map<std::string, std::pair<bool, bool>>* decls) {
  for (std::size_t pos = 0; pos < stripped.size(); ++pos) {
    if (!is_ident_start(stripped[pos]) ||
        (pos > 0 && is_ident(stripped[pos - 1]))) {
      continue;
    }
    std::size_t end = pos;
    const std::string name = read_ident(stripped, pos, &end);
    const std::size_t paren = skip_spaces(stripped, end);
    if (paren >= stripped.size() || stripped[paren] != '(') {
      pos = end;
      continue;
    }
    // Walk backward over `Qualifier::` chains to the return-type tail.
    std::size_t back = pos;
    for (;;) {
      std::size_t prev = prev_nonspace(stripped, back);
      if (prev == std::string::npos) break;
      if (stripped[prev] == ':' && prev > 0 && stripped[prev - 1] == ':') {
        // `X::name` — skip the qualifier identifier and keep walking.
        std::size_t qual_end = prev_nonspace(stripped, prev - 1);
        if (qual_end == std::string::npos || !is_ident(stripped[qual_end])) {
          break;
        }
        std::size_t qb = 0;
        read_ident_backward(stripped, qual_end, &qb);
        back = qb;
        continue;
      }
      if (stripped[prev] == '&' || stripped[prev] == '*') {
        back = prev;
        continue;
      }
      if (stripped[prev] == '>') {
        if (prev > 0 && stripped[prev - 1] == '-') break;  // `->name(`: a call
        // Template return type: find the word before the matching '<'.
        int depth = 0;
        std::size_t i = prev + 1;
        std::size_t open = std::string::npos;
        while (i > 0) {
          --i;
          if (stripped[i] == '>') ++depth;
          if (stripped[i] == '<' && --depth == 0) {
            open = i;
            break;
          }
        }
        if (open == std::string::npos || open == 0) break;
        std::size_t tb = 0;
        const std::string tmpl =
            is_ident(stripped[open - 1])
                ? read_ident_backward(stripped, open - 1, &tb)
                : "";
        if (tmpl.empty()) break;
        auto& flags = (*decls)[name];
        (tmpl == "Task" ? flags.first : flags.second) = true;
        break;
      }
      if (is_ident(stripped[prev])) {
        const std::string word = read_ident_backward(stripped, prev);
        if (is_non_type_keyword(word)) break;  // a call, not a declaration
        // `Type name(` with a non-template, hence non-Task, return type.
        (*decls)[name].second = true;
        break;
      }
      break;  // `(`, `,`, `=`, `.`, ... — a call or initializer
    }
    pos = end;
  }
}

// ---------------------------------------------------------------------------
// Channel declarations

struct ChannelDecls {
  std::set<std::string> bounded;
  std::set<std::string> unbounded;
  std::set<std::string> unknown;  // declared without constructor arguments
};

void collect_channel_decls(const std::string& stripped, ChannelDecls* out) {
  std::size_t pos = 0;
  while ((pos = stripped.find("Channel<", pos)) != std::string::npos) {
    const std::size_t at = pos;
    pos += 8;
    if (at > 0 && is_ident(stripped[at - 1])) continue;  // e.g. MyChannel<
    const std::size_t past = skip_balanced(stripped, at + 7, '<', '>');
    if (past == std::string::npos) continue;
    std::size_t cursor = skip_spaces(stripped, past);
    if (cursor < stripped.size() && stripped[cursor] == ':') {
      continue;  // `Channel<T>::kUnbounded` constant use, not a declaration
    }
    if (cursor + 1 < stripped.size() && stripped[cursor] == '>' ) {
      // `make_unique<sim::Channel<T>>(args)` — the declared variable is the
      // trailing identifier before the statement's '='.
      const std::size_t args_open = skip_spaces(stripped, cursor + 1);
      if (args_open >= stripped.size() || stripped[args_open] != '(') continue;
      const std::size_t args_past =
          skip_balanced(stripped, args_open, '(', ')');
      if (args_past == std::string::npos) continue;
      const std::string args =
          stripped.substr(args_open, args_past - args_open);
      const std::size_t stmt = stripped.find_last_of(";{}", at);
      const std::string prefix =
          stripped.substr(stmt == std::string::npos ? 0 : stmt + 1,
                          at - (stmt == std::string::npos ? 0 : stmt + 1));
      const std::size_t eq = prefix.rfind('=');
      if (eq == std::string::npos) continue;
      const std::string name = trailing_ident(prefix.substr(0, eq));
      if (name.empty()) continue;
      (args.find("kUnbounded") != std::string::npos ? out->unbounded
                                                    : out->bounded)
          .insert(name);
      continue;
    }
    while (cursor < stripped.size() &&
           (stripped[cursor] == '&' || stripped[cursor] == '*')) {
      cursor = skip_spaces(stripped, cursor + 1);
    }
    std::size_t end = cursor;
    const std::string name = read_ident(stripped, cursor, &end);
    if (name.empty()) continue;
    const std::size_t next = skip_spaces(stripped, end);
    if (next < stripped.size() && stripped[next] == '(') {
      const std::size_t args_past = skip_balanced(stripped, next, '(', ')');
      if (args_past == std::string::npos) continue;
      const std::string args = stripped.substr(next, args_past - next);
      (args.find("kUnbounded") != std::string::npos ? out->unbounded
                                                    : out->bounded)
          .insert(name);
    } else {
      out->unknown.insert(name);
    }
  }
}

/// Resolves members declared `Channel<T> name_;` by finding their
/// constructor-initializer `name_(...)` anywhere in the project.
void classify_pending_channels(const std::string& stripped,
                               ChannelDecls* decls) {
  for (const std::string& name : decls->unknown) {
    if (decls->bounded.contains(name) || decls->unbounded.contains(name)) {
      continue;
    }
    for (std::size_t pos : find_word(stripped, name)) {
      const std::size_t open = pos + name.size();
      if (open >= stripped.size() || stripped[open] != '(') continue;
      const std::size_t past = skip_balanced(stripped, open, '(', ')');
      if (past == std::string::npos) continue;
      const std::string args = stripped.substr(open, past - open);
      if (args.find("engine") == std::string::npos &&
          args.find("Engine") == std::string::npos) {
        continue;  // not a channel constructor call
      }
      (args.find("kUnbounded") != std::string::npos ? decls->unbounded
                                                    : decls->bounded)
          .insert(name);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Lock-acquisition scan (pass 1)

struct AcqSite {
  std::size_t pos = 0;      // offset of the receiver expression's dot/arrow
  std::string name;         // normalized receiver (trailing identifier)
  bool indexed = false;     // receiver carried a subscript (per-ion arrays)
  bool acquire = false;     // false: release site
};

/// Receiver of `<expr>.lock()` given the offset of the '.' (or '-' of '->'):
/// trailing identifier with any `[...]` subscript stripped and noted.
void parse_receiver(const std::string& stripped, std::size_t dot,
                    std::string* name, bool* indexed) {
  std::size_t i = dot;
  *indexed = false;
  if (i > 0 && stripped[i - 1] == ']') {
    int depth = 0;
    while (i > 0) {
      --i;
      if (stripped[i] == ']') ++depth;
      if (stripped[i] == '[' && --depth == 0) break;
    }
    *indexed = true;
  }
  if (i == 0 || !is_ident(stripped[i - 1])) {
    name->clear();
    return;
  }
  *name = read_ident_backward(stripped, i - 1);
}

/// All acquire/release sites in the file, in source order.
std::vector<AcqSite> lock_sites(const std::string& stripped) {
  std::vector<AcqSite> sites;
  struct Pattern {
    const char* text;
    std::size_t dot_len;  // 1 for '.', 2 for '->'
    bool acquire;
  };
  static constexpr Pattern kPatterns[] = {
      {".lock(", 1, true},       {"->lock(", 2, true},
      {".acquire(", 1, true},    {"->acquire(", 2, true},
      {".unlock(", 1, false},    {"->unlock(", 2, false},
      {".release(", 1, false},   {"->release(", 2, false},
  };
  for (const Pattern& p : kPatterns) {
    std::size_t pos = 0;
    const std::string needle(p.text);
    while ((pos = stripped.find(needle, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += needle.size();
      if (p.acquire) {
        // Only a co_awaited acquisition can block (and thus order locks).
        const std::size_t stmt = stripped.find_last_of(";{}", at);
        const std::string prefix =
            stripped.substr(stmt == std::string::npos ? 0 : stmt + 1,
                            at - (stmt == std::string::npos ? 0 : stmt + 1));
        if (prefix.find("co_await") == std::string::npos) continue;
      }
      AcqSite site;
      site.pos = at;
      site.acquire = p.acquire;
      parse_receiver(stripped, at, &site.name, &site.indexed);
      if (!site.name.empty()) sites.push_back(site);
    }
  }
  std::sort(sites.begin(), sites.end(),
            [](const AcqSite& a, const AcqSite& b) { return a.pos < b.pos; });
  return sites;
}

void collect_lock_edges(const std::string& path, const std::string& stripped,
                        const std::vector<std::size_t>& starts,
                        std::vector<ProjectIndex::LockEdge>* edges) {
  const auto sites = lock_sites(stripped);
  if (sites.empty()) return;

  struct Held {
    std::string name;
    bool indexed;
    int depth;
  };
  std::vector<Held> held;
  int depth = 0;
  std::size_t site_i = 0;
  for (std::size_t i = 0; i < stripped.size(); ++i) {
    while (site_i < sites.size() && sites[site_i].pos == i) {
      const AcqSite& s = sites[site_i++];
      if (s.acquire) {
        for (const Held& h : held) {
          // Same-name edges are skipped: an indexed pair (`a_[i]`,`a_[j]`)
          // is only a cycle when i and j cross, which this lexical scan
          // cannot see, and a non-indexed pair is a recursive lock.
          if (h.name == s.name) continue;
          edges->push_back(ProjectIndex::LockEdge{
              h.name, s.name, path, line_of(starts, s.pos),
              col_of(starts, s.pos)});
        }
        held.push_back(Held{s.name, s.indexed, depth});
      } else {
        for (std::size_t h = held.size(); h > 0; --h) {
          if (held[h - 1].name == s.name) {
            held.erase(held.begin() + static_cast<std::ptrdiff_t>(h - 1));
            break;
          }
        }
      }
    }
    if (stripped[i] == '{') ++depth;
    if (stripped[i] == '}') {
      --depth;
      std::erase_if(held, [&](const Held& h) { return h.depth > depth; });
    }
  }
}

// ---------------------------------------------------------------------------
// Individual checks.  Each appends findings (suppression is applied by the
// caller, which knows the per-line allow sets).

using Sink = std::vector<Finding>;

void add(Sink* out, const char* id, const std::vector<std::size_t>& starts,
         std::size_t pos, std::string message) {
  const CheckInfo* info = find_check(id);
  out->push_back(Finding{"", line_of(starts, pos), col_of(starts, pos),
                         info->id, info->severity, std::move(message), false});
}

void check_unordered_iter(const std::string& stripped,
                          const std::vector<std::size_t>& starts,
                          const std::set<std::string>& unordered_names,
                          Sink* out) {
  for (std::size_t pos : find_word(stripped, "for")) {
    const std::size_t open = skip_spaces(stripped, pos + 3);
    if (open >= stripped.size() || stripped[open] != '(') continue;
    const std::size_t past = skip_balanced(stripped, open, '(', ')');
    if (past == std::string::npos) continue;
    const std::string head = stripped.substr(open + 1, past - open - 2);
    // A range-for has a single ':' at angle/paren depth 0 (':: ' excluded).
    std::size_t colon = std::string::npos;
    int depth = 0;
    for (std::size_t i = 0; i < head.size(); ++i) {
      const char c = head[i];
      if (c == '<' || c == '(' || c == '[' || c == '{') ++depth;
      if (c == '>' || c == ')' || c == ']' || c == '}') --depth;
      if (c == ':' && depth == 0) {
        if ((i + 1 < head.size() && head[i + 1] == ':') ||
            (i > 0 && head[i - 1] == ':')) {
          continue;
        }
        colon = i;
        break;
      }
      if (c == ';') break;  // classic for loop
    }
    if (colon == std::string::npos) continue;
    const std::string tail = head.substr(colon + 1);
    const std::string name = trailing_ident(tail);
    if (!name.empty() && unordered_names.contains(name)) {
      // Column of the container name itself (the last occurrence in the
      // range expression is the one trailing_ident extracted).
      const std::size_t in_tail = tail.rfind(name);
      const std::size_t name_pos = open + 1 + colon + 1 + in_tail;
      add(out, "unordered-iter", starts, name_pos,
          "iteration over unordered container '" + name +
              "': order is hash/insertion dependent and breaks trace "
              "reproducibility; use std::map or iterate a sorted snapshot");
    }
  }
}

void check_wall_clock(const std::string& stripped,
                      const std::vector<std::size_t>& starts, Sink* out) {
  for (const char* word :
       {"system_clock", "steady_clock", "high_resolution_clock",
        "gettimeofday", "clock_gettime", "localtime", "gmtime", "asctime"}) {
    for (std::size_t pos : find_word(stripped, word)) {
      add(out, "wall-clock", starts, pos,
          std::string("wall-clock source '") + word +
              "' in simulator code: simulated time must come from "
              "sim::Engine::now()");
    }
  }
}

void check_raw_random(const std::string& stripped,
                      const std::vector<std::size_t>& starts, Sink* out) {
  for (const char* word : {"random_device", "drand48", "lrand48", "mrand48"}) {
    for (std::size_t pos : find_word(stripped, word)) {
      add(out, "raw-random", starts, pos,
          std::string("nondeterministic randomness '") + word +
              "': use sim::Rng so runs reproduce from a seed");
    }
  }
  for (const char* word : {"rand", "srand"}) {
    for (std::size_t pos : find_word(stripped, word)) {
      const std::size_t after =
          skip_spaces(stripped, pos + std::string(word).size());
      if (after < stripped.size() && stripped[after] == '(') {
        add(out, "raw-random", starts, pos,
            std::string("libc '") + word +
                "()': use sim::Rng so runs reproduce from a seed");
      }
    }
  }
}

void check_ptr_key_order(const std::string& stripped,
                         const std::vector<std::size_t>& starts, Sink* out) {
  for (const char* kind : {"std::map<", "std::set<"}) {
    const std::string needle(kind);
    std::size_t pos = 0;
    while ((pos = stripped.find(needle, pos)) != std::string::npos) {
      const std::size_t open = pos + needle.size() - 1;
      const std::size_t at = pos;
      pos += needle.size();
      // First template argument: up to a depth-0 comma or the closing '>'.
      int depth = 1;
      std::size_t i = open + 1;
      std::size_t arg_end = std::string::npos;
      for (; i < stripped.size(); ++i) {
        const char c = stripped[i];
        if (c == '<' || c == '(') ++depth;
        if (c == '>' || c == ')') --depth;
        if ((c == ',' && depth == 1) || depth == 0) {
          arg_end = i;
          break;
        }
      }
      if (arg_end == std::string::npos) continue;
      const std::string key = trim(stripped.substr(open + 1, arg_end - open - 1));
      if (!key.empty() && key.back() == '*') {
        add(out, "ptr-key-order", starts, at,
            "ordered container keyed by pointer '" + key +
                "': ordering follows allocation addresses, which differ "
                "run to run; key by a stable id instead");
      }
    }
  }
}

/// Balanced argument regions of every `spawn(...)` / `spawn_daemon(...)`
/// call.  `detached` distinguishes fire-and-forget spawns (an Engine
/// receiver, or any spawn_daemon) from structured ones (`group.spawn(...)`
/// on a TaskGroup that is joined before its scope unwinds) — only the
/// former can outlive the caller's stack frame.
struct SpawnRegion {
  std::size_t lo = 0;  // first char of the argument list
  std::size_t hi = 0;  // one past its last char
  bool detached = true;
};

std::vector<SpawnRegion> spawn_arg_regions(const std::string& stripped) {
  std::vector<SpawnRegion> regions;
  for (std::size_t pos = 0; (pos = stripped.find("spawn", pos)) !=
                            std::string::npos;
       pos += 5) {
    if (pos > 0 && is_ident(stripped[pos - 1])) continue;
    std::size_t after = pos + 5;
    const bool daemon = stripped.compare(after, 7, "_daemon") == 0;
    if (daemon) after += 7;
    if (after < stripped.size() && is_ident(stripped[after])) continue;
    const std::size_t open = skip_spaces(stripped, after);
    if (open >= stripped.size() || stripped[open] != '(') continue;
    const std::size_t past = skip_balanced(stripped, open, '(', ')');
    if (past == std::string::npos) continue;
    bool detached = true;
    if (!daemon && pos > 0 &&
        (stripped[pos - 1] == '.' ||
         (stripped[pos - 1] == '>' && pos > 1 && stripped[pos - 2] == '-'))) {
      // Receiver's trailing token: `engine.spawn`, `machine.engine().spawn`
      // are detached; anything else (a TaskGroup or similar structured
      // scope) keeps the frame alive until join.
      std::size_t i = stripped[pos - 1] == '.' ? pos - 1 : pos - 2;
      if (i > 0 && stripped[i - 1] == ')') {
        int depth = 0;
        while (i > 0) {
          --i;
          if (stripped[i] == ')') ++depth;
          if (stripped[i] == '(' && --depth == 0) break;
        }
      }
      const std::string recv =
          i > 0 && is_ident(stripped[i - 1])
              ? read_ident_backward(stripped, i - 1)
              : "";
      detached = recv.find("engine") != std::string::npos ||
                 recv.find("Engine") != std::string::npos;
    }
    regions.push_back(SpawnRegion{open + 1, past - 1, detached});
  }
  return regions;
}

/// Whether a `.run()`/`->run()` call follows `from` within the same brace
/// block.  `engine.spawn(task()); engine.run();` is the structured driver
/// idiom: the spawner blocks in run() until every task finishes, so the
/// caller's stack outlives the spawned frames and references passed into
/// them stay valid.
bool followed_by_engine_run(const std::string& stripped, std::size_t from) {
  int depth = 0;
  const std::size_t limit = std::min(stripped.size(), from + 8192);
  for (std::size_t i = from; i < limit; ++i) {
    const char c = stripped[i];
    if (c == '{') ++depth;
    if (c == '}' && --depth < 0) return false;
    if (c == 'r' && stripped.compare(i, 3, "run") == 0 && i > 0 &&
        (stripped[i - 1] == '.' ||
         (stripped[i - 1] == '>' && i > 1 && stripped[i - 2] == '-')) &&
        (i + 3 >= stripped.size() || !is_ident(stripped[i + 3]))) {
      const std::size_t after = skip_spaces(stripped, i + 3);
      if (after < stripped.size() && stripped[after] == '(') return true;
    }
  }
  return false;
}

/// Argument regions of detached spawns whose frames genuinely escape the
/// spawning stack: `engine.spawn(...)`/`spawn_daemon(...)` with no
/// same-block `.run()` afterwards (see followed_by_engine_run).
std::vector<std::pair<std::size_t, std::size_t>> escaping_spawn_regions(
    const std::string& stripped) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (const SpawnRegion& r : spawn_arg_regions(stripped)) {
    if (r.detached && !followed_by_engine_run(stripped, r.hi)) {
      out.emplace_back(r.lo, r.hi);
    }
  }
  return out;
}

/// Names of coroutines invoked directly inside an *escaping* spawn's
/// argument list (`engine.spawn(serve(...))` records "serve").  Their
/// frames outlive the spawning stack, which is what makes reference
/// parameters dangerous for the suspension-lifetime check.
void collect_detached_fns(const std::string& stripped,
                          std::set<std::string>* out) {
  // A spawned *local lambda* (`auto serve = [&]...; engine.spawn(serve())`)
  // is excluded: its hazard is the captures, which the suspension-lifetime
  // lambda branch analyzes in the defining file, and the set is global, so
  // a common lambda name here must not taint an unrelated named function
  // in another file.
  auto is_local_lambda = [&](const std::string& name) {
    for (std::size_t at : find_word(stripped, name)) {
      std::size_t p = skip_spaces(stripped, at + name.size());
      if (p < stripped.size() && stripped[p] == '=' && p + 1 < stripped.size()
          && stripped[p + 1] != '=') {
        p = skip_spaces(stripped, p + 1);
        if (p < stripped.size() && stripped[p] == '[') return true;
      }
    }
    return false;
  };
  for (const auto& [lo, hi] : escaping_spawn_regions(stripped)) {
    for (std::size_t i = lo; i < hi; ++i) {
      if (stripped[i] != '(') continue;
      if (i > lo && is_ident(stripped[i - 1])) {
        const std::string name = read_ident_backward(stripped, i - 1);
        if (!name.empty() && is_ident_start(name[0]) &&
            !is_local_lambda(name)) {
          out->insert(name);
        }
      }
      break;  // only the outermost call in the argument expression
    }
  }
}

void check_coro_lambda_capture(const std::string& stripped,
                               const std::vector<std::size_t>& starts,
                               Sink* out) {
  const auto spawn_regions = spawn_arg_regions(stripped);
  for (std::size_t pos = 0; pos < stripped.size(); ++pos) {
    if (stripped[pos] != '[') continue;
    // Not an attribute ([[...]]) and not a subscript (prev token is a value).
    if (pos + 1 < stripped.size() && stripped[pos + 1] == '[') continue;
    if (pos > 0 && stripped[pos - 1] == '[') continue;
    std::size_t prev = pos;
    while (prev > 0 && (stripped[prev - 1] == ' ' || stripped[prev - 1] == '\t' ||
                        stripped[prev - 1] == '\n')) {
      --prev;
    }
    if (prev > 0 &&
        (is_ident(stripped[prev - 1]) || stripped[prev - 1] == ')' ||
         stripped[prev - 1] == ']')) {
      continue;  // subscript or attribute close
    }
    const std::size_t close = stripped.find(']', pos);
    if (close == std::string::npos) continue;
    const std::string captures = trim(stripped.substr(pos + 1, close - pos - 1));
    std::size_t cursor = skip_spaces(stripped, close + 1);
    std::string ret_type;
    std::size_t body_open = std::string::npos;
    if (cursor < stripped.size() && stripped[cursor] == '(') {
      const std::size_t past = skip_balanced(stripped, cursor, '(', ')');
      if (past == std::string::npos) continue;
      const std::size_t brace = stripped.find('{', past);
      if (brace == std::string::npos) continue;
      ret_type = stripped.substr(past, brace - past);
      body_open = brace;
    } else if (cursor < stripped.size() && stripped[cursor] == '{') {
      body_open = cursor;
    } else {
      continue;  // not a lambda after all
    }
    const std::size_t body_past = skip_balanced(stripped, body_open, '{', '}');
    if (body_past == std::string::npos) continue;
    const std::string body =
        stripped.substr(body_open, body_past - body_open);
    const bool coroutine = ret_type.find("Task") != std::string::npos ||
                           body.find("co_await") != std::string::npos ||
                           body.find("co_return") != std::string::npos ||
                           body.find("co_yield") != std::string::npos;
    if (!coroutine || captures.empty()) continue;
    // A named local closure (`auto proc = [&]...; spawn(proc());`) outlives
    // the run and is fine.  The UB shapes are a *temporary* closure: the
    // lambda expression written inline inside spawn(...)'s arguments, or
    // immediately invoked without being co_awaited in the same statement —
    // either way the closure (and its captures) dies while the coroutine
    // frame lives on.
    bool inline_in_spawn = false;
    for (const SpawnRegion& r : spawn_regions) {
      if (pos > r.lo && pos < r.hi) {
        inline_in_spawn = true;
        break;
      }
    }
    bool invoked_temporary = false;
    const std::size_t next = skip_spaces(stripped, body_past);
    if (next < stripped.size() && stripped[next] == '(') {
      const std::size_t stmt_begin =
          stripped.find_last_of(";{}", pos) == std::string::npos
              ? 0
              : stripped.find_last_of(";{}", pos) + 1;
      const std::string prefix = stripped.substr(stmt_begin, pos - stmt_begin);
      invoked_temporary = prefix.find("co_await") == std::string::npos;
    }
    if (inline_in_spawn || invoked_temporary) {
      add(out, "coro-lambda-capture", starts, pos,
          "coroutine lambda captures [" + captures +
              "] as a temporary closure: the closure object is destroyed "
              "while the frame lives on; name it in a scope that outlives "
              "the run, or pass state as explicit parameters");
    }
  }
}

bool line_has_excuse(const std::string& line) {
  return line.find("co_await") != std::string::npos ||
         line.find("co_yield") != std::string::npos ||
         line.find("return") != std::string::npos ||
         line.find("spawn") != std::string::npos ||
         line.find('=') != std::string::npos;
}

void check_missing_co_await(const std::vector<std::string>& stripped_lines,
                            const std::vector<std::size_t>& starts,
                            Sink* out) {
  static constexpr std::array<const char*, 9> kAwaitables = {
      "delay",   "yield", "wait", "acquire", "lock",
      "arrive_and_wait", "join",  "recv",    "await_turn"};
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& line = stripped_lines[i];
    if (line_has_excuse(line)) continue;
    for (const char* name : kAwaitables) {
      const std::string dot = std::string(".") + name + "(";
      const std::string arrow = std::string("->") + name + "(";
      std::size_t at = line.find(dot);
      std::size_t skip = 1;
      if (at == std::string::npos) {
        at = line.find(arrow);
        skip = 2;
      }
      if (at != std::string::npos) {
        add(out, "missing-co-await", starts, starts[i] + at + skip,
            std::string("'") + name +
                "()' builds an awaitable that is dropped without co_await: "
                "the suspension (and any side effect) never happens");
        break;
      }
    }
  }
}

void check_discarded_task(const std::vector<std::string>& stripped_lines,
                          const std::vector<std::size_t>& starts,
                          const std::set<std::string>& task_fns, Sink* out) {
  if (task_fns.empty()) return;
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string raw_line = stripped_lines[i];
    const std::string line = trim(raw_line);
    const std::size_t indent = raw_line.size() - line.size() -
                               (raw_line.find_last_not_of(" \t") ==
                                        std::string::npos
                                    ? 0
                                    : raw_line.size() -
                                          raw_line.find_last_not_of(" \t") -
                                          1);
    if (line.empty() || line.back() != ';') continue;
    if (line_has_excuse(line)) continue;
    for (const std::string& name : task_fns) {
      const std::size_t at = line.find(name + "(");
      if (at == std::string::npos) continue;
      if (at > 0 && is_ident(line[at - 1])) continue;
      // Statement position: everything before the call must be an object
      // chain (`obj.`, `ptr->`, `ns::`), not an enclosing call or keyword.
      const std::string prefix = line.substr(0, at);
      const bool chain_only =
          prefix.find('(') == std::string::npos &&
          prefix.find(' ') == std::string::npos &&
          prefix.find("co_") == std::string::npos;
      if (!chain_only) continue;
      add(out, "discarded-task", starts, starts[i] + indent + at,
          "call to Task-returning '" + name +
              "()' as a bare statement: the coroutine is destroyed before "
              "it runs; co_await it or hand it to Engine::spawn");
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Swallowed typed I/O outcomes (pass 2, against the pass-1 outcome-fn index)

/// Function/method names whose declared return type is — or wraps, as in
/// `sim::Task<io::IoOutcome>` — an identifier ending in "Outcome".  The
/// declaration shape is `...Outcome[>&]* name(`, which a value use never
/// matches (a variable name, `=`, `{`, or `;` follows instead).
void collect_outcome_fns(const std::string& stripped,
                         std::set<std::string>* fns) {
  static constexpr std::string_view kTail = "Outcome";
  for (std::size_t pos = 0; pos + kTail.size() <= stripped.size(); ++pos) {
    if (stripped.compare(pos, kTail.size(), kTail) != 0) continue;
    const std::size_t after = pos + kTail.size();
    if (after < stripped.size() && is_ident(stripped[after])) continue;
    pos = after - 1;  // resume the scan past this token either way
    std::size_t cursor = after;
    while (cursor < stripped.size() &&
           (stripped[cursor] == '>' || stripped[cursor] == '&' ||
            stripped[cursor] == ' ' || stripped[cursor] == '\t' ||
            stripped[cursor] == '\n')) {
      ++cursor;
    }
    if (cursor >= stripped.size() || !is_ident_start(stripped[cursor])) {
      continue;
    }
    std::size_t end = cursor;
    const std::string name = read_ident(stripped, cursor, &end);
    const std::size_t paren = skip_spaces(stripped, end);
    if (paren < stripped.size() && stripped[paren] == '(') fns->insert(name);
  }
}

/// Flags single-line statements that call an Outcome-returning function and
/// drop the result.  `co_await` does not rescue the value — the awaited
/// outcome is still discarded — so awaited bare statements are flagged too
/// (complementary to discarded-task, which catches the un-awaited form).
/// Deliberate discards go through `(void)` or an allow() suppression.
void check_swallowed_io_error(const std::vector<std::string>& stripped_lines,
                              const std::vector<std::size_t>& starts,
                              const std::set<std::string>& outcome_fns,
                              Sink* out) {
  if (outcome_fns.empty()) return;
  static constexpr std::string_view kAwait = "co_await ";
  for (std::size_t i = 0; i < stripped_lines.size(); ++i) {
    const std::string& raw_line = stripped_lines[i];
    std::string line = trim(raw_line);
    if (line.empty() || line.back() != ';') continue;
    // Wrapped statements: when the predecessor line neither closes a
    // statement nor opens a block, this line is a continuation (`const
    // IoOutcome r =` wrapped above the call), not a discard.
    bool continuation = false;
    for (std::size_t j = i; j > 0;) {
      const std::string prev = trim(stripped_lines[--j]);
      if (prev.empty()) continue;
      if (prev.front() == '#') break;  // preprocessor line: a boundary
      const char last = prev.back();
      continuation = last != ';' && last != '{' && last != '}' &&
                     last != ')' && last != ':';
      break;
    }
    if (continuation) continue;
    const std::size_t indent = raw_line.find_first_not_of(" \t");
    std::size_t stmt_off = indent == std::string::npos ? 0 : indent;
    if (line.starts_with(kAwait)) {
      line = line.substr(kAwait.size());
      stmt_off += kAwait.size();
    }
    for (const std::string& name : outcome_fns) {
      const std::size_t at = line.find(name + "(");
      if (at == std::string::npos) continue;
      if (at > 0 && is_ident(line[at - 1])) continue;
      // Statement position: nothing but an object chain (`obj.`, `ptr->`,
      // `ns::`) before the call — an enclosing call, assignment, return,
      // declaration, or cast all consume the value.
      const std::string prefix = line.substr(0, at);
      const bool chain_only = prefix.find('(') == std::string::npos &&
                              prefix.find(' ') == std::string::npos &&
                              prefix.find('=') == std::string::npos &&
                              prefix.find("co_") == std::string::npos;
      if (!chain_only) continue;
      add(out, "swallowed-io-error", starts, starts[i] + stmt_off + at,
          "result of '" + name +
              "()' discarded: the typed I/O outcome is the only failure "
              "channel; bind and inspect it (or cast to void to discard "
              "deliberately)");
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Channel self-deadlock (pass 2, against the pass-1 channel tables and the
// pass-2 CFGs, which attribute each site to its innermost enclosing body)

/// co_awaited `name.send(` / `name.recv(` sites for `name` in `stripped`.
std::vector<std::size_t> channel_op_sites(const std::string& stripped,
                                          const std::string& name,
                                          const char* op) {
  std::vector<std::size_t> out;
  for (const char* sep : {".", "->"}) {
    const std::string needle = name + sep + op + "(";
    std::size_t pos = 0;
    while ((pos = stripped.find(needle, pos)) != std::string::npos) {
      const std::size_t at = pos;
      pos += needle.size();
      if (at > 0 && is_ident(stripped[at - 1])) continue;
      const std::size_t stmt = stripped.find_last_of(";{}", at);
      const std::string prefix =
          stripped.substr(stmt == std::string::npos ? 0 : stmt + 1,
                          at - (stmt == std::string::npos ? 0 : stmt + 1));
      if (prefix.find("co_await") == std::string::npos) continue;
      out.push_back(at);
    }
  }
  return out;
}

void check_channel_self_deadlock(const std::string& stripped,
                                 const std::vector<std::size_t>& starts,
                                 const std::set<std::string>& bounded,
                                 const std::vector<FunctionCfg>& cfgs,
                                 Sink* out) {
  if (bounded.empty()) return;
  // Innermost enclosing function body (the CFG builder knows lambda
  // boundaries, so a producer lambda and a consumer lambda in the same
  // test function are distinct coroutines, not one self-deadlocking task).
  auto body_of = [&](std::size_t pos) -> std::size_t {
    std::size_t best = static_cast<std::size_t>(-1);
    std::size_t best_size = static_cast<std::size_t>(-1);
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
      const FunctionCfg& fn = cfgs[i];
      if (pos <= fn.body_lo || pos >= fn.body_hi) continue;
      if (fn.body_hi - fn.body_lo < best_size) {
        best = i;
        best_size = fn.body_hi - fn.body_lo;
      }
    }
    return best;
  };
  for (const std::string& name : bounded) {
    const auto sends = channel_op_sites(stripped, name, "send");
    const auto recvs = channel_op_sites(stripped, name, "recv");
    if (sends.empty() || recvs.empty()) continue;
    for (std::size_t send : sends) {
      const std::size_t body = body_of(send);
      if (body == static_cast<std::size_t>(-1)) continue;
      const bool same = std::any_of(
          recvs.begin(), recvs.end(),
          [&](std::size_t r) { return body_of(r) == body; });
      if (same) {
        add(out, "channel-self-deadlock", starts, send,
            "coroutine both sends on and receives from bounded channel '" +
                name +
                "': once the buffer fills the send suspends and the recv "
                "that would drain it never runs; split the roles across "
                "tasks or make the channel unbounded");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Capture escape (pass 2)

void check_capture_escape(const std::string& stripped,
                          const std::vector<std::size_t>& starts, Sink* out) {
  for (const SpawnRegion& region : spawn_arg_regions(stripped)) {
    if (!region.detached) continue;
    const std::size_t lo = region.lo;
    const std::size_t hi = region.hi;
    int bracket_depth = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      const char c = stripped[i];
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (bracket_depth > 0) continue;  // lambda capture list / subscript
      if (c == '&') {
        if (i + 1 >= hi || !is_ident_start(stripped[i + 1])) continue;
        const std::size_t prev = prev_nonspace(stripped, i);
        // Address-of in argument position: `f(&x` or `f(a, &x`.  Anything
        // else (`a & b`, `a && b`, `T& x`) has a value or type on the left.
        if (prev == std::string::npos ||
            (stripped[prev] != '(' && stripped[prev] != ',')) {
          continue;
        }
        const std::string name = read_ident(stripped, i + 1);
        if (name == "this" || name.empty()) continue;
        if (name.back() == '_') continue;  // member: owned by a live object
        add(out, "capture-escape", starts, i,
            "'&" + name +
                "' passed into a detached coroutine: the frame outlives "
                "the caller's stack, leaving a dangling pointer; pass by "
                "value or move ownership into the coroutine");
      } else if (stripped.compare(i, 9, "std::ref(") == 0 ||
                 stripped.compare(i, 10, "std::cref(") == 0) {
        if (i > 0 && is_ident(stripped[i - 1])) continue;
        const std::size_t open = stripped.find('(', i);
        const std::string name = read_ident(stripped, open + 1);
        if (!name.empty() && name.back() == '_') continue;
        add(out, "capture-escape", starts, i,
            "std::ref(" + name +
                ") passed into a detached coroutine: the reference "
                "outlives the caller's stack; pass by value or move "
                "ownership into the coroutine");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Layering

struct LayerRule {
  const char* layer;
  std::set<std::string> allowed;
};

const std::vector<LayerRule>& layer_rules() {
  static const std::vector<LayerRule> kRules = {
      {"sim", {"sim"}},
      // The observability layer may read simulation/file abstractions but
      // never the device or file-system layers that publish into it (those
      // include obs, so the reverse edge would be a cycle).
      {"obs", {"obs", "pablo", "io", "sim"}},
      {"hw", {"hw", "obs", "sim"}},
      {"io", {"io", "hw", "sim"}},
      // Fault injection drives the hardware models (and publishes into obs)
      // but must never know about the file systems built on top of them.
      {"fault", {"fault", "hw", "obs", "io", "sim"}},
      {"pfs", {"pfs", "obs", "io", "hw", "sim"}},
      {"ppfs", {"ppfs", "pfs", "fault", "obs", "io", "hw", "sim"}},
      {"pablo", {"pablo", "io", "hw", "sim"}},
      {"analysis", {"analysis", "pablo", "io", "sim"}},
      {"apps", {"apps", "analysis", "pablo", "io", "hw", "sim"}},
      {"core",
       {"core", "apps", "analysis", "pablo", "ppfs", "pfs", "fault", "obs",
        "io", "hw", "sim"}},
      {"testkit",
       {"testkit", "core", "apps", "analysis", "pablo", "ppfs", "pfs",
        "fault", "obs", "io", "hw", "sim"}},
  };
  return kRules;
}

/// hw headers src/apps may include: the Machine facade only, never device
/// internals (disk, raid, network, scheduler).
bool apps_hw_header_allowed(const std::string& header) {
  return header == "hw/machine.hpp";
}

void check_layering(const std::string& path, const std::string& raw,
                    const std::vector<std::size_t>& starts, Sink* out) {
  const std::size_t src = path.rfind("src/");
  if (src == std::string::npos) return;
  const std::string rest = path.substr(src + 4);
  const std::size_t slash = rest.find('/');
  if (slash == std::string::npos) return;  // src/paraio.hpp umbrella
  const std::string layer = rest.substr(0, slash);
  const LayerRule* rule = nullptr;
  for (const LayerRule& r : layer_rules()) {
    if (layer == r.layer) rule = &r;
  }
  if (!rule) return;

  std::size_t begin = 0;
  while (begin <= raw.size()) {
    std::size_t end = raw.find('\n', begin);
    if (end == std::string::npos) end = raw.size();
    const std::string raw_line = raw.substr(begin, end - begin);
    const std::string line = trim(raw_line);
    const std::size_t line_begin = begin;
    begin = end + 1;
    if (!line.starts_with("#include \"")) continue;
    const std::size_t include_pos = line_begin + raw_line.find("#include");
    const std::size_t quote = line.find('"');
    const std::size_t quote2 = line.find('"', quote + 1);
    if (quote2 == std::string::npos) continue;
    const std::string header = line.substr(quote + 1, quote2 - quote - 1);
    const std::size_t hslash = header.find('/');
    if (hslash == std::string::npos) continue;  // same-directory include
    const std::string target = header.substr(0, hslash);
    bool known = false;
    for (const LayerRule& r : layer_rules()) {
      if (target == r.layer) known = true;
    }
    if (!known) continue;
    if (!rule->allowed.contains(target)) {
      add(out, "layering", starts, include_pos,
          "layer 'src/" + layer + "' must not include '" + header +
              "' (layer '" + target + "' is above it)");
    } else if (layer == "apps" && target == "hw" &&
               !apps_hw_header_allowed(header)) {
      add(out, "layering", starts, include_pos,
          "src/apps must program against the hw::Machine facade; include "
          "'hw/machine.hpp' instead of '" +
              header + "'");
    }
  }
}

// ---------------------------------------------------------------------------
// Lock-order cycle detection (runs once, at index time)

void detect_lock_cycles(ProjectIndex* index) {
  const auto& edges = index->lock_edges;
  if (edges.empty()) return;
  // reachable(from, to) over the acquisition-order graph.
  auto reachable = [&](const std::string& from, const std::string& to) {
    std::vector<const std::string*> frontier{&from};
    std::set<std::string> seen{from};
    std::vector<std::pair<std::size_t, bool>> unused;
    while (!frontier.empty()) {
      const std::string cur = *frontier.back();
      frontier.pop_back();
      if (cur == to) return true;
      for (const auto& e : edges) {
        if (e.from == cur && seen.insert(e.to).second) {
          frontier.push_back(&e.to);
        }
      }
    }
    return false;
  };
  for (const auto& e : edges) {
    if (!reachable(e.to, e.from)) continue;
    // Name a counterpart site on the return path for the message.
    std::string counterpart;
    for (const auto& other : edges) {
      if (other.from == e.to && reachable(other.to, e.from)) {
        counterpart = other.file + ":" + std::to_string(other.line);
        break;
      }
    }
    const CheckInfo* info = find_check("lock-order");
    Finding f;
    f.file = e.file;
    f.line = e.line;
    f.col = e.col;
    f.check = info->id;
    f.severity = info->severity;
    f.message = "lock '" + e.to + "' acquired while holding '" + e.from +
                "', but the tree also acquires them in the opposite order" +
                (counterpart.empty() ? "" : " (see " + counterpart + ")") +
                ": some interleaving deadlocks; establish one global "
                "acquisition order";
    index->global_findings.push_back(std::move(f));
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Public API

const std::vector<CheckInfo>& checks() {
  static const std::vector<CheckInfo> kAll(std::begin(kChecks),
                                           std::end(kChecks));
  return kAll;
}

const CheckInfo* find_check(std::string_view id) {
  for (const CheckInfo& c : kChecks) {
    if (std::string_view(c.id) == id) return &c;
  }
  return nullptr;
}

const std::vector<const char*>& cli_flags() {
  // Must match exactly what main.cpp parses; CheckDocsTextTwoWayGate and
  // the CI `--check-docs` run both fail when this list and the driver (or
  // the doc) drift apart.
  static const std::vector<const char*> kFlags = {
      "--werror",     "--disable",     "--exclude", "--sarif",
      "--baseline",   "--lp-report",   "--stats",   "--check-docs",
      "--list-checks", "--explain",
  };
  return kFlags;
}

std::string strip_comments_and_strings(const std::string& source) {
  std::string out = source;
  enum class State { kCode, kLine, kBlock, kString, kChar } state = State::kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLine;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlock;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
          out[i] = ' ';
        } else if (c == '\'') {
          state = State::kChar;
          out[i] = ' ';
        }
        break;
      case State::kLine:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlock:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\n') {
          out[i] = ' ';
          if (next != '\0') out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\n') {
          out[i] = ' ';
          if (next != '\0') out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          out[i] = ' ';
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

ProjectIndex index_project(const std::vector<SourceFile>& files,
                           AnalysisStats* stats) {
  // Host-side timing of the analyzer itself, never of simulated events.
  using Clock = std::chrono::steady_clock;  // paraio-lint: allow(wall-clock)
  const auto elapsed_ms = [](Clock::time_point from) {
    return std::chrono::duration<double, std::milli>(Clock::now() - from)
        .count();
  };
  const auto t_index = Clock::now();

  ProjectIndex index;
  std::vector<std::string> stripped_files;
  stripped_files.reserve(files.size());

  std::vector<std::pair<std::string, std::string>> aliases;
  std::map<std::string, std::pair<bool, bool>> fn_decls;  // task / non-task
  ChannelDecls channels;

  for (const SourceFile& f : files) {
    stripped_files.push_back(strip_comments_and_strings(f.content));
    const std::string& stripped = stripped_files.back();
    collect_unordered_names(stripped, &index.unordered_names);
    collect_type_aliases(stripped, &aliases);
    collect_channel_decls(stripped, &channels);
    collect_outcome_fns(stripped, &index.outcome_fns);
    collect_detached_fns(stripped, &index.detached_fns);

    std::map<std::string, std::pair<bool, bool>> file_decls;
    collect_fn_decls(stripped, &file_decls);
    std::set<std::string> task_names;
    for (const auto& [name, flags] : file_decls) {
      if (flags.first) task_names.insert(name);
      auto& merged = fn_decls[name];
      merged.first |= flags.first;
      merged.second |= flags.second;
    }
    index.task_fns.emplace_back(f.path, std::move(task_names));

    const auto starts = line_starts(f.content);
    collect_lock_edges(f.path, stripped, starts, &index.lock_edges);
  }

  // Unordered-alias fixpoint: `using A = std::unordered_map<...>`, then
  // `using B = A`, then variables declared `A x;` / `B y;` anywhere.
  std::set<std::string> unordered_aliases;
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [alias, base] : aliases) {
      if (unordered_aliases.contains(alias)) continue;
      const std::string root = type_root(base);
      if (root == "std::unordered_map" || root == "std::unordered_set" ||
          unordered_aliases.contains(root)) {
        unordered_aliases.insert(alias);
        changed = true;
      }
    }
  }
  for (const std::string& stripped : stripped_files) {
    collect_alias_vars(stripped, unordered_aliases, &index.unordered_names);
    classify_pending_channels(stripped, &channels);
  }

  for (const auto& [name, flags] : fn_decls) {
    if (flags.first && !flags.second) index.global_task_fns.insert(name);
  }
  index.bounded_channels = std::move(channels.bounded);
  index.unbounded_channels = std::move(channels.unbounded);

  detect_lock_cycles(&index);
  if (stats) stats->index_ms = elapsed_ms(t_index);

  // Pass 2 (whole-program leg): CFGs for every file, the unit the call
  // graph and summaries consume.  lint_file rebuilds its own per-file CFGs
  // later; this transient vector is not stored on the index.
  const auto t_cfg = Clock::now();
  std::vector<FileAnalysis> analyses;
  analyses.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    FileAnalysis fa;
    fa.path = files[i].path;
    fa.stripped = std::move(stripped_files[i]);
    fa.cfgs = build_cfgs(fa.stripped);
    analyses.push_back(std::move(fa));
  }
  if (stats) stats->cfg_ms = elapsed_ms(t_cfg);

  // Pass 3: call graph, bottom-up function summaries, cross-LP audit.
  const auto t_summary = Clock::now();
  index.call_graph = build_call_graph(analyses);
  SummaryStats summary_stats;
  index.summaries =
      compute_summaries(index.call_graph, analyses, &summary_stats);

  const LpAudit audit =
      cross_lp_audit(index.call_graph, analyses, index.detached_fns);
  index.lp_report = audit.report;
  const CheckInfo* lp_info = find_check("cross-lp-shared-state");
  for (const LpWrite& w : audit.findings) {
    Finding f;
    f.file = w.file;
    f.line = w.line;
    f.col = w.col;
    f.check = lp_info->id;
    f.severity = lp_info->severity;
    f.message = w.message;
    index.global_findings.push_back(std::move(f));
  }
  if (stats) {
    stats->summary_ms = elapsed_ms(t_summary);
    stats->call_graph_fns = index.call_graph.fns.size();
    stats->call_graph_edges = index.call_graph.edge_count;
    stats->unresolved_calls = index.call_graph.unresolved_calls;
    stats->scc_count = summary_stats.sccs;
    stats->max_fixpoint_iterations = summary_stats.max_fixpoint_iterations;
  }
  return index;
}

namespace {

/// Task-fn names visible to `path`: the whole-program set of unambiguous
/// Task-returning names, plus every name (ambiguous or not) declared in the
/// file itself or its sibling header/source (same stem, .hpp <-> .cpp),
/// where the match is precise enough to trust.
std::set<std::string> visible_task_fns(const std::string& path,
                                       const ProjectIndex& index) {
  auto stem = [](const std::string& p) {
    const std::size_t dot = p.rfind('.');
    return dot == std::string::npos ? p : p.substr(0, dot);
  };
  std::set<std::string> out = index.global_task_fns;
  const std::string my_stem = stem(path);
  for (const auto& [file, names] : index.task_fns) {
    if (stem(file) == my_stem) out.insert(names.begin(), names.end());
  }
  return out;
}

}  // namespace

std::vector<Finding> lint_file(const SourceFile& file,
                               const ProjectIndex& index,
                               const Options& options,
                               LintRunStats* stats) {
  const std::string stripped = strip_comments_and_strings(file.content);
  const std::vector<std::size_t> starts = line_starts(file.content);
  const auto suppressions = parse_suppressions(file.content, starts);

  std::vector<std::string> stripped_lines;
  {
    std::size_t begin = 0;
    while (begin <= stripped.size()) {
      std::size_t end = stripped.find('\n', begin);
      if (end == std::string::npos) end = stripped.size();
      stripped_lines.push_back(stripped.substr(begin, end - begin));
      if (end == stripped.size()) break;
      begin = end + 1;
    }
  }

  std::vector<Finding> findings;
  check_unordered_iter(stripped, starts, index.unordered_names, &findings);
  check_wall_clock(stripped, starts, &findings);
  check_raw_random(stripped, starts, &findings);
  check_ptr_key_order(stripped, starts, &findings);
  check_coro_lambda_capture(stripped, starts, &findings);
  check_missing_co_await(stripped_lines, starts, &findings);
  check_discarded_task(stripped_lines, starts,
                       visible_task_fns(file.path, index), &findings);
  check_swallowed_io_error(stripped_lines, starts, index.outcome_fns,
                           &findings);
  // Pass 2 artifacts, shared by the scope-sensitive token checks below and
  // the flow-sensitive checks.
  const std::vector<FunctionCfg> cfgs = build_cfgs(stripped);
  if (stats) stats->functions += cfgs.size();

  check_channel_self_deadlock(stripped, starts, index.bounded_channels, cfgs,
                              &findings);
  check_capture_escape(stripped, starts, &findings);
  check_layering(file.path, file.content, starts, &findings);

  const auto escaping_spawns = escaping_spawn_regions(stripped);
  const FlowContext flow{stripped, starts, index, cfgs, escaping_spawns,
                         stats};
  check_suspension_lifetime(flow, &findings);
  check_lock_across_suspension(flow, &findings);
  check_determinism_taint(flow, &findings);
  check_blocking_loop(flow, &findings);

  for (const Finding& f : index.global_findings) {
    if (f.file == file.path) findings.push_back(f);
  }

  std::erase_if(findings, [&](const Finding& f) {
    return options.disabled.contains(f.check);
  });
  for (Finding& f : findings) {
    f.file = file.path;
    if (f.line < suppressions.size() &&
        suppressions[f.line].contains(f.check)) {
      f.suppressed = true;
    }
  }
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              if (a.col != b.col) return a.col < b.col;
              return std::string_view(a.check) < std::string_view(b.check);
            });
  return findings;
}

void dedupe_findings(std::vector<Finding>* findings) {
  // (check, file, line, col) -> index of the kept finding.  An active
  // finding wins over a suppressed/baselined duplicate so deduplication can
  // never hide a real finding behind a suppressed copy of itself.  The key
  // owns its strings: moving the Finding into `out` empties f.file, so a
  // view into it would corrupt the map.
  std::map<std::tuple<std::string, std::string, std::size_t, std::size_t>,
           std::size_t>
      kept;
  std::vector<Finding> out;
  out.reserve(findings->size());
  for (Finding& f : *findings) {
    auto key = std::make_tuple(std::string(f.check), f.file, f.line, f.col);
    const auto it = kept.find(key);
    if (it == kept.end()) {
      kept.emplace(key, out.size());
      out.push_back(std::move(f));
      continue;
    }
    Finding& winner = out[it->second];
    if ((winner.suppressed || winner.baselined) && !f.suppressed &&
        !f.baselined) {
      winner = std::move(f);
    }
  }
  *findings = std::move(out);
}

int check_docs_text(const std::string& doc, const std::string& doc_name,
                    std::ostream& err) {
  int drift = kExitClean;
  for (const auto& c : checks()) {
    // Built by append rather than operator+ chains: GCC 12's -Wrestrict
    // false-positives on `const char* + std::string&&` under -O2.
    std::string needle = "`";
    needle += c.id;
    needle += '`';
    if (doc.find(needle) == std::string::npos) {
      err << "paraio_lint: doc drift: check '" << c.id
          << "' is not documented in " << doc_name << "\n";
      drift = kExitFindings;
    }
  }
  // Table rows whose FIRST cell is a backticked id: a line starting
  // `| `some-id` ...`.  Later cells legitimately backtick non-check tokens
  // (`system_clock`, `std::map`, ...), so only the line-initial cell is
  // held to the catalog.
  std::size_t pos = 0;
  while ((pos = doc.find("| `", pos)) != std::string::npos) {
    const bool at_line_start = pos == 0 || doc[pos - 1] == '\n';
    const std::size_t begin = pos + 3;
    const std::size_t end = doc.find('`', begin);
    pos = begin;
    if (end == std::string::npos) break;
    if (!at_line_start) continue;
    const std::string id = doc.substr(begin, end - begin);
    const bool id_like =
        !id.empty() && id.find(' ') == std::string::npos && id.size() < 40;
    if (id_like && find_check(id) == nullptr) {
      err << "paraio_lint: doc drift: " << doc_name
          << " documents unknown check '" << id << "'\n";
      drift = kExitFindings;
    }
  }
  // The CLI flag list follows the same two-way contract.  Forward: every
  // flag the driver parses must appear backticked somewhere (`--sarif=path`
  // counts for `--sarif`).  Backward: every backticked token that starts
  // with `--` must be a flag the driver parses, so prose written against a
  // renamed or removed flag fails the gate.
  for (const char* flag : cli_flags()) {
    std::string needle = "`";
    needle += flag;
    if (doc.find(needle) == std::string::npos) {
      err << "paraio_lint: doc drift: flag '" << flag
          << "' is not documented in " << doc_name << "\n";
      drift = kExitFindings;
    }
  }
  pos = 0;
  while ((pos = doc.find("`--", pos)) != std::string::npos) {
    const std::size_t begin = pos + 1;
    std::size_t end = begin;
    while (end < doc.size() && doc[end] != '`' && doc[end] != '=' &&
           doc[end] != ' ' && doc[end] != '\n') {
      ++end;
    }
    pos = end;
    const std::string flag = doc.substr(begin, end - begin);
    bool known = false;
    for (const char* f : cli_flags()) known = known || flag == f;
    if (!known) {
      err << "paraio_lint: doc drift: " << doc_name
          << " documents unknown flag '" << flag << "'\n";
      drift = kExitFindings;
    }
  }
  if (drift == kExitClean) {
    err << "paraio_lint: " << doc_name << " is in sync with the catalog ("
        << checks().size() << " checks, " << cli_flags().size()
        << " flags)\n";
  }
  return drift;
}

}  // namespace paraio::lint
