// Pass 2 of the linter: a lightweight per-function statement-level control
// flow graph built over the stripped token stream, for the flow-sensitive
// checks (suspension-lifetime, lock-across-suspension, determinism-taint).
//
// This is deliberately not a C++ parser.  Function bodies are discovered by
// walking backward from each `{` through trailing-return types, cv/ref
// specifiers, and constructor member-initializer lists to the parameter
// list; the body is then parsed into statements with explicit handling for
// `if`/`else`, `while`, `for`, `do`, `switch`/`case`, `try`/`catch`,
// `break`/`continue`, `return`/`co_return`, and nested blocks.  Every node
// records its byte range in the stripped text, its successor set, and
// whether it contains a suspension point (`co_await`/`co_yield`).
//
// Nested lambdas get their own FunctionCfg; their body bytes still appear
// inside the enclosing statement's range, so checks that scan node text use
// masked_node_text() to blank out inner function bodies first.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace paraio::lint {

struct CfgNode {
  enum class Kind {
    kEntry,      // synthetic: one per function, no text
    kExit,       // synthetic: target of return/co_return and fall-off
    kStatement,  // simple statement or declaration, range ends at ';'
    kCondition,  // if/while/for/switch/do-while header (two+ successors)
  };

  Kind kind = Kind::kStatement;
  std::size_t lo = 0;  // byte range in the stripped text, [lo, hi)
  std::size_t hi = 0;
  bool suspends = false;  // contains co_await / co_yield at this node
  std::vector<int> succs;
};

struct CfgParam {
  std::string name;
  bool is_reference = false;  // T& / T&&
  bool is_pointer = false;    // T*
};

struct FunctionCfg {
  std::string name;       // unqualified; empty for lambdas
  bool is_lambda = false;
  bool is_coroutine = false;  // body contains co_await/co_yield/co_return
  std::string captures;       // lambda capture list text, no brackets
  std::vector<CfgParam> params;
  std::size_t header_lo = 0;  // name / capture-list start (for reporting)
  std::size_t body_lo = 0;    // '{' of the body
  std::size_t body_hi = 0;    // one past the matching '}'
  // nodes[0] is the entry, nodes[1] the exit; statements follow in source
  // order (which makes plain index order a usable iteration order for the
  // forward solver).
  std::vector<CfgNode> nodes;
  static constexpr int kEntry = 0;
  static constexpr int kExit = 1;
};

/// All function/lambda bodies in `stripped` (comment/string-stripped
/// source), each with its statement-level CFG.  Functions whose body fails
/// to parse (unbalanced constructs) are returned with only entry/exit nodes
/// so callers can skip them without special-casing.
std::vector<FunctionCfg> build_cfgs(const std::string& stripped);

/// Text of `node` with the bodies of other functions (nested lambdas, or
/// the enclosing function when `fn` is the lambda) blanked to spaces, so a
/// word scan attributes uses to the function that actually executes them.
std::string masked_node_text(const std::string& stripped,
                             const std::vector<FunctionCfg>& all,
                             const FunctionCfg& fn, const CfgNode& node);

/// `fn`'s whole body text `[body_lo, body_hi)` with nested function bodies
/// blanked the same way, offsets body-local.  For the lexical whole-body
/// scans (function summaries, loop shapes) that don't go node by node.
std::string masked_function_text(const std::string& stripped,
                                 const std::vector<FunctionCfg>& all,
                                 const FunctionCfg& fn);

}  // namespace paraio::lint
