#include "paraio_lint/callgraph.hpp"

#include <algorithm>
#include <array>
#include <set>

#include "paraio_lint/text.hpp"

namespace paraio::lint {

namespace {

using namespace paraio::lint::text;

constexpr std::size_t npos = std::string::npos;

/// Keywords that look like `ident(` but are never calls.
bool is_call_keyword(const std::string& word) {
  static constexpr std::array<const char*, 18> kWords = {
      "if",     "while",   "for",       "switch",   "catch",  "return",
      "co_return", "co_await", "co_yield", "sizeof", "new",   "delete",
      "throw",  "alignof", "decltype",  "typeid",   "assert", "defined"};
  return std::any_of(kWords.begin(), kWords.end(),
                     [&](const char* k) { return word == k; });
}

}  // namespace

std::vector<NodeCall> find_calls(const std::string& text) {
  std::vector<NodeCall> calls;
  for (std::size_t pos = 0; pos < text.size(); ++pos) {
    if (!is_ident_start(text[pos]) || (pos > 0 && is_ident(text[pos - 1]))) {
      continue;
    }
    std::size_t end = pos;
    const std::string name = read_ident(text, pos, &end);
    const std::size_t at = pos;
    pos = end - 1;
    if (is_call_keyword(name)) continue;
    // Only a direct `name(` shape is a call; `name <int>(` (template-id)
    // and `name )` are not, and a following ident means `Type name(` — a
    // declaration, not a call.
    if (end >= text.size() || text[end] != '(') continue;
    const std::size_t past = skip_balanced(text, end, '(', ')');
    if (past == npos) continue;
    // A declaration/definition (`Task<> pump(Config& cfg)`) has a type
    // token immediately before the name; a call has an operator, keyword,
    // or statement boundary.  Walking one token back separates the two
    // well enough: declarations are preceded by an identifier or '>'/'&'/
    // '*' (type tail), calls by '(', ',', '=', ';', '.', '->', 'co_await'.
    NodeCall call;
    call.name = name;
    call.pos = at;
    const std::size_t prev = prev_nonspace(text, at);
    if (prev != npos) {
      const char p = text[prev];
      if (p == '.') {
        call.has_receiver = true;
      } else if (p == '>' && prev > 0 && text[prev - 1] == '-') {
        call.has_receiver = true;
      } else if (p == ':' && prev > 0 && text[prev - 1] == ':') {
        // Qualified call `ns::f(` — fine, resolved by trailing name.
      } else if (is_ident(p)) {
        const std::string before = read_ident_backward(text, prev);
        if (!is_call_keyword(before) && before != "co_await" &&
            before != "co_yield" && before != "else" && before != "do" &&
            before != "case" && before != "goto") {
          continue;  // `Type name(` — a declaration
        }
      } else if (p == '>' || p == '&' || p == '*') {
        // Could be a declaration (`Task<> pump(`) or an expression
        // (`a > b(`, `x & mask(`).  Template-close followed by a name is
        // overwhelmingly a declaration in this tree; skip it.
        if (p == '>' && !(prev > 0 && text[prev - 1] == '-')) continue;
        if (p == '&' || p == '*') continue;
      }
    }
    // co_await earlier in the same sub-statement?
    const std::size_t stmt = text.find_last_of(";{}", at);
    const std::string prefix = text.substr(stmt == npos ? 0 : stmt + 1,
                                           at - (stmt == npos ? 0 : stmt + 1));
    call.awaited = prefix.find("co_await") != npos;
    // Arguments: split [end+1, past-1) at top-level commas; record the
    // trailing identifier of each (empty when the argument is not a name).
    std::size_t arg_begin = end + 1;
    int depth = 0;
    for (std::size_t i = end + 1; i < past; ++i) {
      const char c = text[i];
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if ((c == ',' && depth == 0) || i + 1 == past) {
        const std::size_t arg_end = (i + 1 == past) ? past - 1 : i;
        const std::string arg =
            text.substr(arg_begin, arg_end - arg_begin);
        const std::string ident = trailing_ident(arg);
        call.args.push_back(ident);
        std::size_t ident_pos = 0;
        if (!ident.empty()) {
          const std::size_t in_arg = arg.rfind(ident);
          ident_pos = arg_begin + (in_arg == npos ? 0 : in_arg);
        }
        call.arg_pos.push_back(ident_pos);
        arg_begin = i + 1;
      }
    }
    if (past >= 2 && trim(text.substr(end + 1, past - end - 2)).empty()) {
      call.args.clear();
      call.arg_pos.clear();
    }
    calls.push_back(std::move(call));
  }
  return calls;
}

namespace {

/// Name a lambda is bound to (`auto relay = [&] ...`), or "" when the
/// lambda is anonymous (inline in an argument list, immediately invoked).
std::string lambda_bound_name(const std::string& stripped,
                              const FunctionCfg& fn) {
  std::size_t p = prev_nonspace(stripped, fn.header_lo);
  if (p == npos || stripped[p] != '=') return "";
  p = prev_nonspace(stripped, p);
  if (p == npos || !is_ident(stripped[p])) return "";
  return read_ident_backward(stripped, p);
}

/// Iterative Tarjan SCC over `callees`, emitting components bottom-up
/// (an SCC is emitted only after every SCC it calls into).
std::vector<std::vector<int>> tarjan_sccs(
    const std::vector<std::vector<int>>& callees) {
  const int n = static_cast<int>(callees.size());
  std::vector<int> index(static_cast<std::size_t>(n), -1);
  std::vector<int> lowlink(static_cast<std::size_t>(n), -1);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<int> stack;
  std::vector<std::vector<int>> sccs;
  int next_index = 0;

  struct Frame {
    int v;
    std::size_t child = 0;
  };
  for (int root = 0; root < n; ++root) {
    if (index[static_cast<std::size_t>(root)] != -1) continue;
    std::vector<Frame> frames{{root, 0}};
    index[static_cast<std::size_t>(root)] =
        lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = true;
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto v = static_cast<std::size_t>(f.v);
      if (f.child < callees[v].size()) {
        const int w = callees[v][f.child++];
        const auto wi = static_cast<std::size_t>(w);
        if (index[wi] == -1) {
          index[wi] = lowlink[wi] = next_index++;
          stack.push_back(w);
          on_stack[wi] = true;
          frames.push_back(Frame{w, 0});
        } else if (on_stack[wi]) {
          lowlink[v] = std::min(lowlink[v], index[wi]);
        }
        continue;
      }
      if (lowlink[v] == index[v]) {
        std::vector<int> scc;
        for (;;) {
          const int w = stack.back();
          stack.pop_back();
          on_stack[static_cast<std::size_t>(w)] = false;
          scc.push_back(w);
          if (w == f.v) break;
        }
        sccs.push_back(std::move(scc));
      }
      const int finished = f.v;
      frames.pop_back();
      if (!frames.empty()) {
        const auto parent = static_cast<std::size_t>(frames.back().v);
        lowlink[parent] =
            std::min(lowlink[parent],
                     lowlink[static_cast<std::size_t>(finished)]);
      }
    }
  }
  return sccs;
}

}  // namespace

CallGraph build_call_graph(const std::vector<FileAnalysis>& files) {
  CallGraph graph;
  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    for (std::size_t ci = 0; ci < files[fi].cfgs.size(); ++ci) {
      const FunctionCfg& cfg = files[fi].cfgs[ci];
      CallGraph::Fn fn;
      fn.file = fi;
      fn.cfg = ci;
      fn.name = cfg.is_lambda ? lambda_bound_name(files[fi].stripped, cfg)
                              : cfg.name;
      const int id = static_cast<int>(graph.fns.size());
      if (!fn.name.empty()) graph.by_name[fn.name].push_back(id);
      graph.fns.push_back(std::move(fn));
    }
  }

  graph.callees.resize(graph.fns.size());
  for (std::size_t id = 0; id < graph.fns.size(); ++id) {
    const CallGraph::Fn& fn = graph.fns[id];
    const FileAnalysis& file = files[fn.file];
    const FunctionCfg& cfg = file.cfgs[fn.cfg];
    std::set<int> resolved;
    for (const CfgNode& node : cfg.nodes) {
      if (node.hi <= node.lo) continue;
      const std::string body =
          masked_node_text(file.stripped, file.cfgs, cfg, node);
      for (const NodeCall& call : find_calls(body)) {
        const std::vector<int>* targets = graph.resolve(call.name);
        if (targets == nullptr) {
          ++graph.unresolved_calls;
          continue;
        }
        // Self-edges are kept: direct recursion forms a one-node SCC whose
        // fixpoint the summary pass iterates like any other.
        resolved.insert(targets->begin(), targets->end());
      }
    }
    graph.callees[id].assign(resolved.begin(), resolved.end());
    graph.edge_count += resolved.size();
  }

  graph.sccs = tarjan_sccs(graph.callees);
  return graph;
}

}  // namespace paraio::lint
