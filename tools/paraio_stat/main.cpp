// paraio-stat — run one (scaled-down) experiment with the obs layer attached
// and print a "where did simulated time go" report: top-N busiest resources,
// per-array queue-depth histograms, per-link utilization, PPFS client-cache
// hit rate, PFS mode-gate waits, and a span-time breakdown.
//
//   $ paraio_stat --app escat --nodes 8 --ions 4 --fs ppfs --top 5
//       [--metrics /tmp/m.txt] [--chrome-trace /tmp/t.json]
//
// The workload shapes are the scaled-down ones from the test suite (runs in
// milliseconds); the point of the tool is inspecting the instrumented
// machine, not reproducing the paper's tables (use examples/characterize
// for those).  When --chrome-trace is given the emitted JSON is
// re-validated with obs::validate_json and the tool exits nonzero on
// failure, so CI can use it as an end-to-end check.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.hpp"
#include "obs/chrome.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

using namespace paraio;

namespace {

struct StatOptions {
  std::string app = "escat";
  std::string fs = "pfs";
  std::size_t nodes = 8;
  std::size_t ions = 4;
  std::size_t top = 5;
  double sample_period = 0.0;
  std::string metrics_path;
  std::string chrome_path;
};

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--app escat|render|htf] [--nodes N] [--ions K]\n"
               "       [--fs pfs|ppfs] [--top N] [--sample-period S]\n"
               "       [--metrics PATH] [--chrome-trace PATH]\n";
  return 2;
}

/// The scaled-down application shapes from tests/testkit/test_configs.hpp,
/// with the node count taken from the command line.
core::AppConfig make_app(const StatOptions& o) {
  if (o.app == "render") {
    apps::RenderConfig c;
    c.renderers = static_cast<std::uint32_t>(o.nodes);
    c.frames = 5;
    c.large_reads_3mb = 8;
    c.large_reads_15mb = 16;
    c.header_reads = 4;
    c.frame_compute = 0.5;
    return c;
  }
  if (o.app == "htf") {
    apps::HtfConfig c;
    c.nodes = static_cast<std::uint32_t>(o.nodes);
    c.integral_writes_total = 40;
    c.scf_iterations = 2;
    c.scf_extra_large_reads = 3;
    c.integral_compute_per_record = 1.0;
    c.scf_compute_per_iteration = 5.0;
    c.setup_compute = 2.0;
    return c;
  }
  apps::EscatConfig c;
  c.nodes = static_cast<std::uint32_t>(o.nodes);
  c.iterations = 6;
  c.seek_free_iterations = 2;
  c.first_cycle_compute = 5.0;
  c.last_cycle_compute = 2.0;
  c.energy_phase_compute = 3.0;
  return c;
}

pfs::PfsParams pfs_params_for(const std::string& app) {
  if (app == "render") return core::render_pfs_params();
  if (app == "htf") return core::htf_pfs_params();
  return core::escat_pfs_params();
}

void print_rule(const char* title) {
  std::printf("\n--- %s ---\n", title);
}

}  // namespace

int main(int argc, char** argv) {
  StatOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--app") {
      opt.app = value();
    } else if (arg == "--nodes") {
      opt.nodes = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--ions") {
      opt.ions = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--top") {
      opt.top = std::strtoul(value(), nullptr, 10);
    } else if (arg == "--fs") {
      opt.fs = value();
    } else if (arg == "--sample-period") {
      opt.sample_period = std::strtod(value(), nullptr);
    } else if (arg == "--metrics") {
      opt.metrics_path = value();
    } else if (arg == "--chrome-trace") {
      opt.chrome_path = value();
    } else {
      return usage(argv[0]);
    }
  }
  if ((opt.app != "escat" && opt.app != "render" && opt.app != "htf") ||
      (opt.fs != "pfs" && opt.fs != "ppfs") || opt.nodes == 0 ||
      opt.ions == 0) {
    return usage(argv[0]);
  }

  core::ExperimentConfig cfg;
  const std::size_t machine_nodes =
      opt.app == "render" ? opt.nodes + 1 : opt.nodes;  // +1 gateway
  cfg.machine = hw::MachineConfig::paragon_xps(machine_nodes, opt.ions);
  cfg.filesystem = opt.fs == "ppfs"
                       ? core::FsChoice::ppfs(
                             ppfs::PpfsParams::write_behind_aggregation())
                       : core::FsChoice::pfs(pfs_params_for(opt.app));
  cfg.app = make_app(opt);

  obs::Registry registry;
  obs::Tracer tracer;
  cfg.hooks.metrics = &registry;
  cfg.hooks.tracer = &tracer;
  cfg.hooks.sample_period = opt.sample_period;

  const core::ExperimentResult r = core::run_experiment(cfg);
  const double total = r.run_end;  // staging + measured run

  std::printf("paraio-stat: %s on %zu nodes / %zu I/O nodes, %s mount\n",
              opt.app.c_str(), opt.nodes, opt.ions, opt.fs.c_str());
  std::printf("simulated time: %.6f s total (measured run %.6f s)\n", total,
              r.run_end - r.run_start);

  // Where did simulated time go, by resource: every *.busy_s gauge,
  // busiest first (name is the tiebreak, so output is deterministic).
  print_rule("busiest resources");
  std::vector<std::pair<std::string, double>> busy;
  for (const auto& [name, gauge] : registry.gauges()) {
    if (name.ends_with(".busy_s")) busy.emplace_back(name, gauge.value());
  }
  std::stable_sort(busy.begin(), busy.end(), [](const auto& a, const auto& b) {
    return a.second > b.second;
  });
  if (busy.size() > opt.top) busy.resize(opt.top);
  for (const auto& [name, seconds] : busy) {
    std::printf("  %-28s %12.6f s  %5.1f%% of run\n", name.c_str(), seconds,
                total > 0 ? 100.0 * seconds / total : 0.0);
  }

  // Where did simulated time go, by span category (sum over closed spans).
  print_rule("span time by name");
  std::map<std::string, std::pair<std::uint64_t, double>> by_name;
  for (const auto& span : tracer.spans()) {
    if (!span.closed()) continue;
    auto& agg = by_name[span.name];
    agg.first += 1;
    agg.second += span.end - span.start;
  }
  std::vector<std::pair<std::string, std::pair<std::uint64_t, double>>> spans(
      by_name.begin(), by_name.end());
  std::stable_sort(spans.begin(), spans.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.second > b.second.second;
                   });
  if (spans.size() > opt.top) spans.resize(opt.top);
  for (const auto& [name, agg] : spans) {
    std::printf("  %-28s %8llu spans %12.6f s total\n", name.c_str(),
                static_cast<unsigned long long>(agg.first), agg.second);
  }

  print_rule("disk-array queue depth");
  for (const auto& [name, histogram] : registry.histograms()) {
    if (!name.starts_with("hw.array") || !name.ends_with(".qdepth") ||
        histogram.count() == 0) {
      continue;
    }
    std::printf("  %s (mean %.2f):  ", name.c_str(), histogram.mean());
    histogram.print(std::cout);
    std::printf("\n");
  }

  print_rule("link utilization");
  for (const auto& [name, gauge] : registry.gauges()) {
    if (!name.starts_with("hw.link") || !name.ends_with(".busy_s")) continue;
    if (gauge.value() <= 0.0) continue;
    std::printf("  %-28s %12.6f s  %5.1f%%\n", name.c_str(), gauge.value(),
                total > 0 ? 100.0 * gauge.value() / total : 0.0);
  }

  if (opt.fs == "ppfs") {
    print_rule("PPFS client cache");
    const std::uint64_t hits = registry.counter("ppfs.cache.hits").value();
    const std::uint64_t misses = registry.counter("ppfs.cache.misses").value();
    const std::uint64_t evictions =
        registry.counter("ppfs.cache.evictions").value();
    const std::uint64_t lookups = hits + misses;
    std::printf("  hits %llu, misses %llu, evictions %llu (hit rate %.1f%%)\n",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(evictions),
                lookups > 0 ? 100.0 * static_cast<double>(hits) /
                                  static_cast<double>(lookups)
                            : 0.0);
  } else {
    print_rule("PFS mode-gate waits");
    std::printf("  total wait %.6f s\n",
                registry.gauge("pfs.mode_wait_s").value());
    const auto& waits = registry.histogram("pfs.mode_wait_us");
    if (waits.count() > 0) {
      std::printf("  per-wait microseconds (mean %.1f):  ", waits.mean());
      waits.print(std::cout);
      std::printf("\n");
    }
  }

  if (!opt.metrics_path.empty()) {
    std::ofstream out(opt.metrics_path);
    if (!out) {
      std::cerr << "error: cannot open " << opt.metrics_path << "\n";
      return 1;
    }
    registry.dump(out);
    std::printf("\nmetrics dump written to %s\n", opt.metrics_path.c_str());
  }
  if (!opt.chrome_path.empty()) {
    const std::string json = obs::chrome_trace_text(tracer, &registry);
    std::string error;
    if (!obs::validate_json(json, &error)) {
      std::cerr << "error: emitted Chrome trace is not valid JSON: " << error
                << "\n";
      return 1;
    }
    std::ofstream out(opt.chrome_path);
    if (!out) {
      std::cerr << "error: cannot open " << opt.chrome_path << "\n";
      return 1;
    }
    out << json;
    std::printf("Chrome trace written to %s (validated; load in "
                "ui.perfetto.dev)\n",
                opt.chrome_path.c_str());
  }
  return 0;
}
