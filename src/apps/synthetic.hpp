// Configurable synthetic workload skeleton.
//
// §8 of the paper: "the simple synthetic kernels often used to evaluate new
// file system ideas may not be good predictors of potential performance on
// full-scale applications ... the development of larger application
// skeletons and workload mixes are an essential part of developing high
// performance input/output systems."
//
// This is the skeleton generator: a workload is a sequence of phases, each
// describing who does I/O (all nodes or one), in which direction, with what
// request-size distribution, spatial pattern, file layout, and interleaved
// compute.  The three paper applications are hand-built for count-exact
// fidelity; Synthetic covers the space around them (and composes into
// mixes — see bench_workload_mix).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "io/file.hpp"

namespace paraio::apps {

enum class SyntheticPattern {
  kSequential,   ///< each request follows the previous
  kStrided,      ///< fixed stride between request starts
  kRandom,       ///< uniform random offsets within the file
  kOwnRegion,    ///< sequential within a per-node region of a shared file
};

enum class SyntheticDirection { kRead, kWrite };

enum class SyntheticFileLayout {
  kShared,   ///< one file for all nodes
  kPerNode,  ///< one file per node
};

struct SyntheticPhase {
  std::string name = "phase";
  SyntheticDirection direction = SyntheticDirection::kWrite;
  SyntheticPattern pattern = SyntheticPattern::kSequential;
  SyntheticFileLayout layout = SyntheticFileLayout::kShared;
  /// Requests per node in this phase.
  std::uint32_t requests = 16;
  /// Mean request size; sizes are fixed when `size_jitter` is 0, else
  /// uniform in [size*(1-j), size*(1+j)].
  std::uint64_t size = 64 * 1024;
  double size_jitter = 0.0;
  /// Stride for kStrided (from request start to request start).
  std::uint64_t stride = 0;
  /// Mean compute seconds between requests (exponential; 0 = none).
  double think_time = 0.0;
  /// Synchronize all nodes with a barrier at the start of the phase.
  bool barrier_entry = false;
  /// Only this many nodes participate (0 = all).
  std::uint32_t participants = 0;
};

struct SyntheticConfig {
  std::uint32_t nodes = 16;
  std::string file_prefix = "/synthetic/data";
  std::vector<SyntheticPhase> phases;
  std::uint64_t seed = 0x5EED;
  /// Capacity reserved per node for random/read phases (bytes); files are
  /// pre-staged to this size so reads always succeed.
  std::uint64_t region_bytes = 4 * 1024 * 1024;
};

/// Common shapes as ready-made configs.
struct SyntheticPresets {
  /// N nodes checkpoint small records into disjoint regions (ESCAT-like).
  static SyntheticConfig checkpoint(std::uint32_t nodes,
                                    std::uint32_t cycles,
                                    std::uint64_t record);
  /// Every node streams its own large file (HTF-SCF-like).
  static SyntheticConfig scan(std::uint32_t nodes, std::uint32_t requests,
                              std::uint64_t request_size);
  /// Random small probes over a shared file.
  static SyntheticConfig probe(std::uint32_t nodes, std::uint32_t requests,
                               std::uint64_t request_size);
};

class Synthetic {
 public:
  Synthetic(hw::Machine& machine, io::FileSystem& fs, SyntheticConfig config);

  /// Pre-creates every file a read phase will touch, sized so no request is
  /// short.  Run against the uninstrumented mount.
  sim::Task<> stage(io::FileSystem& bare_fs);

  /// Runs all phases in order; phase boundaries are logged by name.
  sim::Task<> run();

  [[nodiscard]] const PhaseLog& phases() const noexcept { return phases_; }
  [[nodiscard]] const SyntheticConfig& config() const noexcept {
    return config_;
  }

  /// Installs a collective checkpoint hook, invoked after every request of
  /// every all-node phase (phases with restricted participants are skipped:
  /// their per-node trip counts are not uniform).  Null detaches.
  void set_checkpoint(CheckpointHook* hook) noexcept { checkpoint_ = hook; }

 private:
  sim::Task<> node_main(std::uint32_t node);
  [[nodiscard]] std::string file_for(const SyntheticPhase& phase,
                                     std::uint32_t node) const;
  [[nodiscard]] std::uint32_t participants_of(const SyntheticPhase& p) const {
    return p.participants == 0 ? config_.nodes
                               : std::min(p.participants, config_.nodes);
  }

  hw::Machine& machine_;
  io::FileSystem& fs_;
  SyntheticConfig config_;
  PhaseLog phases_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<sim::Barrier>> barriers_;  // one per phase
  CheckpointHook* checkpoint_ = nullptr;
};

}  // namespace paraio::apps
