#include "apps/htf.hpp"

#include <vector>

#include "sim/task_group.hpp"

namespace paraio::apps {

namespace {

io::OpenOptions unix_create() {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  o.create = true;
  return o;
}

io::OpenOptions unix_read() {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  return o;
}

}  // namespace

Htf::Htf(hw::Machine& machine, io::FileSystem& fs, HtfConfig config)
    : machine_(machine), fs_(fs), config_(config), rng_(config.seed) {}

sim::Task<> Htf::stage(io::FileSystem& bare_fs) {
  const std::uint64_t input_bytes =
      config_.setup_small_reads * config_.setup_small_read_size +
      config_.setup_medium_reads * config_.setup_medium_read_size +
      config_.integral_small_reads * config_.integral_small_read_size +
      config_.integral_medium_reads * config_.integral_medium_read_size;
  auto f = co_await bare_fs.open(0, kInput, unix_create());
  co_await f->write(input_bytes);
  co_await f->close();
}

// --- psetup ----------------------------------------------------------------
// Serial initialization: read the basis-set input, transform, write the
// files the later phases consume.  4 opens, 3 closes, 2 seeks.

sim::Task<> Htf::psetup() {
  sim::Rng rng = rng_.fork(1);
  auto input = co_await fs_.open(0, kInput, unix_read());
  auto transformed = co_await fs_.open(0, kTransformed, unix_create());
  auto geometry = co_await fs_.open(0, kGeometry, unix_create());
  // The scratch handle the code leaks (4 opens, 3 closes in Table 5).
  auto scratch = co_await fs_.open(0, "/htf/psetup_scratch", unix_create());

  // Interleaved read/transform/write passes: reads and writes alternate in
  // small and medium granularity (Figures 9-10 show both streams active
  // through the whole program).
  const std::uint32_t rounds = 10;
  for (std::uint32_t round = 0; round < rounds; ++round) {
    auto share = [&](std::uint32_t total) {
      return total / rounds + (round < total % rounds ? 1 : 0);
    };
    for (std::uint32_t i = 0; i < share(config_.setup_small_reads); ++i) {
      (void)co_await input->read(config_.setup_small_read_size);
    }
    for (std::uint32_t i = 0; i < share(config_.setup_medium_reads); ++i) {
      (void)co_await input->read(config_.setup_medium_read_size);
    }
    co_await machine_.engine().delay(
        jittered(rng, config_.setup_compute / rounds, 0.1));
    for (std::uint32_t i = 0; i < share(config_.setup_small_writes); ++i) {
      co_await ((round % 2 == 0) ? transformed : geometry)
          ->write(config_.setup_small_write_size);
    }
    for (std::uint32_t i = 0; i < share(config_.setup_medium_writes); ++i) {
      co_await ((round % 2 == 0) ? geometry : transformed)
          ->write(config_.setup_medium_write_size);
    }
  }
  // Rewind the outputs for verification passes by the next program.
  co_await transformed->seek(0);
  co_await geometry->seek(0);

  co_await input->close();
  co_await transformed->close();
  co_await geometry->close();
}

// --- pargos ------------------------------------------------------------
// Integral calculation: one integral file per node, ~80 KB appends with a
// Fortran flush after every record.  130 opens (128 + 2 aux by node 0),
// 129 closes, 128 lsize calls, 130 seeks.

sim::Task<> Htf::pargos_node(std::uint32_t node) {
  sim::Rng rng = rng_.fork(1000 + node);
  io::FilePtr aux_a;  // node 0: transformed data (closed)
  io::FilePtr aux_b;  // node 0: geometry (left open -> 129 closes)
  if (node == 0) {
    aux_a = co_await fs_.open(0, kTransformed, unix_read());
    aux_b = co_await fs_.open(0, kGeometry, unix_read());
    co_await aux_a->seek(0);
    co_await aux_b->seek(0);
    for (std::uint32_t i = 0; i < config_.integral_small_reads; ++i) {
      (void)co_await ((i % 2 == 0) ? aux_a : aux_b)
          ->read(config_.integral_small_read_size);
    }
    for (std::uint32_t i = 0; i < config_.integral_medium_reads; ++i) {
      (void)co_await aux_a->read(config_.integral_medium_read_size);
    }
  }

  auto integrals = co_await fs_.open(
      node, kIntegralPrefix + std::to_string(node), unix_create());
  (void)co_await integrals->size();  // lsize: restart-file check
  co_await integrals->seek(0);

  const std::uint32_t records = config_.integral_writes_of(node);
  for (std::uint32_t r = 0; r < records; ++r) {
    co_await machine_.engine().delay(
        jittered(rng, config_.integral_compute_per_record, 0.1));
    co_await integrals->write(config_.integral_record);
    co_await integrals->flush();
  }
  if (node == 0) {
    // Node 0 writes the tiny bookkeeping records (Table 6's 2 small + 1
    // medium integral-phase writes) and issues the extra flushes.
    co_await integrals->write(2048);
    co_await integrals->write(2048);
    co_await integrals->write(32768);
    for (std::uint32_t i = 0; i < config_.integral_extra_flushes; ++i) {
      co_await integrals->flush();
    }
    co_await aux_a->close();
    aux_b.reset();  // leaked handle: never closed
  }
  co_await integrals->close();
}

// --- pscf --------------------------------------------------------------
// Self-consistent field: every node rereads its integral file once per
// iteration; node 0 additionally works a set of small auxiliary files.

sim::Task<> Htf::pscf_node(std::uint32_t node) {
  sim::Rng rng = rng_.fork(2000 + node);
  auto integrals = co_await fs_.open(
      node, kIntegralPrefix + std::to_string(node), unix_read());
  const std::uint32_t records = config_.integral_writes_of(node);

  // Node 0's auxiliary working set.
  std::vector<io::FilePtr> aux;
  std::uint32_t aux_created = 0;
  io::FilePtr series_a;  // transformed: read source
  io::FilePtr series_b;  // geometry: read source
  if (node == 0) {
    series_a = co_await fs_.open(0, kTransformed, unix_read());
    series_b = co_await fs_.open(0, kGeometry, unix_read());
    for (std::uint32_t i = 2; i < config_.scf_aux_opens_initial; ++i) {
      aux.push_back(co_await fs_.open(
          0, kAuxPrefix + std::to_string(aux_created++), unix_create()));
    }
    for (std::uint32_t i = 0; i < config_.scf_aux_seeks_initial; ++i) {
      co_await ((i % 2 == 0) ? series_a : series_b)->seek(0);
    }
    for (std::uint32_t i = 0; i < config_.scf_small_reads_initial; ++i) {
      (void)co_await series_a->read(config_.scf_small_read_size);
    }
    for (std::uint32_t i = 0; i < config_.scf_medium_reads_initial; ++i) {
      (void)co_await series_b->read(config_.scf_medium_read_size);
    }
    for (std::uint32_t i = 0; i < config_.scf_small_writes_initial; ++i) {
      co_await aux[0]->write(config_.scf_small_write_size);
    }
    for (std::uint32_t i = 0; i < config_.scf_medium_writes_initial; ++i) {
      co_await aux[i % aux.size()]->write(config_.scf_medium_write_size);
    }
  }

  for (std::uint32_t iter = 0; iter < config_.scf_iterations; ++iter) {
    // Rewind and stream the whole integral file (too large for memory).
    co_await integrals->seek(0);
    for (std::uint32_t r = 0; r < records; ++r) {
      (void)co_await integrals->read(config_.integral_record);
    }
    co_await machine_.engine().delay(
        jittered(rng, config_.scf_compute_per_iteration, 0.1));

    if (node == 0) {
      for (std::uint32_t i = 0; i < config_.scf_aux_opens_per_iter; ++i) {
        aux.push_back(co_await fs_.open(
            0, kAuxPrefix + std::to_string(aux_created++), unix_create()));
      }
      // Two of the per-iteration seeks rewind the data sources so the read
      // streams never hit end-of-file; the rest reposition scratch files.
      std::uint32_t seeks_done = 0;
      co_await series_a->seek(0);
      co_await series_b->seek(0);
      seeks_done += 2;
      for (; seeks_done < config_.scf_aux_seeks_per_iter; ++seeks_done) {
        co_await aux[seeks_done % aux.size()]->seek(0);
      }
      for (std::uint32_t i = 0; i < config_.scf_small_reads_per_iter; ++i) {
        (void)co_await ((i % 2 == 0) ? series_a : series_b)
            ->read(config_.scf_small_read_size);
      }
      for (std::uint32_t i = 0; i < config_.scf_medium_reads_per_iter; ++i) {
        (void)co_await ((i % 2 == 0) ? series_b : series_a)
            ->read(config_.scf_medium_read_size);
      }
      for (std::uint32_t i = 0; i < config_.scf_small_writes_per_iter; ++i) {
        co_await aux[i % aux.size()]->write(config_.scf_small_write_size);
      }
      for (std::uint32_t i = 0; i < config_.scf_medium_writes_per_iter; ++i) {
        co_await aux[i % aux.size()]->write(config_.scf_medium_write_size);
      }
      for (std::uint32_t i = 0; i < config_.scf_large_writes_per_iter; ++i) {
        co_await aux[i % aux.size()]->write(config_.scf_large_write_size);
      }
    }
    if (checkpoint_ != nullptr) co_await checkpoint_->at_boundary(node);
  }

  if (node == 0 && config_.scf_extra_large_reads > 0) {
    // Final-iteration rereads of the leading integral records (the paper's
    // 51,225 = 6 x 8,532 + 33).
    co_await integrals->seek(0);
    const std::uint32_t rereads =
        std::min(config_.scf_extra_large_reads, records);
    for (std::uint32_t r = 0; r < rereads; ++r) {
      (void)co_await integrals->read(config_.integral_record);
    }
  }

  co_await integrals->close();
  if (node == 0) {
    // Close all but one auxiliary handle (157 opens vs 156 closes).
    co_await series_a->close();
    co_await series_b->close();
    for (std::size_t i = 0; i + 1 < aux.size(); ++i) {
      co_await aux[i]->close();
    }
  }
}

sim::Task<> Htf::run() {
  co_await psetup();
  phases_.mark("psetup", machine_.engine().now());

  sim::TaskGroup pargos_group(machine_.engine());
  for (std::uint32_t node = 0; node < config_.nodes; ++node) {
    pargos_group.spawn(pargos_node(node));
  }
  co_await pargos_group.join();
  phases_.mark("pargos", machine_.engine().now());

  sim::TaskGroup pscf_group(machine_.engine());
  for (std::uint32_t node = 0; node < config_.nodes; ++node) {
    pscf_group.spawn(pscf_node(node));
  }
  co_await pscf_group.join();
  phases_.mark("pscf", machine_.engine().now());
}

}  // namespace paraio::apps
