// ESCAT — electron-scattering (Schwinger multichannel) I/O skeleton (§4.1,
// §5 of the paper).
//
// Four phases, as published:
//   1. node 0 reads the problem definition from three input files (bimodal
//      sizes, Figure 3) and broadcasts it;
//   2. all nodes run synchronized compute/write cycles, each cycle seeking
//      (M_UNIX) and appending one small quadrature record per outcome file —
//      the paper's Figure 4 write clusters, whose spacing shrinks as the
//      quadrature calculation speeds up toward the end of the phase;
//   3. the staging files are switched to M_RECORD (setiomode) and every node
//      rereads exactly the data it wrote as one large record;
//   4. results funnel to node 0, which writes three small output files.
//
// Default parameters reproduce Tables 1-2 exactly in operation counts
// (26,418 ops: 560 reads / 13,330 writes / 12,034 seeks / 262 opens /
// 262 closes) and write volume to within bytes; see escat_test.cpp for the
// pinned arithmetic.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "apps/workload.hpp"
#include "io/file.hpp"
#include "sim/sync.hpp"

namespace paraio::apps {

struct EscatConfig {
  std::uint32_t nodes = 128;

  // Phase 1: initial problem input, read by node 0 only.
  std::uint32_t small_reads = 297;
  std::uint64_t small_read_size = 2048;
  std::uint32_t medium_reads = 3;
  std::uint64_t medium_read_size = 32 * 1024;

  // Phase 2: quadrature compute/write cycles.
  std::uint32_t iterations = 52;
  /// The last cycles continue sequentially from the previous write and
  /// skip the (redundant) explicit seek; 52-5 = 47 seeking iterations x
  /// 2 files x 128 nodes + 2 init seeks = the paper's 12,034 seeks.
  std::uint32_t seek_free_iterations = 5;
  std::uint64_t quad_record = 2008;
  std::uint32_t outcome_files = 2;
  /// Compute time per cycle shrinks linearly across the phase — the paper's
  /// Figure 4 observation (~160 s between write groups early, ~80 s late).
  double first_cycle_compute = 160.0;
  double last_cycle_compute = 80.0;

  // Phase 3: M_RECORD staging reread (each node reads back its own block).
  /// Extra whole-record verification rereads by node 0 (2 per outcome file),
  /// bringing phase-3 reads to the paper's 260.
  std::uint32_t verify_rereads_per_file = 2;

  // Phase 4: final linear-system output via node 0.
  std::uint32_t final_writes = 18;
  std::uint64_t final_write_size = 1477;
  std::uint32_t output_files = 3;

  double energy_phase_compute = 120.0;  ///< phase-3 setup computation
  std::uint64_t seed = 0xE5CA7;

  /// Per-node staging-file block: all of one node's quadrature data,
  /// contiguous so phase 3 can reread it with a single record access (the
  /// layout choice §5.2 explains).
  [[nodiscard]] std::uint64_t node_block() const {
    return static_cast<std::uint64_t>(iterations) * quad_record;
  }
};

class Escat {
 public:
  Escat(hw::Machine& machine, io::FileSystem& fs, EscatConfig config = {});

  /// Creates the three input files (sized to satisfy phase 1's reads).
  /// Run this against the *uninstrumented* file system so staging does not
  /// pollute the trace.
  sim::Task<> stage(io::FileSystem& bare_fs);

  /// Runs the four-phase application to completion.
  sim::Task<> run();

  [[nodiscard]] const PhaseLog& phases() const noexcept { return phases_; }
  [[nodiscard]] const EscatConfig& config() const noexcept { return config_; }

  /// Installs a collective checkpoint hook, invoked by every node at each
  /// quadrature-cycle boundary (a uniform per-node loop).  Null detaches.
  void set_checkpoint(CheckpointHook* hook) noexcept { checkpoint_ = hook; }

  // File names (exposed for tests and benches).
  static constexpr const char* kInput[3] = {"/escat/geometry.in",
                                            "/escat/basis.in",
                                            "/escat/potential.in"};
  static constexpr const char* kStagingPrefix = "/escat/quad.";
  static constexpr const char* kOutput[3] = {"/escat/amatrix.out",
                                             "/escat/bmatrix.out",
                                             "/escat/energies.out"};

 private:
  sim::Task<> node_main(std::uint32_t node);
  sim::Task<> root_initial_read();
  sim::Task<> root_final_write();

  hw::Machine& machine_;
  io::FileSystem& fs_;
  EscatConfig config_;
  PhaseLog phases_;
  sim::Rng rng_;
  std::unique_ptr<sim::Barrier> cycle_barrier_;
  CheckpointHook* checkpoint_ = nullptr;
};

}  // namespace paraio::apps
