// Trace-driven replay.
//
// The whole point of capturing application I/O signatures (§1: "enabling
// ... system software developers to design better parallel file system
// policies") is to re-run them against candidate designs.  Replay takes a
// captured pablo::Trace and re-issues it against any io::FileSystem mount:
// per node, operations are issued in their original order, preserving the
// *think time* between them (closed loop: the gap between one operation's
// end and the next operation's start is computation and is reproduced;
// the I/O time itself is whatever the new mount delivers).
//
// Caveats, by construction:
//  * every file is opened M_UNIX with an explicit seek per data operation
//    (the trace records absolute offsets, which subsumes the original
//    access-mode bookkeeping);
//  * async issue/iowait pairs are replayed as synchronous reads/writes at
//    the issue point (their volume and offsets are preserved; the overlap
//    the original application achieved is a property of its code, not of
//    the trace).
#pragma once

#include <cstdint>
#include <map>

#include "hw/machine.hpp"
#include "io/file.hpp"
#include "pablo/trace.hpp"

namespace paraio::apps {

struct ReplayStats {
  std::uint64_t operations = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  /// Simulated seconds the replay spent inside I/O calls, summed per node.
  double io_node_time = 0.0;
  /// Wall (simulated) duration of the whole replay.
  double duration = 0.0;
};

class Replay {
 public:
  /// `scale_think` scales the reproduced computation gaps (1.0 = faithful;
  /// 0.0 = back-to-back I/O, the stress-test mode).
  Replay(hw::Machine& machine, io::FileSystem& fs, const pablo::Trace& trace,
         double scale_think = 1.0);

  /// Pre-creates every file the trace reads at its final observed size.
  sim::Task<> stage(io::FileSystem& bare_fs);

  /// Replays all nodes concurrently.
  sim::Task<> run();

  [[nodiscard]] const ReplayStats& stats() const noexcept { return stats_; }

 private:
  sim::Task<> node_main(io::NodeId node);

  hw::Machine& machine_;
  io::FileSystem& fs_;
  const pablo::Trace& trace_;
  double scale_think_;
  // Per-node event sequences (indices into trace_.events()).
  std::map<io::NodeId, std::vector<std::size_t>> per_node_;
  ReplayStats stats_;
};

}  // namespace paraio::apps
