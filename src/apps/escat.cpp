#include "apps/escat.hpp"

#include <algorithm>
#include <array>
#include <vector>

#include "sim/task_group.hpp"

namespace paraio::apps {

namespace {

io::OpenOptions unix_create() {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  o.create = true;
  return o;
}

io::OpenOptions unix_read() {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  return o;
}

}  // namespace

Escat::Escat(hw::Machine& machine, io::FileSystem& fs, EscatConfig config)
    : machine_(machine),
      fs_(fs),
      config_(config),
      rng_(config.seed),
      cycle_barrier_(
          std::make_unique<sim::Barrier>(machine.engine(), config.nodes)) {}

sim::Task<> Escat::stage(io::FileSystem& bare_fs) {
  // Build input files large enough that every phase-1 read is satisfied.
  // File 0 carries the bulk of the small records; 1 and 2 hold matrices.
  const std::uint64_t total =
      config_.small_reads * config_.small_read_size +
      config_.medium_reads * config_.medium_read_size;
  const std::uint64_t per_file = total / 3 + config_.medium_read_size;
  for (const char* path : kInput) {
    auto f = co_await bare_fs.open(0, path, unix_create());
    co_await f->write(per_file);
    co_await f->close();
  }
}

sim::Task<> Escat::root_initial_read() {
  // Bimodal read sizes with irregular temporal spacing (paper Figure 3):
  // many small record reads plus a few medium matrix reads, spread over the
  // three input files.
  sim::Rng rng = rng_.fork(1);
  std::array<io::FilePtr, 3> inputs;
  for (std::size_t i = 0; i < 3; ++i) {
    inputs[i] = co_await fs_.open(0, kInput[i], unix_read());
  }
  // Two header seeks (part of the paper's 12,034 total).
  co_await inputs[1]->seek(config_.small_read_size);
  co_await inputs[2]->seek(config_.small_read_size);

  for (std::uint32_t r = 0; r < config_.small_reads; ++r) {
    (void)co_await inputs[r % 3]->read(config_.small_read_size);
    if (r % 16 == 0) {
      co_await machine_.engine().delay(jittered(rng, 0.4, 0.5));
    }
  }
  for (std::uint32_t r = 0; r < config_.medium_reads; ++r) {
    (void)co_await inputs[r % 3]->read(config_.medium_read_size);
  }
  for (auto& f : inputs) co_await f->close();

  // Broadcast the problem definition to the other nodes — the workaround
  // the developers adopted after finding parallel reads slower (§5.2).
  const std::uint64_t broadcast_bytes =
      config_.small_reads * config_.small_read_size +
      config_.medium_reads * config_.medium_read_size;
  co_await machine_.net().broadcast(0, broadcast_bytes, config_.nodes);
}

sim::Task<> Escat::node_main(std::uint32_t node) {
  sim::Rng rng = rng_.fork(100 + node);

  // Phase 2: open the staging files and run the compute/write cycles.
  std::vector<io::FilePtr> staging;
  for (std::uint32_t f = 0; f < config_.outcome_files; ++f) {
    io::OpenOptions o = unix_create();
    auto file = co_await fs_.open(node, kStagingPrefix + std::to_string(f), o);
    staging.push_back(std::move(file));
  }

  const std::uint64_t block = config_.node_block();
  for (std::uint32_t iter = 0; iter < config_.iterations; ++iter) {
    // Quadrature computation; cycle time shrinks linearly across the phase.
    const double frac =
        config_.iterations > 1
            ? static_cast<double>(iter) /
                  static_cast<double>(config_.iterations - 1)
            : 0.0;
    const double base = config_.first_cycle_compute +
                        frac * (config_.last_cycle_compute -
                                config_.first_cycle_compute);
    co_await machine_.engine().delay(jittered(rng, base, 0.04));
    // Writes are synchronized among the nodes (§4.1).
    co_await cycle_barrier_->arrive_and_wait();

    for (std::uint32_t f = 0; f < config_.outcome_files; ++f) {
      const std::uint64_t offset =
          static_cast<std::uint64_t>(node) * block +
          static_cast<std::uint64_t>(iter) * config_.quad_record;
      // A node's records are contiguous, so after a write the pointer is
      // already at the next record; the code stops issuing the (redundant)
      // explicit seek for the last few cycles.  Every record still lands
      // at its calculated offset.
      if (iter < config_.iterations - config_.seek_free_iterations) {
        co_await staging[f]->seek(offset);
      }
      co_await staging[f]->write(config_.quad_record);
    }
    if (checkpoint_ != nullptr) co_await checkpoint_->at_boundary(node);
  }
  if (node == 0) phases_.mark("quadrature", machine_.engine().now());

  // Phase 3: energy-dependent computation, then reload the staged data.
  co_await machine_.engine().delay(
      jittered(rng, config_.energy_phase_compute, 0.05));
  io::OpenOptions record;
  record.mode = io::AccessMode::kRecord;
  record.parties = config_.nodes;
  record.rank = node;
  record.record_size = block;
  for (auto& f : staging) co_await f->set_mode(record);

  for (auto& f : staging) {
    (void)co_await f->read(block);  // exactly the node's own data
  }
  // Node 0 validates the staging files: each verification round resets the
  // record discipline (a collective setiomode) and rereads the first record.
  for (std::uint32_t k = 0; k < config_.verify_rereads_per_file; ++k) {
    for (auto& f : staging) co_await f->set_mode(record);
    if (node == 0) {
      for (auto& f : staging) (void)co_await f->read(block);
    }
  }
  for (auto& f : staging) co_await f->close();
  if (node == 0) phases_.mark("reload", machine_.engine().now());

  // Phase 4: funnel the linear-system pieces to node 0.
  if (node != 0) {
    co_await machine_.net().send(node, 0, 64 * 1024);
  }
}

sim::Task<> Escat::root_final_write() {
  for (std::uint32_t f = 0; f < config_.output_files; ++f) {
    auto out = co_await fs_.open(0, kOutput[f], unix_create());
    const std::uint32_t writes = config_.final_writes / config_.output_files;
    for (std::uint32_t w = 0; w < writes; ++w) {
      co_await out->write(config_.final_write_size);
    }
    co_await out->close();
  }
  phases_.mark("output", machine_.engine().now());
}

sim::Task<> Escat::run() {
  co_await root_initial_read();
  phases_.mark("initialization", machine_.engine().now());

  sim::TaskGroup group(machine_.engine());
  for (std::uint32_t node = 0; node < config_.nodes; ++node) {
    group.spawn(node_main(node));
  }
  co_await group.join();

  co_await root_final_write();
}

}  // namespace paraio::apps
