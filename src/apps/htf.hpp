// HTF — Hartree-Fock quantum-chemistry I/O skeleton (§4.3, §7).
//
// Three programs forming a logical pipeline over files, all using M_UNIX:
//   * psetup — serial initialization on node 0: small/medium reads of the
//     basis-set input, transformed and written back for the later phases;
//   * pargos — integral calculation: every node computes two-electron
//     integrals and appends ~80 KB quadrature records to its own integral
//     file (one file per node, Figure 16), flushing after every record
//     (Table 5's 8,657 Forflush calls) — the write-intensive phase;
//   * pscf — self-consistent-field iterations: every node rereads its whole
//     integral file once per SCF iteration (the files are too large for
//     memory), making the phase overwhelmingly read-bound (98 % of I/O
//     time in Table 5).
//
// Default parameters reproduce the three sections of Tables 5-6 exactly in
// operation counts (see htf_test.cpp for the pinned arithmetic) and byte
// volumes to within 0.01 %.
#pragma once

#include <cstdint>
#include <string>

#include "apps/workload.hpp"
#include "io/file.hpp"

namespace paraio::apps {

struct HtfConfig {
  std::uint32_t nodes = 128;

  // --- psetup (serial, node 0) ---
  std::uint32_t setup_small_reads = 151;
  std::uint64_t setup_small_read_size = 2048;
  std::uint32_t setup_medium_reads = 220;
  std::uint64_t setup_medium_read_size = 14605;
  std::uint32_t setup_small_writes = 218;
  std::uint64_t setup_small_write_size = 2048;
  std::uint32_t setup_medium_writes = 234;
  std::uint64_t setup_medium_write_size = 14095;
  double setup_compute = 70.0;

  // --- pargos (integral calculation) ---
  /// Integral record size: ~80 KB, just above the < 64 KB class and four
  /// PFS stripe units short of the paper's "four times the striping factor"
  /// ceiling.
  std::uint64_t integral_record = 81918;
  /// Total large integral writes (8,532 in the paper).  Distributed as
  /// evenly as possible over the nodes: the first (total % nodes) nodes
  /// write one extra record.
  std::uint32_t integral_writes_total = 8532;
  std::uint32_t integral_small_reads = 143;
  std::uint64_t integral_small_read_size = 68;
  std::uint32_t integral_medium_reads = 2;
  std::uint64_t integral_medium_read_size = 12288;
  /// Extra node-0 flushes beyond the per-record ones (8,657 - 8,532).
  std::uint32_t integral_extra_flushes = 125;
  double integral_compute_per_record = 12.0;

  // --- pscf (self-consistent field) ---
  std::uint32_t scf_iterations = 6;
  /// Extra whole-record reads by node 0 in the final iteration, bringing
  /// large reads to the paper's 51,225 (6 x 8,532 = 51,192 + 33).
  std::uint32_t scf_extra_large_reads = 33;
  std::uint32_t scf_small_reads_initial = 3;
  std::uint32_t scf_small_reads_per_iter = 27;
  std::uint64_t scf_small_read_size = 2048;
  std::uint32_t scf_medium_reads_initial = 1;
  std::uint32_t scf_medium_reads_per_iter = 18;
  std::uint64_t scf_medium_read_size = 16384;
  std::uint32_t scf_small_writes_initial = 1;
  std::uint32_t scf_small_writes_per_iter = 7;
  std::uint64_t scf_small_write_size = 2048;
  std::uint32_t scf_medium_writes_initial = 2;
  std::uint32_t scf_medium_writes_per_iter = 26;
  std::uint64_t scf_medium_write_size = 20072;
  std::uint32_t scf_large_writes_per_iter = 1;
  std::uint64_t scf_large_write_size = 98304;
  /// Node-0 seeks per iteration in its auxiliary files, plus 2 initial,
  /// plus one rewind before the extra rereads; with the per-node rewind
  /// seeks (128 x 6) this reaches the paper's 813.
  std::uint32_t scf_aux_seeks_per_iter = 7;
  std::uint32_t scf_aux_seeks_initial = 2;
  /// Node-0 auxiliary file opens: 5 up front + 4 per iteration = 29, for
  /// the paper's 157 total opens (128 integral + 29).
  std::uint32_t scf_aux_opens_initial = 5;
  std::uint32_t scf_aux_opens_per_iter = 4;
  double scf_compute_per_iteration = 120.0;

  std::uint64_t seed = 0x47F;

  [[nodiscard]] std::uint32_t integral_writes_of(std::uint32_t node) const {
    const std::uint32_t base = integral_writes_total / nodes;
    const std::uint32_t extra = integral_writes_total % nodes;
    return base + (node < extra ? 1 : 0);
  }
};

class Htf {
 public:
  Htf(hw::Machine& machine, io::FileSystem& fs, HtfConfig config = {});

  /// Creates the basis-set input file (uninstrumented).
  sim::Task<> stage(io::FileSystem& bare_fs);

  /// Runs psetup, pargos, and pscf back to back; phase boundaries are
  /// recorded as "psetup", "pargos", "pscf".
  sim::Task<> run();

  [[nodiscard]] const PhaseLog& phases() const noexcept { return phases_; }
  [[nodiscard]] const HtfConfig& config() const noexcept { return config_; }

  /// Installs a collective checkpoint hook, invoked by every node at each
  /// SCF-iteration boundary (uniform trip count across nodes; the uneven
  /// pargos record loop is not a boundary).  Null detaches.
  void set_checkpoint(CheckpointHook* hook) noexcept { checkpoint_ = hook; }

  static constexpr const char* kInput = "/htf/basis.in";
  static constexpr const char* kTransformed = "/htf/transformed.dat";
  static constexpr const char* kGeometry = "/htf/geometry.dat";
  static constexpr const char* kIntegralPrefix = "/htf/integrals.";
  static constexpr const char* kAuxPrefix = "/htf/scf_aux.";

 private:
  sim::Task<> psetup();
  sim::Task<> pargos_node(std::uint32_t node);
  sim::Task<> pscf_node(std::uint32_t node);

  hw::Machine& machine_;
  io::FileSystem& fs_;
  HtfConfig config_;
  PhaseLog phases_;
  sim::Rng rng_;
  CheckpointHook* checkpoint_ = nullptr;
};

}  // namespace paraio::apps
