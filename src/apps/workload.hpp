// Shared plumbing for the application I/O skeletons.
//
// Each application is a coroutine program over an io::FileSystem handle and
// a hw::Machine (for compute delays, barriers, and message passing).  The
// skeletons reproduce the *request streams* of the paper's codes — operation
// counts, sizes, offsets, access modes, and synchronization structure — with
// compute phases modeled as calibrated delays.  Numeric work is not
// simulated; the paper's own argument (§8) is that the I/O signature, not
// the arithmetic, is what characterizes these codes.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "hw/machine.hpp"
#include "io/file.hpp"
#include "sim/random.hpp"
#include "sim/task.hpp"

namespace paraio::apps {

/// Named phase boundaries recorded by each application: (name, end time).
/// The HTF per-program tables (paper Table 5) are carved out of one trace
/// using these.
class PhaseLog {
 public:
  void mark(std::string name, sim::SimTime end) {
    phases_.emplace_back(std::move(name), end);
  }
  [[nodiscard]] const std::vector<std::pair<std::string, sim::SimTime>>&
  phases() const noexcept {
    return phases_;
  }
  /// End time of the named phase; -1 if absent.
  [[nodiscard]] sim::SimTime end_of(const std::string& name) const {
    for (const auto& [n, t] : phases_) {
      if (n == name) return t;
    }
    return -1.0;
  }
  /// Start time of the named phase (end of the previous one, or 0).
  [[nodiscard]] sim::SimTime start_of(const std::string& name) const {
    sim::SimTime prev = 0.0;
    for (const auto& [n, t] : phases_) {
      if (n == name) return prev;
      prev = t;
    }
    return -1.0;
  }

 private:
  std::vector<std::pair<std::string, sim::SimTime>> phases_;
};

/// Jittered compute delay: base seconds +/- `spread` fraction, from the
/// node's private stream.  Keeps synchronized phases from being artificially
/// lock-step while staying deterministic.
inline sim::SimDuration jittered(sim::Rng& rng, double base,
                                 double spread = 0.05) {
  return base * rng.uniform(1.0 - spread, 1.0 + spread);
}

/// Collective checkpoint boundary, pluggable into every skeleton.
///
/// An application calls `at_boundary(node)` at its natural iteration edges
/// (ESCAT quadrature cycles, RENDER frames, HTF SCF iterations, synthetic
/// requests); the installed hook decides — identically on every node —
/// whether this boundary starts a checkpoint epoch, and if so dumps the
/// node's state and blocks until the epoch's consistency protocol is done.
///
/// Contract: the hook may barrier-synchronize the participating nodes, so
/// every node must reach the same boundaries the same number of times.  The
/// skeletons only place calls on loops with uniform per-node trip counts.
/// A null hook (the default) costs one pointer test per boundary.
class CheckpointHook {
 public:
  virtual ~CheckpointHook() = default;
  [[nodiscard]] virtual sim::Task<> at_boundary(std::uint32_t node) = 0;
};

}  // namespace paraio::apps
