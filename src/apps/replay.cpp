#include "apps/replay.hpp"

#include <algorithm>
#include <map>

#include "sim/task_group.hpp"

namespace paraio::apps {

Replay::Replay(hw::Machine& machine, io::FileSystem& fs,
               const pablo::Trace& trace, double scale_think)
    : machine_(machine), fs_(fs), trace_(trace), scale_think_(scale_think) {
  const auto& events = trace_.events();
  for (std::size_t i = 0; i < events.size(); ++i) {
    per_node_[events[i].node].push_back(i);
  }
}

sim::Task<> Replay::stage(io::FileSystem& bare_fs) {
  // Final observed extent per file: max(offset + transferred) over reads
  // and writes, so every replayed read is satisfiable even if the original
  // writer ran on a node whose stream replays later.
  std::map<io::FileId, std::uint64_t> extent;
  for (const auto& e : trace_.events()) {
    if (!e.is_data_op()) continue;
    extent[e.file] =
        std::max(extent[e.file], e.offset + std::max(e.transferred,
                                                     e.requested));
  }
  io::OpenOptions create;
  create.mode = io::AccessMode::kUnix;
  create.create = true;
  for (const auto& [id, size] : extent) {
    if (size == 0) continue;
    auto f = co_await bare_fs.open(0, trace_.file_name(id), create);
    co_await f->write(size);
    co_await f->close();
  }
}

sim::Task<> Replay::node_main(io::NodeId node) {
  const auto& events = trace_.events();
  const auto& indices = per_node_.at(node);
  // Ordered map: the leaked-handle sweep below closes in FileId order, so
  // the replayed close sequence cannot depend on hash iteration order.
  std::map<io::FileId, io::FilePtr> handles;
  io::OpenOptions open;
  open.mode = io::AccessMode::kUnix;
  open.create = true;

  double last_end = -1.0;  // original-trace end time of the previous op
  for (std::size_t index : indices) {
    const pablo::IoEvent& e = events[index];
    // Reproduce the computation gap from the original schedule.
    if (last_end >= 0.0 && e.timestamp > last_end && scale_think_ > 0.0) {
      co_await machine_.engine().delay((e.timestamp - last_end) *
                                       scale_think_);
    }
    last_end = e.timestamp + e.duration;

    // Opens/closes manage the handle map; everything else replays through
    // an M_UNIX handle with explicit positioning.
    const double t0 = machine_.engine().now();
    switch (e.op) {
      case pablo::Op::kOpen: {
        if (!handles.contains(e.file)) {
          handles[e.file] =
              co_await fs_.open(node, trace_.file_name(e.file), open);
        }
        break;
      }
      case pablo::Op::kClose: {
        auto it = handles.find(e.file);
        if (it != handles.end()) {
          co_await it->second->close();
          handles.erase(it);
        }
        break;
      }
      default: {
        auto it = handles.find(e.file);
        if (it == handles.end()) {
          it = handles
                   .emplace(e.file, co_await fs_.open(
                                        node, trace_.file_name(e.file), open))
                   .first;
        }
        io::File& f = *it->second;
        switch (e.op) {
          case pablo::Op::kRead:
          case pablo::Op::kAsyncRead:
            // Only reposition when needed, so sequential streams do not
            // acquire seeks the original program never issued.
            if (f.tell() != e.offset) co_await f.seek(e.offset);
            (void)co_await f.read(std::max(e.transferred, e.requested));
            stats_.bytes_read += e.transferred;
            break;
          case pablo::Op::kWrite:
          case pablo::Op::kAsyncWrite:
            if (f.tell() != e.offset) co_await f.seek(e.offset);
            co_await f.write(std::max(e.transferred, e.requested));
            stats_.bytes_written += e.transferred;
            break;
          case pablo::Op::kSeek:
            co_await f.seek(e.offset);
            break;
          case pablo::Op::kLsize:
            (void)co_await f.size();
            break;
          case pablo::Op::kFlush:
            co_await f.flush();
            break;
          case pablo::Op::kIoWait:
            break;  // folded into the async issue, above
          default:
            break;
        }
      }
    }
    stats_.io_node_time += machine_.engine().now() - t0;
    ++stats_.operations;
  }
  // Close anything the original program leaked.
  for (auto& [id, handle] : handles) co_await handle->close();
}

sim::Task<> Replay::run() {
  const double t0 = machine_.engine().now();
  sim::TaskGroup group(machine_.engine());
  for (const auto& [node, indices] : per_node_) {
    group.spawn(node_main(node));
  }
  co_await group.join();
  stats_.duration = machine_.engine().now() - t0;
}

}  // namespace paraio::apps
