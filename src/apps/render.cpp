#include "apps/render.hpp"

#include <deque>
#include <vector>

#include "sim/channel.hpp"
#include "sim/task_group.hpp"

namespace paraio::apps {

namespace {

io::OpenOptions unix_create() {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  o.create = true;
  return o;
}

io::OpenOptions unix_read() {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  return o;
}

}  // namespace

Render::Render(hw::Machine& machine, io::FileSystem& fs, RenderConfig config)
    : machine_(machine), fs_(fs), config_(config), rng_(config.seed) {}

sim::Task<> Render::stage(io::FileSystem& bare_fs) {
  const std::uint32_t n3 = config_.large_reads_3mb / 4;
  const std::uint32_t n15 = config_.large_reads_15mb / 4;
  const io::NodeId gw = config_.gateway_node();
  for (const char* path : kData) {
    auto f = co_await bare_fs.open(gw, path, unix_create());
    // One header stripe (skipped by the gateway's seek) plus the payload.
    co_await f->write(config_.view_read_size);
    co_await f->write(n3 * config_.size_3mb + n15 * config_.size_15mb);
    co_await f->close();
  }
  auto views = co_await bare_fs.open(gw, kViews, unix_create());
  co_await views->write((config_.header_reads + config_.frames) *
                        config_.view_read_size);
  co_await views->close();
}

sim::Task<> Render::read_data_file(const std::string& path,
                                   std::uint32_t reads_3mb,
                                   std::uint32_t reads_15mb) {
  const io::NodeId gw = config_.gateway_node();
  auto f = co_await fs_.open(gw, path, unix_read());
  co_await f->seek(config_.view_read_size);  // skip the header stripe

  // Explicit prefetch: keep `read_ahead` asynchronous reads outstanding —
  // the paper's gateway issues large asynchronous requests and overlaps
  // them, achieving ~9.5 MB/s (§6.2).
  std::deque<io::AsyncOp> inflight;
  const std::uint32_t total = reads_3mb + reads_15mb;
  for (std::uint32_t r = 0; r < total; ++r) {
    const std::uint64_t size =
        r < reads_3mb ? config_.size_3mb : config_.size_15mb;
    inflight.push_back(co_await f->read_async(size));
    if (inflight.size() >= config_.read_ahead) {
      (void)co_await f->iowait(std::move(inflight.front()));
      inflight.pop_front();
    }
  }
  while (!inflight.empty()) {
    (void)co_await f->iowait(std::move(inflight.front()));
    inflight.pop_front();
  }
  // The data files stay open for the whole run (closes: 101 vs 106 opens).
  data_files_.push_back(std::move(f));
}

sim::Task<> Render::run() {
  const io::NodeId gw = config_.gateway_node();

  // --- Initialization phase -----------------------------------------------
  auto views = co_await fs_.open(gw, kViews, unix_read());
  for (std::uint32_t r = 0; r < config_.header_reads; ++r) {
    (void)co_await views->read(config_.view_read_size);
  }

  for (std::size_t i = 0; i < 4; ++i) {
    co_await read_data_file(kData[i], config_.large_reads_3mb / 4,
                            config_.large_reads_15mb / 4);
  }

  // Scatter the terrain to the renderer group (each node selects its
  // subset; the gateway's link serializes the distribution).
  const std::uint64_t per_node = config_.data_set_bytes() / config_.renderers;
  for (std::uint32_t r = 0; r < config_.renderers; ++r) {
    co_await machine_.net().send(gw, r, per_node);
  }

  // The view control file is reopened for the render loop (the 106th open
  // and one of the 101 closes).
  co_await views->close();
  views = co_await fs_.open(gw, kViews, unix_read());
  // No seek here: the reopened handle reads from the start of the view list
  // (the staged file puts the header first, so offsets only shift; the
  // paper's Table 3 counts exactly 4 seeks, all in the terrain files).
  phases_.mark("initialization", machine_.engine().now());

  // --- Rendering phase ------------------------------------------------------
  sim::Channel<std::uint32_t> tiles(machine_.engine(),
                                    sim::Channel<std::uint32_t>::kUnbounded);
  std::vector<std::unique_ptr<sim::Channel<std::uint32_t>>> commands;
  for (std::uint32_t r = 0; r < config_.renderers; ++r) {
    commands.push_back(std::make_unique<sim::Channel<std::uint32_t>>(
        machine_.engine(), sim::Channel<std::uint32_t>::kUnbounded));
  }

  sim::TaskGroup renderers(machine_.engine());
  const std::uint64_t tile_bytes = config_.frame_bytes / config_.renderers;
  for (std::uint32_t rank = 0; rank < config_.renderers; ++rank) {
    auto renderer = [](Render& app, std::uint32_t r,
                       sim::Channel<std::uint32_t>& cmd,
                       sim::Channel<std::uint32_t>& out,
                       std::uint64_t tile) -> sim::Task<> {
      sim::Rng node_rng = app.rng_.fork(500 + r);
      for (std::uint32_t frame = 0; frame < app.config_.frames; ++frame) {
        (void)co_await cmd.recv();
        co_await app.machine_.engine().delay(
            jittered(node_rng, app.config_.frame_compute, 0.08));
        co_await app.machine_.net().send(r, app.config_.gateway_node(), tile);
        co_await out.send(r);
        if (app.checkpoint_ != nullptr) {
          co_await app.checkpoint_->at_boundary(r);
        }
      }
    };
    renderers.spawn(
        renderer(*this, rank, *commands[rank], tiles, tile_bytes));
  }

  for (std::uint32_t frame = 0; frame < config_.frames; ++frame) {
    // View coordinates: a small control read (Table 3's 100 view reads).
    (void)co_await views->read(config_.view_read_size);
    // Direct the renderer group (view parameters are tiny).
    co_await machine_.net().broadcast(gw, 1024, config_.renderers + 1);
    for (auto& cmd : commands) co_await cmd->send(frame);
    // Collect the rendered tiles; the gateway's receive link serializes the
    // 128 incoming tile messages (modeled by the interconnect's rx gate).
    for (std::uint32_t r = 0; r < config_.renderers; ++r) {
      (void)co_await tiles.recv();
    }

    if (config_.to_framebuffer) {
      co_await machine_.framebuffer().write(config_.frame_bytes);
    } else {
      auto out = co_await fs_.open(
          gw, kFramePrefix + std::to_string(frame), unix_create());
      for (std::uint32_t w = 0; w < config_.small_writes_per_frame; ++w) {
        co_await out->write(config_.small_write_size);
      }
      co_await out->write(config_.frame_bytes);
      co_await out->close();
    }
  }
  co_await renderers.join();
  phases_.mark("rendering", machine_.engine().now());

  for (auto& f : data_files_) f.reset();  // handles leak deliberately:
  // the code exits without closing the terrain files or the view file,
  // which is why the paper's Table 3 shows 106 opens but 101 closes.
  data_files_.clear();
}

}  // namespace paraio::apps
