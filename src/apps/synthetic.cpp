#include "apps/synthetic.hpp"

#include <algorithm>

#include "sim/task_group.hpp"

namespace paraio::apps {

SyntheticConfig SyntheticPresets::checkpoint(std::uint32_t nodes,
                                             std::uint32_t cycles,
                                             std::uint64_t record) {
  SyntheticConfig cfg;
  cfg.nodes = nodes;
  SyntheticPhase write;
  write.name = "checkpoint";
  write.direction = SyntheticDirection::kWrite;
  write.pattern = SyntheticPattern::kOwnRegion;
  write.layout = SyntheticFileLayout::kShared;
  write.requests = cycles;
  write.size = record;
  write.think_time = 0.5;
  write.barrier_entry = true;
  cfg.phases.push_back(write);
  return cfg;
}

SyntheticConfig SyntheticPresets::scan(std::uint32_t nodes,
                                       std::uint32_t requests,
                                       std::uint64_t request_size) {
  SyntheticConfig cfg;
  cfg.nodes = nodes;
  cfg.region_bytes = requests * request_size;
  SyntheticPhase read;
  read.name = "scan";
  read.direction = SyntheticDirection::kRead;
  read.pattern = SyntheticPattern::kSequential;
  read.layout = SyntheticFileLayout::kPerNode;
  read.requests = requests;
  read.size = request_size;
  cfg.phases.push_back(read);
  return cfg;
}

SyntheticConfig SyntheticPresets::probe(std::uint32_t nodes,
                                        std::uint32_t requests,
                                        std::uint64_t request_size) {
  SyntheticConfig cfg;
  cfg.nodes = nodes;
  SyntheticPhase read;
  read.name = "probe";
  read.direction = SyntheticDirection::kRead;
  read.pattern = SyntheticPattern::kRandom;
  read.layout = SyntheticFileLayout::kShared;
  read.requests = requests;
  read.size = request_size;
  cfg.phases.push_back(read);
  return cfg;
}

Synthetic::Synthetic(hw::Machine& machine, io::FileSystem& fs,
                     SyntheticConfig config)
    : machine_(machine),
      fs_(fs),
      config_(std::move(config)),
      rng_(config_.seed) {
  barriers_.reserve(config_.phases.size());
  for (const SyntheticPhase& phase : config_.phases) {
    barriers_.push_back(std::make_unique<sim::Barrier>(
        machine_.engine(), participants_of(phase)));
  }
}

std::string Synthetic::file_for(const SyntheticPhase& phase,
                                std::uint32_t node) const {
  if (phase.layout == SyntheticFileLayout::kShared) {
    return config_.file_prefix + ".shared";
  }
  return config_.file_prefix + "." + std::to_string(node);
}

sim::Task<> Synthetic::stage(io::FileSystem& bare_fs) {
  // Shared file covering every node's region, plus per-node files.
  io::OpenOptions create;
  create.mode = io::AccessMode::kUnix;
  create.create = true;
  bool need_shared = false;
  bool need_per_node = false;
  for (const SyntheticPhase& phase : config_.phases) {
    (phase.layout == SyntheticFileLayout::kShared ? need_shared
                                                  : need_per_node) = true;
  }
  if (need_shared) {
    auto f = co_await bare_fs.open(0, config_.file_prefix + ".shared", create);
    co_await f->write(config_.region_bytes * config_.nodes);
    co_await f->close();
  }
  if (need_per_node) {
    for (std::uint32_t n = 0; n < config_.nodes; ++n) {
      auto f = co_await bare_fs.open(
          n, config_.file_prefix + "." + std::to_string(n), create);
      co_await f->write(config_.region_bytes);
      co_await f->close();
    }
  }
}

sim::Task<> Synthetic::node_main(std::uint32_t node) {
  sim::Rng rng = rng_.fork(node + 1);
  for (std::size_t pi = 0; pi < config_.phases.size(); ++pi) {
    const SyntheticPhase& phase = config_.phases[pi];
    if (node >= participants_of(phase)) continue;
    if (phase.barrier_entry) co_await barriers_[pi]->arrive_and_wait();

    io::OpenOptions open;
    open.mode = io::AccessMode::kUnix;
    open.create = true;
    auto file = co_await fs_.open(node, file_for(phase, node), open);

    const std::uint64_t region = config_.region_bytes;
    const std::uint64_t base =
        phase.layout == SyntheticFileLayout::kShared &&
                phase.pattern == SyntheticPattern::kOwnRegion
            ? node * region
            : 0;
    std::uint64_t cursor = base;
    for (std::uint32_t r = 0; r < phase.requests; ++r) {
      if (phase.think_time > 0.0) {
        co_await machine_.engine().delay(rng.exponential(phase.think_time));
      }
      std::uint64_t size = phase.size;
      if (phase.size_jitter > 0.0) {
        size = static_cast<std::uint64_t>(
            rng.uniform(phase.size * (1.0 - phase.size_jitter),
                        phase.size * (1.0 + phase.size_jitter)));
        size = std::max<std::uint64_t>(size, 1);
      }
      std::uint64_t offset = cursor;
      switch (phase.pattern) {
        case SyntheticPattern::kSequential:
        case SyntheticPattern::kOwnRegion:
          offset = cursor;
          cursor += size;
          break;
        case SyntheticPattern::kStrided:
          offset = cursor;
          cursor += phase.stride > 0 ? phase.stride : size;
          break;
        case SyntheticPattern::kRandom: {
          const std::uint64_t span = region * (phase.layout ==
                                                       SyntheticFileLayout::kShared
                                                   ? config_.nodes
                                                   : 1);
          const std::uint64_t slots = std::max<std::uint64_t>(span / size, 1);
          offset = rng.uniform_int(0, slots - 1) * size;
          break;
        }
      }
      co_await file->seek(offset);
      if (phase.direction == SyntheticDirection::kWrite) {
        co_await file->write(size);
      } else {
        (void)co_await file->read(size);
      }
      if (checkpoint_ != nullptr &&
          participants_of(phase) == config_.nodes) {
        co_await checkpoint_->at_boundary(node);
      }
    }
    co_await file->close();
    if (node == 0) phases_.mark(phase.name, machine_.engine().now());
  }
}

sim::Task<> Synthetic::run() {
  sim::TaskGroup group(machine_.engine());
  for (std::uint32_t node = 0; node < config_.nodes; ++node) {
    group.spawn(node_main(node));
  }
  co_await group.join();
}

}  // namespace paraio::apps
