// RENDER — terrain-rendering (ray identification) I/O skeleton (§4.2, §6).
//
// Hybrid control/data-parallel structure: a single gateway node reads the
// multi-hundred-megabyte terrain data set with explicitly prefetched
// asynchronous reads (3 MB then 1.5 MB requests, Figure 6), scatters it to
// the renderer group, then runs a read-render-write loop: a small view-
// coordinate read, a parallel render, and one ~1 MB frame write per view
// (Figure 7) — to per-frame output files on disk, or to the HiPPi frame
// buffer in production use (§6.2).
//
// Default parameters reproduce Tables 3-4 exactly in operation counts
// (1,504 ops: 121 reads / 436 async reads + iowaits / 300 writes / 4 seeks /
// 106 opens / 101 closes); volumes are within 0.01 % of the paper's.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/workload.hpp"
#include "io/file.hpp"

namespace paraio::apps {

struct RenderConfig {
  std::uint32_t renderers = 128;

  // Initialization: the Mars (Viking) terrain data set in four files.
  std::uint32_t large_reads_3mb = 124;
  std::uint32_t large_reads_15mb = 312;
  std::uint64_t size_3mb = 3 * 1024 * 1024;
  std::uint64_t size_15mb = 1536 * 1024;
  /// Outstanding async reads the gateway keeps in flight (its explicit
  /// prefetch depth, §6.2).
  std::uint32_t read_ahead = 2;

  // View control file.
  std::uint32_t header_reads = 21;
  std::uint64_t view_read_size = 70;

  // Rendering loop.
  std::uint32_t frames = 100;
  std::uint64_t frame_bytes = 640ULL * 512 * 3;  // 640x512, 24-bit color
  std::uint32_t small_writes_per_frame = 2;      // frame header + trailer
  std::uint64_t small_write_size = 7;
  double frame_compute = 2.0;  ///< parallel render time per frame (seconds)
  /// Production mode: stream frames to the HiPPi frame buffer instead of
  /// writing per-frame files (§6.2).  Table 3/4 runs use false.
  bool to_framebuffer = false;

  std::uint64_t seed = 0x4E4D34;

  [[nodiscard]] std::uint64_t data_set_bytes() const {
    return large_reads_3mb * size_3mb + large_reads_15mb * size_15mb;
  }
  /// The gateway occupies the node id right after the renderer group.
  [[nodiscard]] io::NodeId gateway_node() const { return renderers; }
};

class Render {
 public:
  Render(hw::Machine& machine, io::FileSystem& fs, RenderConfig config = {});

  /// Creates the four terrain files and the view control file (run against
  /// the uninstrumented file system).
  sim::Task<> stage(io::FileSystem& bare_fs);

  /// Runs initialization + the full rendering loop.
  sim::Task<> run();

  [[nodiscard]] const PhaseLog& phases() const noexcept { return phases_; }
  [[nodiscard]] const RenderConfig& config() const noexcept { return config_; }

  /// Installs a collective checkpoint hook over the renderer group, invoked
  /// by every renderer at each frame boundary (the gateway does not
  /// participate).  Null detaches.
  void set_checkpoint(CheckpointHook* hook) noexcept { checkpoint_ = hook; }

  static constexpr const char* kData[4] = {"/render/mars.0", "/render/mars.1",
                                           "/render/mars.2", "/render/mars.3"};
  static constexpr const char* kViews = "/render/views.ctl";
  static constexpr const char* kFramePrefix = "/render/frame.";

 private:
  sim::Task<> read_data_file(const std::string& path, std::uint32_t reads_3mb,
                             std::uint32_t reads_15mb);

  hw::Machine& machine_;
  io::FileSystem& fs_;
  RenderConfig config_;
  PhaseLog phases_;
  sim::Rng rng_;
  /// Terrain-file handles kept open across the whole run; deliberately
  /// never closed (the paper's 106 opens vs 101 closes).
  std::vector<io::FilePtr> data_files_;
  CheckpointHook* checkpoint_ = nullptr;
};

}  // namespace paraio::apps
