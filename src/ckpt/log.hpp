// Host-side log-structured checkpoint store (ParaLog / iFast lineage).
//
// The durable unit is a LogImage: an append-ordered sequence of segments,
// each a run of fixed-header records protected by per-record and per-segment
// FNV-1a checksums.  Writers append data records and, once an epoch's dump
// is complete on every node, one commit record carrying the running digest
// of that epoch's data records.  Because the image is append-only, crash
// recovery is a single forward replay: records verify until the first
// corruption or the end of the image, and everything after the last valid
// commit record — a torn tail mid-epoch — is discarded.
//
// The simulator does not move real payload bytes, so a record's "contents"
// are its descriptor (epoch, node, offset, length); the checksums and epoch
// digests are computed over exactly those fields.  Two runs that append the
// same descriptors in the same order therefore produce bit-identical digests
// — which is what lets the recovery tests compare a recovered epoch against
// the digest recorded at commit time.
#pragma once

#include <cstdint>
#include <vector>

namespace paraio::ckpt {

// FNV-1a 64 (same constants as testkit::Fnv64; duplicated here so the
// durable layer does not depend on the test kit).
inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ull;

/// Folds one 64-bit value into an FNV-1a 64 state, byte by byte.
[[nodiscard]] constexpr std::uint64_t fnv_mix(std::uint64_t h,
                                              std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFFu;
    h *= kFnvPrime;
  }
  return h;
}

enum class RecordKind : std::uint8_t {
  kData,    ///< one node's checkpoint chunk: (epoch, node, offset, bytes)
  kCommit,  ///< epoch `epoch` is fully durable; `digest` pins its contents
};

struct LogRecord {
  RecordKind kind = RecordKind::kData;
  std::uint64_t epoch = 0;
  std::uint32_t node = 0;
  std::uint64_t offset = 0;  ///< position within the node's state image
  std::uint64_t bytes = 0;   ///< payload length (0 for kCommit)
  /// kCommit only: FNV digest of the epoch's data records at commit time.
  std::uint64_t digest = 0;
  /// Header checksum; a mismatch marks the record (and the rest of the
  /// image) as torn.
  std::uint64_t checksum = 0;

  [[nodiscard]] std::uint64_t expected_checksum() const;
};

/// One append-ordered run of records.  Sealed segments carry a checksum
/// chained over their records' checksums; the open tail segment does not
/// (it is the part of the log a crash can tear).
struct LogSegment {
  std::vector<LogRecord> records;
  std::uint64_t payload_bytes = 0;
  bool sealed = false;
  std::uint64_t checksum = 0;

  [[nodiscard]] std::uint64_t computed_checksum() const;
};

/// The durable image: what survives a crash of everything volatile.  A
/// value type on purpose — an ExperimentResult can carry a copy so a later
/// "restart" run recovers from exactly the bytes the crashed run left.
class LogImage {
 public:
  explicit LogImage(std::uint64_t segment_bytes = 1 << 20)
      : segment_bytes_(segment_bytes ? segment_bytes : 1) {}

  /// Appends one record (its checksum is computed here), sealing the tail
  /// segment once it reaches the segment payload target.  (Named `push`
  /// rather than `append` so call sites are not confused with the
  /// coroutine WriteAbsorber::append.)
  void push(LogRecord record);

  [[nodiscard]] const std::vector<LogSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] std::uint64_t payload_bytes() const noexcept {
    return payload_bytes_;
  }
  [[nodiscard]] std::size_t record_count() const noexcept {
    return record_count_;
  }

  // Crash surgery for tests: drop all but the first `keep` records (a torn
  // tail), or flip a bit in the last record's header (media corruption).
  void truncate_records(std::size_t keep);
  void corrupt_last_record();

 private:
  std::uint64_t segment_bytes_;
  std::vector<LogSegment> segments_;
  std::uint64_t payload_bytes_ = 0;
  std::size_t record_count_ = 0;
};

/// What a forward replay of the image yields.
struct RecoveredState {
  /// Last fully committed epoch (0 = no commit survived).
  std::uint64_t epoch = 0;
  /// Digest of that epoch's data records, recomputed during replay.  Equal
  /// to the digest stored in the commit record by construction — replay
  /// rejects a commit whose stored digest disagrees.
  std::uint64_t digest = 0;
  std::uint64_t committed_bytes = 0;   ///< payload covered by commits
  std::uint64_t records_replayed = 0;  ///< up to and incl. the last commit
  std::uint64_t torn_records = 0;      ///< discarded (tail or corrupt)
  std::uint64_t torn_bytes = 0;
};

/// Replays `log` front to back: verifies segment and record checksums,
/// folds data records into a running epoch digest, and accepts a commit
/// record only when its stored digest matches.  Stops at the first
/// corruption; everything after the last accepted commit is counted torn
/// and discarded.  Pure — recovery of the same image always yields the
/// same state.
[[nodiscard]] RecoveredState recover(const LogImage& log);

}  // namespace paraio::ckpt
