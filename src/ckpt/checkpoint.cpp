#include "ckpt/checkpoint.hpp"

#include <algorithm>
#include <string>

namespace paraio::ckpt {

namespace {

constexpr const char* kStateFile = "/ckpt/state";
constexpr const char* kCommitFile = "/ckpt/commit";

io::OpenOptions unix_create() {
  io::OpenOptions o;
  o.mode = io::AccessMode::kUnix;
  o.create = true;
  return o;
}

}  // namespace

CheckpointCoordinator::CheckpointCoordinator(hw::Machine& machine,
                                             std::uint32_t nodes,
                                             CheckpointSpec spec,
                                             WriteAbsorber* absorber,
                                             io::FileSystem* plain_fs)
    : machine_(machine),
      nodes_(nodes),
      spec_(spec),
      absorber_(absorber),
      plain_fs_(plain_fs),
      barrier_(machine.engine(), nodes),
      boundary_count_(nodes, 0) {
  if (spec_.every == 0) spec_.every = 1;
  if (spec_.chunk_bytes == 0) spec_.chunk_bytes = spec_.state_bytes;
}

void CheckpointCoordinator::attach_observability(obs::Registry* registry,
                                                 obs::Tracer* tracer) {
  tracer_ = tracer;
  m_epochs_ = registry ? &registry->counter("ckpt.epochs.committed") : nullptr;
}

sim::Task<> CheckpointCoordinator::at_boundary(std::uint32_t node) {
  if (!spec_.enabled) co_return;
  // Every node computes the epoch decision from its own private counter —
  // no shared state is read before the barrier, so the decision cannot
  // depend on which node resumes first.
  const std::uint64_t n = ++boundary_count_[node];
  if (n % spec_.every != 0) co_return;
  co_await run_epoch(node, n / spec_.every);
}

sim::Task<> CheckpointCoordinator::dump_plain(std::uint32_t node,
                                              std::uint64_t epoch) {
  // Write-behind baseline: the state image goes through the mounted file
  // system like any application data.  One shared file, per-node regions;
  // the epoch alternates between two slots so a torn dump never overwrites
  // the only good copy (the classic double-buffered checkpoint file).
  auto f = co_await plain_fs_->open(
      node, std::string(kStateFile) + "." + std::to_string(epoch % 2),
      unix_create());
  std::uint64_t off = 0;
  while (off < spec_.state_bytes) {
    const std::uint64_t len =
        std::min<std::uint64_t>(spec_.chunk_bytes, spec_.state_bytes - off);
    co_await f->seek(static_cast<std::uint64_t>(node) * spec_.state_bytes +
                     off);
    co_await f->write(len);
    off += len;
  }
  co_await f->flush();
  co_await f->close();
}

sim::Task<> CheckpointCoordinator::run_epoch(std::uint32_t node,
                                             std::uint64_t epoch) {
  co_await barrier_.arrive_and_wait();
  if (node == 0) {
    ++stats_.epochs_started;
    epoch_start_ = machine_.engine().now();
  }

  // The dump burst: the paper's checkpoint signature — every node writes
  // its whole state at once in clustered chunks.
  if (absorber_ != nullptr) {
    std::uint64_t off = 0;
    while (off < spec_.state_bytes) {
      const std::uint64_t len =
          std::min<std::uint64_t>(spec_.chunk_bytes, spec_.state_bytes - off);
      co_await absorber_->append(node, epoch, off, len);
      off += len;
    }
  } else {
    co_await dump_plain(node, epoch);
  }
  stats_.bytes_dumped += spec_.state_bytes;

  // Everything is durable in the backend; the commit record makes the
  // epoch recoverable.
  co_await barrier_.arrive_and_wait();
  if (node != 0) co_return;
  if (absorber_ != nullptr) {
    stats_.committed_digest = co_await absorber_->commit(epoch);
  } else {
    auto marker = co_await plain_fs_->open(0, kCommitFile, unix_create());
    co_await marker->seek(0);
    co_await marker->write(64);  // the epoch marker record
    co_await marker->flush();
    co_await marker->close();
  }
  ++stats_.epochs_committed;
  stats_.committed_epoch = epoch;
  const sim::SimTime now = machine_.engine().now();
  stats_.last_commit_time = now;
  commit_times_.push_back(now);
  stats_.checkpoint_time += now - epoch_start_;
  if (m_epochs_ != nullptr) m_epochs_->add();
  if (tracer_ != nullptr) {
    tracer_->complete({obs::kGlobalProcess, 1},
                      "ckpt.epoch" + std::to_string(epoch), epoch_start_, now,
                      "ckpt");
  }
}

double CheckpointCoordinator::data_loss_window(sim::SimTime reference) const {
  // The last commit at or before `reference` is the recovery point; a
  // commit that lands after the crash instant cannot shrink the exposure.
  sim::SimTime last = -1.0;
  for (sim::SimTime t : commit_times_) {
    if (t > reference) break;
    last = t;
  }
  if (last < 0.0) return std::max(reference, 0.0);  // nothing to recover to
  return std::max(reference - last, 0.0);
}

}  // namespace paraio::ckpt
