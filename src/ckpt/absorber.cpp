#include "ckpt/absorber.hpp"

#include <algorithm>

#include "sim/deadlock.hpp"

namespace paraio::ckpt {

namespace {

/// ION-local disk addresses for drained log batches: a spill region far
/// above any PpfsFileObject::disk_base() (file id << 30), so log traffic
/// never aliases file extents in the ION caches or arrays.
constexpr std::uint64_t kDrainBase = 1ull << 45;

}  // namespace

WriteAbsorber::WriteAbsorber(ppfs::Ppfs& fs, AbsorberParams params)
    : fs_(fs),
      params_(params),
      log_(params.segment_bytes),
      pending_(fs.machine().engine()),
      drained_(fs.machine().engine()) {
  fs_.machine().engine().spawn_daemon(drain_daemon());
}

void WriteAbsorber::attach_observability(obs::Registry* registry,
                                         obs::Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    m_acked_ = nullptr;
    m_drained_ = nullptr;
    m_lost_ = nullptr;
    m_backpressure_ = nullptr;
    m_commits_ = nullptr;
    m_resident_ = nullptr;
    return;
  }
  m_acked_ = &registry->counter("ckpt.log.acked_bytes");
  m_drained_ = &registry->counter("ckpt.log.drained_bytes");
  m_lost_ = &registry->counter("ckpt.log.lost_bytes");
  m_backpressure_ = &registry->counter("ckpt.log.backpressure_waits");
  m_commits_ = &registry->counter("ckpt.log.commits");
  m_resident_ = &registry->gauge("ckpt.log.resident_bytes");
}

sim::Task<> WriteAbsorber::append(std::uint32_t node, std::uint64_t epoch,
                                  std::uint64_t offset, std::uint64_t bytes) {
  sim::Engine& engine = fs_.machine().engine();
  auto* deadlocks = sim::DeadlockDetector::find(engine);
  // Bounded log: wait for the drain to free space before absorbing more.
  // (A chunk larger than the whole capacity is admitted once the log is
  // empty — it can never fit better than that.)
  while (resident_ > 0 && resident_ + bytes > params_.log_capacity) {
    ++stats_.backpressure_waits;
    if (m_backpressure_ != nullptr) m_backpressure_->add();
    if (deadlocks) {
      deadlocks->cond_wait(deadlocks->task_for_key(node, "node"), &drained_,
                           "ckpt:absorber:drained");
    }
    drained_.reset();
    co_await drained_.wait();
    if (deadlocks) {
      deadlocks->cond_woken(deadlocks->task_for_key(node, "node"), &drained_);
    }
  }
  // Memory-speed sequential append; this is the whole acknowledgement.
  co_await engine.delay(bytes / params_.append_rate + params_.append_latency);
  LogRecord r;
  r.kind = RecordKind::kData;
  r.epoch = epoch;
  r.node = node;
  r.offset = offset;
  r.bytes = bytes;
  log_.push(r);
  epoch_digest_ =
      fnv_mix(epoch_digest_, log_.segments().back().records.back().checksum);
  stats_.segments_sealed =
      static_cast<std::uint64_t>(log_.segments().size()) -
      (log_.segments().back().sealed ? 0u : 1u);
  resident_ += bytes;
  ++stats_.appends;
  stats_.acked_bytes += bytes;
  if (m_acked_ != nullptr) m_acked_->add(bytes);
  if (m_resident_ != nullptr) m_resident_->set(static_cast<double>(resident_));
  queue_.push_back({node, bytes});
  pending_.set();
}

sim::Task<std::uint64_t> WriteAbsorber::commit(std::uint64_t epoch) {
  co_await fs_.machine().engine().delay(params_.append_latency);
  LogRecord r;
  r.kind = RecordKind::kCommit;
  r.epoch = epoch;
  r.digest = epoch_digest_;
  log_.push(r);
  ++stats_.commits;
  if (m_commits_ != nullptr) m_commits_->add();
  const std::uint64_t digest = epoch_digest_;
  epoch_digest_ = kFnvOffset;
  co_return digest;
}

sim::Task<> WriteAbsorber::drain_daemon() {
  sim::Engine& engine = fs_.machine().engine();
  auto* deadlocks = sim::DeadlockDetector::find(engine);
  sim::DeadlockDetector::TaskId me = 0;
  if (deadlocks) {
    me = deadlocks->task_for_key(std::uint64_t{2} << 32, "ckpt-drain");
    deadlocks->set_daemon(me);
    deadlocks->cond_provider(me, &drained_, "ckpt:absorber:drained");
  }
  const std::size_t ions = fs_.machine().io_nodes();
  for (;;) {
    while (queue_.empty()) {
      if (deadlocks) {
        deadlocks->cond_wait(me, &pending_, "ckpt:absorber:pending");
      }
      pending_.reset();
      co_await pending_.wait();
      if (deadlocks) deadlocks->cond_woken(me, &pending_);
    }
    // Coalesce queued chunks into one large sequential write — the log's
    // payoff: many small bursty appends leave as few big transfers.
    std::uint64_t len = 0;
    const std::uint32_t src = queue_.front().node;
    while (!queue_.empty() && len < params_.drain_batch) {
      len += queue_.front().bytes;
      queue_.pop_front();
    }
    const auto ion = static_cast<std::uint32_t>(drain_seq_ % ions);
    ++drain_seq_;
    obs::Tracer::SpanId span = 0;
    if (tracer_ != nullptr) {
      span = tracer_->begin({obs::kGlobalProcess, 2}, "ckpt.drain", "ckpt");
    }
    const io::IoOutcome out = co_await fs_.submit_with_recovery(
        src, ion, kDrainBase + drain_addr_, len, /*is_write=*/true);
    drain_addr_ += len;
    if (tracer_ != nullptr) tracer_->end(span);
    resident_ -= len;
    ++stats_.drain_writes;
    if (out.ok()) {
      stats_.drained_bytes += len;
      if (out.failed_over) ++stats_.drain_failovers;
      if (m_drained_ != nullptr) m_drained_->add(len);
    } else {
      // Recovery exhausted every path: these acknowledged bytes are gone.
      // (submit_with_recovery also books them as dirty_bytes_lost in the
      // mount's RecoveryStats.)
      stats_.dirty_bytes_lost += len;
      if (m_lost_ != nullptr) m_lost_->add(len);
      if (tracer_ != nullptr) {
        tracer_->instant({obs::kGlobalProcess, 2}, "ckpt.drain-lost", "fault");
      }
    }
    if (m_resident_ != nullptr) {
      m_resident_->set(static_cast<double>(resident_));
    }
    drained_.set();
  }
}

}  // namespace paraio::ckpt
