// Checkpoint epochs: the consistency protocol over the write absorber.
//
// A checkpoint is a two-barrier collective (the classic blocking
// coordinated protocol):
//
//   barrier  — all participating nodes agree the epoch starts here;
//   dump     — every node writes its full state image as a burst of
//              clustered chunk writes (the paper's §4.1/§8 checkpoint
//              pattern), either into the WriteAbsorber (acknowledged at
//              log-append) or through a plain PPFS/PFS file (write-behind
//              baseline);
//   barrier  — all dumps are durable in the backend;
//   commit   — node 0 appends the epoch's commit record.  Only now is the
//              epoch recoverable; a crash before this point tears the tail
//              and recovery falls back to the previous epoch.
//
// `data_loss_window(t)` is the exposure accounting: how much simulated time
// of work would be lost if the machine died at time t — t minus the last
// commit before t (all of [0, t) when nothing ever committed).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/workload.hpp"
#include "ckpt/absorber.hpp"
#include "hw/machine.hpp"
#include "io/file.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace paraio::ckpt {

enum class CkptBackend {
  kAbsorber,     ///< host-side log: ack at append, background drain
  kWriteBehind,  ///< plain file writes through the mounted file system
};

struct CheckpointSpec {
  bool enabled = false;
  /// Take a checkpoint every `every`-th application boundary (>= 1).
  std::uint32_t every = 1;
  /// Full per-node state image dumped each epoch.
  std::uint64_t state_bytes = 256 * 1024;
  /// Chunk size of the dump burst (clustered writes, not one huge one).
  std::uint64_t chunk_bytes = 64 * 1024;
  CkptBackend backend = CkptBackend::kAbsorber;
};

struct CheckpointStats {
  std::uint64_t epochs_started = 0;
  std::uint64_t epochs_committed = 0;
  std::uint64_t committed_epoch = 0;  ///< id of the last committed (0 = none)
  std::uint64_t committed_digest = 0;  ///< absorber backend: epoch digest
  sim::SimTime last_commit_time = -1.0;  ///< -1 until the first commit
  /// Simulated seconds spent inside checkpoint epochs (barrier entry to
  /// commit), summed — the overhead numerator against total run time.
  double checkpoint_time = 0.0;
  std::uint64_t bytes_dumped = 0;
  /// Filled by core::run_experiment: exposure at the first destructive
  /// fault (or at run end when the plan has none).  Non-negative.
  double data_loss_window = 0.0;
};

/// The pluggable checkpoint phase: installed into an application skeleton
/// via apps::CheckpointHook, counts boundaries per node, and runs the
/// two-barrier epoch protocol every `spec.every`-th one.
class CheckpointCoordinator final : public apps::CheckpointHook {
 public:
  /// Exactly one backend: `absorber` when spec.backend == kAbsorber, else
  /// `plain_fs` (the mounted file system for the write-behind baseline).
  CheckpointCoordinator(hw::Machine& machine, std::uint32_t nodes,
                        CheckpointSpec spec, WriteAbsorber* absorber,
                        io::FileSystem* plain_fs);

  [[nodiscard]] sim::Task<> at_boundary(std::uint32_t node) override;

  [[nodiscard]] const CheckpointStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const CheckpointSpec& spec() const noexcept { return spec_; }

  /// Work-time exposure if everything volatile died at `reference`:
  /// reference - (last commit before it), clamped non-negative; the whole
  /// of [0, reference) when no epoch ever committed.
  [[nodiscard]] double data_loss_window(sim::SimTime reference) const;

  /// Publishes `ckpt.epochs.*` counters and one `ckpt.epoch` span per
  /// committed epoch on the global ckpt track.
  void attach_observability(obs::Registry* registry, obs::Tracer* tracer);

 private:
  sim::Task<> run_epoch(std::uint32_t node, std::uint64_t epoch);
  sim::Task<> dump_plain(std::uint32_t node, std::uint64_t epoch);

  hw::Machine& machine_;
  std::uint32_t nodes_;
  CheckpointSpec spec_;
  WriteAbsorber* absorber_;
  io::FileSystem* plain_fs_;
  sim::Barrier barrier_;
  std::vector<std::uint64_t> boundary_count_;
  sim::SimTime epoch_start_ = 0.0;
  std::vector<sim::SimTime> commit_times_;  // ascending, one per commit
  CheckpointStats stats_;

  obs::Counter* m_epochs_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace paraio::ckpt
