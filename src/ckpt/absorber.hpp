// Log-structured host-side write absorber.
//
// Checkpoint dumps are the paper's pathological write pattern: every node
// bursts its full state at once, and the I/O nodes melt.  The absorber
// applies the ParaLog/iFast answer: a node's checkpoint chunk is
// acknowledged as soon as it is appended to the host-side log (memory-speed,
// sequential), and a background daemon drains the log to the I/O nodes in
// large batches through the PPFS client's full recovery path
// (retry/backoff/failover) — so an ION crash during the drain degrades
// throughput instead of stalling the application's checkpoint barrier.
//
// The log is bounded: when undrained (resident) bytes would exceed the
// capacity, append() blocks until the drain frees space — backpressure, not
// unbounded memory.  Accounting invariant, checked by
// testkit::InvariantChecker at quiescence:
//
//     acked_bytes == drained_bytes + log_resident_bytes + dirty_bytes_lost
//
// (every acknowledged byte is on an ION, still in the log, or went down
// with a crashed drain write that exhausted recovery).
#pragma once

#include <cstdint>
#include <deque>

#include "ckpt/log.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "ppfs/ppfs.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace paraio::ckpt {

struct AbsorberParams {
  /// Resident (appended, not yet drained) byte bound; append() blocks on
  /// the drain when exceeded.
  std::uint64_t log_capacity = 4u << 20;
  /// Seal log segments at this payload size.
  std::uint64_t segment_bytes = 1u << 20;
  /// Host-memory append bandwidth (the whole point: orders of magnitude
  /// above the arrays).
  double append_rate = 400e6;
  /// Fixed per-append bookkeeping cost.
  sim::SimDuration append_latency = sim::microseconds(20.0);
  /// Maximum bytes shipped per background drain write.
  std::uint64_t drain_batch = 1u << 20;
};

struct AbsorberStats {
  std::uint64_t appends = 0;
  std::uint64_t acked_bytes = 0;     ///< acknowledged at log-append
  std::uint64_t drained_bytes = 0;   ///< durably on an ION
  std::uint64_t log_resident_bytes = 0;  ///< appended, not yet drained
  std::uint64_t dirty_bytes_lost = 0;    ///< drain writes recovery gave up on
  std::uint64_t drain_writes = 0;
  std::uint64_t drain_failovers = 0;  ///< drain writes served by a substitute
  std::uint64_t backpressure_waits = 0;
  std::uint64_t segments_sealed = 0;
  std::uint64_t commits = 0;
};

class WriteAbsorber {
 public:
  explicit WriteAbsorber(ppfs::Ppfs& fs, AbsorberParams params = {});
  WriteAbsorber(const WriteAbsorber&) = delete;
  WriteAbsorber& operator=(const WriteAbsorber&) = delete;

  /// Appends one checkpoint chunk for `node` and returns once it is durable
  /// in the log — NOT once it reaches an ION.  Blocks only on the bounded
  /// log's backpressure.
  [[nodiscard]] sim::Task<> append(std::uint32_t node, std::uint64_t epoch,
                                   std::uint64_t offset, std::uint64_t bytes);

  /// Appends the commit record for `epoch` (call after every node's dump of
  /// that epoch has been appended) and returns the epoch digest it pinned.
  [[nodiscard]] sim::Task<std::uint64_t> commit(std::uint64_t epoch);

  /// Stats snapshot; `log_resident_bytes` is filled in at call time.
  [[nodiscard]] AbsorberStats stats() const {
    AbsorberStats s = stats_;
    s.log_resident_bytes = resident_;
    return s;
  }
  [[nodiscard]] const LogImage& log() const noexcept { return log_; }
  [[nodiscard]] std::uint64_t resident_bytes() const noexcept {
    return resident_;
  }

  /// Publishes `ckpt.log.*` counters / the resident-bytes gauge and opens a
  /// span per drain write on the global ckpt track.  Free when detached.
  void attach_observability(obs::Registry* registry, obs::Tracer* tracer);

 private:
  struct DrainItem {
    std::uint32_t node = 0;
    std::uint64_t bytes = 0;
  };

  sim::Task<> drain_daemon();

  ppfs::Ppfs& fs_;
  AbsorberParams params_;
  LogImage log_;
  std::deque<DrainItem> queue_;
  std::uint64_t resident_ = 0;
  std::uint64_t epoch_digest_ = kFnvOffset;  // running, reset at commit
  std::uint64_t drain_seq_ = 0;   // round-robins drain writes over the IONs
  std::uint64_t drain_addr_ = 0;  // log-structured: strictly increasing
  sim::Event pending_;   // set when the queue has work for the drain
  sim::Event drained_;   // set after each drain write frees capacity
  AbsorberStats stats_;

  // Observability handles; null until attach_observability.
  obs::Counter* m_acked_ = nullptr;
  obs::Counter* m_drained_ = nullptr;
  obs::Counter* m_lost_ = nullptr;
  obs::Counter* m_backpressure_ = nullptr;
  obs::Counter* m_commits_ = nullptr;
  obs::Gauge* m_resident_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace paraio::ckpt
