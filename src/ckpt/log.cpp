#include "ckpt/log.hpp"

#include <algorithm>

namespace paraio::ckpt {

std::uint64_t LogRecord::expected_checksum() const {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, static_cast<std::uint64_t>(kind));
  h = fnv_mix(h, epoch);
  h = fnv_mix(h, node);
  h = fnv_mix(h, offset);
  h = fnv_mix(h, bytes);
  h = fnv_mix(h, digest);
  return h;
}

std::uint64_t LogSegment::computed_checksum() const {
  std::uint64_t h = kFnvOffset;
  for (const LogRecord& r : records) h = fnv_mix(h, r.checksum);
  return h;
}

void LogImage::push(LogRecord record) {
  record.checksum = record.expected_checksum();
  if (segments_.empty() || segments_.back().sealed) {
    segments_.emplace_back();
  }
  LogSegment& seg = segments_.back();
  seg.records.push_back(record);
  seg.payload_bytes += record.bytes;
  payload_bytes_ += record.bytes;
  ++record_count_;
  if (seg.payload_bytes >= segment_bytes_) {
    seg.sealed = true;
    seg.checksum = seg.computed_checksum();
  }
}

void LogImage::truncate_records(std::size_t keep) {
  std::size_t seen = 0;
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    LogSegment& seg = segments_[s];
    if (seen + seg.records.size() <= keep) {
      seen += seg.records.size();
      continue;
    }
    const std::size_t within = keep - seen;
    for (std::size_t r = within; r < seg.records.size(); ++r) {
      payload_bytes_ -= seg.records[r].bytes;
      seg.payload_bytes -= seg.records[r].bytes;
      --record_count_;
    }
    seg.records.resize(within);
    // A truncated segment no longer matches its sealed checksum — exactly
    // the state a crash mid-segment-write leaves behind.
    segments_.resize(seg.records.empty() ? s : s + 1);
    return;
  }
}

void LogImage::corrupt_last_record() {
  for (auto it = segments_.rbegin(); it != segments_.rend(); ++it) {
    if (!it->records.empty()) {
      it->records.back().epoch ^= 1u;  // header no longer matches checksum
      return;
    }
  }
}

RecoveredState recover(const LogImage& log) {
  RecoveredState out;
  std::uint64_t running = kFnvOffset;  // digest of the open epoch
  std::uint64_t epoch_bytes = 0;
  std::uint64_t replayed = 0;
  bool torn = false;

  for (const LogSegment& seg : log.segments()) {
    if (torn) break;
    // A sealed segment whose chained checksum disagrees was torn by the
    // crash (or corrupted on media): it and everything after it is suspect.
    if (seg.sealed && seg.checksum != seg.computed_checksum()) break;
    for (const LogRecord& r : seg.records) {
      if (r.checksum != r.expected_checksum()) {
        torn = true;
        break;
      }
      ++replayed;
      if (r.kind == RecordKind::kData) {
        running = fnv_mix(running, r.checksum);
        epoch_bytes += r.bytes;
      } else {
        if (r.digest != running) {
          // A commit record that does not pin the data it claims to: treat
          // it (and the rest of the image) as torn.
          torn = true;
          --replayed;
          break;
        }
        out.epoch = r.epoch;
        out.digest = r.digest;
        out.committed_bytes += epoch_bytes;
        out.records_replayed = replayed;
        running = kFnvOffset;
        epoch_bytes = 0;
      }
    }
  }
  out.torn_records = log.record_count() - out.records_replayed;
  out.torn_bytes = log.payload_bytes() - out.committed_bytes;
  return out;
}

}  // namespace paraio::ckpt
