// Deterministic, portable pseudo-random numbers for workload generation.
//
// std::mt19937 is portable but std::*_distribution results are
// implementation-defined; to make every experiment bit-for-bit reproducible
// across standard libraries we implement xoshiro256** with SplitMix64
// seeding and our own inverse-CDF / Box-Muller transforms.
#pragma once

#include <array>
#include <cstdint>

namespace paraio::sim {

class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value (xoshiro256**).
  std::uint64_t next_u64();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive).  Precondition: lo <= hi.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponential with the given mean (> 0).
  double exponential(double mean);

  /// Normal via Box-Muller (caches the second variate).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool bernoulli(double p);

  /// Derives an independent stream (e.g. one per simulated node): applies
  /// the xoshiro long-jump-equivalent of reseeding with a mixed stream id.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace paraio::sim
