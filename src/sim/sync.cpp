#include "sim/sync.hpp"

namespace paraio::sim {

void Event::set() {
  set_ = true;
  // Resume through the event queue so set() never re-enters user code.
  for (auto h : waiters_) {
    engine_.call_in(0.0, [h] { h.resume(); });
  }
  waiters_.clear();
}

void Semaphore::release(std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!waiters_.empty()) {
      auto h = waiters_.front();
      waiters_.pop_front();
      engine_.call_in(0.0, [h] { h.resume(); });
    } else {
      ++count_;
    }
  }
}

void Barrier::release_all() {
  ++generation_;
  arrived_ = 0;
  for (auto h : waiters_) {
    engine_.call_in(0.0, [h] { h.resume(); });
  }
  waiters_.clear();
}

}  // namespace paraio::sim
