#include "sim/arena.hpp"

#include <cassert>
#include <new>

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PARAIO_ARENA_PASSTHROUGH 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define PARAIO_ARENA_PASSTHROUGH 1
#endif
#endif

namespace paraio::sim::arena {

#ifdef PARAIO_ARENA_PASSTHROUGH

void* allocate(std::size_t size) { return ::operator new(size); }
void deallocate(void* p, std::size_t size) noexcept {
  ::operator delete(p, size);
}
Stats stats() noexcept { return {}; }
bool pooling_enabled() noexcept { return false; }

#else

namespace {

constexpr std::size_t kClassGranularity = 64;
constexpr std::size_t kClassCount = 16;  // classes 64, 128, ..., 1024 bytes
constexpr std::size_t kMaxPooledSize = kClassGranularity * kClassCount;
constexpr std::size_t kSlabBytes = 64 * 1024;

struct FreeBlock {
  FreeBlock* next;
};

struct ThreadPool {
  FreeBlock* free_lists[kClassCount] = {};
  Stats counters;

  void* allocate_class(std::size_t cls) {
    if (FreeBlock* head = free_lists[cls]) {
      free_lists[cls] = head->next;
      ++counters.pool_allocs;
      return head;
    }
    carve_slab(cls);
    FreeBlock* head = free_lists[cls];
    free_lists[cls] = head->next;
    ++counters.pool_allocs;
    return head;
  }

  void carve_slab(std::size_t cls) {
    const std::size_t chunk = (cls + 1) * kClassGranularity;
    const std::size_t count = kSlabBytes / chunk;
    // Slabs are deliberately never freed: see the header.  max_align_t
    // alignment from ::operator new covers every pooled object.
    auto* base = static_cast<unsigned char*>(::operator new(kSlabBytes));
    for (std::size_t i = 0; i < count; ++i) {
      auto* block = reinterpret_cast<FreeBlock*>(base + i * chunk);
      block->next = free_lists[cls];
      free_lists[cls] = block;
    }
    ++counters.slabs;
  }
};

ThreadPool& pool() {
  thread_local ThreadPool tp;
  return tp;
}

constexpr std::size_t class_of(std::size_t size) {
  return (size + kClassGranularity - 1) / kClassGranularity - 1;
}

}  // namespace

void* allocate(std::size_t size) {
  if (size == 0) size = 1;
  if (size > kMaxPooledSize) {
    ++pool().counters.fallback_allocs;
    return ::operator new(size);
  }
  return pool().allocate_class(class_of(size));
}

void deallocate(void* p, std::size_t size) noexcept {
  if (p == nullptr) return;
  if (size == 0) size = 1;
  if (size > kMaxPooledSize) {
    ::operator delete(p, size);
    return;
  }
  ThreadPool& tp = pool();
  const std::size_t cls = class_of(size);
  auto* block = static_cast<FreeBlock*>(p);
  block->next = tp.free_lists[cls];
  tp.free_lists[cls] = block;
}

Stats stats() noexcept { return pool().counters; }
bool pooling_enabled() noexcept { return true; }

#endif  // PARAIO_ARENA_PASSTHROUGH

}  // namespace paraio::sim::arena
