#include "sim/race.hpp"

#include <algorithm>
#include <sstream>

namespace paraio::sim {

RaceDetector::RaceDetector(Engine& engine)
    : engine_(engine), chained_(engine.observer()) {
  engine_.set_observer(this);
}

RaceDetector::~RaceDetector() {
  if (engine_.observer() == this) engine_.set_observer(chained_);
}

RaceDetector* RaceDetector::find(Engine& engine) {
  for (EngineObserver* o = engine.observer(); o != nullptr; o = o->chained()) {
    if (auto* det = dynamic_cast<RaceDetector*>(o)) return det;
  }
  return nullptr;
}

void RaceDetector::on_schedule(SimTime now, SimTime when) {
  if (chained_) chained_->on_schedule(now, when);
}

void RaceDetector::on_event(SimTime when) {
  ++events_seen_;
  if (chained_) chained_->on_event(when);
}

void RaceDetector::on_run_complete(SimTime now, std::size_t pending_events,
                                   std::size_t live_tasks) {
  if (chained_) chained_->on_run_complete(now, pending_events, live_tasks);
}

RaceDetector::TaskId RaceDetector::register_task(std::string name) {
  const TaskId id = static_cast<TaskId>(task_names_.size());
  task_names_.push_back(std::move(name));
  clocks_.emplace_back();
  clocks_.back()[id] = 1;
  return id;
}

RaceDetector::TaskId RaceDetector::task_for_key(std::uint64_t key,
                                                const char* label) {
  auto it = external_tasks_.find(key);
  if (it != external_tasks_.end()) return it->second;
  const TaskId id =
      register_task(std::string(label) + "#" + std::to_string(key));
  external_tasks_.emplace(key, id);
  return id;
}

void RaceDetector::record(TaskId task, AccessKind kind, std::string site) {
  Access a;
  a.time = engine_.now();
  a.seq = events_seen_;
  a.task = task;
  a.kind = kind;
  a.site = std::move(site);
  a.clock = clocks_[task];
  accesses_.push_back(std::move(a));
}

void RaceDetector::read(TaskId task, std::string site) {
  record(task, AccessKind::kRead, std::move(site));
}

void RaceDetector::write(TaskId task, std::string site) {
  record(task, AccessKind::kWrite, std::move(site));
}

void RaceDetector::merge(Clock* into, const Clock& from) {
  for (const auto& [task, t] : from) {
    auto [it, inserted] = into->emplace(task, t);
    if (!inserted) it->second = std::max(it->second, t);
  }
}

void RaceDetector::release(TaskId task, const void* token) {
  merge(&token_clocks_[token], clocks_[task]);
  tick(task);
}

void RaceDetector::acquire(TaskId task, const void* token) {
  auto it = token_clocks_.find(token);
  if (it != token_clocks_.end()) merge(&clocks_[task], it->second);
  tick(task);
}

void RaceDetector::fork(TaskId parent, TaskId child) {
  merge(&clocks_[child], clocks_[parent]);
  tick(parent);
}

bool RaceDetector::concurrent(const Access& a, const Access& b) {
  auto knows = [](const Access& of, const Access& about) {
    // `of` saw `about`'s access iff its clock entry for about.task has
    // reached the tick stamped on that access.
    const auto it = of.clock.find(about.task);
    const std::uint64_t seen = it == of.clock.end() ? 0 : it->second;
    const auto own = about.clock.find(about.task);
    const std::uint64_t stamp = own == about.clock.end() ? 0 : own->second;
    return seen >= stamp;
  };
  return !knows(a, b) && !knows(b, a);
}

void RaceDetector::finish() {
  if (finished_) return;
  finished_ = true;

  // Stable grouping by site, then by exact simulated instant.  Same-instant
  // accesses from the same task are program-ordered; different tasks with at
  // least one write race unless a clock edge orders them.
  std::map<std::string, std::vector<const Access*>> by_site;
  for (const Access& a : accesses_) by_site[a.site].push_back(&a);

  for (auto& [site, list] : by_site) {
    std::stable_sort(list.begin(), list.end(),
                     [](const Access* a, const Access* b) {
                       if (a->time != b->time) return a->time < b->time;
                       return a->seq < b->seq;
                     });
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        const Access& a = *list[i];
        const Access& b = *list[j];
        if (b.time != a.time) break;  // sorted: later instants only
        if (a.task == b.task) continue;
        if (a.kind == AccessKind::kRead && b.kind == AccessKind::kRead) {
          continue;
        }
        if (!concurrent(a, b)) continue;
        // One report per (site, instant, task pair).
        const bool seen = std::any_of(
            races_.begin(), races_.end(), [&](const Race& r) {
              return r.site == site && r.time == a.time &&
                     ((r.first.task == a.task && r.second.task == b.task) ||
                      (r.first.task == b.task && r.second.task == a.task));
            });
        if (seen) continue;
        races_.push_back(Race{site, a.time, a, b});
      }
    }
  }
}

std::string RaceDetector::report() const {
  if (races_.empty()) return "ok";
  std::ostringstream out;
  out << races_.size() << " simulated-time race(s):";
  auto kind = [](AccessKind k) {
    return k == AccessKind::kWrite ? "write" : "read";
  };
  for (const Race& r : races_) {
    out << "\n  - site '" << r.site << "' at t=" << r.time << ": "
        << kind(r.first.kind) << " by '" << task_names_[r.first.task]
        << "' (event " << r.first.seq << ") and " << kind(r.second.kind)
        << " by '" << task_names_[r.second.task] << "' (event "
        << r.second.seq
        << ") are ordered only by event-queue tie-breaking; add "
           "synchronization or separate their timestamps";
  }
  return out.str();
}

}  // namespace paraio::sim
