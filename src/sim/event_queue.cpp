#include "sim/event_queue.hpp"

#include <cassert>

namespace paraio::sim {

EventId EventQueue::schedule(SimTime when, Action action) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  pending_.emplace(seq, std::move(action));
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  auto it = pending_.find(id.seq);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  --live_;
  return true;
}

void EventQueue::drop_dead_top() const {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_dead_top();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.top().when;
}

std::pair<SimTime, EventQueue::Action> EventQueue::pop() {
  drop_dead_top();
  assert(!heap_.empty() && "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = pending_.find(top.seq);
  assert(it != pending_.end());
  Action action = std::move(it->second);
  pending_.erase(it);
  --live_;
  return {top.when, std::move(action)};
}

}  // namespace paraio::sim
