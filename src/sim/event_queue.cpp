#include "sim/event_queue.hpp"

#include <cassert>

namespace paraio::sim {

namespace {

/// SplitMix64 finalizer: a fixed bijection on 64-bit values, so distinct
/// sequence numbers always map to distinct tie-break keys.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void EventQueue::set_tie_break_seed(std::uint64_t seed) {
  assert(empty() && "tie-break seed must be set while the queue is empty");
  tie_seed_ = seed;
}

EventId EventQueue::schedule(SimTime when, Action action) {
  const std::uint64_t seq = next_seq_++;
  const std::uint64_t key = tie_seed_ == 0 ? seq : mix64(seq ^ tie_seed_);
  heap_.push(Entry{when, seq, key});
  pending_.emplace(seq, std::move(action));
  ++live_;
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  auto it = pending_.find(id.seq);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  --live_;
  return true;
}

void EventQueue::drop_dead_top() const {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

SimTime EventQueue::next_time() const {
  drop_dead_top();
  assert(!heap_.empty() && "next_time() on empty queue");
  return heap_.top().when;
}

std::pair<SimTime, EventQueue::Action> EventQueue::pop() {
  drop_dead_top();
  assert(!heap_.empty() && "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  auto it = pending_.find(top.seq);
  assert(it != pending_.end());
  Action action = std::move(it->second);
  pending_.erase(it);
  --live_;
  return {top.when, std::move(action)};
}

}  // namespace paraio::sim
