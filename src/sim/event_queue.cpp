#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace paraio::sim {

namespace {

/// SplitMix64 finalizer: a fixed bijection on 64-bit values, so distinct
/// sequence numbers always map to distinct tie-break keys.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

bool EventQueue::earlier(const Entry& a, const Entry& b) noexcept {
  if (a.when != b.when) return a.when < b.when;
  return a.key < b.key;
}

bool EventQueue::all_same_when(const std::vector<Entry>& entries) noexcept {
  for (const Entry& e : entries) {
    if (e.when != entries.front().when) return false;
  }
  return true;
}

void EventQueue::set_tie_break_seed(std::uint64_t seed) {
  assert(empty() && "tie-break seed must be set while the queue is empty");
  tie_seed_ = seed;
}

std::uint32_t EventQueue::acquire_slot(Action action) {
  if (free_head_ != kNoSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = slots_[s].next_free;
    slots_[s].action = std::move(action);
    return s;
  }
  const auto s = static_cast<std::uint32_t>(slots_.size());
  slots_.push_back(Slot{std::move(action), 1, kNoSlot});
  return s;
}

void EventQueue::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.action = Action();  // release captured resources eagerly
  ++s.gen;              // tombstones any entry still in the ladder
  s.next_free = free_head_;
  free_head_ = slot;
}

EventId EventQueue::schedule(SimTime when, Action action) {
  const std::uint64_t seq = next_seq_++;
  const std::uint64_t key = tie_seed_ == 0 ? seq : mix64(seq ^ tie_seed_);
  const std::uint32_t slot = acquire_slot(std::move(action));
  const Entry e{when, key, slots_[slot].gen, slot};
  ++live_;
  route(e);
  // A from-empty schedule may route to the rungs/top; pull it straight into
  // bottom so the "earliest live event is bottom's head" invariant (and with
  // it, const next_time()) holds on every exit.
  if (bottom_empty()) refill();
  return EventId{seq, e.gen, slot};
}

bool EventQueue::cancel(EventId id) {
  if (id.slot >= slots_.size()) return false;
  if (slots_[id.slot].gen != id.gen) return false;  // already fired/cancelled
  release_slot(id.slot);
  --live_;
  refill();  // the cancelled event may have been bottom's earliest
  return true;
}

SimTime EventQueue::next_time() const {
  assert(live_ > 0 && "next_time() on empty queue");
  assert(!bottom_empty() && is_live(bottom_[bottom_head_]));
  return bottom_[bottom_head_].when;
}

std::pair<SimTime, EventQueue::Action> EventQueue::pop() {
  assert(live_ > 0 && "pop() on empty queue");
  assert(!bottom_empty() && is_live(bottom_[bottom_head_]));
  const Entry e = bottom_[bottom_head_];
  ++bottom_head_;
  Action action = std::move(slots_[e.slot].action);
  release_slot(e.slot);
  --live_;
  refill();
  return {e.when, std::move(action)};
}

// --- routing ---------------------------------------------------------------

void EventQueue::route(const Entry& e) {
  if (e.when < bottom_threshold_) {
    insert_bottom(e);
    maybe_spill_bottom();
    return;
  }
  // Singleton fast path: scheduling into an empty queue (the timer-chain /
  // ping-pong shape, where one event is in flight at a time) would route to
  // top_ only for refill() to immediately convert it back.  Going straight
  // into bottom produces the exact state refill_from_top's direct-sort path
  // would: one-entry bottom, threshold raised to nextafter(when).  Guarded
  // on the containers (not live_) because tombstoned entries may still sit
  // in the structures.
  if (rungs_.empty() && top_.empty() && bottom_.empty()) {
    bottom_.push_back(e);
    bottom_head_ = 0;
    bottom_threshold_ = std::max(bottom_threshold_,
                                 std::nextafter(e.when, kTimeInfinity));
    return;
  }
  // Innermost (earliest window) first; route_ends ascend outwards.
  for (std::size_t i = rungs_.size(); i-- > 0;) {
    if (e.when < rungs_[i].route_end) {
      place_in_rung(rungs_[i], e);
      return;
    }
  }
  top_.push_back(e);
  if (e.when < top_min_) top_min_ = e.when;
  if (e.when > top_max_) top_max_ = e.when;
}

void EventQueue::insert_bottom(const Entry& e) {
  // The popped prefix [0, bottom_head_) is dead weight; drop it once it
  // dominates the vector so inserts and spills stay O(live bottom).
  if (bottom_head_ >= 64 && bottom_head_ * 2 >= bottom_.size()) {
    bottom_.erase(bottom_.begin(),
                  bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_head_));
    bottom_head_ = 0;
  }
  // Common case first: a new event at or past the latest bottom time (FIFO
  // keys make same-instant arrivals sort last) is a plain append.
  if (bottom_.empty() || !earlier(e, bottom_.back())) {
    bottom_.push_back(e);
    return;
  }
  const auto it = std::upper_bound(
      bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_head_),
      bottom_.end(), e, earlier);
  bottom_.insert(it, e);
}

void EventQueue::place_in_rung(Rung& r, const Entry& e) {
  const std::size_t n = r.buckets.size();
  const SimTime off = (e.when - r.start) / r.width;
  std::size_t idx = 0;
  if (off > 0.0) {
    idx = off >= static_cast<SimTime>(n) ? n - 1
                                         : static_cast<std::size_t>(off);
  }
  // Correct the division hint against the exact boundary expression, so
  // placement agrees bit-for-bit with the drain thresholds.
  while (idx + 1 < n && e.when >= r.boundary(idx + 1)) ++idx;
  while (idx > 0 && e.when < r.boundary(idx)) --idx;
  // Entries landing behind the drain point (possible when an inner rung's
  // route_end sits below our boundary(cur)) fold into the next live bucket;
  // the per-bucket sort at drain time restores exact order.
  if (idx < r.cur) idx = r.cur;
  assert(idx < n);
  r.buckets[idx].push_back(e);
}

void EventQueue::maybe_spill_bottom() {
  if (bottom_.size() - bottom_head_ <= kBottomSpillLimit) return;
  // Keep the earliest kBottomKeep entries; move the tail (larger times) into
  // a new innermost rung so sorted inserts stay O(small).  The cut must fall
  // between distinct timestamps: same-instant events split across bottom and
  // a rung could interleave wrongly under a seeded tie-break.
  // bottom_ is sorted by when, so the first distinct timestamp at or past
  // the keep point is an upper_bound away — O(log n), which matters because
  // this runs on every insert while the bottom is over the spill limit (a
  // linear scan here is O(n^2) for same-instant bursts).
  const SimTime keep_when = bottom_[bottom_head_ + kBottomKeep - 1].when;
  const auto cut_it = std::upper_bound(
      bottom_.begin() + static_cast<std::ptrdiff_t>(bottom_head_ + kBottomKeep),
      bottom_.end(), keep_when,
      [](SimTime w, const Entry& e) { return w < e.when; });
  if (cut_it == bottom_.end()) return;
  const auto cut = static_cast<std::size_t>(cut_it - bottom_.begin());
  const SimTime new_threshold =
      std::nextafter(bottom_[cut - 1].when, kTimeInfinity);
  std::vector<Entry> spilled(
      bottom_.begin() + static_cast<std::ptrdiff_t>(cut), bottom_.end());
  if (!build_rung(spilled, new_threshold, bottom_threshold_)) return;
  bottom_.resize(cut);
  bottom_threshold_ = new_threshold;
}

// --- refilling -------------------------------------------------------------

void EventQueue::purge_bottom() noexcept {
  while (bottom_head_ < bottom_.size() && !is_live(bottom_[bottom_head_])) {
    ++bottom_head_;
  }
  if (bottom_head_ == bottom_.size() && bottom_head_ != 0) {
    bottom_.clear();
    bottom_head_ = 0;
  }
}

void EventQueue::refill() {
  purge_bottom();
  while (bottom_empty() && live_ > 0) {
    assert(!rungs_.empty() || !top_.empty());
    if (!rungs_.empty()) {
      refill_from_rung();
    } else {
      refill_from_top();
    }
    purge_bottom();
  }
}

void EventQueue::refill_from_rung() {
  Rung& r = rungs_.back();
  const std::size_t n = r.buckets.size();
  while (r.cur < n && r.buckets[r.cur].empty()) ++r.cur;
  if (r.cur == n) {
    bottom_threshold_ = std::max(bottom_threshold_, r.route_end);
    rungs_.pop_back();
    return;
  }
  const std::size_t j = r.cur;
  std::vector<Entry> bucket = std::move(r.buckets[j]);
  r.buckets[j] = {};
  ++r.cur;
  // Everything remaining in this rung (and all outer structures) is at or
  // beyond drain_end; everything in `bucket` is strictly below it.
  const SimTime drain_end =
      (j + 1 == n) ? r.route_end : std::min(r.boundary(j + 1), r.route_end);
  // The child must span the drained bucket, not [bottom_threshold_,
  // drain_end): with the latter, a cluster sitting in the LAST bucket keeps
  // drain_end == route_end, the child rung comes out identical to its
  // parent, and the spawn loop never terminates.  Starting at the bucket's
  // own boundary shrinks the window by a factor of n every generation
  // (entries folded forward from below boundary(j) simply land in the
  // child's bucket 0 — placement clamps, and the drain-time sort orders
  // them).  build_rung rejects the window once FP can no longer split it.
  const SimTime child_start = std::max(bottom_threshold_, r.boundary(j));
  if (r.cur == n) rungs_.pop_back();  // exhausted; r dangles past this point
  const bool try_spawn = bucket.size() > kSpawnThreshold &&
                         rungs_.size() < kMaxRungs && !all_same_when(bucket);
  if (!try_spawn || !build_rung(bucket, child_start, drain_end)) {
    sort_into_bottom(std::move(bucket), drain_end);
  }
}

void EventQueue::refill_from_top() {
  assert(!top_.empty());
  std::vector<Entry> entries = std::move(top_);
  top_ = {};
  const SimTime tmin = top_min_;
  const SimTime tmax = top_max_;
  top_min_ = kTimeInfinity;
  top_max_ = -kTimeInfinity;
  // nextafter makes the bound exclusive of nothing: future arrivals at
  // exactly tmax still sort into bottom next to the events already there.
  const SimTime threshold = std::nextafter(tmax, kTimeInfinity);
  if (entries.size() <= kDirectSortLimit ||
      !build_rung(entries, tmin, threshold)) {
    sort_into_bottom(std::move(entries), threshold);
  }
}

bool EventQueue::build_rung(std::vector<Entry> &entries, SimTime start,
                            SimTime route_end) {
  const std::size_t n = std::min(entries.size(), kMaxBuckets);
  if (n < 2) return false;
  const SimTime span = route_end - start;
  if (!std::isfinite(span) || span <= 0.0) return false;
  const SimTime width = span / static_cast<SimTime>(n);
  // Reject degenerate windows where the width is absorbed by the magnitude
  // of `start` — the boundary expression could not separate buckets, and the
  // fallback (a plain sort) is both correct and cheaper.
  if (!(width > 0.0) || !(start + width > start)) return false;
  Rung r;
  r.start = start;
  r.width = width;
  r.route_end = route_end;
  r.buckets.resize(n);
  rungs_.push_back(std::move(r));
  Rung& back = rungs_.back();
  for (const Entry& e : entries) place_in_rung(back, e);
  entries.clear();
  return true;
}

void EventQueue::sort_into_bottom(std::vector<Entry> entries,
                                  SimTime new_threshold) {
  assert(bottom_empty());
  std::sort(entries.begin(), entries.end(), earlier);
  bottom_ = std::move(entries);
  bottom_head_ = 0;
  // max(): a stale higher threshold is still safe — every live event outside
  // bottom is at or beyond it — and routes more arrivals onto the sorted
  // fast path.
  bottom_threshold_ = std::max(bottom_threshold_, new_threshold);
}

}  // namespace paraio::sim
