#include "sim/random.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace paraio::sim {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // All-zero state is the one forbidden state for xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but keep the guard explicit.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 1;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = hi - lo + 1;  // wraps to 0 for the full range
  if (range == 0) return next_u64();
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = range * (~std::uint64_t{0} / range);
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + v % range;
}

double Rng::exponential(double mean) {
  assert(mean > 0.0);
  // 1 - uniform01() is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - uniform01());
}

double Rng::normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  const double u1 = 1.0 - uniform01();  // (0, 1]
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

bool Rng::bernoulli(double p) { return uniform01() < p; }

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the current state with the stream id through SplitMix64 so sibling
  // streams are decorrelated regardless of how many draws the parent made.
  std::uint64_t s = state_[0] ^ (stream * 0xd1342543de82ef95ULL + 0x632be59bd9b4e019ULL);
  return Rng(splitmix64(s));
}

}  // namespace paraio::sim
