// Fork/join helper for groups of concurrent simulation tasks.
//
// A TaskGroup spawns detached tasks on the engine and lets a coordinating
// task await completion of the whole group — the fork/join pattern every
// application skeleton in src/apps uses for its per-node processes.
// The group must outlive its children (keep it on the coordinating
// coroutine's frame or in the experiment driver).
#pragma once

#include <coroutine>
#include <cstddef>
#include <deque>
#include <utility>

#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace paraio::sim {

class TaskGroup {
 public:
  explicit TaskGroup(Engine& engine) : engine_(engine) {}
  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Starts `task` as a detached process counted by this group.
  void spawn(Task<> task) {
    ++active_;
    engine_.spawn(wrap(std::move(task)));
  }

  [[nodiscard]] std::size_t active() const noexcept { return active_; }

  /// Awaitable join: suspends until every spawned task has finished.  Ready
  /// immediately when the group is empty.  The group is reusable after a
  /// join completes.
  [[nodiscard]] auto join() {
    struct Awaiter {
      TaskGroup& group;
      bool await_ready() const noexcept { return group.active_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        group.joiners_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Task<> wrap(Task<> task) {
    co_await std::move(task);
    --active_;
    if (active_ == 0) {
      for (auto h : joiners_) {
        engine_.call_in(0.0, [h] { h.resume(); });
      }
      joiners_.clear();
    }
  }

  Engine& engine_;
  std::size_t active_ = 0;
  std::deque<std::coroutine_handle<>> joiners_;
};

}  // namespace paraio::sim
