// Simulated-time race detector.
//
// A discrete-event simulation cannot have data races in the threading sense
// (the kernel is single-threaded), but it has a logical analogue: two tasks
// touching the same shared state at the *same simulated instant*, where at
// least one touch is a write and nothing orders the pair except the event
// queue's insertion-sequence tie-break.  Such code produces one stable trace
// today — and a different, equally valid trace after any refactor that
// changes spawn or scheduling order.  That is exactly the class of bug that
// breaks the golden-trace guarantee, so it deserves a detector, not a
// post-mortem.
//
// The detector piggybacks on sim::EngineObserver (chaining to any observer
// already attached, e.g. the testkit's InvariantChecker) to learn the kernel
// event sequence, and learns about shared state through annotations:
//
//   sim::RaceDetector det(engine);             // attaches, chains, detaches
//   auto a = det.register_task("writer-a");
//   ...
//   det.write(a, "counter");                   // inside task a, at now()
//   det.release(a, &mutex);                    // happens-before edges
//   det.acquire(b, &mutex);
//   ...
//   engine.run();
//   det.finish();
//   EXPECT_TRUE(det.ok()) << det.report();
//
// Accesses carry per-task vector clocks; acquire/release/fork edges merge
// them, so a same-instant pair is only reported when it is genuinely
// unordered (the FIFO handoff of a sim::Mutex, for example, clears it).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace paraio::sim {

class RaceDetector : public EngineObserver {
 public:
  using TaskId = std::uint32_t;
  enum class AccessKind : std::uint8_t { kRead, kWrite };

  /// Vector clock: task id -> last known tick of that task.
  using Clock = std::map<TaskId, std::uint64_t>;

  struct Access {
    SimTime time = 0.0;
    std::uint64_t seq = 0;  // kernel events executed when recorded
    TaskId task = 0;
    AccessKind kind = AccessKind::kRead;
    std::string site;
    Clock clock;
  };

  struct Race {
    std::string site;
    SimTime time = 0.0;
    Access first;   // in kernel order (the current tie-break winner)
    Access second;
  };

  /// Attaches to `engine`, chaining to (and later restoring) any observer
  /// already installed.  Attach the detector last so find() can see it.
  explicit RaceDetector(Engine& engine);
  ~RaceDetector() override;
  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  /// The detector attached to `engine` (anywhere in the observer chain), or
  /// nullptr.  Used by annotation sites in production code (e.g. the PFS
  /// shared-pointer path), which must stay zero-cost when no detector is
  /// watching.
  static RaceDetector* find(Engine& engine);

  // --- sim::EngineObserver (forwarded to the chained observer) ---
  [[nodiscard]] EngineObserver* chained() const override { return chained_; }
  void on_schedule(SimTime now, SimTime when) override;
  void on_event(SimTime when) override;
  void on_run_complete(SimTime now, std::size_t pending_events,
                       std::size_t live_tasks) override;

  // --- annotation API ---
  /// Registers a logical task (a coroutine process, a per-node client, ...).
  TaskId register_task(std::string name);
  /// Memoized external task identity, for annotations in production code
  /// that only have a stable key (e.g. a NodeId) in hand.
  TaskId task_for_key(std::uint64_t key, const char* label);

  void read(TaskId task, std::string site);
  void write(TaskId task, std::string site);

  /// Happens-before edges through a synchronization object (any stable
  /// address: a sim::Mutex, Event, TurnGate...).  release() publishes the
  /// task's clock into the token; acquire() merges the token's clock in.
  void release(TaskId task, const void* token);
  void acquire(TaskId task, const void* token);
  /// Parent-to-child edge at spawn time.
  void fork(TaskId parent, TaskId child);

  /// Runs the analysis over every recorded access.  Idempotent.
  void finish();

  [[nodiscard]] bool ok() const { return races_.empty(); }
  [[nodiscard]] const std::vector<Race>& races() const { return races_; }
  [[nodiscard]] std::size_t access_count() const { return accesses_.size(); }
  [[nodiscard]] const std::string& task_name(TaskId task) const {
    return task_names_[task];
  }
  /// Human-readable summary of every race ("ok" when clean).
  [[nodiscard]] std::string report() const;

 private:
  void record(TaskId task, AccessKind kind, std::string site);
  void tick(TaskId task) { ++clocks_[task][task]; }
  static void merge(Clock* into, const Clock& from);
  /// Neither access's clock dominates the other's entry for its own task.
  static bool concurrent(const Access& a, const Access& b);

  Engine& engine_;
  EngineObserver* chained_ = nullptr;
  std::uint64_t events_seen_ = 0;

  std::vector<std::string> task_names_;
  std::vector<Clock> clocks_;
  std::map<std::uint64_t, TaskId> external_tasks_;
  std::map<const void*, Clock> token_clocks_;  // paraio-lint: allow(ptr-key-order)
  std::vector<Access> accesses_;
  std::vector<Race> races_;
  bool finished_ = false;
};

}  // namespace paraio::sim
