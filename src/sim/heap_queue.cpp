#include "sim/heap_queue.hpp"

#include <cassert>

namespace paraio::sim {

namespace {

/// SplitMix64 finalizer — must match EventQueue's key derivation exactly,
/// since the differential harness compares seeded pop orders.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

void HeapEventQueue::set_tie_break_seed(std::uint64_t seed) {
  assert(empty() && "tie-break seed must be set while the queue is empty");
  tie_seed_ = seed;
}

std::uint64_t HeapEventQueue::schedule(SimTime when, Action action) {
  const std::uint64_t seq = next_seq_++;
  const std::uint64_t key = tie_seed_ == 0 ? seq : mix64(seq ^ tie_seed_);
  heap_.push(Entry{when, seq, key});
  pending_.emplace(seq, std::move(action));
  ++live_;
  return seq;
}

bool HeapEventQueue::cancel(std::uint64_t seq) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  --live_;
  drop_dead_top();
  return true;
}

void HeapEventQueue::drop_dead_top() {
  while (!heap_.empty() && !pending_.contains(heap_.top().seq)) {
    heap_.pop();
  }
}

SimTime HeapEventQueue::next_time() const {
  assert(live_ > 0 && "next_time() on empty queue");
  assert(!heap_.empty() && pending_.contains(heap_.top().seq));
  return heap_.top().when;
}

std::pair<SimTime, HeapEventQueue::Action> HeapEventQueue::pop() {
  assert(live_ > 0 && "pop() on empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  const auto it = pending_.find(top.seq);
  assert(it != pending_.end() && "heap top must be live");
  Action action = std::move(it->second);
  pending_.erase(it);
  --live_;
  drop_dead_top();
  return {top.when, std::move(action)};
}

}  // namespace paraio::sim
