#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace paraio::sim {

void Engine::note_task_finished(void* engine) noexcept {
  ++static_cast<Engine*>(engine)->finished_unreaped_;
}

void Engine::spawn(Task<> task) {
  assert(task.valid());
  detached_.push_back(std::move(task));
  Task<>& t = detached_.back();
  t.set_on_complete(&Engine::note_task_finished, this);
  t.start();
  if (finished_unreaped_ >= kReapBatch) reap_finished();
}

void Engine::spawn_daemon(Task<> task) {
  assert(task.valid());
  daemons_.push_back(std::move(task));
  Task<>& t = daemons_.back();
  t.set_on_complete(&Engine::note_task_finished, this);
  t.start();
  if (finished_unreaped_ >= kReapBatch) reap_finished();
}

void Engine::reap_finished() {
  finished_unreaped_ = 0;
  for (auto* list : {&detached_, &daemons_}) {
    for (auto it = list->begin(); it != list->end();) {
      if (it->done()) {
        it->result();  // rethrows if the detached task failed
        it = list->erase(it);
      } else {
        ++it;
      }
    }
  }
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [when, action] = queue_.pop();
  assert(when >= now_ && "event scheduled in the past");
  now_ = when;
  ++executed_;
  if (observer_) observer_->on_event(when);
  action();
  // Reaping scans the task lists, so amortize it: only once enough tasks
  // have finished (their completion hooks count for us).  Failures surface
  // by the end of run() at the latest.
  if (finished_unreaped_ >= kReapBatch) reap_finished();
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  reap_finished();
  if (observer_) {
    observer_->on_run_complete(now_, queue_.size(), live_tasks());
  }
  return now_;
}

SimTime Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  reap_finished();
  if (now_ < deadline && !queue_.empty()) {
    now_ = deadline;
  } else if (queue_.empty() && now_ < deadline) {
    // Queue drained before the deadline; time stops at the last event.
  }
  return now_;
}

}  // namespace paraio::sim
