#include "sim/engine.hpp"

#include <cassert>
#include <stdexcept>

namespace paraio::sim {

void Engine::spawn(Task<> task) {
  assert(task.valid());
  detached_.push_back(std::move(task));
  detached_.back().start();
  reap_finished();
}

void Engine::reap_finished() {
  for (auto it = detached_.begin(); it != detached_.end();) {
    if (it->done()) {
      it->result();  // rethrows if the detached task failed
      it = detached_.erase(it);
    } else {
      ++it;
    }
  }
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto [when, action] = queue_.pop();
  assert(when >= now_ && "event scheduled in the past");
  now_ = when;
  ++executed_;
  action();
  // Reaping scans the detached list, so amortize it: failures surface by
  // the end of run() at the latest.
  if ((executed_ & 0xFF) == 0) reap_finished();
  return true;
}

SimTime Engine::run() {
  while (step()) {
  }
  reap_finished();
  return now_;
}

SimTime Engine::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline && !queue_.empty()) {
    now_ = deadline;
  } else if (queue_.empty() && now_ < deadline) {
    // Queue drained before the deadline; time stops at the last event.
  }
  return now_;
}

}  // namespace paraio::sim
