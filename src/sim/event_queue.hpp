// Deterministic pending-event set for the discrete-event kernel.
//
// Events are (time, key, action) entries ordered by time, with a per-event
// key breaking same-instant ties: under the default FIFO order the key IS
// the insertion sequence number, and under a tie-break seed it is a seeded
// bijection of it (keys are therefore always distinct, so (time, key) is a
// strict total order).  Two events scheduled for the same instant fire in
// key order.  That property is load-bearing: every table in the benchmark
// suite is expected to be bit-for-bit reproducible across runs.
//
// Structure: a ladder queue (Tang & Goh's design family) instead of a binary
// heap, for O(1) amortized schedule/pop instead of O(log n):
//
//   bottom   sorted vector (ascending, consumed through a head index)
//            holding the next events to fire; pop() is an index increment,
//            and the common arrival — a same-instant or near-future event
//            with the newest key — is an O(1) append at the back.
//   rungs    a stack of bucket arrays, each subdividing a time window of the
//            rung above it; draining a bucket either sorts it into bottom or,
//            if it is crowded, spawns a finer child rung.
//   top      unsorted catch-all for far-future events, bulk-converted into a
//            rung (or directly into bottom when small) when reached.
//
// Bucket placement uses exact boundary arithmetic (the same floating-point
// expression for routing, placement, and drain thresholds) so same-instant
// events can never be split across structures or mis-ordered relative to the
// reference heap — tests/sim/event_queue_diff_test.cpp runs this queue in
// lockstep against sim::HeapEventQueue to prove it.
//
// Cancellation is O(1): an EventId names a slot in the action pool plus the
// slot's generation; cancel bumps the generation, which tombstones the entry
// still sitting in the ladder (skipped when it surfaces).  The action is
// destroyed eagerly so captured resources are released at cancel time.
//
// The queue maintains the invariant that whenever live events exist, the
// earliest one is at bottom's head — which is what lets next_time() be a
// genuinely const, branch-free read (the old heap needed a `mutable` member
// and lazy cleanup inside const methods).
//
// Not thread-safe by design: the kernel is single-threaded and determinism
// is the whole point.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace paraio::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
struct EventId {
  std::uint64_t seq = 0;   ///< global schedule order (diagnostics)
  std::uint64_t gen = 0;   ///< slot generation at schedule time
  std::uint32_t slot = 0;  ///< index into the queue's action pool
  friend bool operator==(EventId, EventId) = default;
};

class EventQueue {
 public:
  using Action = sim::Action;

  /// Seeds the schedule-perturbation mode: with a non-zero seed, events at
  /// the *same* instant are ordered by a seeded permutation of their
  /// insertion sequence instead of FIFO.  Causality is preserved (an event
  /// can never run before it is scheduled, and time order is untouched), so
  /// every seed yields a valid schedule — code whose results depend on the
  /// seed is relying on the FIFO tie-break, exactly what the testkit's
  /// perturbation checker hunts for.  Seed 0 restores plain FIFO.  Must be
  /// set while the queue is empty; keys are stamped at schedule time.
  void set_tie_break_seed(std::uint64_t seed);
  [[nodiscard]] std::uint64_t tie_break_seed() const noexcept {
    return tie_seed_;
  }

  /// Schedules `action` at absolute time `when`.  `when` may equal the
  /// current time (the event fires after all earlier-scheduled events at the
  /// same instant).
  EventId schedule(SimTime when, Action action);

  /// Cancels a previously scheduled event.  Returns true if the event was
  /// still pending.  O(1): the ladder entry is tombstoned via its generation
  /// and skipped when it surfaces, but the action (and anything it captures)
  /// is released eagerly.
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  std::pair<SimTime, Action> pop();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t key;   // == seq under FIFO; permuted under a tie-break seed
    std::uint64_t gen;   // matches the slot's generation while live
    std::uint32_t slot;
  };

  struct Slot {
    Action action;
    std::uint64_t gen = 1;  // bumped on pop/cancel; 64-bit so it never wraps
    std::uint32_t next_free = kNoSlot;
  };

  /// One ladder rung: `buckets.size()` equal-width buckets starting at
  /// `start`.  `route_end` is the exclusive upper routing bound — every
  /// entry stored in (or newly routed to) this rung has when < route_end,
  /// and every live entry in outer structures has when >= route_end.
  struct Rung {
    SimTime start;
    SimTime width;
    SimTime route_end;
    std::size_t cur = 0;  // next bucket to drain
    std::vector<std::vector<Entry>> buckets;

    /// The exact boundary expression.  Placement, routing, and the bottom
    /// threshold all evaluate this same formula so floating-point rounding
    /// is bit-identical everywhere.
    [[nodiscard]] SimTime boundary(std::size_t i) const {
      return start + static_cast<SimTime>(i) * width;
    }
  };

  [[nodiscard]] bool is_live(const Entry& e) const noexcept {
    return slots_[e.slot].gen == e.gen;
  }

  /// Ascending (when, key) order: the sort order of bottom_, so the
  /// earliest event is at the head.  Keys are distinct, so this is strict.
  static bool earlier(const Entry& a, const Entry& b) noexcept;
  static bool all_same_when(const std::vector<Entry>& entries) noexcept;

  [[nodiscard]] bool bottom_empty() const noexcept {
    return bottom_head_ == bottom_.size();
  }

  std::uint32_t acquire_slot(Action action);
  void release_slot(std::uint32_t slot) noexcept;

  void route(const Entry& e);
  void insert_bottom(const Entry& e);
  void place_in_rung(Rung& r, const Entry& e);
  void maybe_spill_bottom();

  /// Restores the invariant "live_ > 0 implies bottom_'s head is live",
  /// pulling from rungs/top as needed.
  void refill();
  void purge_bottom() noexcept;
  void refill_from_rung();
  void refill_from_top();

  /// Builds a rung over [start, route_end) and distributes `entries` into
  /// it (consuming them).  Returns false — leaving `entries` untouched —
  /// when the window is degenerate (zero/absorbed width), in which case the
  /// caller must fall back to sorting the entries directly.
  bool build_rung(std::vector<Entry>& entries, SimTime start,
                  SimTime route_end);

  /// Sorts `entries` (ascending) and makes them the new bottom.
  void sort_into_bottom(std::vector<Entry> entries, SimTime new_threshold);

  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;
  static constexpr std::size_t kDirectSortLimit = 64;   // top -> bottom as-is
  static constexpr std::size_t kSpawnThreshold = 48;    // bucket -> child rung
  static constexpr std::size_t kMaxBuckets = 4096;
  static constexpr std::size_t kMaxRungs = 8;
  static constexpr std::size_t kBottomSpillLimit = 256; // sorted-insert bound
  static constexpr std::size_t kBottomKeep = 64;

  std::vector<Entry> bottom_;  // sorted ascending by (when, key)
  std::size_t bottom_head_ = 0;  // entries before this index already popped
  /// Events with when < bottom_threshold_ are sorted into bottom_ on
  /// arrival; everything at or above it belongs to the rungs/top.
  SimTime bottom_threshold_ = -kTimeInfinity;
  std::vector<Rung> rungs_;    // [0] outermost; back() is drained first
  std::vector<Entry> top_;     // unsorted far-future events
  SimTime top_min_ = kTimeInfinity;
  SimTime top_max_ = -kTimeInfinity;

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::uint64_t tie_seed_ = 0;
};

}  // namespace paraio::sim
