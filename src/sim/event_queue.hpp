// Deterministic pending-event set for the discrete-event kernel.
//
// Events are (time, sequence, action) triples ordered by time with the
// insertion sequence number as a tie-break, so two events scheduled for the
// same instant always fire in the order they were scheduled.  That property
// is load-bearing: every table in the benchmark suite is expected to be
// bit-for-bit reproducible across runs.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>

#include "sim/time.hpp"

namespace paraio::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(EventId, EventId) = default;
};

/// Min-heap of scheduled actions.  Not thread-safe by design: the kernel is
/// single-threaded and determinism is the whole point.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Seeds the schedule-perturbation mode: with a non-zero seed, events at
  /// the *same* instant are ordered by a seeded permutation of their
  /// insertion sequence instead of FIFO.  Causality is preserved (an event
  /// can never run before it is scheduled, and time order is untouched), so
  /// every seed yields a valid schedule — code whose results depend on the
  /// seed is relying on the FIFO tie-break, exactly what the testkit's
  /// perturbation checker hunts for.  Seed 0 restores plain FIFO.  Must be
  /// set while the queue is empty; keys are stamped at schedule time.
  void set_tie_break_seed(std::uint64_t seed);
  [[nodiscard]] std::uint64_t tie_break_seed() const noexcept {
    return tie_seed_;
  }

  /// Schedules `action` at absolute time `when`.  `when` may equal the
  /// current time (the event fires after all earlier-scheduled events at the
  /// same instant).
  EventId schedule(SimTime when, Action action);

  /// Cancels a previously scheduled event.  Returns true if the event was
  /// still pending.  Cancellation is lazy: the heap entry is skipped when it
  /// reaches the top, which keeps schedule/cancel O(log n), but the action
  /// (and anything it captures) is released eagerly.
  bool cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const { return live_ == 0; }

  /// Number of live events.
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  std::pair<SimTime, Action> pop();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t key;  // == seq under FIFO; permuted under a tie-break seed
    // std::priority_queue is a max-heap, so invert the comparison.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      if (key != other.key) return key > other.key;
      return seq > other.seq;
    }
  };

  /// Pops cancelled entries off the top of the heap.
  void drop_dead_top() const;

  mutable std::priority_queue<Entry> heap_;
  std::unordered_map<std::uint64_t, Action> pending_;  // seq -> action
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::uint64_t tie_seed_ = 0;
};

}  // namespace paraio::sim
