// Discrete-event simulation engine.
//
// The engine owns simulated time and the pending-event set, and acts as the
// scheduler for coroutine processes (sim::Task).  It is strictly
// single-threaded; determinism comes from the EventQueue's FIFO tie-break.
#pragma once

#include <cstdint>
#include <list>
#include <utility>

#include "sim/event_queue.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace paraio::sim {

/// Observation points on the simulation kernel, intended for debug and test
/// builds (the testkit's invariant checker implements this).  Hooks cost one
/// pointer test per event when no observer is attached; production code
/// simply never attaches one.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  /// Next observer in an attach chain.  Detectors that wrap a previously
  /// attached observer (RaceDetector, DeadlockDetector) override this so
  /// their find() helpers can locate any detector anywhere in the chain,
  /// not just the outermost one.
  [[nodiscard]] virtual EngineObserver* chained() const { return nullptr; }
  /// An event was scheduled for absolute time `when` while now() == `now`.
  virtual void on_schedule(SimTime now, SimTime when) {
    (void)now;
    (void)when;
  }
  /// An event is about to execute; now() has been advanced to `when`.
  virtual void on_event(SimTime when) { (void)when; }
  /// run() finished.  A drained simulation has pending_events == 0 and
  /// live_tasks == 0; anything else means a process is blocked forever.
  virtual void on_run_complete(SimTime now, std::size_t pending_events,
                               std::size_t live_tasks) {
    (void)now;
    (void)pending_events;
    (void)live_tasks;
  }
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current simulated time in seconds.
  [[nodiscard]] SimTime now() const noexcept { return now_; }

  /// Schedules `action` after `delay` seconds of simulated time.
  EventId call_in(SimDuration delay, EventQueue::Action action) {
    if (observer_) observer_->on_schedule(now_, now_ + delay);
    return queue_.schedule(now_ + delay, std::move(action));
  }

  /// Schedules `action` at absolute simulated time `when` (>= now()).
  EventId call_at(SimTime when, EventQueue::Action action) {
    if (observer_) observer_->on_schedule(now_, when);
    return queue_.schedule(when, std::move(action));
  }

  /// Cancels a pending callback.  Returns true if it had not yet fired.
  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Starts a detached top-level process.  The engine keeps the task alive
  /// until it finishes; if the task ends with an uncaught exception the next
  /// run()/step() call rethrows it.
  void spawn(Task<> task);

  /// Starts a persistent service loop (e.g. a server draining a request
  /// channel forever).  Daemons get the same lifetime and error handling as
  /// spawn()ed tasks but are excluded from live_tasks(): being blocked when
  /// the event queue drains is their normal end state, not a deadlock.
  void spawn_daemon(Task<> task);

  /// Runs until no events remain.  Returns the final simulated time.
  SimTime run();

  /// Runs events with time <= `deadline`; then sets now() to `deadline` if
  /// the simulation ran that far, or leaves it at the last event time if the
  /// queue drained first.  Returns now().
  SimTime run_until(SimTime deadline);

  /// Executes exactly one event if any is pending.  Returns false when the
  /// queue is empty.
  bool step();

  /// Number of pending events.
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  /// Total events executed so far (for microbenchmarks and sanity checks).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }

  /// Number of detached non-daemon tasks that have not yet completed.  A
  /// non-zero value after run() returns means some process is blocked on an
  /// event that will never fire — the queue-drain invariant the testkit
  /// checks.  Daemons (spawn_daemon) are expected to outlive the queue and
  /// are not counted.
  [[nodiscard]] std::size_t live_tasks() const {
    std::size_t n = 0;
    for (const auto& task : detached_) {
      if (!task.done()) ++n;
    }
    return n;
  }

  /// Attaches (or, with nullptr, detaches) the kernel observer.
  void set_observer(EngineObserver* observer) { observer_ = observer; }
  [[nodiscard]] EngineObserver* observer() const noexcept { return observer_; }

  /// Seeds the same-instant tie-break permutation (see
  /// EventQueue::set_tie_break_seed).  Call before any event is scheduled;
  /// seed 0 is the default FIFO order the golden traces are recorded under.
  void set_tie_break_seed(std::uint64_t seed) {
    queue_.set_tie_break_seed(seed);
  }
  [[nodiscard]] std::uint64_t tie_break_seed() const noexcept {
    return queue_.tie_break_seed();
  }

  /// Awaitable that suspends the current task for `delay` simulated seconds.
  /// Usage: `co_await engine.delay(sim::milliseconds(17));`
  [[nodiscard]] auto delay(SimDuration d) {
    struct Awaiter {
      Engine& engine;
      SimDuration dur;
      // Always suspends, even for a zero duration: delay(0) is a
      // deterministic yield point, not a no-op.
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        engine.call_in(dur, [h] { h.resume(); });
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable that reschedules the current task at the same instant, after
  /// all events already queued for that instant.  Useful to break ties or
  /// yield to peers deterministically.
  [[nodiscard]] auto yield() { return delay(0.0); }

 private:
  void reap_finished();
  /// Completion hook installed on every spawned task (see Task's
  /// set_on_complete): counts finished-but-unreaped tasks so reaping can be
  /// batched instead of scanning the task lists every spawn/step.
  static void note_task_finished(void* engine) noexcept;

  static constexpr std::size_t kReapBatch = 32;

  SimTime now_ = 0.0;
  EventQueue queue_;
  std::list<Task<>> detached_;
  std::list<Task<>> daemons_;
  std::uint64_t executed_ = 0;
  std::size_t finished_unreaped_ = 0;
  EngineObserver* observer_ = nullptr;
};

}  // namespace paraio::sim
