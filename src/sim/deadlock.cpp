#include "sim/deadlock.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

namespace paraio::sim {

DeadlockDetector::DeadlockDetector(Engine& engine)
    : engine_(engine), chained_(engine.observer()) {
  engine_.set_observer(this);
}

DeadlockDetector::~DeadlockDetector() {
  if (engine_.observer() == this) engine_.set_observer(chained_);
}

DeadlockDetector* DeadlockDetector::find(Engine& engine) {
  for (EngineObserver* o = engine.observer(); o != nullptr; o = o->chained()) {
    if (auto* det = dynamic_cast<DeadlockDetector*>(o)) return det;
  }
  return nullptr;
}

void DeadlockDetector::on_schedule(SimTime now, SimTime when) {
  if (chained_) chained_->on_schedule(now, when);
}

void DeadlockDetector::on_event(SimTime when) {
  if (chained_) chained_->on_event(when);
}

void DeadlockDetector::on_run_complete(SimTime now, std::size_t pending_events,
                                       std::size_t live_tasks) {
  if (!waits_.empty()) finish();
  if (chained_) chained_->on_run_complete(now, pending_events, live_tasks);
}

DeadlockDetector::TaskId DeadlockDetector::register_task(std::string name) {
  const TaskId id = static_cast<TaskId>(task_names_.size());
  task_names_.push_back(std::move(name));
  held_.emplace_back();
  return id;
}

DeadlockDetector::TaskId DeadlockDetector::task_for_key(std::uint64_t key,
                                                        const char* label) {
  auto it = external_tasks_.find(key);
  if (it != external_tasks_.end()) return it->second;
  const TaskId id =
      register_task(std::string(label) + "#" + std::to_string(key));
  external_tasks_.emplace(key, id);
  return id;
}

void DeadlockDetector::set_daemon(TaskId task) { daemons_.insert(task); }

DeadlockDetector::ResId DeadlockDetector::resource(const void* token,
                                                   std::string_view label) {
  auto it = resource_ids_.find(token);
  if (it != resource_ids_.end()) {
    if (resources_[it->second].label.empty() && !label.empty()) {
      resources_[it->second].label = std::string(label);
    }
    return it->second;
  }
  const ResId id = static_cast<ResId>(resources_.size());
  Resource r;
  r.token = token;
  r.label = std::string(label);
  resources_.push_back(std::move(r));
  resource_ids_.emplace(token, id);
  return id;
}

void DeadlockDetector::add_wait(TaskId task, ResId res, WaitKind kind) {
  waits_.push_back(Wait{task, res, kind});
}

void DeadlockDetector::drop_wait(TaskId task, ResId res, WaitKind kind) {
  auto it = std::find_if(waits_.begin(), waits_.end(), [&](const Wait& w) {
    return w.task == task && w.res == res && w.kind == kind;
  });
  if (it != waits_.end()) waits_.erase(it);
}

void DeadlockDetector::lock_wait(TaskId task, const void* lock,
                                 std::string_view label) {
  add_wait(task, resource(lock, label), WaitKind::kLock);
}

void DeadlockDetector::lock_acquired(TaskId task, const void* lock,
                                     std::string_view label) {
  const ResId id = resource(lock, label);
  drop_wait(task, id, WaitKind::kLock);
  // Lockdep edge: everything currently held by this task now orders before
  // the new acquisition.
  for (ResId h : held_[task]) {
    if (h != id) record_order_edge(task, h, id);
  }
  resources_[id].holders.push_back(task);
  held_[task].push_back(id);
}

void DeadlockDetector::lock_released(TaskId task, const void* lock) {
  auto it = resource_ids_.find(lock);
  if (it == resource_ids_.end()) return;
  const ResId id = it->second;
  auto& holders = resources_[id].holders;
  auto h = std::find(holders.begin(), holders.end(), task);
  if (h != holders.end()) holders.erase(h);
  auto& held = held_[task];
  auto p = std::find(held.rbegin(), held.rend(), id);
  if (p != held.rend()) held.erase(std::next(p).base());
}

void DeadlockDetector::cond_wait(TaskId task, const void* cond,
                                 std::string_view label) {
  add_wait(task, resource(cond, label), WaitKind::kCond);
}

void DeadlockDetector::cond_woken(TaskId task, const void* cond) {
  auto it = resource_ids_.find(cond);
  if (it != resource_ids_.end()) drop_wait(task, it->second, WaitKind::kCond);
}

void DeadlockDetector::cond_provider(TaskId task, const void* cond,
                                     std::string_view label) {
  resources_[resource(cond, label)].providers.insert(task);
}

void DeadlockDetector::channel_sender(TaskId task, const void* channel,
                                      std::string_view label) {
  resources_[resource(channel, label)].senders.insert(task);
}

void DeadlockDetector::channel_receiver(TaskId task, const void* channel,
                                        std::string_view label) {
  resources_[resource(channel, label)].receivers.insert(task);
}

void DeadlockDetector::send_wait(TaskId task, const void* channel,
                                 std::string_view label) {
  const ResId id = resource(channel, label);
  resources_[id].senders.insert(task);
  add_wait(task, id, WaitKind::kSend);
}

void DeadlockDetector::send_done(TaskId task, const void* channel) {
  auto it = resource_ids_.find(channel);
  if (it != resource_ids_.end()) drop_wait(task, it->second, WaitKind::kSend);
}

void DeadlockDetector::recv_wait(TaskId task, const void* channel,
                                 std::string_view label) {
  const ResId id = resource(channel, label);
  resources_[id].receivers.insert(task);
  add_wait(task, id, WaitKind::kRecv);
}

void DeadlockDetector::recv_done(TaskId task, const void* channel) {
  auto it = resource_ids_.find(channel);
  if (it != resource_ids_.end()) drop_wait(task, it->second, WaitKind::kRecv);
}

void DeadlockDetector::join_wait(TaskId waiter, TaskId target) {
  // Joins are waits on a per-task pseudo-resource whose only provider is the
  // target task.  The token is derived from the target id, not a heap
  // address, so it stays stable across runs.
  const void* token =
      reinterpret_cast<const void*>(static_cast<std::uintptr_t>(target) |
                                    (std::uintptr_t{1} << 63));
  const ResId id = resource(token, "join:" + task_names_[target]);
  resources_[id].providers.insert(target);
  add_wait(waiter, id, WaitKind::kJoin);
}

void DeadlockDetector::join_done(TaskId waiter, TaskId target) {
  const void* token =
      reinterpret_cast<const void*>(static_cast<std::uintptr_t>(target) |
                                    (std::uintptr_t{1} << 63));
  auto it = resource_ids_.find(token);
  if (it != resource_ids_.end()) drop_wait(waiter, it->second, WaitKind::kJoin);
}

void DeadlockDetector::task_done(TaskId task) {
  // A finished task satisfies pending joins on it and is no longer a live
  // provider for anything else.
  waits_.erase(std::remove_if(waits_.begin(), waits_.end(),
                              [&](const Wait& w) { return w.task == task; }),
               waits_.end());
  for (Resource& r : resources_) {
    r.senders.erase(task);
    r.receivers.erase(task);
    auto h = std::find(r.holders.begin(), r.holders.end(), task);
    if (h != r.holders.end()) r.holders.erase(h);
  }
  held_[task].clear();
  daemons_.insert(task);  // whatever it was waiting on no longer strands it
}

std::vector<DeadlockDetector::TaskId> DeadlockDetector::providers_of(
    const Wait& wait) const {
  const Resource& r = resources_[wait.res];
  std::vector<TaskId> out;
  auto add_all = [&](const std::set<TaskId>& s) {
    for (TaskId t : s) {
      if (t != wait.task) out.push_back(t);
    }
  };
  switch (wait.kind) {
    case WaitKind::kLock:
      for (TaskId t : r.holders) {
        if (t != wait.task) out.push_back(t);
      }
      break;
    case WaitKind::kCond:
    case WaitKind::kJoin:
      add_all(r.providers);
      break;
    case WaitKind::kSend:
      // Progress requires someone to drain the channel.
      add_all(r.receivers);
      break;
    case WaitKind::kRecv:
      add_all(r.senders);
      break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void DeadlockDetector::record_order_edge(TaskId task, ResId from, ResId to) {
  const auto key = std::make_pair(from, to);
  if (!order_edges_.emplace(key, task).second) return;
  // New edge from -> to: a pre-existing path to -> ... -> from is an
  // inversion.  BFS over the order graph.
  std::vector<ResId> frontier{to};
  std::set<ResId> seen{to};
  while (!frontier.empty()) {
    const ResId cur = frontier.back();
    frontier.pop_back();
    if (cur == from) {
      if (reported_inversions_.emplace(std::minmax(from, to)).second) {
        inversions_.push_back(OrderInversion{resources_[from].label,
                                             resources_[to].label,
                                             task_names_[task]});
      }
      return;
    }
    for (const auto& [edge, who] : order_edges_) {
      (void)who;
      if (edge.first == cur && seen.insert(edge.second).second) {
        frontier.push_back(edge.second);
      }
    }
  }
}

std::vector<std::string> DeadlockDetector::held_labels(TaskId task) const {
  std::vector<std::string> out;
  out.reserve(held_[task].size());
  for (ResId id : held_[task]) out.push_back(resources_[id].label);
  return out;
}

void DeadlockDetector::finish() {
  cycles_.clear();
  stranded_.clear();

  // Build the waits-for graph over blocked tasks: one edge per (wait,
  // provider) pair.  A task can have several outstanding annotated waits
  // only through bugs in annotation ordering; the analysis tolerates it.
  struct Edge {
    const Wait* wait;
    TaskId provider;
  };
  std::map<TaskId, std::vector<Edge>> graph;
  std::set<TaskId> blocked;
  for (const Wait& w : waits_) {
    blocked.insert(w.task);
    for (TaskId p : providers_of(w)) {
      graph[w.task].push_back(Edge{&w, p});
    }
  }

  // Cycle enumeration: DFS from each blocked task over edges whose provider
  // is itself blocked (an unblocked provider can still run, so no deadlock
  // through it).  Each cycle is canonicalized by its smallest task id so the
  // same loop is reported once.
  std::set<std::vector<TaskId>> seen_cycles;
  std::vector<TaskId> stack;
  std::vector<const Wait*> stack_waits;
  std::set<TaskId> on_stack;
  std::set<TaskId> in_any_cycle;

  auto emit_cycle = [&](std::size_t start) {
    std::vector<TaskId> tasks(stack.begin() + static_cast<std::ptrdiff_t>(start),
                              stack.end());
    // Canonical form: rotate so the smallest id leads.
    std::vector<TaskId> canon = tasks;
    const auto mn = std::min_element(canon.begin(), canon.end());
    std::rotate(canon.begin(), mn, canon.end());
    if (!seen_cycles.insert(canon).second) return;
    Cycle cycle;
    for (std::size_t i = start; i < stack.size(); ++i) {
      const std::size_t next = i + 1 < stack.size() ? i + 1 : start;
      CycleEdge e;
      e.waiter = stack[i];
      e.provider = stack[next];
      e.resource = resources_[stack_waits[i]->res].label;
      e.kind = stack_waits[i]->kind;
      e.held = held_labels(stack[i]);
      cycle.edges.push_back(std::move(e));
      in_any_cycle.insert(stack[i]);
    }
    cycles_.push_back(std::move(cycle));
  };

  // Self-deadlock: a wait whose only satisfiers include the waiter itself —
  // providers_of excludes the waiter, so detect it directly: the resource
  // has the waiter registered on the satisfying side and nobody else
  // blocked-free to help.
  for (const Wait& w : waits_) {
    const Resource& r = resources_[w.res];
    const bool self_send = w.kind == WaitKind::kSend &&
                           r.receivers.count(w.task) > 0 &&
                           providers_of(w).empty();
    const bool self_recv = w.kind == WaitKind::kRecv &&
                           r.senders.count(w.task) > 0 &&
                           providers_of(w).empty();
    if (self_send || self_recv) {
      std::vector<TaskId> canon{w.task};
      if (!seen_cycles.insert(canon).second) continue;
      Cycle cycle;
      CycleEdge e;
      e.waiter = w.task;
      e.provider = w.task;
      e.resource = r.label;
      e.kind = w.kind;
      e.held = held_labels(w.task);
      cycle.edges.push_back(std::move(e));
      in_any_cycle.insert(w.task);
      cycles_.push_back(std::move(cycle));
    }
  }

  std::function<void(TaskId)> dfs = [&](TaskId task) {
    on_stack.insert(task);
    auto it = graph.find(task);
    if (it != graph.end()) {
      for (const Edge& e : it->second) {
        if (blocked.count(e.provider) == 0) continue;
        stack.push_back(task);
        stack_waits.push_back(e.wait);
        if (on_stack.count(e.provider)) {
          // Found a loop: it starts where provider sits on the stack.
          const auto pos = std::find(stack.begin(), stack.end(), e.provider);
          emit_cycle(static_cast<std::size_t>(pos - stack.begin()));
        } else {
          dfs(e.provider);
        }
        stack.pop_back();
        stack_waits.pop_back();
      }
    }
    on_stack.erase(task);
  };
  for (TaskId t : blocked) dfs(t);

  // Anything still blocked, not explained by a cycle, and not a daemon is
  // stranded: it waits on a resource nobody left alive can provide.
  for (const Wait& w : waits_) {
    if (in_any_cycle.count(w.task) || daemons_.count(w.task)) continue;
    // A blocked task whose providers include a *runnable* task is not
    // stranded — the provider just hasn't run yet (finish() called early).
    const auto provs = providers_of(w);
    const bool has_runnable =
        std::any_of(provs.begin(), provs.end(), [&](TaskId p) {
          return blocked.count(p) == 0 && daemons_.count(p) == 0;
        });
    if (has_runnable && engine_.pending_events() > 0) continue;
    stranded_.push_back(Stranded{w.task, resources_[w.res].label, w.kind});
  }
}

namespace {
const char* kind_name(DeadlockDetector::WaitKind k) {
  switch (k) {
    case DeadlockDetector::WaitKind::kLock: return "lock";
    case DeadlockDetector::WaitKind::kCond: return "cond-wait";
    case DeadlockDetector::WaitKind::kSend: return "channel-send";
    case DeadlockDetector::WaitKind::kRecv: return "channel-recv";
    case DeadlockDetector::WaitKind::kJoin: return "join";
  }
  return "?";
}
}  // namespace

std::string DeadlockDetector::report() const {
  if (ok()) return "ok";
  std::ostringstream out;
  if (!cycles_.empty()) {
    out << cycles_.size() << " deadlock cycle(s):";
    for (std::size_t c = 0; c < cycles_.size(); ++c) {
      out << "\n  cycle " << c + 1 << ":";
      for (const CycleEdge& e : cycles_[c].edges) {
        out << "\n    '" << task_names_[e.waiter] << "' waits ("
            << kind_name(e.kind) << ") on '" << e.resource << "' held/served"
            << " by '" << task_names_[e.provider] << "'";
        if (!e.held.empty()) {
          out << " while holding [";
          for (std::size_t i = 0; i < e.held.size(); ++i) {
            if (i) out << ", ";
            out << "'" << e.held[i] << "'";
          }
          out << "]";
        }
      }
    }
  }
  if (!stranded_.empty()) {
    if (out.tellp() > 0) out << "\n";
    out << stranded_.size() << " stranded waiter(s):";
    for (const Stranded& s : stranded_) {
      out << "\n  - '" << task_names_[s.task] << "' blocked ("
          << kind_name(s.kind) << ") on '" << s.resource
          << "' with no live provider";
    }
  }
  if (!inversions_.empty()) {
    if (out.tellp() > 0) out << "\n";
    out << inversions_.size() << " lock-order inversion(s):";
    for (const OrderInversion& v : inversions_) {
      out << "\n  - '" << v.first << "' -> '" << v.second
          << "' acquired in both orders (closed by '" << v.site
          << "'); pick one global order";
    }
  }
  return out.str();
}

}  // namespace paraio::sim
