// Small-buffer move-only callable for scheduled events.
//
// Every event the kernel schedules carries a callable, and nearly all of
// them are a captured coroutine handle (`[h] { h.resume(); }` — 8 bytes).
// std::function is the wrong container for that hot path: it requires
// copyability, may heap-allocate, and drags in RTTI-ish dispatch machinery.
// Action stores callables up to kInlineSize bytes inline with a three-entry
// ops table (invoke / relocate / destroy) and falls back to a single heap
// allocation only for large or throwing-move callables.  Move-only by
// design: scheduled work is consumed exactly once.
#pragma once

#include <cassert>
#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace paraio::sim {

class Action {
 public:
  /// Callables at most this large (and nothrow-movable, and no more aligned
  /// than max_align_t) are stored inline.  48 bytes covers every capture
  /// list the kernel and file-system layers create today with room to grow,
  /// while keeping Action within one cache line.
  static constexpr std::size_t kInlineSize = 48;

  Action() noexcept = default;
  Action(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, Action> &&
             std::is_invocable_v<std::remove_cvref_t<F>&>)
  Action(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = &kHeapOps<Fn>;
    }
  }

  Action(Action&& other) noexcept { move_from(other); }

  Action& operator=(Action&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  Action(const Action&) = delete;
  Action& operator=(const Action&) = delete;

  ~Action() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void operator()() {
    assert(ops_ != nullptr && "invoking an empty Action");
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineSize &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* p) { (void)(*static_cast<Fn*>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
        static_cast<Fn*>(src)->~Fn();
      },
      [](void* p) noexcept { static_cast<Fn*>(p)->~Fn(); },
  };

  template <typename Fn>
  static constexpr Ops kHeapOps = {
      [](void* p) { (void)(**static_cast<Fn**>(p))(); },
      [](void* dst, void* src) noexcept {
        ::new (dst) Fn*(*static_cast<Fn**>(src));
      },
      [](void* p) noexcept { delete *static_cast<Fn**>(p); },
  };

  void move_from(Action& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace paraio::sim
