// Reference pending-event set: a binary heap with the exact ordering
// contract of sim::EventQueue.
//
// This is the pre-ladder implementation, kept as the executable
// specification of event ordering: (when, key, seq) min-order, FIFO ties
// under seed 0, seeded same-instant permutation otherwise.  O(log n)
// schedule/pop and a hash lookup per event — correct, slow, and obviously
// so.  tests/sim/event_queue_diff_test.cpp drives it in lockstep with the
// ladder queue and asserts identical pop sequences over randomized
// schedule/cancel/pop interleavings.
//
// Unlike the historical version, cancellation restores the "heap top is
// live" invariant eagerly, so next_time() is genuinely const (no `mutable`
// lazy cleanup).
#pragma once

#include <cstdint>
#include <queue>
#include <unordered_map>
#include <utility>

#include "sim/action.hpp"
#include "sim/time.hpp"

namespace paraio::sim {

class HeapEventQueue {
 public:
  using Action = sim::Action;

  /// Same semantics as EventQueue::set_tie_break_seed.
  void set_tie_break_seed(std::uint64_t seed);
  [[nodiscard]] std::uint64_t tie_break_seed() const noexcept {
    return tie_seed_;
  }

  /// Schedules `action` at `when`; returns the insertion sequence number,
  /// which doubles as the cancellation handle.
  std::uint64_t schedule(SimTime when, Action action);

  /// Cancels a pending event by its sequence number.  Returns true if it
  /// had not yet fired.
  bool cancel(std::uint64_t seq);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_; }

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  std::pair<SimTime, Action> pop();

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t key;  // == seq under FIFO; permuted under a tie-break seed
    // std::priority_queue is a max-heap, so invert the comparison.
    bool operator<(const Entry& other) const {
      if (when != other.when) return when > other.when;
      if (key != other.key) return key > other.key;
      return seq > other.seq;
    }
  };

  /// Pops cancelled entries off the top so the top is always live.
  void drop_dead_top();

  std::priority_queue<Entry> heap_;
  std::unordered_map<std::uint64_t, Action> pending_;  // seq -> action
  std::uint64_t next_seq_ = 1;
  std::size_t live_ = 0;
  std::uint64_t tie_seed_ = 0;
};

}  // namespace paraio::sim
