// Coroutine task type for simulation processes.
//
// A `Task<T>` is a lazily-started coroutine: creating it allocates the frame
// but runs no user code until the task is either awaited by another task or
// started by the Engine (top-level processes).  Completion uses symmetric
// transfer to resume the awaiting parent, so arbitrarily deep await chains
// use O(1) host stack.
//
// Ownership: the Task object owns the coroutine frame and destroys it in the
// destructor.  A parent awaiting a child keeps the child Task alive in its
// own frame, giving structured concurrency for the common fork/join shapes;
// detached top-level processes are owned by the Engine until they finish.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <optional>
#include <utility>

#include "sim/arena.hpp"

namespace paraio::sim {

template <typename T = void>
class Task;

namespace detail {

struct PromiseBase {
  std::coroutine_handle<> continuation;
  std::exception_ptr exception;
  /// Completion hook, fired once when the coroutine reaches its final
  /// suspend point (the task is done() from then on).  The Engine registers
  /// one on detached tasks so it can count finished processes instead of
  /// scanning its whole task list (see Engine::spawn).
  void (*on_complete)(void*) noexcept = nullptr;
  void* on_complete_arg = nullptr;

  // Coroutine frames are the kernel's highest-rate allocation; route them
  // through the size-class pool.  Inherited by every Promise<T>.
  static void* operator new(std::size_t size) { return arena::allocate(size); }
  static void operator delete(void* p, std::size_t size) noexcept {
    arena::deallocate(p, size);
  }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept {
      PromiseBase& p = h.promise();
      if (p.on_complete != nullptr) p.on_complete(p.on_complete_arg);
      auto cont = p.continuation;
      return cont ? cont : std::noop_coroutine();
    }
    void await_resume() noexcept {}
  };

  std::suspend_always initial_suspend() noexcept { return {}; }
  FinalAwaiter final_suspend() noexcept { return {}; }
  void unhandled_exception() noexcept { exception = std::current_exception(); }
};

template <typename T>
struct Promise : PromiseBase {
  std::optional<T> value;
  Task<T> get_return_object() noexcept;
  void return_value(T v) { value.emplace(std::move(v)); }
  T take() {
    if (exception) std::rethrow_exception(exception);
    assert(value.has_value() && "task finished without a value");
    return std::move(*value);
  }
};

template <>
struct Promise<void> : PromiseBase {
  Task<void> get_return_object() noexcept;
  void return_void() noexcept {}
  void take() {
    if (exception) std::rethrow_exception(exception);
  }
};

}  // namespace detail

/// A lazily-started coroutine returning T.  Move-only.
template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::Promise<T>;
  using Handle = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(Handle h) noexcept : handle_(h) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  [[nodiscard]] bool valid() const noexcept { return static_cast<bool>(handle_); }
  [[nodiscard]] bool done() const noexcept { return !handle_ || handle_.done(); }

  /// Starts a top-level task (used by Engine::spawn).  Precondition: the
  /// task has not been started or awaited yet.
  void start() {
    assert(handle_ && !handle_.done());
    handle_.resume();
  }

  /// Rethrows any exception the finished task captured and, for non-void T,
  /// returns its value.  Precondition: done().
  T result() {
    assert(done());
    return handle_.promise().take();
  }

  /// True if the finished task ended with an uncaught exception.
  [[nodiscard]] bool failed() const noexcept {
    return handle_ && handle_.done() &&
           handle_.promise().exception != nullptr;
  }

  /// Registers a hook fired when the task reaches its final suspend point
  /// (i.e. the moment done() becomes true).  At most one hook; the Engine
  /// uses it to batch-reap detached tasks.  Call before start()/awaiting.
  void set_on_complete(void (*fn)(void*) noexcept, void* arg) noexcept {
    assert(handle_);
    handle_.promise().on_complete = fn;
    handle_.promise().on_complete_arg = arg;
  }

  /// Awaiting a task starts it (if not yet started) and suspends the parent
  /// until it finishes.
  auto operator co_await() && noexcept {
    struct Awaiter {
      Handle handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> parent) noexcept {
        handle.promise().continuation = parent;
        return handle;  // symmetric transfer: start/continue the child
      }
      T await_resume() { return handle.promise().take(); }
    };
    return Awaiter{handle_};
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_;
};

namespace detail {

template <typename T>
Task<T> Promise<T>::get_return_object() noexcept {
  return Task<T>(std::coroutine_handle<Promise<T>>::from_promise(*this));
}

inline Task<void> Promise<void>::get_return_object() noexcept {
  return Task<void>(std::coroutine_handle<Promise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace paraio::sim
