// Bounded FIFO channel for message passing between simulation processes.
//
// Models the message-passing interconnect programming style (MPI-like):
// senders block when the channel is full, receivers block when it is empty.
// Delivery order is strictly FIFO for both values and blocked tasks.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>
#include <limits>
#include <optional>
#include <utility>

#include "sim/engine.hpp"

namespace paraio::sim {

template <typename T>
class Channel {
 public:
  /// `capacity` of 0 is promoted to 1 (a rendezvous-like minimal buffer);
  /// use kUnbounded for an unbounded channel.
  static constexpr std::size_t kUnbounded =
      std::numeric_limits<std::size_t>::max();

  Channel(Engine& engine, std::size_t capacity)
      : engine_(engine), capacity_(capacity == 0 ? 1 : capacity) {}

  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  [[nodiscard]] bool empty() const noexcept { return items_.empty(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Awaitable send.  Usage: `co_await chan.send(std::move(msg));`
  [[nodiscard]] auto send(T value) {
    struct Awaiter {
      Channel& ch;
      T value;
      bool await_ready() noexcept {
        if (ch.senders_.empty() && ch.items_.size() < ch.capacity_) {
          ch.push_and_wake(std::move(value));
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch.senders_.push_back(PendingSend{h, &value});
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, std::move(value)};
  }

  /// Awaitable receive.  Usage: `T msg = co_await chan.recv();`
  [[nodiscard]] auto recv() {
    struct Awaiter {
      Channel& ch;
      std::optional<T> slot;
      bool await_ready() noexcept {
        if (ch.receivers_.empty() && !ch.items_.empty()) {
          slot.emplace(std::move(ch.items_.front()));
          ch.items_.pop_front();
          ch.promote_sender();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ch.receivers_.push_back(PendingRecv{h, &slot});
      }
      T await_resume() {
        assert(slot.has_value());
        return std::move(*slot);
      }
    };
    return Awaiter{*this, std::nullopt};
  }

  /// Non-blocking receive: returns nullopt if the channel is empty.
  [[nodiscard]] std::optional<T> try_recv() {
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    promote_sender();
    return v;
  }

 private:
  struct PendingSend {
    std::coroutine_handle<> handle;
    T* value;  // lives in the suspended awaiter frame
  };
  struct PendingRecv {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;  // lives in the suspended awaiter frame
  };

  /// Adds a value; if a receiver is parked, hands the front of the buffer to
  /// it immediately (preserving FIFO: the receiver gets the oldest value).
  void push_and_wake(T value) {
    items_.push_back(std::move(value));
    wake_receiver();
  }

  void wake_receiver() {
    if (receivers_.empty() || items_.empty()) return;
    PendingRecv r = receivers_.front();
    receivers_.pop_front();
    r.slot->emplace(std::move(items_.front()));
    items_.pop_front();
    auto h = r.handle;
    engine_.call_in(0.0, [h] { h.resume(); });
    promote_sender();
  }

  /// Buffer space opened up: move the oldest blocked sender's value in.
  void promote_sender() {
    if (senders_.empty() || items_.size() >= capacity_) return;
    PendingSend s = senders_.front();
    senders_.pop_front();
    items_.push_back(std::move(*s.value));
    auto h = s.handle;
    engine_.call_in(0.0, [h] { h.resume(); });
    wake_receiver();
  }

  Engine& engine_;
  std::size_t capacity_;
  std::deque<T> items_;
  std::deque<PendingSend> senders_;
  std::deque<PendingRecv> receivers_;
};

}  // namespace paraio::sim
