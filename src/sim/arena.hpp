// Size-class pool allocator for kernel hot-path allocations.
//
// The simulation kernel allocates two things at very high rates: coroutine
// frames (every spawned process and every awaited child task) and, rarely,
// out-of-line callables.  Both are small, short-lived, and reused in tight
// cycles — exactly the pattern a freelist pool serves with a handful of
// instructions where the general-purpose allocator pays for locking and
// size-class lookup.  allocate/deallocate round the request up to a 64-byte
// class and recycle blocks through per-class freelists carved from 64 KiB
// slabs; requests beyond the largest class fall through to ::operator new.
//
// Slabs are retained for the life of the process (the kernel is expected to
// run simulations back to back; steady state is reached after the first).
// Freelists are thread_local, so independent engines on different threads
// never contend or cross-free.
//
// Under AddressSanitizer (and the other sanitizers) the pool compiles to a
// passthrough to ::operator new/delete: recycling memory underneath a
// sanitizer would mask use-after-free on coroutine frames, the exact class
// of bug the ASan CI stage exists to catch.
#pragma once

#include <cstddef>
#include <cstdint>

namespace paraio::sim::arena {

/// Returns a block of at least `size` bytes, aligned for any object with
/// fundamental alignment.  Never returns nullptr (falls back to ::operator
/// new, which throws on exhaustion).
[[nodiscard]] void* allocate(std::size_t size);

/// Returns a block obtained from allocate().  `size` must be the size passed
/// to the matching allocate() call (C++ sized-deallocation contract).
void deallocate(void* p, std::size_t size) noexcept;

/// Allocation counters for the calling thread, for benchmarks and tests.
struct Stats {
  std::uint64_t pool_allocs = 0;      // served from a freelist or slab
  std::uint64_t fallback_allocs = 0;  // oversize, served by ::operator new
  std::uint64_t slabs = 0;            // 64 KiB slabs carved so far
};
[[nodiscard]] Stats stats() noexcept;

/// True when the pool is active; false in sanitizer builds, where every
/// request passes through to the global allocator.
[[nodiscard]] bool pooling_enabled() noexcept;

}  // namespace paraio::sim::arena
