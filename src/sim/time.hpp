// Simulated-time representation for the discrete-event kernel.
//
// Simulated time is a double counting seconds since the start of the
// simulation.  Doubles are adequate here: the longest simulated runs in this
// project are a few times 10^4 seconds with microsecond-scale service times,
// comfortably inside the 2^53 exact-integer range when expressed in
// microseconds.  Event ordering never relies on exact float comparison alone;
// the event queue breaks ties with a monotonically increasing sequence
// number (see event_queue.hpp), which is what makes runs deterministic.
#pragma once

#include <limits>

namespace paraio::sim {

/// Seconds of simulated time since Engine construction.
using SimTime = double;

/// A duration in simulated seconds.
using SimDuration = double;

/// Sentinel meaning "never" / "no deadline".
inline constexpr SimTime kTimeInfinity = std::numeric_limits<double>::infinity();

/// Convenience constructors so call sites read in natural units.
constexpr SimDuration seconds(double s) { return s; }
constexpr SimDuration milliseconds(double ms) { return ms * 1e-3; }
constexpr SimDuration microseconds(double us) { return us * 1e-6; }
constexpr SimDuration nanoseconds(double ns) { return ns * 1e-9; }

}  // namespace paraio::sim
