// Awaitable synchronization primitives for simulation processes.
//
// All primitives resume waiters through the engine's event queue (at the
// current instant) rather than inline, so a `set()` or `release()` never
// re-enters user code synchronously and wake-up order is deterministic FIFO.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <deque>

#include "sim/engine.hpp"

namespace paraio::sim {

/// One-shot event: tasks await until some task calls set().  After set(),
/// waits complete immediately.  reset() re-arms it.
class Event {
 public:
  explicit Event(Engine& engine) : engine_(engine) {}

  void set();
  void reset() { set_ = false; }
  [[nodiscard]] bool is_set() const noexcept { return set_; }
  [[nodiscard]] std::size_t waiters() const noexcept { return waiters_.size(); }

  [[nodiscard]] auto wait() {
    struct Awaiter {
      Event& ev;
      bool await_ready() const noexcept { return ev.set_; }
      void await_suspend(std::coroutine_handle<> h) {
        ev.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  std::deque<std::coroutine_handle<>> waiters_;
  bool set_ = false;
};

/// Counting semaphore with FIFO handoff: release() passes the permit
/// directly to the oldest waiter, so waiters cannot be starved by barging.
class Semaphore {
 public:
  Semaphore(Engine& engine, std::size_t initial)
      : engine_(engine), count_(initial) {}

  void release(std::size_t n = 1);
  [[nodiscard]] std::size_t available() const noexcept { return count_; }
  [[nodiscard]] std::size_t waiters() const noexcept { return waiters_.size(); }

  [[nodiscard]] auto acquire() {
    struct Awaiter {
      Semaphore& sem;
      // Fast path only when nobody is queued, preserving FIFO order.  A
      // queued waiter later receives a direct handoff from release()
      // without touching count_, so await_resume has nothing to do.
      bool await_ready() noexcept {
        if (sem.waiters_.empty() && sem.count_ > 0) {
          --sem.count_;
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        sem.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  Engine& engine_;
  std::size_t count_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Mutual exclusion: a binary FIFO semaphore with scoped-lock sugar.
class Mutex {
 public:
  explicit Mutex(Engine& engine) : sem_(engine, 1) {}
  [[nodiscard]] auto lock() { return sem_.acquire(); }
  void unlock() { sem_.release(); }
  [[nodiscard]] bool locked() const noexcept { return sem_.available() == 0; }

 private:
  Semaphore sem_;
};

/// Cyclic barrier for `parties` tasks.  The last arrival releases everyone
/// and the barrier re-arms for the next cycle.
class Barrier {
 public:
  Barrier(Engine& engine, std::size_t parties)
      : engine_(engine), parties_(parties) {
    assert(parties > 0);
  }

  [[nodiscard]] std::size_t parties() const noexcept { return parties_; }
  [[nodiscard]] std::size_t arrived() const noexcept { return arrived_; }
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  [[nodiscard]] auto arrive_and_wait() {
    struct Awaiter {
      Barrier& b;
      bool await_ready() noexcept {
        if (b.arrived_ + 1 == b.parties_) {
          b.release_all();
          return true;  // last arrival passes straight through
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        ++b.arrived_;
        b.waiters_.push_back(h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

 private:
  void release_all();

  Engine& engine_;
  std::size_t parties_;
  std::size_t arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// Countdown latch: await until count_down() has been called `count` times.
class Latch {
 public:
  Latch(Engine& engine, std::size_t count)
      : event_(engine), remaining_(count) {
    if (remaining_ == 0) event_.set();
  }

  void count_down(std::size_t n = 1) {
    assert(remaining_ >= n);
    remaining_ -= n;
    if (remaining_ == 0) event_.set();
  }

  [[nodiscard]] std::size_t remaining() const noexcept { return remaining_; }
  [[nodiscard]] auto wait() { return event_.wait(); }

 private:
  Event event_;
  std::size_t remaining_;
};

}  // namespace paraio::sim
