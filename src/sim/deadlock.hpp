// Runtime deadlock detection for the coroutine simulation.
//
// The engine cannot tell a finished simulation from a wedged one: when every
// remaining task is blocked on an event that will never fire, the queue
// simply drains and run() returns with live_tasks() > 0 — the experiment
// silently loses whatever those tasks were about to do.  The testkit's
// invariant checker flags the *count*; this detector explains the *cause*.
//
// Like sim::RaceDetector, it piggybacks on sim::EngineObserver (chaining to
// any observer already attached) and learns about blocking through
// annotations:
//
//   sim::DeadlockDetector det(engine);          // attaches, chains, detaches
//   auto t1 = det.register_task("writer");
//   det.lock_wait(t1, &a, "mutex A");           // before co_await a.lock()
//   det.lock_acquired(t1, &a, "mutex A");       // after it resumes
//   det.lock_released(t1, &a);                  // at a.unlock()
//   ...
//   engine.run();
//   det.finish();                               // also runs automatically at
//   EXPECT_TRUE(det.ok()) << det.report();      // quiescence w/ live waiters
//
// It maintains:
//
//   * a runtime waits-for graph over mutexes/semaphores, condition waits,
//     channel sends/recvs, and joins.  At quiescence with pending waiters it
//     reports every cycle with per-task held/wanted edges, and every acyclic
//     stranded waiter with what it was waiting for;
//   * lockdep-style acquisition-order tracking: whenever a task acquires B
//     while holding A, the static order edge A -> B is recorded, and a cycle
//     in that graph is reported as a lock-order inversion even if this run
//     got lucky and never actually deadlocked.
//
// Channel waits use declared roles: a task blocked in send() waits on every
// registered receiver of that channel, a task blocked in recv() waits on
// every registered sender.  A bounded channel whose only receiver is the
// sending task itself therefore forms a one-task cycle — the classic
// channel self-deadlock.  Daemons (Engine::spawn_daemon service loops)
// should be marked with set_daemon(): being parked in recv() at drain time
// is their normal end state, not a stranding.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"

namespace paraio::sim {

class DeadlockDetector : public EngineObserver {
 public:
  using TaskId = std::uint32_t;

  enum class WaitKind : std::uint8_t {
    kLock,     // mutex / semaphore acquisition
    kCond,     // condition-style wait (Event, Latch, TurnGate)
    kSend,     // channel send on a full bounded channel
    kRecv,     // channel recv on an empty channel
    kJoin,     // waiting for another task to finish
  };

  /// One "task X waits for task Y through resource R" edge of a reported
  /// cycle, with everything X held at the time.
  struct CycleEdge {
    TaskId waiter = 0;
    TaskId provider = 0;           // the task that would have to act
    std::string resource;          // label of the wanted resource
    WaitKind kind = WaitKind::kLock;
    std::vector<std::string> held; // labels of resources `waiter` holds
  };

  struct Cycle {
    std::vector<CycleEdge> edges;  // in cycle order; edges.front().waiter ==
                                   // edges.back().provider
  };

  /// A task blocked at quiescence that is not part of any cycle (e.g. a wait
  /// on an Event nobody is left to set).
  struct Stranded {
    TaskId task = 0;
    std::string resource;
    WaitKind kind = WaitKind::kLock;
  };

  /// Acquisition-order inversion: this run saw both "A held while acquiring
  /// B" and a path B -> ... -> A, so some interleaving can deadlock.
  struct OrderInversion {
    std::string first;   // label of A
    std::string second;  // label of B
    std::string site;    // task that closed the cycle
  };

  /// Attaches to `engine`, chaining to (and later restoring) any observer
  /// already installed.
  explicit DeadlockDetector(Engine& engine);
  ~DeadlockDetector() override;
  DeadlockDetector(const DeadlockDetector&) = delete;
  DeadlockDetector& operator=(const DeadlockDetector&) = delete;

  /// The detector attached to `engine` (anywhere in the observer chain), or
  /// nullptr.  Annotation sites in production code use this and must stay
  /// zero-cost when nothing is watching.
  static DeadlockDetector* find(Engine& engine);

  // --- sim::EngineObserver ---
  [[nodiscard]] EngineObserver* chained() const override { return chained_; }
  void on_schedule(SimTime now, SimTime when) override;
  void on_event(SimTime when) override;
  /// Runs the analysis automatically when the queue drains with pending
  /// waiters, so a wedged engine.run() produces a report instead of exiting
  /// silently with stranded coroutines.
  void on_run_complete(SimTime now, std::size_t pending_events,
                       std::size_t live_tasks) override;

  // --- task identity ---
  TaskId register_task(std::string name);
  /// Memoized external identity for annotation sites that only have a stable
  /// key (e.g. a NodeId) in hand.
  TaskId task_for_key(std::uint64_t key, const char* label);
  /// Marks a service-loop task: parked waits at drain time are expected and
  /// never reported as stranded (the task still appears as a provider).
  void set_daemon(TaskId task);
  [[nodiscard]] const std::string& task_name(TaskId task) const {
    return task_names_[task];
  }

  // --- mutexes / semaphores ---
  void lock_wait(TaskId task, const void* lock, std::string_view label);
  void lock_acquired(TaskId task, const void* lock, std::string_view label);
  void lock_released(TaskId task, const void* lock);

  // --- condition-style waits (Event, Latch, TurnGate...) ---
  void cond_wait(TaskId task, const void* cond, std::string_view label);
  void cond_woken(TaskId task, const void* cond);
  /// Declares `task` as able to satisfy waits on `cond` (it will set the
  /// event / advance the gate).
  void cond_provider(TaskId task, const void* cond, std::string_view label);

  // --- channels ---
  void channel_sender(TaskId task, const void* channel, std::string_view label);
  void channel_receiver(TaskId task, const void* channel,
                        std::string_view label);
  void send_wait(TaskId task, const void* channel, std::string_view label);
  void send_done(TaskId task, const void* channel);
  void recv_wait(TaskId task, const void* channel, std::string_view label);
  void recv_done(TaskId task, const void* channel);

  // --- joins ---
  void join_wait(TaskId waiter, TaskId target);
  void join_done(TaskId waiter, TaskId target);
  void task_done(TaskId task);

  /// Runs the waits-for analysis over the current wait set.  Idempotent per
  /// state: may be called again after more events.
  void finish();

  [[nodiscard]] bool ok() const {
    return cycles_.empty() && stranded_.empty() && inversions_.empty();
  }
  [[nodiscard]] const std::vector<Cycle>& cycles() const { return cycles_; }
  [[nodiscard]] const std::vector<Stranded>& stranded() const {
    return stranded_;
  }
  [[nodiscard]] const std::vector<OrderInversion>& inversions() const {
    return inversions_;
  }
  /// Human-readable summary ("ok" when clean): every cycle with per-task
  /// held/wanted resources, every stranded waiter, every order inversion.
  [[nodiscard]] std::string report() const;

 private:
  using ResId = std::uint32_t;

  struct Resource {
    const void* token = nullptr;
    std::string label;
    std::vector<TaskId> holders;    // kLock: current owners
    std::set<TaskId> senders;       // channels: declared roles
    std::set<TaskId> receivers;
    std::set<TaskId> providers;     // kCond: declared signalers
  };

  struct Wait {
    TaskId task = 0;
    ResId res = 0;
    WaitKind kind = WaitKind::kLock;
  };

  ResId resource(const void* token, std::string_view label);
  void add_wait(TaskId task, ResId res, WaitKind kind);
  void drop_wait(TaskId task, ResId res, WaitKind kind);
  /// Tasks whose progress could satisfy `wait`.
  [[nodiscard]] std::vector<TaskId> providers_of(const Wait& wait) const;
  void record_order_edge(TaskId task, ResId from, ResId to);
  [[nodiscard]] std::vector<std::string> held_labels(TaskId task) const;

  Engine& engine_;
  EngineObserver* chained_ = nullptr;

  std::vector<std::string> task_names_;
  std::set<TaskId> daemons_;
  std::map<std::uint64_t, TaskId> external_tasks_;

  std::vector<Resource> resources_;
  std::map<const void*, ResId> resource_ids_;  // paraio-lint: allow(ptr-key-order)
  std::vector<std::vector<ResId>> held_;       // per task, acquisition order
  std::vector<Wait> waits_;                    // currently blocked

  // Static acquisition-order graph: (from, to) -> first task that did it.
  std::map<std::pair<ResId, ResId>, TaskId> order_edges_;
  std::set<std::pair<ResId, ResId>> reported_inversions_;

  std::vector<Cycle> cycles_;
  std::vector<Stranded> stranded_;
  std::vector<OrderInversion> inversions_;
};

}  // namespace paraio::sim
