// Seeded, typed value generators for property-based tests.
//
// A Gen<T> is a pure function from an Rng to a value; all randomness flows
// through sim::Rng (xoshiro256**), so every generated case is reproducible
// from (suite seed, case index) alone — the same guarantee the simulator
// itself makes.  Domain generators (machine shapes, file-system parameter
// sets, synthetic workload specs) live in gen.cpp together with their
// bounded shrinkers; the property runner (property.hpp) drives both.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "apps/synthetic.hpp"
#include "core/experiment.hpp"
#include "fault/fault.hpp"
#include "hw/machine.hpp"
#include "pfs/pfs.hpp"
#include "ppfs/ppfs.hpp"
#include "sim/random.hpp"

namespace paraio::testkit {

template <typename T>
class Gen {
 public:
  using Fn = std::function<T(sim::Rng&)>;

  explicit Gen(Fn fn) : fn_(std::move(fn)) {}

  T operator()(sim::Rng& rng) const { return fn_(rng); }

  /// Generator producing f(x) for x drawn from this generator.
  template <typename F>
  auto map(F f) const {
    using U = std::invoke_result_t<F, T>;
    typename Gen<U>::Fn wrapped = [fn = fn_, f = std::move(f)](sim::Rng& rng) {
      return f(fn(rng));
    };
    return Gen<U>(std::move(wrapped));
  }

 private:
  Fn fn_;
};

/// Uniform integer in [lo, hi], inclusive.
inline Gen<std::uint64_t> gen_u64(std::uint64_t lo, std::uint64_t hi) {
  return Gen<std::uint64_t>(
      [lo, hi](sim::Rng& rng) { return rng.uniform_int(lo, hi); });
}

/// Uniform double in [lo, hi).
inline Gen<double> gen_real(double lo, double hi) {
  return Gen<double>([lo, hi](sim::Rng& rng) { return rng.uniform(lo, hi); });
}

/// Bernoulli boolean.
inline Gen<bool> gen_bool(double p = 0.5) {
  return Gen<bool>([p](sim::Rng& rng) { return rng.bernoulli(p); });
}

/// Uniform choice from a fixed list.
template <typename T>
Gen<T> gen_element(std::vector<T> choices) {
  return Gen<T>([choices = std::move(choices)](sim::Rng& rng) {
    return choices[rng.uniform_int(0, choices.size() - 1)];
  });
}

// --- shrinking primitives --------------------------------------------------

/// Candidates strictly smaller than `v`, halving toward `floor` (classic
/// integer shrink ladder; bounded, at most ~6 candidates).
std::vector<std::uint64_t> shrink_u64(std::uint64_t v, std::uint64_t floor);

// --- domain generators -----------------------------------------------------

/// Machine shapes: small partitions (compute nodes, I/O nodes) that keep a
/// property case in the low milliseconds.
Gen<hw::MachineConfig> gen_machine(std::size_t min_compute = 2,
                                   std::size_t max_compute = 12,
                                   std::size_t max_ions = 4);

/// PFS calibration/policy parameter sets spanning the space the paper's
/// per-app calibrations live in.
Gen<pfs::PfsParams> gen_pfs_params();

/// PPFS policy parameter sets: caching on/off, write-behind, aggregation,
/// the three prefetch policies, both cache levels.
Gen<ppfs::PpfsParams> gen_ppfs_params();

/// Synthetic workload specs: 1-3 phases over <= max_nodes nodes with random
/// direction, spatial pattern, layout, request sizes, and think time.
Gen<apps::SyntheticConfig> gen_synthetic(std::uint32_t max_nodes = 6);

/// One fully-specified simulation case: machine + mount + workload.
struct SimCase {
  hw::MachineConfig machine;
  core::FsChoice filesystem;
  apps::SyntheticConfig workload;

  [[nodiscard]] bool on_ppfs() const {
    return filesystem.kind == core::FsChoice::Kind::kPpfs;
  }
  /// Human-readable one-line dump for counterexample reports.
  [[nodiscard]] std::string describe() const;
};

/// Random SimCase on the given mount kind.
Gen<SimCase> gen_sim_case(core::FsChoice::Kind kind);

/// Bounded shrinkers for counterexample minimization.
std::vector<apps::SyntheticConfig> shrink_synthetic(
    const apps::SyntheticConfig& config);
std::vector<SimCase> shrink_sim_case(const SimCase& failing);

// --- fault-injection cases -------------------------------------------------

/// Random fault schedule for a machine with `io_nodes` arrays of `disks`
/// drives each: paired disk fail/repair, ION crash/restart, interconnect
/// loss windows and delay spikes, all starting inside [0, horizon) seconds.
/// Every destructive event is paired with its recovery event so a schedule
/// perturbs the run rather than ending it.
Gen<fault::FaultPlan> gen_fault_plan(std::size_t io_nodes, std::size_t disks,
                                     double horizon = 2.0);

/// A PPFS simulation case plus a fault schedule over its machine (PPFS is
/// the fault-aware mount: typed errors, retry/backoff, ION failover).
struct FaultCase {
  SimCase base;
  fault::FaultPlan plan;

  [[nodiscard]] std::string describe() const;
};

Gen<FaultCase> gen_fault_case();
std::vector<FaultCase> shrink_fault_case(const FaultCase& failing);

// --- checkpoint/restart cases ----------------------------------------------

/// A PPFS simulation case running under a randomized checkpoint interval
/// and a random fault schedule — the crash-consistency property-test input:
/// whatever the plan does to the machine, recovery from the absorber log
/// must land exactly on the last committed epoch.
struct CkptCase {
  SimCase base;
  fault::FaultPlan plan;
  ckpt::CheckpointSpec spec;

  [[nodiscard]] std::string describe() const;
};

Gen<CkptCase> gen_ckpt_case();
std::vector<CkptCase> shrink_ckpt_case(const CkptCase& failing);

}  // namespace paraio::testkit
