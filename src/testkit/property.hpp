// The property runner: N seeded cases, greedy bounded shrinking on failure.
//
// A property maps a generated value to std::nullopt (pass) or a failure
// message.  Exceptions thrown by the property count as failures too, so a
// workload that crashes the simulator shrinks just like one that violates an
// invariant.  Every case derives its Rng from (suite seed, case index) via
// Rng::fork, so a counterexample reproduces from the numbers in the report.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/random.hpp"
#include "testkit/gen.hpp"

namespace paraio::testkit {

struct PropertyConfig {
  /// Number of random cases to run.
  std::size_t cases = 30;
  /// Suite seed; case i uses Rng(seed).fork(i + 1).
  std::uint64_t seed = 0x9A9A;
  /// Bound on total shrink candidates evaluated after the first failure.
  std::size_t max_shrink_steps = 200;
};

template <typename T>
struct CheckResult {
  bool ok = true;
  std::size_t cases_run = 0;
  /// Index of the first failing case (valid when !ok).
  std::size_t failing_case = 0;
  /// Shrink candidates evaluated while minimizing.
  std::size_t shrink_steps = 0;
  /// Minimal failing value found (valid when !ok).
  std::optional<T> counterexample;
  /// Failure message from the property on the minimal value.
  std::string message;
};

template <typename T>
using Property = std::function<std::optional<std::string>(const T&)>;

template <typename T>
using Shrinker = std::function<std::vector<T>(const T&)>;

namespace detail {

/// Runs the property, converting exceptions into failure messages.
template <typename T>
std::optional<std::string> run_property(const Property<T>& property,
                                        const T& value) {
  try {
    return property(value);
  } catch (const std::exception& e) {
    return std::string("uncaught exception: ") + e.what();
  }
}

}  // namespace detail

/// Runs `property` over `cfg.cases` values from `gen`.  On the first
/// failure, greedily minimizes through `shrink` (pass a shrinker returning
/// {} to disable) and reports the smallest failing value.
template <typename T>
CheckResult<T> check_property(const PropertyConfig& cfg, const Gen<T>& gen,
                              const Shrinker<T>& shrink,
                              const Property<T>& property) {
  CheckResult<T> result;
  sim::Rng root(cfg.seed);
  for (std::size_t i = 0; i < cfg.cases; ++i) {
    sim::Rng case_rng = root.fork(i + 1);
    T value = gen(case_rng);
    std::optional<std::string> failure =
        detail::run_property(property, value);
    ++result.cases_run;
    if (!failure) continue;

    // Greedy descent: take the first failing shrink candidate, repeat.
    result.ok = false;
    result.failing_case = i;
    while (result.shrink_steps < cfg.max_shrink_steps) {
      bool descended = false;
      for (T& candidate : shrink(value)) {
        if (result.shrink_steps >= cfg.max_shrink_steps) break;
        ++result.shrink_steps;
        std::optional<std::string> candidate_failure =
            detail::run_property(property, candidate);
        if (candidate_failure) {
          value = std::move(candidate);
          failure = std::move(candidate_failure);
          descended = true;
          break;
        }
      }
      if (!descended) break;
    }
    result.counterexample = std::move(value);
    result.message = std::move(*failure);
    return result;
  }
  return result;
}

/// Formats a failed CheckResult for assertion messages.  `describe` renders
/// the counterexample (e.g. &SimCase::describe via a lambda).
template <typename T, typename Describe>
std::string explain(const CheckResult<T>& result, Describe describe) {
  if (result.ok) return "ok";
  std::ostringstream out;
  out << "property failed on case " << result.failing_case << " (after "
      << result.shrink_steps << " shrink steps)\n  counterexample: "
      << describe(*result.counterexample) << "\n  failure: " << result.message;
  return out.str();
}

}  // namespace paraio::testkit
