// Golden-value store for trace-hash regression tests.
//
// The store is a plain "key value" text file (one entry per line, sorted,
// '#' comments) that lives in the source tree.  Tests check computed hashes
// against it; running the test binary with --update-golden rewrites the file
// with the currently observed values instead of failing — the sanctioned way
// to re-baseline after an intentional model change (see docs/TESTING.md).
#pragma once

#include <map>
#include <optional>
#include <string>

namespace paraio::testkit {

class GoldenStore {
 public:
  /// Opens the store at `path`, loading existing entries (a missing file is
  /// an empty store — the first --update-golden run creates it).
  explicit GoldenStore(std::string path);

  /// Compares `actual` against the stored value for `key`.  Returns
  /// std::nullopt on match; otherwise a ready-to-assert error message.  In
  /// update mode (see update_mode()) the value is recorded and the check
  /// always passes.
  [[nodiscard]] std::optional<std::string> check(const std::string& key,
                                                 const std::string& actual);

  [[nodiscard]] std::optional<std::string> lookup(
      const std::string& key) const;
  void set(const std::string& key, const std::string& value);

  /// Writes the store back to its file, sorted by key.  Returns false (with
  /// entries intact) if the file cannot be written.
  bool save() const;

  /// True when any check() recorded a value that differed from (or was
  /// missing from) the loaded file — i.e. save() has something new to write.
  [[nodiscard]] bool dirty() const { return dirty_; }

  [[nodiscard]] const std::map<std::string, std::string>& entries() const {
    return entries_;
  }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Process-wide update mode, normally set from the command line.
  static void set_update_mode(bool on);
  [[nodiscard]] static bool update_mode();

  /// Removes "--update-golden" from argv if present (so GoogleTest never
  /// sees it) and enables update mode.  Call from main() before InitGoogleTest.
  static void consume_update_flag(int* argc, char** argv);

 private:
  std::string path_;
  std::map<std::string, std::string> entries_;
  bool dirty_ = false;
};

}  // namespace paraio::testkit
