#include "testkit/perturb.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "testkit/trace_hash.hpp"

namespace paraio::testkit {

namespace {

/// Counts kernel events while forwarding to whatever observer the caller's
/// config had attached (the perturbation runs must not eat their hooks).
class EventCounter final : public sim::EngineObserver {
 public:
  explicit EventCounter(sim::EngineObserver* chained) : chained_(chained) {}
  [[nodiscard]] sim::EngineObserver* chained() const override {
    return chained_;
  }
  void on_schedule(sim::SimTime now, sim::SimTime when) override {
    if (chained_) chained_->on_schedule(now, when);
  }
  void on_event(sim::SimTime when) override {
    ++events_;
    if (chained_) chained_->on_event(when);
  }
  void on_run_complete(sim::SimTime now, std::size_t pending_events,
                       std::size_t live_tasks) override {
    if (chained_) chained_->on_run_complete(now, pending_events, live_tasks);
  }
  [[nodiscard]] std::uint64_t events() const { return events_; }

 private:
  sim::EngineObserver* chained_ = nullptr;
  std::uint64_t events_ = 0;
};

/// Per-node sequential op streams — the structure logical_signature()
/// digests.  Used to pinpoint the first divergent event for the report.
std::map<io::NodeId, std::vector<pablo::IoEvent>> per_node(
    const pablo::Trace& trace) {
  std::map<io::NodeId, std::vector<pablo::IoEvent>> out;
  for (const pablo::IoEvent& e : trace.events()) out[e.node].push_back(e);
  return out;
}

std::string describe(const pablo::Trace& trace, const pablo::IoEvent& e) {
  std::ostringstream out;
  out << pablo::to_string(e.op) << " " << trace.file_name(e.file)
      << " off=" << e.offset << " req=" << e.requested
      << " xfer=" << e.transferred;
  return out.str();
}

/// First logical difference between two runs, node by node (timing ignored —
/// this mirrors what logical_signature() hashes).
std::string first_logical_diff(const pablo::Trace& base,
                               const pablo::Trace& alt) {
  const auto a = per_node(base);
  const auto b = per_node(alt);
  std::ostringstream out;
  for (const auto& [node, ae] : a) {
    auto it = b.find(node);
    if (it == b.end()) {
      out << "node " << node << " has " << ae.size()
          << " events in baseline, none in perturbed run";
      return out.str();
    }
    const auto& be = it->second;
    const std::size_t n = std::min(ae.size(), be.size());
    for (std::size_t i = 0; i < n; ++i) {
      const pablo::IoEvent& x = ae[i];
      const pablo::IoEvent& y = be[i];
      if (x.op == y.op && x.file == y.file && x.offset == y.offset &&
          x.requested == y.requested && x.transferred == y.transferred &&
          x.mode == y.mode) {
        continue;
      }
      out << "node " << node << " event " << i << ": baseline "
          << describe(base, x) << " vs perturbed " << describe(alt, y);
      return out.str();
    }
    if (ae.size() != be.size()) {
      out << "node " << node << ": " << ae.size()
          << " events in baseline vs " << be.size() << " perturbed";
      return out.str();
    }
  }
  for (const auto& [node, be] : b) {
    if (a.find(node) == a.end()) {
      out << "node " << node << " has " << be.size()
          << " events only in the perturbed run";
      return out.str();
    }
  }
  return "signatures differ but per-node op streams match (hash order bug?)";
}

struct RunDigests {
  std::uint64_t signature = 0;
  std::uint64_t hash = 0;
  std::uint64_t events = 0;
  pablo::Trace trace;
};

RunDigests run_once(core::ExperimentConfig config, std::uint64_t seed) {
  EventCounter counter(config.hooks.engine);
  config.hooks.engine = &counter;
  config.tie_break_seed = seed;
  core::ExperimentResult result = core::run_experiment(config);
  RunDigests d;
  d.signature = logical_signature(result.trace);
  d.hash = hash_trace(result.trace);
  d.events = counter.events();
  d.trace = std::move(result.trace);
  return d;
}

}  // namespace

PerturbResult check_schedule_invariance(const core::ExperimentConfig& config,
                                        const PerturbConfig& perturb) {
  PerturbResult out;

  RunDigests baseline = run_once(config, 0);
  out.baseline_events = baseline.events;
  out.baseline_signature = hash_hex(baseline.signature);
  out.baseline_hash = hash_hex(baseline.hash);

  int runs = perturb.shuffles;
  if (perturb.exhaustive_event_limit > 0 &&
      baseline.events <= perturb.exhaustive_event_limit) {
    runs = perturb.exhaustive_budget;
    out.exhaustive = true;
  }

  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = perturb.base_seed + static_cast<std::uint64_t>(i);
    if (seed == 0) continue;  // seed 0 is the baseline itself
    RunDigests alt = run_once(config, seed);
    ++out.runs;

    if (alt.signature != baseline.signature) {
      Divergence d;
      d.seed = seed;
      d.what = "logical-signature";
      std::ostringstream detail;
      detail << "baseline " << hash_hex(baseline.signature) << " vs "
             << hash_hex(alt.signature) << "; "
             << first_logical_diff(baseline.trace, alt.trace)
             << "; reproduce with ExperimentConfig::tie_break_seed = " << seed;
      d.detail = detail.str();
      out.divergences.push_back(std::move(d));
      continue;
    }
    if (alt.hash != baseline.hash) {
      out.timing_only_seeds.push_back(seed);
      if (perturb.level == Invariance::kBitExact) {
        Divergence d;
        d.seed = seed;
        d.what = "bit-exact-hash";
        std::ostringstream detail;
        detail << "baseline " << hash_hex(baseline.hash) << " vs "
               << hash_hex(alt.hash)
               << " (logical signature unchanged: timing-only divergence, "
                  "typically contention for a shared resource at a shared "
                  "instant); reproduce with ExperimentConfig::tie_break_seed"
                  " = "
               << seed;
        d.detail = detail.str();
        out.divergences.push_back(std::move(d));
      }
    }
  }
  return out;
}

std::string PerturbResult::report() const {
  std::ostringstream out;
  if (ok()) {
    out << "ok (" << runs << (exhaustive ? " exhaustive" : "") << " shuffle"
        << (runs == 1 ? "" : "s") << ", baseline " << baseline_events
        << " events, signature " << baseline_signature;
    if (!timing_only_seeds.empty()) {
      out << ", " << timing_only_seeds.size()
          << " timing-only divergence(s) under contention";
    }
    out << ")";
    return out.str();
  }
  out << divergences.size() << " schedule divergence(s) across " << runs
      << " perturbed run(s):";
  for (const Divergence& d : divergences) {
    out << "\n  - seed " << d.seed << " [" << d.what << "]: " << d.detail;
  }
  return out.str();
}

}  // namespace paraio::testkit
