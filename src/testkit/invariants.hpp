// Simulation invariant checker.
//
// One object implements all three observer interfaces — the simulation
// kernel's (sim::EngineObserver), the disk layer's (pfs::IoObserver), and the
// instrumentation layer's (pablo::TraceSink) — so a single checker watches a
// whole experiment end to end.  It verifies, as the simulation runs:
//
//   1. time monotonicity   — events execute in non-decreasing simulated time,
//                            and nothing is ever scheduled in the past;
//   2. queue drain         — when run() returns, no pending events and no
//                            live (blocked-forever) coroutines remain;
//   3. byte conservation   — application-layer traffic (the trace) matches
//                            disk-layer traffic (the striped transfers):
//                            exactly on PFS, cache-aware bounds on PPFS;
//   4. event validity      — every trace event has a non-negative duration
//                            and timestamp, and never transfers more than
//                            was requested;
//   5. stripe validity     — every disk transfer's segments are a correct
//                            decomposition: lengths sum to the request, ION
//                            indices are in range, and (for a bounded number
//                            of transfers) an independent StripeMap walk
//                            reproduces the exact segment list;
//   6. write-behind ledger — bytes entering PPFS client write buffers all
//                            come back out (cumulative buffered == flushed
//                            once every file is closed), and disk reads stay
//                            within the extent ever written.
//
// Attach via core::ExperimentHooks{&checker, &checker} plus
// result.trace-style sink registration, run the experiment, then call
// finish() and inspect ok()/report().
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ckpt/absorber.hpp"
#include "fault/fault.hpp"
#include "pablo/trace.hpp"
#include "pfs/observer.hpp"
#include "sim/engine.hpp"

namespace paraio::testkit {

class InvariantChecker : public sim::EngineObserver,
                         public pfs::IoObserver,
                         public pablo::TraceSink {
 public:
  struct Options {
    /// PFS moves exactly the bytes the application asked for, so app-layer
    /// and disk-layer totals must match (M_GLOBAL excepted: one physical
    /// access serves every party, so disk <= app there).  PPFS caches and
    /// write-behind break exact equality; with this false the checker uses
    /// the cache-aware bounds instead.
    bool exact_conservation = true;
    /// Independently re-derive the segment decomposition for at most this
    /// many transfers (the per-segment checks always run).
    std::size_t segment_walk_limit = 256;
    /// Keep at most this many violation messages (the count keeps growing).
    std::size_t max_messages = 32;
  };

  InvariantChecker() = default;
  explicit InvariantChecker(Options options) : options_(options) {}

  // --- sim::EngineObserver ---
  void on_schedule(sim::SimTime now, sim::SimTime when) override;
  void on_event(sim::SimTime when) override;
  void on_run_complete(sim::SimTime now, std::size_t pending_events,
                       std::size_t live_tasks) override;

  // --- pfs::IoObserver ---
  void on_transfer(io::FileId file, std::uint64_t offset, std::uint64_t bytes,
                   bool is_write, const pfs::StripeParams& stripes,
                   const std::vector<pfs::Segment>& segments) override;
  void on_write_buffered(io::FileId file, std::uint64_t new_bytes) override;
  void on_buffer_flush(io::FileId file, std::uint64_t bytes) override;
  void on_measured_run_start() override;

  // --- pablo::TraceSink ---
  void on_event(const pablo::IoEvent& event) override;

  /// Feeds the mount's graceful-degradation accounting into finish():
  /// every recovered request must be resolved exactly once
  /// (requests == ok + failed — the RecoveryStats contract).
  void observe_recovery(const fault::RecoveryStats& stats);

  /// Feeds the checkpoint absorber's ledger into finish(): at quiescence
  /// every acknowledged byte is on an ION, still resident in the log, or
  /// explicitly lost (acked == drained + resident + lost).
  void observe_absorber(const ckpt::AbsorberStats& stats);

  /// Runs the end-of-experiment checks (conservation, write-behind ledger,
  /// any observed recovery/absorber accounting).  Call once after
  /// run_experiment() returns.
  void finish();

  [[nodiscard]] bool ok() const { return violation_count_ == 0; }
  [[nodiscard]] std::size_t violation_count() const {
    return violation_count_;
  }
  [[nodiscard]] const std::vector<std::string>& violations() const {
    return messages_;
  }
  /// All violation messages joined for assertion output ("ok" when clean).
  [[nodiscard]] std::string report() const;

  // Accumulators, exposed for the testkit's own unit tests.
  [[nodiscard]] std::uint64_t app_read() const { return app_read_; }
  [[nodiscard]] std::uint64_t app_written() const { return app_written_; }
  [[nodiscard]] std::uint64_t disk_read() const { return disk_read_; }
  [[nodiscard]] std::uint64_t disk_written() const { return disk_written_; }

 private:
  void violate(std::string message);

  Options options_;
  std::vector<std::string> messages_;
  std::size_t violation_count_ = 0;

  // Engine state.
  sim::SimTime last_event_time_ = 0.0;
  bool run_completed_ = false;

  // Byte ledgers.  App-layer totals come from the trace (measured run only);
  // disk-layer totals are zeroed at on_measured_run_start() to match.  File
  // sizes are tracked from mount time — staging creates the files the
  // measured run reads.
  std::uint64_t app_read_ = 0;
  std::uint64_t app_written_ = 0;
  std::uint64_t disk_read_ = 0;
  std::uint64_t disk_written_ = 0;
  std::uint64_t buffered_ = 0;
  std::uint64_t flushed_ = 0;
  std::size_t segment_walks_ = 0;
  bool saw_global_ = false;
  std::unordered_map<io::FileId, std::uint64_t> file_sizes_;

  // Snapshots handed in via observe_*; checked in finish() when present.
  bool have_recovery_ = false;
  fault::RecoveryStats recovery_;
  bool have_absorber_ = false;
  ckpt::AbsorberStats absorber_;
};

}  // namespace paraio::testkit
