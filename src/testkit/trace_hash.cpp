#include "testkit/trace_hash.hpp"

#include <cstring>
#include <map>

namespace paraio::testkit {

void Fnv64::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

std::uint64_t hash_trace(const pablo::Trace& trace) {
  Fnv64 h;
  h.u64(trace.events().size());
  for (const pablo::IoEvent& e : trace.events()) {
    h.f64(e.timestamp);
    h.f64(e.duration);
    h.u64(e.node);
    h.u64(e.file);
    h.u8(static_cast<std::uint8_t>(e.op));
    h.u64(e.offset);
    h.u64(e.requested);
    h.u64(e.transferred);
    h.u8(static_cast<std::uint8_t>(e.mode));
  }
  h.u64(trace.files().size());
  for (const auto& [id, path] : trace.files()) {
    h.u64(id);
    h.str(path);
  }
  return h.value();
}

std::uint64_t logical_signature(const pablo::Trace& trace) {
  // One running digest per node, fed that node's events in trace order
  // (per-node order is the application's own program order).  File ids are
  // mount-assignment artifacts; the registered path is the stable name.
  std::map<io::NodeId, Fnv64> streams;
  for (const pablo::IoEvent& e : trace.events()) {
    Fnv64& h = streams[e.node];
    h.str(trace.file_name(e.file));
    h.u8(static_cast<std::uint8_t>(e.op));
    h.u64(e.offset);
    h.u64(e.requested);
    h.u64(e.transferred);
    h.u8(static_cast<std::uint8_t>(e.mode));
  }
  // Commutative combine across nodes, but bind each stream to its node id so
  // two nodes swapping workloads changes the signature.
  std::uint64_t combined = 0x9E3779B97F4A7C15ULL ^ trace.events().size();
  for (const auto& [node, h] : streams) {
    Fnv64 bound;
    bound.u64(node);
    bound.u64(h.value());
    combined += bound.value();
  }
  return combined;
}

std::string hash_hex(std::uint64_t value) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[value & 0xF];
    value >>= 4;
  }
  return out;
}

}  // namespace paraio::testkit
