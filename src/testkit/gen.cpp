#include "testkit/gen.hpp"

#include <algorithm>
#include <sstream>

namespace paraio::testkit {

std::vector<std::uint64_t> shrink_u64(std::uint64_t v, std::uint64_t floor) {
  std::vector<std::uint64_t> out;
  if (v <= floor) return out;
  out.push_back(floor);
  // Halve the distance to the floor until the step disappears.
  std::uint64_t delta = (v - floor) / 2;
  while (delta > 0 && out.size() < 7) {
    const std::uint64_t candidate = floor + delta;
    if (candidate != out.back() && candidate != v) out.push_back(candidate);
    delta /= 2;
  }
  if (v - 1 > floor && (out.empty() || out.back() != v - 1)) {
    out.push_back(v - 1);
  }
  return out;
}

Gen<hw::MachineConfig> gen_machine(std::size_t min_compute,
                                   std::size_t max_compute,
                                   std::size_t max_ions) {
  return Gen<hw::MachineConfig>([=](sim::Rng& rng) {
    const std::size_t compute = rng.uniform_int(min_compute, max_compute);
    const std::size_t ions = rng.uniform_int(1, max_ions);
    return hw::MachineConfig::paragon_xps(compute, ions);
  });
}

Gen<pfs::PfsParams> gen_pfs_params() {
  return Gen<pfs::PfsParams>([](sim::Rng& rng) {
    pfs::PfsParams p;
    const std::uint64_t units[] = {4096, 16384, 65536};
    p.stripe_unit = units[rng.uniform_int(0, 2)];
    p.meta_service = sim::milliseconds(rng.uniform(0.5, 20.0));
    p.write_meta_service =
        rng.bernoulli(0.5) ? -1.0 : sim::milliseconds(rng.uniform(1.0, 50.0));
    p.open_service = sim::milliseconds(rng.uniform(1.0, 50.0));
    p.create_service =
        rng.bernoulli(0.5) ? -1.0 : sim::milliseconds(rng.uniform(5.0, 200.0));
    p.close_service = sim::milliseconds(rng.uniform(0.5, 10.0));
    p.flush_service = sim::milliseconds(rng.uniform(0.5, 10.0));
    p.data_service =
        rng.bernoulli(0.5) ? 0.0 : sim::milliseconds(rng.uniform(0.1, 5.0));
    p.async_issue = sim::milliseconds(rng.uniform(1.0, 10.0));
    p.write_control_rpc = rng.bernoulli(0.5);
    return p;
  });
}

Gen<ppfs::PpfsParams> gen_ppfs_params() {
  return Gen<ppfs::PpfsParams>([](sim::Rng& rng) {
    ppfs::PpfsParams p;
    p.block_size = rng.bernoulli(0.5) ? 16 * 1024 : 64 * 1024;
    const std::size_t cache_choices[] = {0, 4, 16, 64};
    p.cache_blocks = cache_choices[rng.uniform_int(0, 3)];
    p.write_behind = rng.bernoulli(0.5);
    const std::uint64_t limits[] = {64ULL << 10, 256ULL << 10, 1ULL << 20};
    p.write_buffer_limit = limits[rng.uniform_int(0, 2)];
    p.aggregation = rng.bernoulli(0.5);
    p.merge_gap = rng.bernoulli(0.5) ? 0 : 64 * 1024;
    p.ion_cache_blocks = rng.bernoulli(0.3) ? 8 : 0;
    const ppfs::PrefetchPolicy policies[] = {ppfs::PrefetchPolicy::kNone,
                                             ppfs::PrefetchPolicy::kSequential,
                                             ppfs::PrefetchPolicy::kAdaptive};
    p.prefetch = policies[rng.uniform_int(0, 2)];
    p.prefetch_depth = rng.uniform_int(1, 4);
    return p;
  });
}

Gen<apps::SyntheticConfig> gen_synthetic(std::uint32_t max_nodes) {
  return Gen<apps::SyntheticConfig>([max_nodes](sim::Rng& rng) {
    apps::SyntheticConfig cfg;
    cfg.nodes = static_cast<std::uint32_t>(rng.uniform_int(1, max_nodes));
    cfg.seed = rng.next_u64();
    cfg.region_bytes = 256 * 1024;
    const std::size_t phase_count = rng.uniform_int(1, 3);
    for (std::size_t i = 0; i < phase_count; ++i) {
      apps::SyntheticPhase phase;
      // Appended (not operator+) to dodge GCC 12's bogus -Wrestrict at -O3.
      phase.name = "p";
      phase.name += std::to_string(i);
      phase.direction = rng.bernoulli(0.5) ? apps::SyntheticDirection::kRead
                                           : apps::SyntheticDirection::kWrite;
      const apps::SyntheticPattern patterns[] = {
          apps::SyntheticPattern::kSequential,
          apps::SyntheticPattern::kStrided,
          apps::SyntheticPattern::kRandom,
          apps::SyntheticPattern::kOwnRegion};
      phase.pattern = patterns[rng.uniform_int(0, 3)];
      phase.layout = rng.bernoulli(0.5) ? apps::SyntheticFileLayout::kShared
                                        : apps::SyntheticFileLayout::kPerNode;
      phase.requests = static_cast<std::uint32_t>(rng.uniform_int(1, 10));
      phase.size = rng.uniform_int(64, 32 * 1024);
      phase.size_jitter = rng.bernoulli(0.3) ? rng.uniform(0.0, 0.3) : 0.0;
      phase.stride = rng.bernoulli(0.5) ? 0 : phase.size * 2;
      phase.think_time = rng.bernoulli(0.5) ? 0.0 : rng.uniform(0.001, 0.02);
      phase.barrier_entry = rng.bernoulli(0.3);
      cfg.phases.push_back(phase);
    }
    return cfg;
  });
}

Gen<SimCase> gen_sim_case(core::FsChoice::Kind kind) {
  return Gen<SimCase>([kind](sim::Rng& rng) {
    SimCase c;
    c.workload = gen_synthetic()(rng);
    // The interconnect addresses compute nodes [0, compute); the workload
    // must fit inside the partition.
    c.machine = gen_machine(c.workload.nodes,
                            std::max<std::size_t>(c.workload.nodes, 12))(rng);
    if (kind == core::FsChoice::Kind::kPfs) {
      c.filesystem = core::FsChoice::pfs(gen_pfs_params()(rng));
    } else {
      c.filesystem = core::FsChoice::ppfs(gen_ppfs_params()(rng));
    }
    return c;
  });
}

namespace {

const char* pattern_name(apps::SyntheticPattern p) {
  switch (p) {
    case apps::SyntheticPattern::kSequential: return "seq";
    case apps::SyntheticPattern::kStrided: return "strided";
    case apps::SyntheticPattern::kRandom: return "random";
    case apps::SyntheticPattern::kOwnRegion: return "own-region";
  }
  return "?";
}

}  // namespace

std::string SimCase::describe() const {
  std::ostringstream out;
  out << (on_ppfs() ? "ppfs" : "pfs") << " machine=" << machine.compute_nodes
      << "x" << machine.io_nodes << " nodes=" << workload.nodes << " seed=0x"
      << std::hex << workload.seed << std::dec;
  for (const apps::SyntheticPhase& ph : workload.phases) {
    out << " [" << ph.name << ": "
        << (ph.direction == apps::SyntheticDirection::kRead ? "read" : "write")
        << " " << pattern_name(ph.pattern) << " x" << ph.requests << " @"
        << ph.size
        << (ph.layout == apps::SyntheticFileLayout::kShared ? " shared"
                                                            : " per-node")
        << (ph.barrier_entry ? " barrier" : "") << "]";
  }
  return out.str();
}

std::vector<apps::SyntheticConfig> shrink_synthetic(
    const apps::SyntheticConfig& config) {
  std::vector<apps::SyntheticConfig> out;
  // Drop whole phases first: the biggest structural simplification.
  if (config.phases.size() > 1) {
    for (std::size_t i = 0; i < config.phases.size(); ++i) {
      apps::SyntheticConfig c = config;
      c.phases.erase(c.phases.begin() + static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(c));
    }
  }
  for (std::uint64_t nodes : shrink_u64(config.nodes, 1)) {
    apps::SyntheticConfig c = config;
    c.nodes = static_cast<std::uint32_t>(nodes);
    out.push_back(std::move(c));
  }
  for (std::size_t i = 0; i < config.phases.size(); ++i) {
    for (std::uint64_t requests : shrink_u64(config.phases[i].requests, 1)) {
      apps::SyntheticConfig c = config;
      c.phases[i].requests = static_cast<std::uint32_t>(requests);
      out.push_back(std::move(c));
    }
    for (std::uint64_t size : shrink_u64(config.phases[i].size, 64)) {
      apps::SyntheticConfig c = config;
      c.phases[i].size = size;
      out.push_back(std::move(c));
    }
    const apps::SyntheticPhase& ph = config.phases[i];
    if (ph.think_time > 0.0 || ph.barrier_entry || ph.size_jitter > 0.0) {
      apps::SyntheticConfig c = config;
      c.phases[i].think_time = 0.0;
      c.phases[i].barrier_entry = false;
      c.phases[i].size_jitter = 0.0;
      out.push_back(std::move(c));
    }
  }
  return out;
}

Gen<fault::FaultPlan> gen_fault_plan(std::size_t io_nodes, std::size_t disks,
                                     double horizon) {
  return Gen<fault::FaultPlan>([io_nodes, disks, horizon](sim::Rng& rng) {
    fault::FaultPlan plan;
    plan.seed = rng.next_u64();
    const std::size_t injections = rng.uniform_int(1, 3);
    for (std::size_t i = 0; i < injections; ++i) {
      const sim::SimTime at = rng.uniform(0.0, horizon);
      const auto ion =
          static_cast<std::uint32_t>(rng.uniform_int(0, io_nodes - 1));
      switch (rng.uniform_int(0, 3)) {
        case 0: {
          const auto disk =
              static_cast<std::uint32_t>(rng.uniform_int(0, disks - 1));
          plan.add({at, fault::FaultKind::kDiskFail, ion, disk, 0.0});
          plan.add({at + rng.uniform(0.01, horizon),
                    fault::FaultKind::kDiskRepair, ion, disk, 0.0});
          break;
        }
        case 1: {
          plan.add({at, fault::FaultKind::kIonCrash, ion, 0, 0.0});
          plan.add({at + rng.uniform(0.01, horizon / 2),
                    fault::FaultKind::kIonRestart, ion, 0, 0.0});
          break;
        }
        case 2: {
          plan.add({at, fault::FaultKind::kNetLoss, 0, 0,
                    rng.uniform(0.05, 0.4)});
          plan.add({at + rng.uniform(0.01, horizon / 2),
                    fault::FaultKind::kNetLoss, 0, 0, 0.0});
          break;
        }
        default: {
          plan.add({at, fault::FaultKind::kNetDelay, 0, 0,
                    rng.uniform(1e-4, 5e-3)});
          plan.add({at + rng.uniform(0.01, horizon / 2),
                    fault::FaultKind::kNetDelay, 0, 0, 0.0});
          break;
        }
      }
    }
    return plan;
  });
}

Gen<FaultCase> gen_fault_case() {
  return Gen<FaultCase>([](sim::Rng& rng) {
    FaultCase fc;
    fc.base = gen_sim_case(core::FsChoice::Kind::kPpfs)(rng);
    fc.plan = gen_fault_plan(fc.base.machine.io_nodes,
                             fc.base.machine.raid.disks)(rng);
    return fc;
  });
}

std::string FaultCase::describe() const {
  return base.describe() + "\n" + plan.describe();
}

std::vector<FaultCase> shrink_fault_case(const FaultCase& failing) {
  std::vector<FaultCase> out;
  if (!failing.plan.empty()) {
    // Is the fault schedule implicated at all?
    FaultCase none = failing;
    none.plan.events.clear();
    out.push_back(std::move(none));
    for (std::size_t i = 0; i < failing.plan.events.size(); ++i) {
      FaultCase c = failing;
      c.plan.events.erase(c.plan.events.begin() +
                          static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(c));
    }
  }
  for (SimCase& base : shrink_sim_case(failing.base)) {
    FaultCase c = failing;
    // The shrunk machine may have fewer I/O nodes; keep targets in range.
    const auto ions = static_cast<std::uint32_t>(base.machine.io_nodes);
    c.base = std::move(base);
    for (fault::FaultEvent& e : c.plan.events) e.ion %= ions;
    out.push_back(std::move(c));
  }
  return out;
}

std::vector<SimCase> shrink_sim_case(const SimCase& failing) {
  std::vector<SimCase> out;
  for (apps::SyntheticConfig& workload : shrink_synthetic(failing.workload)) {
    SimCase c = failing;
    c.workload = std::move(workload);
    c.machine.compute_nodes =
        std::max<std::size_t>(c.machine.compute_nodes, c.workload.nodes);
    out.push_back(std::move(c));
  }
  if (failing.machine.io_nodes > 1) {
    SimCase c = failing;
    c.machine.io_nodes = 1;
    out.push_back(std::move(c));
  }
  if (failing.on_ppfs()) {
    // A policy-free mount isolates whether caching/write-behind is implicated.
    const ppfs::PpfsParams bare = ppfs::PpfsParams::no_policies();
    if (failing.filesystem.ppfs_params.cache_blocks != bare.cache_blocks ||
        failing.filesystem.ppfs_params.write_behind != bare.write_behind ||
        failing.filesystem.ppfs_params.aggregation != bare.aggregation ||
        failing.filesystem.ppfs_params.prefetch != bare.prefetch) {
      SimCase c = failing;
      c.filesystem = core::FsChoice::ppfs(bare);
      out.push_back(std::move(c));
    }
  }
  return out;
}

Gen<CkptCase> gen_ckpt_case() {
  return Gen<CkptCase>([](sim::Rng& rng) {
    CkptCase cc;
    cc.base = gen_sim_case(core::FsChoice::Kind::kPpfs)(rng);
    cc.plan = gen_fault_plan(cc.base.machine.io_nodes,
                             cc.base.machine.raid.disks)(rng);
    cc.spec.enabled = true;
    cc.spec.backend = ckpt::CkptBackend::kAbsorber;
    cc.spec.every = static_cast<std::uint32_t>(rng.uniform_int(1, 6));
    cc.spec.state_bytes = rng.uniform_int(4, 128) * 1024;
    // Chunks no larger than the state: 1-8 chunks per dump burst.
    cc.spec.chunk_bytes =
        std::max<std::uint64_t>(cc.spec.state_bytes / rng.uniform_int(1, 8),
                                1024);
    return cc;
  });
}

std::string CkptCase::describe() const {
  std::ostringstream out;
  out << base.describe() << "\n ckpt every=" << spec.every
      << " state=" << spec.state_bytes << " chunk=" << spec.chunk_bytes
      << "\n" << plan.describe();
  return out.str();
}

std::vector<CkptCase> shrink_ckpt_case(const CkptCase& failing) {
  std::vector<CkptCase> out;
  if (!failing.plan.empty()) {
    // Is the fault schedule implicated at all?
    CkptCase none = failing;
    none.plan.events.clear();
    out.push_back(std::move(none));
    for (std::size_t i = 0; i < failing.plan.events.size(); ++i) {
      CkptCase c = failing;
      c.plan.events.erase(c.plan.events.begin() +
                          static_cast<std::ptrdiff_t>(i));
      out.push_back(std::move(c));
    }
  }
  // Fewer, smaller dumps keep failing?  (Doubling `every` halves the epoch
  // count; halving state_bytes shrinks each burst.)
  if (failing.spec.state_bytes > 4096) {
    CkptCase c = failing;
    c.spec.state_bytes /= 2;
    c.spec.chunk_bytes = std::min(c.spec.chunk_bytes, c.spec.state_bytes);
    out.push_back(std::move(c));
  }
  if (failing.spec.every < 16) {
    CkptCase c = failing;
    c.spec.every *= 2;
    out.push_back(std::move(c));
  }
  for (SimCase& base : shrink_sim_case(failing.base)) {
    CkptCase c = failing;
    const auto ions = static_cast<std::uint32_t>(base.machine.io_nodes);
    c.base = std::move(base);
    for (fault::FaultEvent& e : c.plan.events) e.ion %= ions;
    out.push_back(std::move(c));
  }
  return out;
}

}  // namespace paraio::testkit
