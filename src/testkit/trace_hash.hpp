// Canonical trace hashes for regression and differential testing.
//
// Two digests over a captured pablo::Trace:
//
//   hash_trace()        — full fidelity: every event field including the
//                         exact f64 bit patterns of timestamps and
//                         durations, plus the file-name registry.  Two
//                         traces hash equal iff they are bit-identical —
//                         the determinism and golden-trace contract.
//
//   logical_signature() — timing-free: each node's sequential stream of
//                         (file path, op, offset, requested, transferred,
//                         mode), combined order-independently across nodes.
//                         Two runs that do the same I/O in the same per-node
//                         order sign equal even when timing interleaves the
//                         global event log differently — the contract for
//                         comparing a workload across file systems.
//
// Both use FNV-1a 64; the exact digest values are part of the golden-trace
// store, so the hash function must never change silently.
#pragma once

#include <cstdint>
#include <string>

#include "pablo/trace.hpp"

namespace paraio::testkit {

/// Streaming FNV-1a 64-bit.
class Fnv64 {
 public:
  void bytes(const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001B3ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof(v)); }
  void u8(std::uint8_t v) { bytes(&v, sizeof(v)); }
  /// Hashes the exact bit pattern (distinguishes -0.0 from 0.0 etc.).
  void f64(double v);
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  [[nodiscard]] std::uint64_t value() const { return hash_; }

 private:
  std::uint64_t hash_ = 0xCBF29CE484222325ULL;
};

/// Bit-exact digest of the whole trace (events + file registry).
[[nodiscard]] std::uint64_t hash_trace(const pablo::Trace& trace);

/// Timing-free, per-node order-only digest (see file comment).
[[nodiscard]] std::uint64_t logical_signature(const pablo::Trace& trace);

/// 16-digit lowercase hex rendering, the golden-store value format.
[[nodiscard]] std::string hash_hex(std::uint64_t value);

}  // namespace paraio::testkit
