#include "testkit/golden.hpp"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

namespace paraio::testkit {

namespace {
bool g_update_mode = false;
}  // namespace

void GoldenStore::set_update_mode(bool on) { g_update_mode = on; }
bool GoldenStore::update_mode() { return g_update_mode; }

void GoldenStore::consume_update_flag(int* argc, char** argv) {
  int kept = 1;
  for (int i = 1; i < *argc; ++i) {
    if (std::strcmp(argv[i], "--update-golden") == 0) {
      set_update_mode(true);
    } else {
      argv[kept++] = argv[i];
    }
  }
  for (int i = kept; i < *argc; ++i) argv[i] = nullptr;
  *argc = kept;
}

GoldenStore::GoldenStore(std::string path) : path_(std::move(path)) {
  std::ifstream in(path_);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    entries_[line.substr(0, space)] = line.substr(space + 1);
  }
}

std::optional<std::string> GoldenStore::lookup(const std::string& key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

void GoldenStore::set(const std::string& key, const std::string& value) {
  auto it = entries_.find(key);
  if (it != entries_.end() && it->second == value) return;
  entries_[key] = value;
  dirty_ = true;
}

std::optional<std::string> GoldenStore::check(const std::string& key,
                                              const std::string& actual) {
  if (update_mode()) {
    set(key, actual);
    return std::nullopt;
  }
  const std::optional<std::string> expected = lookup(key);
  if (!expected) {
    return "no golden entry for '" + key + "' in " + path_ +
           " (got " + actual + "; rerun with --update-golden to record it)";
  }
  if (*expected != actual) {
    return "golden mismatch for '" + key + "': expected " + *expected +
           ", got " + actual +
           " (if the model change is intentional, rerun with --update-golden)";
  }
  return std::nullopt;
}

bool GoldenStore::save() const {
  std::ofstream out(path_, std::ios::trunc);
  if (!out) return false;
  out << "# Golden trace digests.  Regenerate with:\n"
         "#   ./test_golden --update-golden\n"
         "# (see docs/TESTING.md before re-baselining)\n";
  for (const auto& [key, value] : entries_) {
    out << key << ' ' << value << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace paraio::testkit
