#include "testkit/invariants.hpp"

#include <algorithm>
#include <sstream>

#include "pfs/stripe.hpp"

namespace paraio::testkit {

void InvariantChecker::violate(std::string message) {
  ++violation_count_;
  if (messages_.size() < options_.max_messages) {
    messages_.push_back(std::move(message));
  }
}

std::string InvariantChecker::report() const {
  if (ok()) return "ok";
  std::ostringstream out;
  out << violation_count_ << " invariant violation(s):";
  for (const std::string& m : messages_) out << "\n  - " << m;
  if (violation_count_ > messages_.size()) {
    out << "\n  ... (" << violation_count_ - messages_.size() << " more)";
  }
  return out.str();
}

// --- sim::EngineObserver -----------------------------------------------------

void InvariantChecker::on_schedule(sim::SimTime now, sim::SimTime when) {
  if (when < now) {
    std::ostringstream out;
    out << "event scheduled in the past: when=" << when << " < now=" << now;
    violate(out.str());
  }
}

void InvariantChecker::on_event(sim::SimTime when) {
  if (when < last_event_time_) {
    std::ostringstream out;
    out << "simulated time ran backwards: event at " << when
        << " after event at " << last_event_time_;
    violate(out.str());
  }
  last_event_time_ = std::max(last_event_time_, when);
}

void InvariantChecker::on_run_complete(sim::SimTime now,
                                       std::size_t pending_events,
                                       std::size_t live_tasks) {
  run_completed_ = true;
  if (pending_events != 0) {
    std::ostringstream out;
    out << "run() returned with " << pending_events
        << " pending event(s) at t=" << now;
    violate(out.str());
  }
  if (live_tasks != 0) {
    std::ostringstream out;
    out << live_tasks << " task(s) still blocked after the queue drained"
        << " (deadlocked process?) at t=" << now;
    violate(out.str());
  }
}

// --- pfs::IoObserver ---------------------------------------------------------

void InvariantChecker::on_transfer(io::FileId file, std::uint64_t offset,
                                   std::uint64_t bytes, bool is_write,
                                   const pfs::StripeParams& stripes,
                                   const std::vector<pfs::Segment>& segments) {
  std::uint64_t total = 0;
  for (const pfs::Segment& seg : segments) {
    total += seg.length;
    if (seg.ion >= stripes.io_nodes) {
      std::ostringstream out;
      out << "segment targets I/O node " << seg.ion << " of "
          << stripes.io_nodes << " (file " << file << ", offset " << offset
          << ")";
      violate(out.str());
    }
    if (seg.length == 0) {
      std::ostringstream out;
      out << "zero-length segment on I/O node " << seg.ion << " (file "
          << file << ", offset " << offset << ")";
      violate(out.str());
    }
  }
  if (total != bytes) {
    std::ostringstream out;
    out << "segment lengths sum to " << total << ", request was " << bytes
        << " bytes (file " << file << ", offset " << offset << ")";
    violate(out.str());
  }
  if (segment_walks_ < options_.segment_walk_limit && bytes > 0) {
    ++segment_walks_;
    const pfs::StripeMap map(stripes);
    if (map.decompose(offset, bytes) != segments) {
      std::ostringstream out;
      out << "segment list disagrees with an independent stripe walk (file "
          << file << ", offset " << offset << ", " << bytes << " bytes)";
      violate(out.str());
    }
  }

  std::uint64_t& size = file_sizes_[file];
  if (is_write) {
    disk_written_ += bytes;
    size = std::max(size, offset + bytes);
  } else {
    disk_read_ += bytes;
    if (bytes > 0 && offset + bytes > size) {
      std::ostringstream out;
      out << "disk read of [" << offset << ", " << offset + bytes
          << ") beyond the " << size << " bytes ever written to file "
          << file;
      violate(out.str());
    }
  }
}

void InvariantChecker::on_write_buffered(io::FileId /*file*/,
                                         std::uint64_t new_bytes) {
  buffered_ += new_bytes;
}

void InvariantChecker::on_buffer_flush(io::FileId /*file*/,
                                       std::uint64_t bytes) {
  flushed_ += bytes;
}

void InvariantChecker::on_measured_run_start() {
  // The trace only covers the measured run; restart the disk-side ledgers so
  // the two layers are comparable.  File sizes persist: staging created the
  // files the measured run reads.
  disk_read_ = 0;
  disk_written_ = 0;
  buffered_ = 0;
  flushed_ = 0;
}

// --- pablo::TraceSink --------------------------------------------------------

void InvariantChecker::on_event(const pablo::IoEvent& event) {
  if (event.duration < 0.0) {
    std::ostringstream out;
    out << "negative duration " << event.duration << " on "
        << pablo::to_string(event.op) << " at t=" << event.timestamp;
    violate(out.str());
  }
  if (event.timestamp < 0.0) {
    std::ostringstream out;
    out << "negative timestamp " << event.timestamp << " on "
        << pablo::to_string(event.op);
    violate(out.str());
  }
  if (event.is_data_op() && event.transferred > event.requested) {
    std::ostringstream out;
    out << pablo::to_string(event.op) << " transferred " << event.transferred
        << " bytes, more than the " << event.requested << " requested";
    violate(out.str());
  }
  if (event.mode == io::AccessMode::kGlobal) saw_global_ = true;
  if (event.moves_data_to_app()) app_read_ += event.transferred;
  if (event.moves_data_to_storage()) app_written_ += event.transferred;
}

// --- end-of-run checks -------------------------------------------------------

void InvariantChecker::observe_recovery(const fault::RecoveryStats& stats) {
  have_recovery_ = true;
  recovery_ = stats;
}

void InvariantChecker::observe_absorber(const ckpt::AbsorberStats& stats) {
  have_absorber_ = true;
  absorber_ = stats;
}

void InvariantChecker::finish() {
  if (options_.exact_conservation) {
    // PFS: every application byte crosses the wire exactly once — except in
    // M_GLOBAL, where one physical access serves all parties.
    const bool reads_ok = saw_global_ ? disk_read_ <= app_read_
                                      : disk_read_ == app_read_;
    if (!reads_ok) {
      std::ostringstream out;
      out << "read bytes not conserved: app layer " << app_read_
          << ", disk layer " << disk_read_;
      violate(out.str());
    }
    const bool writes_ok = saw_global_ ? disk_written_ <= app_written_
                                       : disk_written_ == app_written_;
    if (!writes_ok) {
      std::ostringstream out;
      out << "written bytes not conserved: app layer " << app_written_
          << ", disk layer " << disk_written_;
      violate(out.str());
    }
  } else {
    // PPFS: write-behind coalesces overlap, so the disk sees at most what
    // the application wrote; client caching and block-granular fetch mean
    // no exact relation holds for reads (the per-transfer extent check
    // still bounds them).
    if (disk_written_ > app_written_) {
      std::ostringstream out;
      out << "disk wrote " << disk_written_
          << " bytes, more than the application's " << app_written_;
      violate(out.str());
    }
  }
  if (buffered_ != flushed_) {
    std::ostringstream out;
    out << "write-behind ledger out of balance: " << buffered_
        << " bytes buffered, " << flushed_ << " flushed";
    violate(out.str());
  }
  if (have_recovery_ && recovery_.requests != recovery_.ok + recovery_.failed) {
    std::ostringstream out;
    out << "recovery accounting out of balance: " << recovery_.requests
        << " requests != " << recovery_.ok << " ok + " << recovery_.failed
        << " failed";
    violate(out.str());
  }
  if (have_absorber_) {
    const std::uint64_t accounted = absorber_.drained_bytes +
                                    absorber_.log_resident_bytes +
                                    absorber_.dirty_bytes_lost;
    if (absorber_.acked_bytes != accounted) {
      std::ostringstream out;
      out << "absorber ledger out of balance: " << absorber_.acked_bytes
          << " bytes acked != " << absorber_.drained_bytes << " drained + "
          << absorber_.log_resident_bytes << " resident + "
          << absorber_.dirty_bytes_lost << " lost";
      violate(out.str());
    }
  }
}

}  // namespace paraio::testkit
