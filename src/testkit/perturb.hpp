// Schedule-perturbation checking: re-run an experiment under permuted
// same-instant event tie-breaks and assert the result is schedule-invariant.
//
// The event queue breaks ties between events scheduled for the same
// simulated instant by insertion order (FIFO).  That order is an accident of
// code layout: any permutation of same-instant events is an equally valid
// causal schedule, so behavior that changes under a permutation is a hidden
// scheduling dependency — exactly the bug class the golden traces would
// otherwise bake in as "expected".
//
// Two invariance levels:
//
//   kLogical  (default) — the timing-free logical_signature() must be
//       identical under every seed.  This is the paper's characterization
//       contract (which I/O, in what per-node order) and holds for every
//       correct workload, including contended ones.
//   kBitExact — hash_trace() must be identical under every seed.  Strictly
//       stronger, and *expected to fail* for workloads where simultaneous
//       requests contend for a shared resource: the tie-break then decides
//       which request wins the queue, so durations (not just ordering)
//       legitimately shift.  Use it for workloads designed to be
//       contention-free, or to demonstrate that a divergence is caught.
//
// Under kLogical the checker still computes bit-exact digests and reports
// timing-only divergences informationally (timing_only_seeds) without
// failing the run.
//
// Seeds permute via a splitmix64 key (see EventQueue::set_tie_break_seed);
// for tiny runs exhaustive_event_limit can instead sweep a contiguous seed
// range as a bounded approximation of all interleavings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/experiment.hpp"

namespace paraio::testkit {

enum class Invariance : std::uint8_t {
  kLogical,   // logical_signature() invariant (default contract)
  kBitExact,  // hash_trace() invariant (contention-free workloads only)
};

struct PerturbConfig {
  /// Number of perturbed runs (seeds base_seed .. base_seed + shuffles - 1)
  /// compared against the baseline FIFO run (seed 0).
  int shuffles = 16;
  std::uint64_t base_seed = 1;
  /// When > 0 and the baseline run executes at most this many kernel events,
  /// the checker upgrades to a bounded exhaustive sweep of
  /// `exhaustive_budget` consecutive seeds instead of `shuffles`.
  std::uint64_t exhaustive_event_limit = 0;
  int exhaustive_budget = 64;
  Invariance level = Invariance::kLogical;
};

/// One seed whose run broke the invariance contract.
struct Divergence {
  std::uint64_t seed = 0;
  std::string what;    // "logical-signature" or "bit-exact-hash"
  std::string detail;  // digests, first differing event, repro instructions
};

struct PerturbResult {
  int runs = 0;                  // perturbed runs executed (excl. baseline)
  bool exhaustive = false;       // the bounded exhaustive sweep was used
  std::uint64_t baseline_events = 0;
  std::string baseline_signature;  // hash_hex of the seed-0 logical signature
  std::string baseline_hash;       // hash_hex of the seed-0 bit-exact hash
  std::vector<Divergence> divergences;
  /// Seeds where the bit-exact hash moved but the logical signature held —
  /// informational under kLogical, already in `divergences` under kBitExact.
  std::vector<std::uint64_t> timing_only_seeds;

  [[nodiscard]] bool ok() const { return divergences.empty(); }
  /// Human-readable summary ("ok (N shuffles, ...)" when clean).
  [[nodiscard]] std::string report() const;
};

/// Runs `config` once at seed 0, then under perturbed tie-break seeds, and
/// checks the selected invariance level.  `config.tie_break_seed` is
/// overridden per run; everything else is used as given.
[[nodiscard]] PerturbResult check_schedule_invariance(
    const core::ExperimentConfig& config, const PerturbConfig& perturb = {});

}  // namespace paraio::testkit
