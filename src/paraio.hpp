// Umbrella header: the full public API of the paraio toolkit.
//
// Fine-grained headers remain available (and are preferred inside the
// library itself); this is the convenience include for applications.
#pragma once

// Simulation substrate.
#include "sim/channel.hpp"      // IWYU pragma: export
#include "sim/engine.hpp"       // IWYU pragma: export
#include "sim/random.hpp"       // IWYU pragma: export
#include "sim/sync.hpp"         // IWYU pragma: export
#include "sim/task.hpp"         // IWYU pragma: export
#include "sim/task_group.hpp"   // IWYU pragma: export

// Hardware models.
#include "hw/machine.hpp"       // IWYU pragma: export

// File systems.
#include "io/file.hpp"          // IWYU pragma: export
#include "pfs/pfs.hpp"          // IWYU pragma: export
#include "ppfs/ppfs.hpp"        // IWYU pragma: export

// Instrumentation and trace tooling.
#include "pablo/filter.hpp"     // IWYU pragma: export
#include "pablo/instrument.hpp" // IWYU pragma: export
#include "pablo/sddf.hpp"       // IWYU pragma: export
#include "pablo/summary.hpp"    // IWYU pragma: export

// Analysis.
#include "analysis/histogram.hpp"  // IWYU pragma: export
#include "analysis/op_stats.hpp"   // IWYU pragma: export
#include "analysis/pattern.hpp"    // IWYU pragma: export
#include "analysis/phases.hpp"     // IWYU pragma: export
#include "analysis/report.hpp"     // IWYU pragma: export
#include "analysis/survival.hpp"   // IWYU pragma: export
#include "analysis/tables.hpp"     // IWYU pragma: export
#include "analysis/timeline.hpp"   // IWYU pragma: export

// Applications and experiments.
#include "apps/escat.hpp"       // IWYU pragma: export
#include "apps/htf.hpp"         // IWYU pragma: export
#include "apps/render.hpp"      // IWYU pragma: export
#include "core/experiment.hpp"  // IWYU pragma: export
#include "core/report.hpp"      // IWYU pragma: export
