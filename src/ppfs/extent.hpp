// Ordered set of byte extents with automatic coalescing.
//
// The write-behind buffer accumulates application writes as extents; because
// overlapping and adjacent inserts merge, a burst of small contiguous writes
// (ESCAT's 2 KB quadrature records) collapses into a handful of large
// extents before anything reaches an I/O node — the client half of the
// paper's §5.2 "write behind + request aggregation" result.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace paraio::ppfs {

struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  [[nodiscard]] std::uint64_t end() const { return offset + length; }
  friend bool operator==(const Extent&, const Extent&) = default;
};

class ExtentSet {
 public:
  /// Inserts [offset, offset+length), merging with overlapping or adjacent
  /// extents.
  void insert(std::uint64_t offset, std::uint64_t length);

  /// True if any byte of [offset, offset+length) is present.
  [[nodiscard]] bool overlaps(std::uint64_t offset, std::uint64_t length) const;

  /// True if every byte of [offset, offset+length) is present.
  [[nodiscard]] bool covers(std::uint64_t offset, std::uint64_t length) const;

  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::size_t count() const noexcept { return extents_.size(); }
  [[nodiscard]] bool empty() const noexcept { return extents_.empty(); }
  /// Largest end offset present (0 when empty).
  [[nodiscard]] std::uint64_t max_end() const;

  /// Extents in offset order.
  [[nodiscard]] std::vector<Extent> extents() const;

  void clear() {
    extents_.clear();
    bytes_ = 0;
  }

 private:
  std::map<std::uint64_t, std::uint64_t> extents_;  // offset -> length
  std::uint64_t bytes_ = 0;
};

}  // namespace paraio::ppfs
