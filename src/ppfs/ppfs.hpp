// PPFS — the portable parallel file system with tunable policies.
//
// Reproduces the system the paper's group built (Huber et al. [8]) and used
// for the §5.2 ablation: a client/server parallel file system where the
// application can choose, per mount,
//
//   * client block caching with LRU replacement,
//   * write-behind (writes land in a client buffer; coalesced extents are
//     flushed at a watermark and on flush/close),
//   * global request aggregation at the I/O node servers,
//   * prefetching: none, fixed sequential read-ahead, or adaptive
//     (classifier-driven, the paper's §10 future work).
//
// Architectural differences from the Intel PFS model that matter to the
// experiments: seeks are client-local (no metadata RPC), and only the
// independent-pointer access modes (M_UNIX / M_ASYNC semantics, plus the
// M_RECORD offset discipline) are supported — shared-pointer modes throw.
// Single-writer sharing per file region is assumed (true of all three
// application codes); client caches are not kept coherent across nodes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/fault.hpp"
#include "hw/machine.hpp"
#include "io/file.hpp"
#include "io/outcome.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pfs/observer.hpp"
#include "pfs/stripe.hpp"
#include "ppfs/cache.hpp"
#include "ppfs/classifier.hpp"
#include "ppfs/extent.hpp"
#include "ppfs/ion_server.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace paraio::ppfs {

enum class PrefetchPolicy { kNone, kSequential, kAdaptive };

struct PpfsParams {
  std::uint64_t block_size = 64 * 1024;
  /// Client cache capacity per node, in blocks (0 disables caching).
  std::size_t cache_blocks = 64;
  bool write_behind = true;
  /// Flush a file's write buffer when it exceeds this many bytes.
  std::uint64_t write_buffer_limit = 1 << 20;
  bool aggregation = true;
  /// Merge window for ION-side aggregation (bytes of disk-address gap).
  std::uint64_t merge_gap = 64 * 1024;
  /// Server-side (I/O node) block cache capacity per ION, in 64 KB blocks
  /// (0 disables).  Two-level buffering per the paper's §8; serves
  /// cross-node rereads that per-client caches cannot.
  std::size_t ion_cache_blocks = 0;
  PrefetchPolicy prefetch = PrefetchPolicy::kNone;
  /// Read-ahead depth in blocks for sequential/adaptive prefetch.
  std::size_t prefetch_depth = 2;
  /// Client memory copy bandwidth for cache hits and buffered writes.
  double copy_rate = 200e6;
  /// Metadata service times (cheaper than PFS: lean user-level servers).
  sim::SimDuration open_service = sim::milliseconds(3.0);
  sim::SimDuration close_service = sim::milliseconds(1.0);
  sim::SimDuration meta_service = sim::milliseconds(1.0);
  std::uint32_t control_bytes = 64;
  /// Client-side recovery: request timeout, exponential backoff with
  /// seeded jitter, and ION failover.  Inert on a fault-free run (the
  /// retry loop never engages and the jitter stream is never drawn from).
  /// Control RPCs (open/close/metadata) are not retried: the metadata
  /// service is modeled as always available.
  fault::RecoveryPolicy recovery;

  /// Policy preset matching the paper's §5.2 ESCAT port: write-behind with
  /// global request aggregation.
  static PpfsParams write_behind_aggregation() { return {}; }
  /// Everything off: a plain client/server file system (ablation baseline).
  static PpfsParams no_policies() {
    PpfsParams p;
    p.cache_blocks = 0;
    p.write_behind = false;
    p.aggregation = false;
    p.prefetch = PrefetchPolicy::kNone;
    return p;
  }
};

struct PpfsCounters {
  std::uint64_t reads = 0;           // application-level
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t flushes = 0;         // write-buffer flushes
  std::uint64_t flush_extents = 0;   // extents shipped by those flushes
  std::uint64_t prefetch_issued = 0;
};

class Ppfs;

namespace detail {

struct PpfsFileObject {
  io::FileId id = 0;
  std::string name;
  std::uint64_t size = 0;  // server-side size (flushed data)
  pfs::StripeMap stripes;
  std::uint32_t open_handles = 0;

  PpfsFileObject(io::FileId id_, std::string name_,
                 const pfs::StripeParams& sp)
      : id(id_), name(std::move(name_)), stripes(sp) {}

  [[nodiscard]] std::uint64_t disk_base() const {
    return static_cast<std::uint64_t>(id) << 30;
  }
};

/// Per-(node, file) write-behind buffer.
struct WriteBuffer {
  ExtentSet extents;
  std::uint64_t buffered_bytes() const { return extents.total_bytes(); }
};

}  // namespace detail

class PpfsFile final : public io::File {
 public:
  PpfsFile(Ppfs& fs, std::shared_ptr<detail::PpfsFileObject> object,
           io::NodeId node, const io::OpenOptions& options);

  [[nodiscard]] sim::Task<std::uint64_t> read(std::uint64_t bytes) override;
  [[nodiscard]] sim::Task<std::uint64_t> write(std::uint64_t bytes) override;
  [[nodiscard]] sim::Task<> seek(std::uint64_t offset) override;
  [[nodiscard]] sim::Task<std::uint64_t> size() override;
  [[nodiscard]] sim::Task<> flush() override;
  [[nodiscard]] sim::Task<> close() override;
  [[nodiscard]] sim::Task<io::AsyncOp> read_async(std::uint64_t bytes) override;
  [[nodiscard]] sim::Task<io::AsyncOp> write_async(std::uint64_t bytes) override;
  [[nodiscard]] sim::Task<> set_mode(const io::OpenOptions& options) override;

  [[nodiscard]] std::uint64_t tell() const override;
  [[nodiscard]] io::FileId id() const override { return object_->id; }
  [[nodiscard]] io::NodeId node() const override { return node_; }
  [[nodiscard]] io::AccessMode mode() const override { return mode_; }

  /// Exposed for tests: the classifier state driving adaptive prefetch.
  [[nodiscard]] const OnlineClassifier& classifier() const {
    return classifier_;
  }

 private:
  sim::Task<std::uint64_t> read_at(std::uint64_t offset, std::uint64_t bytes);
  sim::Task<std::uint64_t> write_at(std::uint64_t offset, std::uint64_t bytes);
  void maybe_prefetch(std::uint64_t offset, std::uint64_t bytes);
  void require_open(const char* op) const;
  [[nodiscard]] std::uint64_t effective_size() const;

  Ppfs& fs_;
  std::shared_ptr<detail::PpfsFileObject> object_;
  io::NodeId node_;
  io::AccessMode mode_;
  std::uint32_t parties_ = 1;
  std::uint32_t rank_ = 0;
  std::uint64_t record_size_ = 0;
  std::uint64_t offset_ = 0;
  std::uint64_t records_done_ = 0;
  OnlineClassifier classifier_;
  bool closed_ = false;
};

class Ppfs final : public io::FileSystem {
 public:
  Ppfs(hw::Machine& machine, PpfsParams params = {});

  [[nodiscard]] sim::Task<io::FilePtr> open(io::NodeId node, const std::string& path,
                              const io::OpenOptions& options) override;
  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) const override;

  [[nodiscard]] const PpfsParams& params() const noexcept { return params_; }
  [[nodiscard]] const PpfsCounters& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] hw::Machine& machine() noexcept { return machine_; }
  [[nodiscard]] const IonServerStats& ion_stats(std::size_t ion) const {
    return servers_[ion]->stats();
  }
  /// What the retry/backoff/failover machinery did this run.
  [[nodiscard]] const fault::RecoveryStats& recovery_stats() const noexcept {
    return recovery_stats_;
  }

  /// Submits one request to ION `ion` under the mount's RecoveryPolicy:
  /// retries typed errors with exponentially backed-off, jittered delays,
  /// then re-routes to surviving IONs in deterministic scan order.  All
  /// recovery accounting happens here.
  sim::Task<io::IoOutcome> submit_with_recovery(io::NodeId node,
                                                std::uint32_t ion,
                                                std::uint64_t disk_address,
                                                std::uint64_t length,
                                                bool is_write);
  /// Per-node client cache (created on first use).
  [[nodiscard]] BlockCache& node_cache(io::NodeId node);

  /// Attaches (or, with nullptr, detaches) the data-path debug observer
  /// (shared interface with pfs::Pfs).
  void set_observer(pfs::IoObserver* observer) { observer_ = observer; }
  [[nodiscard]] pfs::IoObserver* observer() const noexcept {
    return observer_;
  }

  /// Publishes client-cache hit/miss/eviction counters
  /// (`ppfs.cache.{hits,misses,evictions}`), write-behind flush sizes
  /// (`ppfs.flush.{bytes,extents}` histograms), and per-ION aggregation
  /// batch sizes (`ppfs.ion<k>.batch_requests`), and opens transfer/flush
  /// spans on `tracer`.  Either may be null; detached hot-path cost is one
  /// pointer test.
  void attach_observability(obs::Registry* registry, obs::Tracer* tracer);

 private:
  friend class PpfsFile;

  /// Raw data movement: decomposes [offset, offset+bytes) over the ION
  /// servers and runs the segments in parallel.
  sim::Task<> transfer(io::NodeId node, detail::PpfsFileObject& file,
                       std::uint64_t offset, std::uint64_t bytes,
                       bool is_write);

  /// Reads [offset, offset+bytes) through the client cache.
  sim::Task<> cached_read(io::NodeId node, detail::PpfsFileObject& file,
                          std::uint64_t offset, std::uint64_t bytes);

  /// Fetches one block span into the cache (used by demand fetch and
  /// prefetch); deduplicates concurrent fetches of the same block.
  sim::Task<> fetch_blocks(io::NodeId node, detail::PpfsFileObject& file,
                           std::uint64_t first_block, std::uint64_t last_block,
                           bool prefetched);

  /// Flushes a (node, file) write buffer: ships coalesced extents.
  sim::Task<> flush_buffer(io::NodeId node, detail::PpfsFileObject& file);

  sim::Task<> control_rpc(io::NodeId node, std::uint32_t ion,
                          sim::SimDuration service);

  using BufferKey = std::pair<io::NodeId, io::FileId>;
  struct BufferKeyHash {
    std::size_t operator()(const BufferKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.first) << 32) ^ k.second);
    }
  };

  detail::WriteBuffer& buffer(io::NodeId node, io::FileId file) {
    return buffers_[{node, file}];
  }

  hw::Machine& machine_;
  PpfsParams params_;
  std::unordered_map<std::string, std::shared_ptr<detail::PpfsFileObject>>
      files_;
  std::vector<std::unique_ptr<IonServer>> servers_;
  std::vector<std::unique_ptr<sim::Semaphore>> ion_control_;
  std::unordered_map<io::NodeId, std::unique_ptr<BlockCache>> caches_;
  std::unordered_map<BufferKey, detail::WriteBuffer, BufferKeyHash> buffers_;
  // In-flight block fetches for dedup, per node (caches are per node):
  // (node, file, block) -> completion event.
  struct FetchKey {
    io::NodeId node = 0;
    io::FileId file = 0;
    std::uint64_t block = 0;
    friend bool operator==(const FetchKey&, const FetchKey&) = default;
  };
  struct FetchKeyHash {
    std::size_t operator()(const FetchKey& k) const noexcept {
      return std::hash<std::uint64_t>{}(
          (static_cast<std::uint64_t>(k.node) << 52) ^
          (static_cast<std::uint64_t>(k.file) << 36) ^ k.block);
    }
  };
  std::unordered_map<FetchKey, std::shared_ptr<sim::Event>, FetchKeyHash>
      inflight_;
  io::FileId next_file_id_ = 1;
  PpfsCounters counters_;
  fault::RecoveryStats recovery_stats_;
  sim::Rng retry_rng_;  // jitter stream; drawn from only on actual retries
  pfs::IoObserver* observer_ = nullptr;

  // Observability handles; null until attach_observability.
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;
  obs::Counter* m_cache_evictions_ = nullptr;
  obs::Histogram* m_flush_bytes_ = nullptr;
  obs::Histogram* m_flush_extents_ = nullptr;
  obs::Counter* m_recovery_retries_ = nullptr;
  obs::Counter* m_recovery_failovers_ = nullptr;
  obs::Counter* m_recovery_failover_bytes_ = nullptr;
  obs::Counter* m_recovery_failed_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace paraio::ppfs
