#include "ppfs/cache.hpp"

namespace paraio::ppfs {

bool BlockCache::lookup(const BlockKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  if (it->second->prefetched) {
    ++stats_.prefetched_used;
    it->second->prefetched = false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

std::optional<BlockKey> BlockCache::insert(const BlockKey& key,
                                           bool prefetched) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    return std::nullopt;
  }
  std::optional<BlockKey> evicted;
  if (capacity_ == 0) return std::nullopt;  // cache disabled
  if (map_.size() >= capacity_) {
    const Entry& victim = lru_.back();
    evicted = victim.key;
    map_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.push_front(Entry{key, prefetched});
  map_.emplace(key, lru_.begin());
  return evicted;
}

void BlockCache::erase(const BlockKey& key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  lru_.erase(it->second);
  map_.erase(it);
}

void BlockCache::erase_file(io::FileId file) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file == file) {
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace paraio::ppfs
