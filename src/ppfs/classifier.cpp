#include "ppfs/classifier.hpp"

namespace paraio::ppfs {

const char* to_string(OnlinePattern pattern) {
  switch (pattern) {
    case OnlinePattern::kUnknown:
      return "unknown";
    case OnlinePattern::kSequential:
      return "sequential";
    case OnlinePattern::kStrided:
      return "strided";
    case OnlinePattern::kRandom:
      return "random";
  }
  return "unknown";
}

void OnlineClassifier::observe(std::uint64_t offset, std::uint64_t length) {
  if (n_ > 0) {
    const bool sequential = offset == last_offset_ + last_length_;
    const std::int64_t stride = static_cast<std::int64_t>(offset) -
                                static_cast<std::int64_t>(last_offset_);
    const bool same_stride = n_ > 1 && stride == last_stride_ && stride != 0;
    seq_score_ = decay_ * seq_score_ + (sequential ? (1.0 - decay_) : 0.0);
    stride_score_ =
        decay_ * stride_score_ + (same_stride ? (1.0 - decay_) : 0.0);
    last_stride_ = stride;
  }
  last_offset_ = offset;
  last_length_ = length;
  ++n_;
}

OnlinePattern OnlineClassifier::pattern() const {
  if (n_ < 3) return OnlinePattern::kUnknown;
  if (seq_score_ >= confidence_) return OnlinePattern::kSequential;
  if (stride_score_ >= confidence_) return OnlinePattern::kStrided;
  return OnlinePattern::kRandom;
}

std::optional<std::uint64_t> OnlineClassifier::predict_next() const {
  switch (pattern()) {
    case OnlinePattern::kSequential:
      return last_offset_ + last_length_;
    case OnlinePattern::kStrided: {
      const std::int64_t next =
          static_cast<std::int64_t>(last_offset_) + last_stride_;
      if (next < 0) return std::nullopt;
      return static_cast<std::uint64_t>(next);
    }
    default:
      return std::nullopt;
  }
}

}  // namespace paraio::ppfs
