// Aggregating I/O-node server.
//
// PPFS's "global request aggregation" (§5.2): requests that queue up at an
// I/O node while its array is busy are drained as a batch, sorted by disk
// address, and physically adjacent extents are merged into single array
// accesses.  For ESCAT's many-small-writes-into-disjoint-regions pattern
// this turns poor per-request disk utilization into a few large transfers —
// "they can be combined, significantly increasing disk efficiency" (§8).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "io/file.hpp"
#include "io/outcome.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "ppfs/cache.hpp"
#include "sim/channel.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace paraio::ppfs {

struct IonServerStats {
  std::uint64_t requests = 0;
  std::uint64_t batches = 0;
  std::uint64_t disk_accesses = 0;
  std::uint64_t bytes = 0;
  std::uint64_t cache_hits = 0;    ///< read requests served from ION cache
  std::uint64_t cache_misses = 0;  ///< read requests that touched the array
  std::uint64_t refused = 0;       ///< submissions bounced off a down ION
  std::uint64_t abandoned = 0;     ///< queued requests dropped by a crash
  std::uint64_t array_failures = 0;  ///< requests that hit a failed array
  std::uint64_t degraded = 0;      ///< requests served by a degraded array
  /// requests / disk_accesses > 1 means aggregation is working.
  [[nodiscard]] double aggregation_factor() const {
    return disk_accesses
               ? static_cast<double>(requests) / static_cast<double>(disk_accesses)
               : 0.0;
  }
};

class IonServer {
 public:
  /// `merge_gap`: extents whose disk addresses are within this many bytes
  /// are merged into one access (0 = only exactly adjacent).
  /// `cache_blocks` enables a server-side block cache of 64 KB disk blocks
  /// (0 = disabled): the second level of the paper's §8 "two level
  /// buffering at compute nodes and input/output nodes".  Unlike the
  /// per-client caches, it serves every node, so cross-node rereads hit.
  /// `drop_timeout` is how long a client charges for a lost request or
  /// reply before returning IoErrc::kTimeout (the recovery policy's
  /// request timeout).
  IonServer(hw::Machine& machine, std::size_t ion_index, bool aggregate,
            std::uint64_t merge_gap, std::size_t cache_blocks = 0,
            sim::SimDuration drop_timeout = sim::milliseconds(500.0));

  /// Ships the request/data to the I/O node, queues it, and completes when
  /// the server has serviced it and the reply/data has returned — or when a
  /// fault path resolved it: a down ION refuses after one control round
  /// trip (kIonDown), a dropped request/reply times out (kTimeout), a
  /// failed array reports kArrayFailed.  `disk_address` is the ION-local
  /// byte address (file base + local offset).
  sim::Task<io::IoOutcome> submit(io::NodeId src, std::uint64_t disk_address,
                                  std::uint64_t length, bool is_write);

  [[nodiscard]] const IonServerStats& stats() const noexcept { return stats_; }

  /// Publishes aggregation batch sizes (`<prefix>.batch_requests`) and
  /// server-cache hit/miss counters, and opens one span per served batch on
  /// this ION's process when `tracer` is non-null.
  void attach_observability(obs::Registry& registry, const std::string& prefix,
                            obs::Tracer* tracer);

 private:
  struct Request {
    std::uint64_t address = 0;
    std::uint64_t length = 0;
    bool is_write = false;
    io::NodeId src = 0;
    std::shared_ptr<sim::Event> done;
    /// Filled in by the server before `done` is set.
    std::shared_ptr<io::IoOutcome> result;
  };

  sim::Task<> serve();

  /// True when every 64 KB disk block of [address, address+length) is in
  /// the server cache.  Reads that hit skip the array entirely; any disk
  /// access populates the cache.
  [[nodiscard]] bool cache_covers(std::uint64_t address,
                                  std::uint64_t length);
  void cache_fill(std::uint64_t address, std::uint64_t length);

  hw::Machine& machine_;
  std::size_t ion_index_;
  bool aggregate_;
  std::uint64_t merge_gap_;
  sim::SimDuration drop_timeout_;
  sim::Channel<Request> queue_;
  BlockCache cache_;  // keyed by disk-address block; file id unused (0)
  std::uint32_t seen_epoch_ = 0;  // wipe cache_ when the ION restarts
  IonServerStats stats_;

  // Observability handles; null until attach_observability.
  obs::Histogram* m_batch_requests_ = nullptr;
  obs::Counter* m_cache_hits_ = nullptr;
  obs::Counter* m_cache_misses_ = nullptr;
  obs::Counter* m_refused_ = nullptr;
  obs::Counter* m_abandoned_ = nullptr;
  obs::Counter* m_degraded_ = nullptr;
  obs::Counter* m_array_failures_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace paraio::ppfs
