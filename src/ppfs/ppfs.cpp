#include "ppfs/ppfs.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "sim/task_group.hpp"

namespace paraio::ppfs {

// ---------------------------------------------------------------------------
// Ppfs

Ppfs::Ppfs(hw::Machine& machine, PpfsParams params)
    : machine_(machine),
      params_(params),
      retry_rng_(params.recovery.jitter_seed) {
  servers_.reserve(machine_.io_nodes());
  ion_control_.reserve(machine_.io_nodes());
  for (std::size_t i = 0; i < machine_.io_nodes(); ++i) {
    servers_.push_back(std::make_unique<IonServer>(
        machine_, i, params_.aggregation, params_.merge_gap,
        params_.ion_cache_blocks, params_.recovery.request_timeout));
    ion_control_.push_back(
        std::make_unique<sim::Semaphore>(machine_.engine(), 1));
  }
}

void Ppfs::attach_observability(obs::Registry* registry, obs::Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    m_cache_hits_ = nullptr;
    m_cache_misses_ = nullptr;
    m_cache_evictions_ = nullptr;
    m_flush_bytes_ = nullptr;
    m_flush_extents_ = nullptr;
    m_recovery_retries_ = nullptr;
    m_recovery_failovers_ = nullptr;
    m_recovery_failover_bytes_ = nullptr;
    m_recovery_failed_ = nullptr;
    return;
  }
  m_cache_hits_ = &registry->counter("ppfs.cache.hits");
  m_cache_misses_ = &registry->counter("ppfs.cache.misses");
  m_cache_evictions_ = &registry->counter("ppfs.cache.evictions");
  m_flush_bytes_ = &registry->histogram("ppfs.flush.bytes");
  m_flush_extents_ = &registry->histogram("ppfs.flush.extents");
  // Recovery-path traffic was previously invisible here: retries and
  // failovers bypassed every counter even though they re-submit real load.
  m_recovery_retries_ = &registry->counter("ppfs.recovery.retries");
  m_recovery_failovers_ = &registry->counter("ppfs.recovery.failovers");
  m_recovery_failover_bytes_ =
      &registry->counter("ppfs.recovery.failover_bytes");
  m_recovery_failed_ = &registry->counter("ppfs.recovery.failed");
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    servers_[i]->attach_observability(*registry,
                                      "ppfs.ion" + std::to_string(i), tracer);
  }
}

BlockCache& Ppfs::node_cache(io::NodeId node) {
  auto it = caches_.find(node);
  if (it == caches_.end()) {
    it = caches_
             .emplace(node, std::make_unique<BlockCache>(params_.cache_blocks))
             .first;
  }
  return *it->second;
}

sim::Task<> Ppfs::control_rpc(io::NodeId node, std::uint32_t ion,
                              sim::SimDuration service) {
  const io::NodeId ion_node = machine_.ion_node_id(ion);
  co_await machine_.net().send(node, ion_node, params_.control_bytes);
  co_await ion_control_[ion]->acquire();
  co_await machine_.engine().delay(service);
  ion_control_[ion]->release();
  co_await machine_.net().send(ion_node, node, params_.control_bytes);
}

sim::Task<> Ppfs::transfer(io::NodeId node, detail::PpfsFileObject& file,
                           std::uint64_t offset, std::uint64_t bytes,
                           bool is_write) {
  if (bytes == 0) co_return;
  const auto segments = file.stripes.decompose(offset, bytes);
  if (observer_) {
    observer_->on_transfer(file.id, offset, bytes, is_write,
                           file.stripes.params(), segments);
  }
  obs::Tracer::SpanId span = 0;
  if (tracer_ != nullptr) {
    span = tracer_->begin({node, 0}, is_write ? "ppfs.write" : "ppfs.read",
                          "ppfs");
  }
  sim::TaskGroup group(machine_.engine());
  for (const pfs::Segment& seg : segments) {
    auto piece = [](Ppfs& fs, io::NodeId src, detail::PpfsFileObject& f,
                    pfs::Segment s, bool write) -> sim::Task<> {
      const io::IoOutcome r = co_await fs.submit_with_recovery(
          src, s.ion, f.disk_base() + s.local_offset, s.length, write);
      // Exhausted recovery: the stripe is gone.  The loss is accounted in
      // recovery_stats() (dirty_bytes_lost for writes); mark the client's
      // timeline so degraded runs are visible in the Chrome trace.
      if (!r.ok() && fs.tracer_ != nullptr) {
        fs.tracer_->instant({src, 0}, "ppfs.io-error", "fault");
      }
    };
    group.spawn(piece(*this, node, file, seg, is_write));
  }
  co_await group.join();
  if (tracer_ != nullptr) tracer_->end(span);
  if (is_write) file.size = std::max(file.size, offset + bytes);
}

sim::Task<io::IoOutcome> Ppfs::submit_with_recovery(io::NodeId node,
                                                    std::uint32_t ion,
                                                    std::uint64_t disk_address,
                                                    std::uint64_t length,
                                                    bool is_write) {
  const fault::RecoveryPolicy& rp = params_.recovery;
  ++recovery_stats_.requests;
  io::IoOutcome out;
  std::uint32_t attempts = 0;
  for (;;) {
    out = co_await servers_[ion]->submit(node, disk_address, length, is_write);
    ++attempts;
    if (out.ok() || attempts > rp.max_retries) break;
    ++recovery_stats_.retries;
    if (m_recovery_retries_ != nullptr) m_recovery_retries_->add();
    if (tracer_ != nullptr) tracer_->instant({node, 0}, "ppfs.retry", "fault");
    if (out.error == io::IoErrc::kTimeout) ++recovery_stats_.timeouts;
    if (out.error == io::IoErrc::kIonDown) ++recovery_stats_.refused;
    // Exponential backoff with seeded jitter: base * 2^(attempt-1), clamped,
    // scaled by a factor in [1 - jitter, 1 + jitter].  The jitter stream is
    // only drawn from on an actual retry, so fault-free runs never touch it.
    sim::SimDuration backoff =
        std::min(rp.backoff_max,
                 std::ldexp(rp.backoff_base, static_cast<int>(attempts) - 1));
    if (rp.jitter > 0.0) {
      backoff *= 1.0 + rp.jitter * (2.0 * retry_rng_.uniform01() - 1.0);
    }
    co_await machine_.engine().delay(backoff);
  }
  out.attempts = attempts;
  if (!out.ok() && rp.failover) {
    // Re-route the stripe to surviving IONs in deterministic scan order;
    // each substitute array holds a spill region at the same local address.
    for (std::size_t k = 1; k < servers_.size() && !out.ok(); ++k) {
      const std::size_t alt = (ion + k) % servers_.size();
      if (!machine_.ion_up(alt)) continue;
      io::IoOutcome alt_out =
          co_await servers_[alt]->submit(node, disk_address, length, is_write);
      ++attempts;
      if (alt_out.ok()) {
        alt_out.attempts = attempts;
        alt_out.failed_over = true;
        out = alt_out;
        ++recovery_stats_.failovers;
        recovery_stats_.failover_bytes += length;
        if (m_recovery_failovers_ != nullptr) m_recovery_failovers_->add();
        if (m_recovery_failover_bytes_ != nullptr) {
          m_recovery_failover_bytes_->add(length);
        }
        if (tracer_ != nullptr) {
          tracer_->instant({node, 0}, "ppfs.failover", "fault");
        }
      }
    }
  }
  if (out.degraded) ++recovery_stats_.degraded;
  if (out.ok()) {
    ++recovery_stats_.ok;
  } else {
    ++recovery_stats_.failed;
    if (m_recovery_failed_ != nullptr) m_recovery_failed_->add();
    // A lost write is dirty data that had been acknowledged to the
    // application (write-behind) but never reached stable storage.
    if (is_write) recovery_stats_.dirty_bytes_lost += length;
  }
  co_return out;
}

sim::Task<> Ppfs::fetch_blocks(io::NodeId node, detail::PpfsFileObject& file,
                               std::uint64_t first_block,
                               std::uint64_t last_block, bool prefetched) {
  // Partition the span into runs of blocks nobody is already fetching.
  std::uint64_t run_start = first_block;
  sim::TaskGroup group(machine_.engine());
  std::vector<std::shared_ptr<sim::Event>> waits;
  BlockCache& cache = node_cache(node);

  auto flush_run = [&](std::uint64_t lo, std::uint64_t hi_exclusive) {
    if (lo >= hi_exclusive) return;
    auto done = std::make_shared<sim::Event>(machine_.engine());
    for (std::uint64_t b = lo; b < hi_exclusive; ++b) {
      inflight_.emplace(FetchKey{node, file.id, b}, done);
    }
    auto fetch = [](Ppfs& fs, io::NodeId src, detail::PpfsFileObject& f,
                    std::uint64_t lo_b, std::uint64_t hi_b, bool pf,
                    std::shared_ptr<sim::Event> ev) -> sim::Task<> {
      const std::uint64_t bs_ = fs.params_.block_size;
      const std::uint64_t start = lo_b * bs_;
      const std::uint64_t end = std::min(hi_b * bs_, std::max(f.size, start));
      co_await fs.transfer(src, f, start, end - start, /*is_write=*/false);
      BlockCache& c = fs.node_cache(src);
      for (std::uint64_t b = lo_b; b < hi_b; ++b) {
        const auto evicted = c.insert(BlockKey{f.id, b}, pf);
        if (evicted && fs.m_cache_evictions_ != nullptr) {
          fs.m_cache_evictions_->add();
        }
        fs.inflight_.erase(FetchKey{src, f.id, b});
      }
      ev->set();
    };
    group.spawn(fetch(*this, node, file, lo, hi_exclusive, prefetched, done));
  };

  for (std::uint64_t b = first_block; b <= last_block; ++b) {
    auto it = inflight_.find(FetchKey{node, file.id, b});
    const bool already_cached = cache.contains(BlockKey{file.id, b});
    if (it != inflight_.end() || already_cached) {
      flush_run(run_start, b);
      run_start = b + 1;
      if (it != inflight_.end()) waits.push_back(it->second);
    }
  }
  flush_run(run_start, last_block + 1);

  co_await group.join();
  for (auto& ev : waits) co_await ev->wait();
}

sim::Task<> Ppfs::cached_read(io::NodeId node, detail::PpfsFileObject& file,
                              std::uint64_t offset, std::uint64_t bytes) {
  if (bytes == 0) co_return;
  if (params_.cache_blocks == 0) {
    co_await transfer(node, file, offset, bytes, /*is_write=*/false);
    co_return;
  }
  const std::uint64_t bs = params_.block_size;
  const std::uint64_t first = offset / bs;
  const std::uint64_t last = (offset + bytes - 1) / bs;
  BlockCache& cache = node_cache(node);

  // Identify missing runs (lookup also records hit/miss statistics).
  std::uint64_t run_start = first;
  bool in_run = false;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;
  for (std::uint64_t b = first; b <= last; ++b) {
    const bool hit = cache.lookup(BlockKey{file.id, b}) &&
                     !inflight_.contains(FetchKey{node, file.id, b});
    if (m_cache_hits_ != nullptr) {
      (hit ? m_cache_hits_ : m_cache_misses_)->add();
    }
    if (hit) {
      if (in_run) {
        runs.emplace_back(run_start, b - 1);
        in_run = false;
      }
    } else if (!in_run) {
      run_start = b;
      in_run = true;
    }
  }
  if (in_run) runs.emplace_back(run_start, last);

  for (const auto& [lo, hi] : runs) {
    co_await fetch_blocks(node, file, lo, hi, /*prefetched=*/false);
  }
  // Client memory copy from cache into the application buffer.
  co_await machine_.engine().delay(static_cast<double>(bytes) /
                                   params_.copy_rate);
}

sim::Task<> Ppfs::flush_buffer(io::NodeId node,
                               detail::PpfsFileObject& file) {
  detail::WriteBuffer& buf = buffer(node, file.id);
  if (buf.extents.empty()) co_return;
  if (observer_) observer_->on_buffer_flush(file.id, buf.buffered_bytes());
  if (m_flush_bytes_ != nullptr) {
    m_flush_bytes_->record(buf.buffered_bytes());
  }
  auto extents = buf.extents.extents();
  buf.extents.clear();
  ++counters_.flushes;
  counters_.flush_extents += extents.size();
  if (m_flush_extents_ != nullptr) m_flush_extents_->record(extents.size());
  obs::Tracer::SpanId span = 0;
  if (tracer_ != nullptr) span = tracer_->begin({node, 0}, "ppfs.flush", "ppfs");
  sim::TaskGroup group(machine_.engine());
  for (const Extent& ext : extents) {
    auto ship = [](Ppfs& fs, io::NodeId src, detail::PpfsFileObject& f,
                   Extent e) -> sim::Task<> {
      co_await fs.transfer(src, f, e.offset, e.length, /*is_write=*/true);
    };
    group.spawn(ship(*this, node, file, ext));
  }
  co_await group.join();
  if (tracer_ != nullptr) tracer_->end(span);
}

sim::Task<io::FilePtr> Ppfs::open(io::NodeId node, const std::string& path,
                                  const io::OpenOptions& options) {
  switch (options.mode) {
    case io::AccessMode::kUnix:
    case io::AccessMode::kAsync:
    case io::AccessMode::kRecord:
      break;
    default:
      throw std::logic_error(
          "PPFS supports independent-pointer modes only (M_UNIX, M_ASYNC, "
          "M_RECORD)");
  }
  if (options.mode == io::AccessMode::kRecord && options.record_size == 0) {
    throw std::invalid_argument("M_RECORD open requires a record size");
  }

  const std::uint32_t meta_ion = static_cast<std::uint32_t>(
      std::hash<std::string>{}(path) % machine_.io_nodes());
  co_await control_rpc(node, meta_ion, params_.open_service);

  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!options.create) {
      throw std::invalid_argument("open of missing file without create: " +
                                  path);
    }
    pfs::StripeParams sp;
    sp.unit = params_.block_size;
    sp.io_nodes = static_cast<std::uint32_t>(machine_.io_nodes());
    it = files_
             .emplace(path, std::make_shared<detail::PpfsFileObject>(
                                next_file_id_++, path, sp))
             .first;
  } else if (options.truncate) {
    it->second->size = 0;
  }
  ++it->second->open_handles;
  co_return std::make_shared<PpfsFile>(*this, it->second, node, options);
}

bool Ppfs::exists(const std::string& path) const {
  return files_.contains(path);
}

std::uint64_t Ppfs::file_size(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second->size;
}

// ---------------------------------------------------------------------------
// PpfsFile

PpfsFile::PpfsFile(Ppfs& fs, std::shared_ptr<detail::PpfsFileObject> object,
                   io::NodeId node, const io::OpenOptions& options)
    : fs_(fs),
      object_(std::move(object)),
      node_(node),
      mode_(options.mode),
      parties_(std::max<std::uint32_t>(options.parties, 1)),
      rank_(options.rank),
      record_size_(options.record_size) {}

std::uint64_t PpfsFile::tell() const {
  if (mode_ == io::AccessMode::kRecord) {
    return (records_done_ * parties_ + rank_) * record_size_;
  }
  return offset_;
}

void PpfsFile::require_open(const char* op) const {
  if (closed_) {
    throw std::logic_error(std::string(op) + " on closed file " +
                           object_->name);
  }
}

std::uint64_t PpfsFile::effective_size() const {
  // Server-side size plus anything still sitting in this node's buffer.
  const auto& buf = fs_.buffer(node_, object_->id);
  return std::max(object_->size, buf.extents.max_end());
}

sim::Task<std::uint64_t> PpfsFile::read_at(std::uint64_t offset,
                                           std::uint64_t bytes) {
  const std::uint64_t avail =
      effective_size() > offset ? effective_size() - offset : 0;
  const std::uint64_t n = std::min(bytes, avail);
  if (n == 0) co_return 0;

  detail::WriteBuffer& buf = fs_.buffer(node_, object_->id);
  if (buf.extents.covers(offset, n)) {
    // Entirely in this node's write buffer: a local copy.
    co_await fs_.machine().engine().delay(static_cast<double>(n) /
                                          fs_.params().copy_rate);
  } else {
    if (buf.extents.overlaps(offset, n)) {
      // Partial overlap with unflushed data: flush first, then read through
      // the normal path.  Conservative but correct.
      co_await fs_.flush_buffer(node_, *object_);
    }
    co_await fs_.cached_read(node_, *object_, offset, n);
  }
  ++fs_.counters_.reads;
  fs_.counters_.bytes_read += n;
  maybe_prefetch(offset, n);
  co_return n;
}

sim::Task<std::uint64_t> PpfsFile::write_at(std::uint64_t offset,
                                            std::uint64_t bytes) {
  if (bytes == 0) co_return 0;
  ++fs_.counters_.writes;
  fs_.counters_.bytes_written += bytes;
  if (fs_.params().write_behind) {
    detail::WriteBuffer& buf = fs_.buffer(node_, object_->id);
    const std::uint64_t before = buf.buffered_bytes();
    buf.extents.insert(offset, bytes);
    if (fs_.observer_) {
      fs_.observer_->on_write_buffered(object_->id,
                                       buf.buffered_bytes() - before);
    }
    // Local buffer copy is the only synchronous cost.
    co_await fs_.machine().engine().delay(static_cast<double>(bytes) /
                                          fs_.params().copy_rate);
    if (buf.buffered_bytes() >= fs_.params().write_buffer_limit) {
      co_await fs_.flush_buffer(node_, *object_);
    }
  } else {
    co_await fs_.transfer(node_, *object_, offset, bytes, /*is_write=*/true);
  }
  // Invalidate any cached blocks this write touched.
  if (fs_.params().cache_blocks > 0) {
    const std::uint64_t bs = fs_.params().block_size;
    BlockCache& cache = fs_.node_cache(node_);
    for (std::uint64_t b = offset / bs; b <= (offset + bytes - 1) / bs; ++b) {
      cache.erase(BlockKey{object_->id, b});
    }
  }
  co_return bytes;
}

void PpfsFile::maybe_prefetch(std::uint64_t offset, std::uint64_t bytes) {
  const PrefetchPolicy policy = fs_.params().prefetch;
  if (policy == PrefetchPolicy::kNone || fs_.params().cache_blocks == 0) {
    return;
  }
  classifier_.observe(offset, bytes);
  const std::uint64_t bs = fs_.params().block_size;

  std::optional<std::uint64_t> next;
  if (policy == PrefetchPolicy::kSequential) {
    next = offset + bytes;
  } else {
    next = classifier_.predict_next();  // adaptive: only when confident
  }
  if (!next) return;

  const std::uint64_t size_now = effective_size();
  if (*next >= size_now) return;
  const std::uint64_t first = *next / bs;
  const std::uint64_t last_wanted = first + fs_.params().prefetch_depth - 1;
  const std::uint64_t last_in_file = size_now == 0 ? 0 : (size_now - 1) / bs;
  const std::uint64_t last = std::min(last_wanted, last_in_file);
  if (last < first) return;

  BlockCache& cache = fs_.node_cache(node_);
  // Only issue for blocks neither cached nor already being fetched.
  std::uint64_t lo = first;
  bool any = false;
  for (std::uint64_t b = first; b <= last && !any; ++b) {
    any = !cache.contains(BlockKey{object_->id, b}) &&
          !fs_.inflight_.contains(Ppfs::FetchKey{node_, object_->id, b});
    if (any) lo = b;
  }
  if (!any) return;
  ++fs_.counters_.prefetch_issued;
  auto background = [](Ppfs& fs, io::NodeId nd,
                       std::shared_ptr<detail::PpfsFileObject> obj,
                       std::uint64_t lo_b, std::uint64_t hi_b) -> sim::Task<> {
    co_await fs.fetch_blocks(nd, *obj, lo_b, hi_b, /*prefetched=*/true);
  };
  fs_.machine().engine().spawn(background(fs_, node_, object_, lo, last));
}

sim::Task<std::uint64_t> PpfsFile::read(std::uint64_t bytes) {
  require_open("read");
  std::uint64_t off;
  if (mode_ == io::AccessMode::kRecord) {
    if (bytes != record_size_) {
      throw std::invalid_argument(
          "M_RECORD operations must move exactly one record");
    }
    off = (records_done_ * parties_ + rank_) * record_size_;
    ++records_done_;
  } else {
    off = offset_;
  }
  const std::uint64_t n = co_await read_at(off, bytes);
  if (mode_ != io::AccessMode::kRecord) offset_ = off + n;
  co_return n;
}

sim::Task<std::uint64_t> PpfsFile::write(std::uint64_t bytes) {
  require_open("write");
  std::uint64_t off;
  if (mode_ == io::AccessMode::kRecord) {
    if (bytes != record_size_) {
      throw std::invalid_argument(
          "M_RECORD operations must move exactly one record");
    }
    off = (records_done_ * parties_ + rank_) * record_size_;
    ++records_done_;
  } else {
    off = offset_;
  }
  const std::uint64_t n = co_await write_at(off, bytes);
  if (mode_ != io::AccessMode::kRecord) offset_ = off + n;
  co_return n;
}

sim::Task<> PpfsFile::seek(std::uint64_t offset) {
  require_open("seek");
  if (mode_ == io::AccessMode::kRecord) {
    throw std::logic_error("seek is not defined for M_RECORD handles");
  }
  // Client-local: PPFS keeps the pointer at the client, so seeks cost
  // nothing — the structural fix for ESCAT's Table 1 seek overhead.
  offset_ = offset;
  co_return;
}

sim::Task<std::uint64_t> PpfsFile::size() {
  require_open("size");
  const std::uint32_t meta_ion = object_->id %
                                 static_cast<std::uint32_t>(
                                     fs_.machine().io_nodes());
  co_await fs_.control_rpc(node_, meta_ion, fs_.params().meta_service);
  co_return effective_size();
}

sim::Task<> PpfsFile::flush() {
  require_open("flush");
  co_await fs_.flush_buffer(node_, *object_);
}

sim::Task<> PpfsFile::close() {
  require_open("close");
  closed_ = true;
  co_await fs_.flush_buffer(node_, *object_);
  assert(object_->open_handles > 0);
  --object_->open_handles;
  const std::uint32_t meta_ion = object_->id %
                                 static_cast<std::uint32_t>(
                                     fs_.machine().io_nodes());
  co_await fs_.control_rpc(node_, meta_ion, fs_.params().close_service);
}

sim::Task<> PpfsFile::set_mode(const io::OpenOptions& options) {
  require_open("set_mode");
  switch (options.mode) {
    case io::AccessMode::kUnix:
    case io::AccessMode::kAsync:
    case io::AccessMode::kRecord:
      break;
    default:
      throw std::logic_error("PPFS set_mode: independent-pointer modes only");
  }
  if (options.mode == io::AccessMode::kRecord && options.record_size == 0) {
    throw std::invalid_argument("M_RECORD set_mode requires a record size");
  }
  // Pointers live at the client, so the switch is purely local.
  mode_ = options.mode;
  parties_ = std::max<std::uint32_t>(options.parties, 1);
  rank_ = options.rank;
  record_size_ = options.record_size;
  records_done_ = 0;
  offset_ = 0;
  co_return;
}

sim::Task<io::AsyncOp> PpfsFile::read_async(std::uint64_t bytes) {
  require_open("read_async");
  if (mode_ == io::AccessMode::kRecord) {
    throw std::logic_error("async I/O is not defined for M_RECORD handles");
  }
  auto state = std::make_shared<io::AsyncOp::State>(fs_.machine().engine());
  const std::uint64_t off = offset_;
  const std::uint64_t avail =
      effective_size() > off ? effective_size() - off : 0;
  offset_ = off + std::min(bytes, avail);
  auto background = [](PpfsFile& file, std::uint64_t offset,
                       std::uint64_t len,
                       std::shared_ptr<io::AsyncOp::State> st) -> sim::Task<> {
    st->transferred = co_await file.read_at(offset, len);
    st->done.set();
  };
  fs_.machine().engine().spawn(background(*this, off, bytes, state));
  co_return io::AsyncOp(state);
}

sim::Task<io::AsyncOp> PpfsFile::write_async(std::uint64_t bytes) {
  require_open("write_async");
  if (mode_ == io::AccessMode::kRecord) {
    throw std::logic_error("async I/O is not defined for M_RECORD handles");
  }
  auto state = std::make_shared<io::AsyncOp::State>(fs_.machine().engine());
  const std::uint64_t off = offset_;
  offset_ = off + bytes;
  auto background = [](PpfsFile& file, std::uint64_t offset,
                       std::uint64_t len,
                       std::shared_ptr<io::AsyncOp::State> st) -> sim::Task<> {
    st->transferred = co_await file.write_at(offset, len);
    st->done.set();
  };
  fs_.machine().engine().spawn(background(*this, off, bytes, state));
  co_return io::AsyncOp(state);
}

}  // namespace paraio::ppfs
