// Client-side block cache (pure bookkeeping; the Ppfs file system charges
// the simulated costs).  LRU replacement over (file, block) keys, matching
// PPFS's user-controllable client caches.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>

#include "io/file.hpp"

namespace paraio::ppfs {

struct BlockKey {
  io::FileId file = 0;
  std::uint64_t block = 0;
  friend bool operator==(const BlockKey&, const BlockKey&) = default;
};

struct BlockKeyHash {
  std::size_t operator()(const BlockKey& k) const noexcept {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(k.file) << 40) ^ k.block);
  }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t prefetched_used = 0;

  [[nodiscard]] double hit_rate() const {
    const auto total = hits + misses;
    return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
  }
};

class BlockCache {
 public:
  explicit BlockCache(std::size_t capacity_blocks)
      : capacity_(capacity_blocks) {}

  /// Looks a block up and, on a hit, promotes it to most-recently-used.
  /// Counts hit/miss (and prefetched_used if the hit was a prefetched block
  /// touched for the first time).
  [[nodiscard]] bool lookup(const BlockKey& key);

  /// Peeks without stats or LRU update.
  [[nodiscard]] bool contains(const BlockKey& key) const {
    return map_.contains(key);
  }

  /// Inserts a block (no-op if present; refreshes LRU).  Returns the evicted
  /// key, if the insert displaced one.  `prefetched` marks speculative loads
  /// so lookup() can credit the prefetcher.
  std::optional<BlockKey> insert(const BlockKey& key, bool prefetched = false);

  /// Removes a block if present (invalidation on foreign writes).
  void erase(const BlockKey& key);

  /// Removes all blocks of one file.
  void erase_file(io::FileId file);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    BlockKey key;
    bool prefetched = false;
  };
  using LruList = std::list<Entry>;

  std::size_t capacity_;
  LruList lru_;  // front = most recent
  std::unordered_map<BlockKey, LruList::iterator, BlockKeyHash> map_;
  CacheStats stats_;
};

}  // namespace paraio::ppfs
