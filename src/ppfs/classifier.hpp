// On-line access-pattern classifier driving adaptive prefetch.
//
// The paper's conclusion (§10) proposes "general, adaptive prefetching
// methods that can learn to hide input/output latency by automatically
// classifying and predicting access patterns".  This classifier watches a
// handle's request stream with an exponentially decayed score per
// hypothesis (sequential / strided / random) and predicts the next request
// offset when confident.
#pragma once

#include <cstdint>
#include <optional>

namespace paraio::ppfs {

enum class OnlinePattern { kUnknown, kSequential, kStrided, kRandom };

[[nodiscard]] const char* to_string(OnlinePattern pattern);

class OnlineClassifier {
 public:
  /// `decay` in (0, 1]: weight of history vs. the newest transition.
  /// `confidence` in (0, 1]: score needed to commit to a hypothesis.
  explicit OnlineClassifier(double decay = 0.75, double confidence = 0.6)
      : decay_(decay), confidence_(confidence) {}

  /// Feeds one request.
  void observe(std::uint64_t offset, std::uint64_t length);

  [[nodiscard]] OnlinePattern pattern() const;

  /// Predicted offset of the next request, when the pattern is committed
  /// (sequential or strided); nullopt otherwise.
  [[nodiscard]] std::optional<std::uint64_t> predict_next() const;

  /// Current stride estimate (meaningful for kStrided).
  [[nodiscard]] std::int64_t stride() const noexcept { return last_stride_; }

  [[nodiscard]] std::uint64_t observations() const noexcept { return n_; }

 private:
  double decay_;
  double confidence_;
  double seq_score_ = 0.0;
  double stride_score_ = 0.0;
  std::uint64_t n_ = 0;
  std::uint64_t last_offset_ = 0;
  std::uint64_t last_length_ = 0;
  std::int64_t last_stride_ = 0;
};

}  // namespace paraio::ppfs
