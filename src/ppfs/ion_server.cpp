#include "ppfs/ion_server.hpp"

#include <algorithm>

#include "sim/deadlock.hpp"

namespace paraio::ppfs {

namespace {
constexpr std::uint32_t kControlBytes = 64;
}  // namespace

namespace {
constexpr std::uint64_t kCacheBlock = 64 * 1024;
}

IonServer::IonServer(hw::Machine& machine, std::size_t ion_index,
                     bool aggregate, std::uint64_t merge_gap,
                     std::size_t cache_blocks)
    : machine_(machine),
      ion_index_(ion_index),
      aggregate_(aggregate),
      merge_gap_(merge_gap),
      queue_(machine.engine(), sim::Channel<Request>::kUnbounded),
      cache_(cache_blocks) {
  machine_.engine().spawn_daemon(serve());
}

void IonServer::attach_observability(obs::Registry& registry,
                                     const std::string& prefix,
                                     obs::Tracer* tracer) {
  m_batch_requests_ = &registry.histogram(prefix + ".batch_requests");
  m_cache_hits_ = &registry.counter(prefix + ".cache_hits");
  m_cache_misses_ = &registry.counter(prefix + ".cache_misses");
  tracer_ = tracer;
}

bool IonServer::cache_covers(std::uint64_t address, std::uint64_t length) {
  if (cache_.capacity() == 0 || length == 0) return false;
  for (std::uint64_t b = address / kCacheBlock;
       b <= (address + length - 1) / kCacheBlock; ++b) {
    if (!cache_.lookup(BlockKey{0, b})) return false;
  }
  return true;
}

void IonServer::cache_fill(std::uint64_t address, std::uint64_t length) {
  if (cache_.capacity() == 0 || length == 0) return;
  for (std::uint64_t b = address / kCacheBlock;
       b <= (address + length - 1) / kCacheBlock; ++b) {
    cache_.insert(BlockKey{0, b});
  }
}

sim::Task<> IonServer::submit(io::NodeId src, std::uint64_t disk_address,
                              std::uint64_t length, bool is_write) {
  const io::NodeId ion_node = machine_.ion_node_id(ion_index_);
  // Ship the data (write) or the request descriptor (read).
  co_await machine_.net().send(src, ion_node,
                               is_write ? length : kControlBytes);
  Request req;
  req.address = disk_address;
  req.length = length;
  req.is_write = is_write;
  req.src = src;
  req.done = std::make_shared<sim::Event>(machine_.engine());
  auto done = req.done;
  auto* deadlocks = sim::DeadlockDetector::find(machine_.engine());
  if (deadlocks) {
    // The server daemon is the only task that drains this queue and sets
    // the completion event; declare those roles so a wedged submit() is
    // traced to it instead of reported as stranded.
    const auto client = deadlocks->task_for_key(src, "node");
    const auto server = deadlocks->task_for_key(
        (std::uint64_t{1} << 32) | ion_index_, "ion-server");
    const std::string queue_label =
        "ppfs:ion" + std::to_string(ion_index_) + ":queue";
    deadlocks->channel_receiver(server, &queue_, queue_label);
    deadlocks->send_wait(client, &queue_, queue_label);
    co_await queue_.send(std::move(req));
    deadlocks->send_done(client, &queue_);
    deadlocks->cond_provider(server, done.get(),
                             "ppfs:ion" + std::to_string(ion_index_) +
                                 ":request-done");
    deadlocks->cond_wait(client, done.get(),
                         "ppfs:ion" + std::to_string(ion_index_) +
                             ":request-done");
    co_await done->wait();
    deadlocks->cond_woken(client, done.get());
  } else {
    co_await queue_.send(std::move(req));
    co_await done->wait();
  }
  // Reply: the data (read) or an ack (write) travels back.
  co_await machine_.net().send(ion_node, src,
                               is_write ? kControlBytes : length);
}

sim::Task<> IonServer::serve() {
  for (;;) {
    std::vector<Request> batch;
    auto* deadlocks = sim::DeadlockDetector::find(machine_.engine());
    if (deadlocks) {
      const auto server = deadlocks->task_for_key(
          (std::uint64_t{1} << 32) | ion_index_, "ion-server");
      deadlocks->set_daemon(server);
      const std::string queue_label =
          "ppfs:ion" + std::to_string(ion_index_) + ":queue";
      deadlocks->channel_receiver(server, &queue_, queue_label);
      deadlocks->recv_wait(server, &queue_, queue_label);
      batch.push_back(co_await queue_.recv());
      deadlocks->recv_done(server, &queue_);
    } else {
      batch.push_back(co_await queue_.recv());
    }
    if (aggregate_) {
      while (auto more = queue_.try_recv()) {
        batch.push_back(std::move(*more));
      }
    }
    stats_.requests += batch.size();
    ++stats_.batches;
    if (m_batch_requests_ != nullptr) m_batch_requests_->record(batch.size());
    obs::Tracer::SpanId span = 0;
    if (tracer_ != nullptr) {
      span = tracer_->begin({machine_.ion_node_id(ion_index_), 2},
                            "ppfs.batch", "ppfs");
    }

    // Service in disk-address order, merging physically close extents into
    // single array accesses.  Reads and writes merge independently.
    std::vector<std::size_t> order(batch.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (batch[a].is_write != batch[b].is_write) {
        return batch[a].is_write < batch[b].is_write;
      }
      return batch[a].address < batch[b].address;
    });

    std::size_t i = 0;
    while (i < order.size()) {
      const Request& first = batch[order[i]];
      // Server-side cache: a read whose blocks are all resident skips the
      // array (the second buffering level of the paper's §8).
      if (!first.is_write && cache_covers(first.address, first.length)) {
        ++stats_.cache_hits;
        if (m_cache_hits_ != nullptr) m_cache_hits_->add();
        batch[order[i]].done->set();
        ++i;
        continue;
      }
      if (!first.is_write) {
        ++stats_.cache_misses;
        if (m_cache_misses_ != nullptr) m_cache_misses_->add();
      }
      std::uint64_t lo = first.address;
      std::uint64_t hi = first.address + first.length;
      std::size_t j = i + 1;
      while (j < order.size()) {
        const Request& next = batch[order[j]];
        if (next.is_write != first.is_write || next.address > hi + merge_gap_) {
          break;
        }
        hi = std::max(hi, next.address + next.length);
        ++j;
      }
      co_await machine_.ion_array(ion_index_).access(lo, hi - lo);
      cache_fill(lo, hi - lo);
      ++stats_.disk_accesses;
      stats_.bytes += hi - lo;
      for (std::size_t k = i; k < j; ++k) batch[order[k]].done->set();
      i = j;
    }
    if (tracer_ != nullptr) tracer_->end(span);
  }
}

}  // namespace paraio::ppfs
