#include "ppfs/ion_server.hpp"

#include <algorithm>

#include "sim/deadlock.hpp"

namespace paraio::ppfs {

namespace {
constexpr std::uint32_t kControlBytes = 64;
}  // namespace

namespace {
constexpr std::uint64_t kCacheBlock = 64 * 1024;
}

IonServer::IonServer(hw::Machine& machine, std::size_t ion_index,
                     bool aggregate, std::uint64_t merge_gap,
                     std::size_t cache_blocks, sim::SimDuration drop_timeout)
    : machine_(machine),
      ion_index_(ion_index),
      aggregate_(aggregate),
      merge_gap_(merge_gap),
      drop_timeout_(drop_timeout),
      queue_(machine.engine(), sim::Channel<Request>::kUnbounded),
      cache_(cache_blocks) {
  machine_.engine().spawn_daemon(serve());
}

void IonServer::attach_observability(obs::Registry& registry,
                                     const std::string& prefix,
                                     obs::Tracer* tracer) {
  m_batch_requests_ = &registry.histogram(prefix + ".batch_requests");
  m_cache_hits_ = &registry.counter(prefix + ".cache_hits");
  m_cache_misses_ = &registry.counter(prefix + ".cache_misses");
  // Fault-path load: without these, retried and failed-over requests are
  // invisible in the per-ION metrics even though they occupy the server.
  m_refused_ = &registry.counter(prefix + ".refused");
  m_abandoned_ = &registry.counter(prefix + ".abandoned");
  m_degraded_ = &registry.counter(prefix + ".degraded");
  m_array_failures_ = &registry.counter(prefix + ".array_failures");
  tracer_ = tracer;
}

bool IonServer::cache_covers(std::uint64_t address, std::uint64_t length) {
  if (cache_.capacity() == 0 || length == 0) return false;
  for (std::uint64_t b = address / kCacheBlock;
       b <= (address + length - 1) / kCacheBlock; ++b) {
    if (!cache_.lookup(BlockKey{0, b})) return false;
  }
  return true;
}

void IonServer::cache_fill(std::uint64_t address, std::uint64_t length) {
  if (cache_.capacity() == 0 || length == 0) return;
  for (std::uint64_t b = address / kCacheBlock;
       b <= (address + length - 1) / kCacheBlock; ++b) {
    cache_.insert(BlockKey{0, b});
  }
}

sim::Task<io::IoOutcome> IonServer::submit(io::NodeId src,
                                           std::uint64_t disk_address,
                                           std::uint64_t length,
                                           bool is_write) {
  const io::NodeId ion_node = machine_.ion_node_id(ion_index_);
  hw::Interconnect& net = machine_.net();
  // A down ION refuses: one control round trip ("connection refused") —
  // fast, deterministic, and retryable once the node restarts.
  if (!machine_.ion_up(ion_index_)) {
    ++stats_.refused;
    if (m_refused_ != nullptr) m_refused_->add();
    co_await net.send(src, ion_node, kControlBytes);
    co_await net.send(ion_node, src, kControlBytes);
    co_return io::IoOutcome{.error = io::IoErrc::kIonDown};
  }
  // A dropped request still occupies the sender's link, but never arrives;
  // the client learns nothing until its timeout expires.
  if (net.should_drop()) {
    co_await net.send(src, ion_node, is_write ? length : kControlBytes);
    co_await machine_.engine().delay(drop_timeout_);
    co_return io::IoOutcome{.error = io::IoErrc::kTimeout};
  }
  // Ship the data (write) or the request descriptor (read).
  co_await net.send(src, ion_node, is_write ? length : kControlBytes);
  Request req;
  req.address = disk_address;
  req.length = length;
  req.is_write = is_write;
  req.src = src;
  req.done = std::make_shared<sim::Event>(machine_.engine());
  req.result = std::make_shared<io::IoOutcome>();
  auto done = req.done;
  auto result = req.result;
  auto* deadlocks = sim::DeadlockDetector::find(machine_.engine());
  if (deadlocks) {
    // The server daemon is the only task that drains this queue and sets
    // the completion event; declare those roles so a wedged submit() is
    // traced to it instead of reported as stranded.
    const auto client = deadlocks->task_for_key(src, "node");
    const auto server = deadlocks->task_for_key(
        (std::uint64_t{1} << 32) | ion_index_, "ion-server");
    const std::string queue_label =
        "ppfs:ion" + std::to_string(ion_index_) + ":queue";
    deadlocks->channel_receiver(server, &queue_, queue_label);
    deadlocks->send_wait(client, &queue_, queue_label);
    co_await queue_.send(std::move(req));
    deadlocks->send_done(client, &queue_);
    deadlocks->cond_provider(server, done.get(),
                             "ppfs:ion" + std::to_string(ion_index_) +
                                 ":request-done");
    deadlocks->cond_wait(client, done.get(),
                         "ppfs:ion" + std::to_string(ion_index_) +
                             ":request-done");
    co_await done->wait();
    deadlocks->cond_woken(client, done.get());
  } else {
    co_await queue_.send(std::move(req));
    co_await done->wait();
  }
  // A lost reply: the server did the work (a retried write lands twice),
  // but the client sees only its timeout.
  if (result->ok() && net.should_drop()) {
    co_await machine_.engine().delay(drop_timeout_);
    co_return io::IoOutcome{.error = io::IoErrc::kTimeout};
  }
  // Reply: the data (read) or an ack (write) on success; a typed error
  // notification (control-sized) otherwise.
  co_await net.send(ion_node, src,
                    result->ok() && !is_write ? length : kControlBytes);
  co_return *result;
}

sim::Task<> IonServer::serve() {
  for (;;) {
    std::vector<Request> batch;
    auto* deadlocks = sim::DeadlockDetector::find(machine_.engine());
    if (deadlocks) {
      const auto server = deadlocks->task_for_key(
          (std::uint64_t{1} << 32) | ion_index_, "ion-server");
      deadlocks->set_daemon(server);
      const std::string queue_label =
          "ppfs:ion" + std::to_string(ion_index_) + ":queue";
      deadlocks->channel_receiver(server, &queue_, queue_label);
      deadlocks->recv_wait(server, &queue_, queue_label);
      batch.push_back(co_await queue_.recv());
      deadlocks->recv_done(server, &queue_);
    } else {
      batch.push_back(co_await queue_.recv());
    }
    if (aggregate_) {
      while (auto more = queue_.try_recv()) {
        batch.push_back(std::move(*more));
      }
    }
    // A restart since the last batch means the volatile block cache died
    // with the old incarnation.
    const std::uint32_t epoch = machine_.ion_epoch(ion_index_);
    if (epoch != seen_epoch_) {
      cache_.erase_file(0);
      seen_epoch_ = epoch;
    }
    stats_.requests += batch.size();
    ++stats_.batches;
    if (m_batch_requests_ != nullptr) m_batch_requests_->record(batch.size());
    obs::Tracer::SpanId span = 0;
    if (tracer_ != nullptr) {
      span = tracer_->begin({machine_.ion_node_id(ion_index_), 2},
                            "ppfs.batch", "ppfs");
    }

    // Service in disk-address order, merging physically close extents into
    // single array accesses.  Reads and writes merge independently.
    std::vector<std::size_t> order(batch.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      if (batch[a].is_write != batch[b].is_write) {
        return batch[a].is_write < batch[b].is_write;
      }
      return batch[a].address < batch[b].address;
    });

    std::size_t i = 0;
    while (i < order.size()) {
      // Crashed mid-batch: every request not yet serviced is abandoned and
      // reported as a typed error instead of left stranded.
      if (!machine_.ion_up(ion_index_)) {
        for (std::size_t k = i; k < order.size(); ++k) {
          Request& lost = batch[order[k]];
          lost.result->error = io::IoErrc::kIonDown;
          lost.done->set();
          ++stats_.abandoned;
          if (m_abandoned_ != nullptr) m_abandoned_->add();
        }
        break;
      }
      const Request& first = batch[order[i]];
      // Server-side cache: a read whose blocks are all resident skips the
      // array (the second buffering level of the paper's §8).
      if (!first.is_write && cache_covers(first.address, first.length)) {
        ++stats_.cache_hits;
        if (m_cache_hits_ != nullptr) m_cache_hits_->add();
        batch[order[i]].done->set();
        ++i;
        continue;
      }
      if (!first.is_write) {
        ++stats_.cache_misses;
        if (m_cache_misses_ != nullptr) m_cache_misses_->add();
      }
      std::uint64_t lo = first.address;
      std::uint64_t hi = first.address + first.length;
      std::size_t j = i + 1;
      while (j < order.size()) {
        const Request& next = batch[order[j]];
        if (next.is_write != first.is_write || next.address > hi + merge_gap_) {
          break;
        }
        hi = std::max(hi, next.address + next.length);
        ++j;
      }
      hw::Raid3Array& array = machine_.ion_array(ion_index_);
      const hw::DiskOutcome disk =
          co_await array.access(lo, hi - lo, first.is_write);
      ++stats_.disk_accesses;
      if (disk.failed) {
        for (std::size_t k = i; k < j; ++k) {
          batch[order[k]].result->error = io::IoErrc::kArrayFailed;
          batch[order[k]].done->set();
          ++stats_.array_failures;
          if (m_array_failures_ != nullptr) m_array_failures_->add();
        }
        i = j;
        continue;
      }
      cache_fill(lo, hi - lo);
      stats_.bytes += hi - lo;
      for (std::size_t k = i; k < j; ++k) {
        batch[order[k]].result->degraded = disk.degraded;
        batch[order[k]].done->set();
        if (disk.degraded) {
          ++stats_.degraded;
          if (m_degraded_ != nullptr) m_degraded_->add();
        }
      }
      i = j;
    }
    if (tracer_ != nullptr) tracer_->end(span);
  }
}

}  // namespace paraio::ppfs
