#include "ppfs/extent.hpp"

#include <algorithm>

namespace paraio::ppfs {

void ExtentSet::insert(std::uint64_t offset, std::uint64_t length) {
  if (length == 0) return;
  std::uint64_t lo = offset;
  std::uint64_t hi = offset + length;

  // Find the first extent that could touch [lo, hi): the one before lo, if
  // it reaches lo, else the first starting at/after lo.
  auto it = extents_.lower_bound(lo);
  if (it != extents_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second >= lo) it = prev;
  }
  // Absorb every overlapping-or-adjacent extent.
  while (it != extents_.end() && it->first <= hi) {
    lo = std::min(lo, it->first);
    hi = std::max(hi, it->first + it->second);
    bytes_ -= it->second;
    it = extents_.erase(it);
  }
  extents_.emplace(lo, hi - lo);
  bytes_ += hi - lo;
}

bool ExtentSet::overlaps(std::uint64_t offset, std::uint64_t length) const {
  if (length == 0) return false;
  auto it = extents_.upper_bound(offset + length - 1);
  if (it == extents_.begin()) return false;
  --it;
  return it->first + it->second > offset;
}

bool ExtentSet::covers(std::uint64_t offset, std::uint64_t length) const {
  if (length == 0) return true;
  auto it = extents_.upper_bound(offset);
  if (it == extents_.begin()) return false;
  --it;
  return it->first <= offset && it->first + it->second >= offset + length;
}

std::uint64_t ExtentSet::max_end() const {
  if (extents_.empty()) return 0;
  auto last = std::prev(extents_.end());
  return last->first + last->second;
}

std::vector<Extent> ExtentSet::extents() const {
  std::vector<Extent> out;
  out.reserve(extents_.size());
  for (const auto& [offset, length] : extents_) {
    out.push_back(Extent{offset, length});
  }
  return out;
}

}  // namespace paraio::ppfs
