// Chrome trace-event JSON export (chrome://tracing / Perfetto "JSON trace
// format"), plus a dependency-free JSON validator used by tests and by
// paraio_stat to prove the emitted file parses.
//
// Mapping (documented in docs/TRACE_FORMAT.md):
//   pid  <- Track::process  (one per machine node; kGlobalProcess for
//           machine-wide rows such as application phases)
//   tid  <- Track::track    (one per device/server/role within the node)
//   "M"  <- process/track names registered on the Tracer
//   "X"  <- closed spans (ts/dur in microseconds of simulated time)
//   "C"  <- registry snapshot samples (one counter series per metric)
#pragma once

#include <iosfwd>
#include <string>

#include "obs/json.hpp"  // validate_json lives there; re-exported for callers
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace paraio::obs {

/// Writes `{"traceEvents":[...]}`.  Output is byte-deterministic for
/// identical tracer/registry contents.  Open (never-ended) spans are
/// skipped.  `registry` may be null; when set, its snapshot samples become
/// "C" counter events.
void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const Registry* registry = nullptr);

/// Convenience: render to a string (tests, determinism comparisons).
[[nodiscard]] std::string chrome_trace_text(const Tracer& tracer,
                                            const Registry* registry = nullptr);

}  // namespace paraio::obs
