// Simulated-time span tracing.
//
// Spans bracket intervals of simulated time — a PFS transfer, a PPFS ION
// batch, an application phase — on a (process, track) pair that maps
// directly onto the Chrome trace-event (pid, tid) model: one "process" per
// machine node, one "track" per device or server within it.  Nesting is
// per-track: beginning a span while another is open on the same track
// records the open one as its parent, which is how a PFS read span encloses
// the per-stripe-server piece spans it fans out to.
//
// Like obs::Registry, recording is pure bookkeeping in wall-clock space:
// no simulated time is consumed, so an attached tracer cannot perturb
// trace digests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace paraio::obs {

/// Where a span lives in the Chrome trace model: `process` becomes the pid
/// (one per machine node), `track` the tid (one per device/server/role).
struct Track {
  std::uint32_t process = 0;
  std::uint32_t track = 0;
};

/// Synthetic pid for machine-wide rows (application phases).
inline constexpr std::uint32_t kGlobalProcess = 0xFFFFFFFFu;

class Tracer {
 public:
  /// 1-based index into spans(); 0 means "no span" (detached call sites
  /// pass it back to end() harmlessly).
  using SpanId = std::uint64_t;

  struct Span {
    std::string name;
    std::string category;
    std::uint32_t process = 0;
    std::uint32_t track = 0;
    sim::SimTime start = 0.0;
    sim::SimTime end = -1.0;  // -1 while open
    SpanId parent = 0;

    [[nodiscard]] bool closed() const noexcept { return end >= start; }
  };

  /// A zero-duration marker — a fault injection, an exhausted-recovery I/O
  /// error — pinned to a moment on a (process, track) pair.
  struct Instant {
    std::string name;
    std::string category;
    std::uint32_t process = 0;
    std::uint32_t track = 0;
    sim::SimTime time = 0.0;
  };

  /// Binds the tracer to the engine whose clock timestamps spans.  Must be
  /// called before begin()/end(); core::run_experiment does it for hooks.
  void bind(sim::Engine& engine) noexcept { engine_ = &engine; }
  [[nodiscard]] bool bound() const noexcept { return engine_ != nullptr; }

  /// Opens a span at now().  If another span is open on the same track it
  /// becomes this one's parent.
  [[nodiscard]] SpanId begin(Track at, std::string name,
                             std::string category = {});
  /// Opens a span with an explicit parent (for child work that lands on a
  /// different process/track than its parent, e.g. the per-stripe-server
  /// pieces of one PFS transfer).  Does not join the track's open stack, so
  /// concurrent children cannot mis-nest under each other.
  [[nodiscard]] SpanId begin_child(Track at, std::string name, SpanId parent,
                                   std::string category = {});
  /// Closes a span at now().  Ignores id 0.
  void end(SpanId id);
  /// Records an already-finished interval (used to synthesize application
  /// phase spans from the PhaseLog after a run).
  void complete(Track at, std::string name, sim::SimTime start,
                sim::SimTime end, std::string category = {});
  /// Drops a zero-duration marker at now() (Chrome trace "instant" event).
  void instant(Track at, std::string name, std::string category = {});

  void name_process(std::uint32_t process, std::string name) {
    process_names_[process] = std::move(name);
  }
  void name_track(Track at, std::string name) {
    track_names_[{at.process, at.track}] = std::move(name);
  }

  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<Instant>& instants() const noexcept {
    return instants_;
  }
  [[nodiscard]] const std::map<std::uint32_t, std::string>& process_names()
      const noexcept {
    return process_names_;
  }
  [[nodiscard]] const std::map<std::pair<std::uint32_t, std::uint32_t>,
                               std::string>&
  track_names() const noexcept {
    return track_names_;
  }

 private:
  sim::Engine* engine_ = nullptr;
  std::vector<Span> spans_;
  std::vector<Instant> instants_;
  // Stack of open spans per (process, track); the top is the parent of the
  // next begin() on that track.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<SpanId>>
      open_;
  std::map<std::uint32_t, std::string> process_names_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::string> track_names_;
};

}  // namespace paraio::obs
