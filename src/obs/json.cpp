#include "obs/json.hpp"

#include <cctype>

namespace paraio::obs {

namespace {

/// Recursive-descent JSON parser that only answers "is this valid?".
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool run(std::string* error) {
    skip_ws();
    if (!value(0)) return fail(error);
    skip_ws();
    if (pos_ != text_.size()) {
      message_ = "trailing characters";
      return fail(error);
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 256;

  bool fail(std::string* error) const {
    if (error != nullptr) {
      *error = message_ + " at byte " + std::to_string(pos_);
    }
    return false;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool eat(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      message_ = "invalid literal";
      return false;
    }
    pos_ += word.size();
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) {
      message_ = "nesting too deep";
      return false;
    }
    switch (peek()) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object(int depth) {
    ++pos_;  // '{'
    skip_ws();
    if (eat('}')) return true;
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!eat(':')) {
        message_ = "expected ':'";
        return false;
      }
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return true;
      message_ = "expected ',' or '}'";
      return false;
    }
  }

  bool array(int depth) {
    ++pos_;  // '['
    skip_ws();
    if (eat(']')) return true;
    while (true) {
      skip_ws();
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return true;
      message_ = "expected ',' or ']'";
      return false;
    }
  }

  bool string() {
    if (!eat('"')) {
      message_ = "expected string";
      return false;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        message_ = "raw control character in string";
        return false;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        if (esc == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (pos_ >= text_.size() ||
                std::isxdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
              message_ = "bad \\u escape";
              return false;
            }
            ++pos_;
          }
        } else if (esc != '"' && esc != '\\' && esc != '/' && esc != 'b' &&
                   esc != 'f' && esc != 'n' && esc != 'r' && esc != 't') {
          message_ = "bad escape";
          return false;
        }
      }
    }
    message_ = "unterminated string";
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    eat('-');
    if (eat('0')) {
      // no further integer digits allowed
    } else if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    } else {
      message_ = "expected value";
      pos_ = start;
      return false;
    }
    if (eat('.')) {
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        message_ = "expected fraction digits";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) {
        message_ = "expected exponent digits";
        return false;
      }
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_ = "invalid JSON";
};

}  // namespace

bool validate_json(std::string_view text, std::string* error) {
  return JsonChecker(text).run(error);
}

}  // namespace paraio::obs
