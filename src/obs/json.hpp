// Dependency-free JSON validation (RFC 8259 subset: no duplicate-key or
// number-range policing).  Split out of the Chrome exporter so tools that
// emit JSON without linking the full obs layer — paraio_lint's SARIF writer,
// paraio_stat — can self-check their output with the same checker the trace
// exporter uses.
#pragma once

#include <string>
#include <string_view>

namespace paraio::obs {

/// Returns true when `text` is exactly one valid JSON value; on failure
/// `error`, if non-null, receives a short message with the byte offset.
[[nodiscard]] bool validate_json(std::string_view text,
                                 std::string* error = nullptr);

}  // namespace paraio::obs
