// Simulated-time metrics registry.
//
// The paper's methodology joins application-side Pablo traces with what the
// machine underneath was doing (§4-§5 timelines).  This layer is the
// "underneath" half for our reproduction: named counters, gauges, and
// log2-bucketed histograms that hardware and file-system models publish
// into, plus periodic simulated-time snapshots for utilization timelines.
//
// Design rules (all load-bearing for determinism):
//  * Zero cost when detached — instrumented classes hold null handle
//    pointers and guard every update with one pointer test, the same
//    pattern as sim::RaceDetector.
//  * Zero simulated time always — updates are pure bookkeeping; attaching
//    a registry must leave golden trace digests bit-identical.
//  * Ordered storage only — handles live in std::map nodes so iteration
//    and the text dump are deterministic (and pointers are stable).
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace paraio::obs {

/// Monotonically increasing event count (requests, seeks, cache hits...).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Instantaneous or accumulated real value (busy seconds, queue depth...).
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double d) noexcept { value_ += d; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log2-bucketed histogram of non-negative integer samples.  Bucket 0 holds
/// the value 0; bucket b >= 1 holds values in [2^(b-1), 2^b).  The paper's
/// request-size figures use exactly this bucketing, so the same shape works
/// for queue depths, batch sizes, and byte counts alike.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  /// Bucket index for a sample: 0 -> 0, otherwise floor(log2(v)) + 1.
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept {
    return static_cast<std::size_t>(std::bit_width(v));
  }
  /// Smallest value that lands in bucket `b`.
  [[nodiscard]] static std::uint64_t bucket_lo(std::size_t b) noexcept {
    return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
  }
  /// Largest value that lands in bucket `b` (inclusive).
  [[nodiscard]] static std::uint64_t bucket_hi(std::size_t b) noexcept {
    return b == 0 ? 0 : (std::uint64_t{1} << (b - 1)) * 2 - 1;
  }

  void record(std::uint64_t sample) noexcept {
    ++buckets_[bucket_of(sample)];
    ++count_;
    sum_ += sample;
    if (count_ == 1 || sample < min_) min_ = sample;
    if (sample > max_) max_ = sample;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t min() const noexcept { return min_; }
  [[nodiscard]] std::uint64_t max() const noexcept { return max_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& buckets()
      const noexcept {
    return buckets_;
  }
  /// One-line rendering: `count=N sum=S min=m max=M buckets=0:3,1:7,...`
  /// (only non-empty buckets appear).  Used by the registry dump and the
  /// paraio_stat report; byte-stable for identical sample streams.
  void print(std::ostream& out) const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

/// Named-metric registry.  Handle references are stable for the registry's
/// lifetime (map nodes never move), so instrumented classes cache raw
/// pointers at attach time and pay no lookup on the hot path.
class Registry {
 public:
  using CounterMap = std::map<std::string, Counter, std::less<>>;
  using GaugeMap = std::map<std::string, Gauge, std::less<>>;
  using HistogramMap = std::map<std::string, Histogram, std::less<>>;

  /// A periodic snapshot of one gauge or counter, in simulated time.
  struct Sample {
    sim::SimTime time = 0.0;
    const std::string* name = nullptr;  // points into this registry's maps
    double value = 0.0;
  };

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  [[nodiscard]] const CounterMap& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const GaugeMap& gauges() const noexcept { return gauges_; }
  [[nodiscard]] const HistogramMap& histograms() const noexcept {
    return histograms_;
  }
  [[nodiscard]] const std::vector<Sample>& samples() const noexcept {
    return samples_;
  }

  /// Deterministic plain-text dump: metrics sorted by name, then the
  /// snapshot series in recording order.  Identical runs produce
  /// byte-identical output.
  void dump(std::ostream& out) const;
  [[nodiscard]] std::string dump_text() const;

 private:
  friend class Sampler;

  CounterMap counters_;
  GaugeMap gauges_;
  HistogramMap histograms_;
  std::vector<Sample> samples_;
};

/// Handle bundle for one queued device (disk, RAID array, network link,
/// frame buffer).  Mirrors hw::DeviceStats plus a queue-depth histogram.
struct DeviceMetrics {
  Counter* requests = nullptr;
  Counter* bytes = nullptr;
  Counter* seeks = nullptr;
  Gauge* busy_s = nullptr;
  Gauge* queue_s = nullptr;
  Histogram* qdepth = nullptr;

  [[nodiscard]] bool attached() const noexcept { return requests != nullptr; }
  /// Creates/finds `<prefix>.requests`, `.bytes`, `.seeks`, `.busy_s`,
  /// `.queue_s`, `.qdepth` in `registry` and returns the handles.
  [[nodiscard]] static DeviceMetrics bind(Registry& registry,
                                          const std::string& prefix);
};

/// Periodic simulated-time snapshots of every gauge and counter.
///
/// Deliberately NOT a spawned daemon: a coroutine looping on
/// `co_await engine.delay(period)` would keep the event queue non-empty so
/// `Engine::run()` could never drain.  Instead the sampler chains onto the
/// kernel observer (exactly like sim::RaceDetector) and records a snapshot
/// whenever event execution first crosses a sample boundary — it injects no
/// events and consumes no simulated time, so attaching it cannot perturb
/// trace digests.  Values are read at the first event at-or-after each
/// boundary; with no events pending, nothing changes, so nothing is missed.
class Sampler final : public sim::EngineObserver {
 public:
  Sampler(sim::Engine& engine, Registry& registry, sim::SimDuration period);
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;
  ~Sampler() override;

  void on_schedule(sim::SimTime now, sim::SimTime when) override;
  void on_event(sim::SimTime when) override;
  void on_run_complete(sim::SimTime now, std::size_t pending_events,
                       std::size_t live_tasks) override;

 private:
  void snapshot(sim::SimTime at);

  sim::Engine& engine_;
  Registry& registry_;
  sim::SimDuration period_;
  sim::SimTime next_;
  sim::EngineObserver* chained_;
};

/// Deterministic rendering for doubles in dumps and exports: %.9g via
/// snprintf, which is byte-stable for identical values.
[[nodiscard]] std::string format_double(double v);

}  // namespace paraio::obs
