#include "obs/chrome.hpp"

#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace paraio::obs {

namespace {

/// Microsecond timestamp with fixed precision — byte-stable and fine-grained
/// enough for the sub-microsecond service-time model.
std::string micros(sim::SimTime seconds) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
  return buf;
}

void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char ch : s) {
    switch (ch) {
      case '"':
        out << "\\\"";
        break;
      case '\\':
        out << "\\\\";
        break;
      case '\n':
        out << "\\n";
        break;
      case '\t':
        out << "\\t";
        break;
      case '\r':
        out << "\\r";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out << buf;
        } else {
          out << ch;
        }
    }
  }
  out << '"';
}

class EventWriter {
 public:
  explicit EventWriter(std::ostream& out) : out_(out) {
    out_ << "{\"traceEvents\":[";
  }
  /// Starts the next event object; the caller writes the fields.
  std::ostream& next() {
    if (!first_) out_ << ",";
    first_ = false;
    out_ << "\n{";
    return out_;
  }
  void finish() { out_ << "\n]}\n"; }

 private:
  std::ostream& out_;
  bool first_ = true;
};

}  // namespace

void write_chrome_trace(std::ostream& out, const Tracer& tracer,
                        const Registry* registry) {
  EventWriter events(out);

  for (const auto& [pid, name] : tracer.process_names()) {
    auto& o = events.next();
    o << "\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
      << ",\"tid\":0,\"args\":{\"name\":";
    write_escaped(o, name);
    o << "}}";
  }
  for (const auto& [key, name] : tracer.track_names()) {
    auto& o = events.next();
    o << "\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" << key.first
      << ",\"tid\":" << key.second << ",\"args\":{\"name\":";
    write_escaped(o, name);
    o << "}}";
  }

  Tracer::SpanId id = 0;
  for (const Tracer::Span& span : tracer.spans()) {
    ++id;
    if (!span.closed()) continue;  // never-ended spans have no duration
    auto& o = events.next();
    o << "\"name\":";
    write_escaped(o, span.name);
    if (!span.category.empty()) {
      o << ",\"cat\":";
      write_escaped(o, span.category);
    }
    o << ",\"ph\":\"X\",\"pid\":" << span.process << ",\"tid\":" << span.track
      << ",\"ts\":" << micros(span.start)
      << ",\"dur\":" << micros(span.end - span.start)
      << ",\"args\":{\"span\":" << id << ",\"parent\":" << span.parent << "}}";
  }

  for (const Tracer::Instant& mark : tracer.instants()) {
    auto& o = events.next();
    o << "\"name\":";
    write_escaped(o, mark.name);
    if (!mark.category.empty()) {
      o << ",\"cat\":";
      write_escaped(o, mark.category);
    }
    // "s":"t" scopes the marker to its track row.
    o << ",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << mark.process
      << ",\"tid\":" << mark.track << ",\"ts\":" << micros(mark.time) << "}";
  }

  if (registry != nullptr) {
    for (const Registry::Sample& s : registry->samples()) {
      auto& o = events.next();
      o << "\"name\":";
      write_escaped(o, *s.name);
      o << ",\"ph\":\"C\",\"pid\":0,\"tid\":0,\"ts\":" << micros(s.time)
        << ",\"args\":{\"value\":" << format_double(s.value) << "}}";
    }
  }

  events.finish();
}

std::string chrome_trace_text(const Tracer& tracer, const Registry* registry) {
  std::ostringstream out;
  write_chrome_trace(out, tracer, registry);
  return out.str();
}


}  // namespace paraio::obs
