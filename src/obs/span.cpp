#include "obs/span.hpp"

#include <algorithm>
#include <cassert>

namespace paraio::obs {

Tracer::SpanId Tracer::begin(Track at, std::string name,
                             std::string category) {
  assert(engine_ != nullptr && "Tracer::bind must precede begin()");
  Span span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.process = at.process;
  span.track = at.track;
  span.start = engine_->now();
  auto& stack = open_[{at.process, at.track}];
  if (!stack.empty()) span.parent = stack.back();
  spans_.push_back(std::move(span));
  const SpanId id = spans_.size();
  stack.push_back(id);
  return id;
}

Tracer::SpanId Tracer::begin_child(Track at, std::string name, SpanId parent,
                                   std::string category) {
  assert(engine_ != nullptr && "Tracer::bind must precede begin_child()");
  Span span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.process = at.process;
  span.track = at.track;
  span.start = engine_->now();
  span.parent = parent;
  spans_.push_back(std::move(span));
  return spans_.size();
}

void Tracer::end(SpanId id) {
  if (id == 0) return;
  assert(engine_ != nullptr && "Tracer::bind must precede end()");
  Span& span = spans_[id - 1];
  span.end = engine_->now();
  auto& stack = open_[{span.process, span.track}];
  // Usually the top of the stack; overlapping (non-nested) spans on one
  // track are tolerated by erasing from wherever the id sits.
  const auto it = std::find(stack.rbegin(), stack.rend(), id);
  if (it != stack.rend()) stack.erase(std::next(it).base());
}

void Tracer::instant(Track at, std::string name, std::string category) {
  assert(engine_ != nullptr && "Tracer::bind must precede instant()");
  Instant mark;
  mark.name = std::move(name);
  mark.category = std::move(category);
  mark.process = at.process;
  mark.track = at.track;
  mark.time = engine_->now();
  instants_.push_back(std::move(mark));
}

void Tracer::complete(Track at, std::string name, sim::SimTime start,
                      sim::SimTime end, std::string category) {
  Span span;
  span.name = std::move(name);
  span.category = std::move(category);
  span.process = at.process;
  span.track = at.track;
  span.start = start;
  span.end = end;
  spans_.push_back(std::move(span));
}

}  // namespace paraio::obs
