#include "obs/metrics.hpp"

#include <cstdio>
#include <ostream>
#include <sstream>

namespace paraio::obs {

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

void Histogram::print(std::ostream& out) const {
  out << "count=" << count_ << " sum=" << sum_ << " min=" << min_
      << " max=" << max_ << " buckets=";
  bool first = true;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets_[b] == 0) continue;
    if (!first) out << ',';
    out << b << ':' << buckets_[b];
    first = false;
  }
  if (first) out << '-';
}

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), Counter{}).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), Gauge{}).first;
  }
  return it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

void Registry::dump(std::ostream& out) const {
  out << "# paraio metrics v1\n";
  for (const auto& [name, c] : counters_) {
    out << "counter " << name << ' ' << c.value() << '\n';
  }
  for (const auto& [name, g] : gauges_) {
    out << "gauge " << name << ' ' << format_double(g.value()) << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    out << "histogram " << name << ' ';
    h.print(out);
    out << '\n';
  }
  for (const Sample& s : samples_) {
    out << "sample " << format_double(s.time) << ' ' << *s.name << ' '
        << format_double(s.value) << '\n';
  }
}

std::string Registry::dump_text() const {
  std::ostringstream out;
  dump(out);
  return out.str();
}

DeviceMetrics DeviceMetrics::bind(Registry& registry,
                                  const std::string& prefix) {
  DeviceMetrics m;
  m.requests = &registry.counter(prefix + ".requests");
  m.bytes = &registry.counter(prefix + ".bytes");
  m.seeks = &registry.counter(prefix + ".seeks");
  m.busy_s = &registry.gauge(prefix + ".busy_s");
  m.queue_s = &registry.gauge(prefix + ".queue_s");
  m.qdepth = &registry.histogram(prefix + ".qdepth");
  return m;
}

Sampler::Sampler(sim::Engine& engine, Registry& registry,
                 sim::SimDuration period)
    : engine_(engine),
      registry_(registry),
      period_(period),
      next_(engine.now() + period),
      chained_(engine.observer()) {
  engine_.set_observer(this);
}

Sampler::~Sampler() {
  if (engine_.observer() == this) engine_.set_observer(chained_);
}

void Sampler::on_schedule(sim::SimTime now, sim::SimTime when) {
  if (chained_ != nullptr) chained_->on_schedule(now, when);
}

void Sampler::on_event(sim::SimTime when) {
  // Snapshot once per boundary crossed; values are as of the previous
  // event, which is exact — nothing changed in the gap.
  while (when >= next_) {
    snapshot(next_);
    next_ += period_;
  }
  if (chained_ != nullptr) chained_->on_event(when);
}

void Sampler::on_run_complete(sim::SimTime now, std::size_t pending_events,
                              std::size_t live_tasks) {
  snapshot(now);  // final values, so every series reaches the run end
  if (chained_ != nullptr) {
    chained_->on_run_complete(now, pending_events, live_tasks);
  }
}

void Sampler::snapshot(sim::SimTime at) {
  for (const auto& [name, g] : registry_.gauges_) {
    registry_.samples_.push_back({at, &name, g.value()});
  }
  for (const auto& [name, c] : registry_.counters_) {
    registry_.samples_.push_back({at, &name, static_cast<double>(c.value())});
  }
}

}  // namespace paraio::obs
