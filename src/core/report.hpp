// One-call characterization report: everything the analysis toolkit knows
// about an experiment, rendered as a single markdown document — the
// artifact a characterization study publishes per application.
#pragma once

#include <string>

#include "core/experiment.hpp"

namespace paraio::core {

struct ReportOptions {
  std::string title = "I/O characterization";
  /// Window width for the automatic phase detection (seconds).
  double phase_window = 60.0;
  /// Include the per-file lifetime table (can be long for many files).
  bool include_files = true;
};

/// Renders operation/size tables, duration/size statistics, detected
/// phases, the access-pattern census, and per-file lifetimes for one
/// experiment result.
[[nodiscard]] std::string report(const ExperimentResult& result,
                                 const ReportOptions& options = {});

}  // namespace paraio::core
