#include "core/report.hpp"

#include <sstream>

#include "analysis/op_stats.hpp"
#include "analysis/pattern.hpp"
#include "analysis/phases.hpp"
#include "analysis/tables.hpp"
#include "pablo/summary.hpp"

namespace paraio::core {

std::string report(const ExperimentResult& result,
                   const ReportOptions& options) {
  std::ostringstream out;
  const pablo::Trace& trace = result.trace;
  out << "# " << options.title << "\n\n";
  out << "- simulated run: " << result.run_end - result.run_start
      << " s\n- events captured: " << trace.size()
      << "\n- files touched: " << trace.files().size() << "\n";
  if (!result.phases.phases().empty()) {
    out << "- application phases:";
    for (const auto& [name, t] : result.phases.phases()) {
      out << " " << name << " (ends " << t - result.run_start << " s)";
    }
    out << "\n";
  }
  out << "\n## Operations\n\n";
  analysis::OperationTable ops(trace);
  out << analysis::to_markdown(ops);

  out << "\n## Request sizes\n\n";
  analysis::SizeTable sizes(trace);
  out << analysis::to_markdown(sizes);
  out << "\nRead-size distribution is "
      << (sizes.read_histogram().is_bimodal() ? "bimodal" : "not bimodal")
      << ".\n";

  out << "\n## Duration and size statistics\n\n```\n"
      << analysis::to_text(analysis::OperationStats(trace), "") << "```\n";

  out << "\n## Detected phases\n\n```\n"
      << analysis::to_text(analysis::detect_phases(
             trace, {.window = options.phase_window}))
      << "```\n";

  out << "\n## Access patterns\n\n";
  const auto mix = analysis::pattern_mix(analysis::classify_trace(trace));
  out << "| sequential | strided | random | too short |\n|---:|---:|---:|---:|\n| "
      << mix.sequential << " | " << mix.strided << " | " << mix.random
      << " | " << mix.single << " |\n";

  if (options.include_files) {
    out << "\n## Files\n\n"
        << "| file | ops | bytes read | bytes written | open time (s) |\n"
        << "|---|---:|---:|---:|---:|\n";
    pablo::FileLifetimeSummary lifetime;
    lifetime.absorb(trace);
    for (const auto& [id, entry] : lifetime.files()) {
      out << "| " << trace.file_name(id) << " | "
          << entry.counters.total_ops() << " | "
          << entry.counters.bytes_read << " | "
          << entry.counters.bytes_written << " | " << entry.open_time
          << " |\n";
    }
  }
  return out.str();
}

}  // namespace paraio::core
