// Command-line plumbing for the observability layer.
//
// Every binary that runs an experiment and wants the obs layer attached
// accepts the same three flags:
//
//   --metrics PATH       write the deterministic registry dump after the run
//   --chrome-trace PATH  write a Chrome trace-event JSON (ui.perfetto.dev)
//   --sample-period S    additionally snapshot every gauge/counter each S
//                        simulated seconds (requires --metrics)
//
// ObsOptions owns the Registry and Tracer those flags imply, wires them into
// an ExperimentConfig's hooks, and writes the outputs afterwards.  The
// emitted Chrome JSON is re-validated with obs::validate_json before it is
// written, and finish() returns false on any I/O or validation failure so
// callers can exit nonzero — the same end-to-end contract paraio-stat gives
// CI (see docs/OBSERVABILITY.md).
#pragma once

#include <string>

#include "core/experiment.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace paraio::core {

class ObsOptions {
 public:
  /// Scans argv for the obs flags.  Unrelated arguments are left for the
  /// caller to interpret; the flags themselves are positional-independent.
  [[nodiscard]] static ObsOptions parse(int argc, char** argv);

  /// Attaches the owned registry/tracer to `config.hooks` — only the pieces
  /// the flags asked for, so a flag-free invocation attaches nothing and the
  /// run stays on the no-observer fast path.  Call before run_experiment;
  /// this object must outlive the run.
  void install(ExperimentConfig& config);

  /// Writes the requested outputs.  Returns false (after printing a
  /// diagnostic to stderr) if a file cannot be written or the emitted
  /// Chrome trace fails JSON validation.
  [[nodiscard]] bool finish();

  [[nodiscard]] const std::string& metrics_path() const noexcept {
    return metrics_path_;
  }
  [[nodiscard]] const std::string& chrome_path() const noexcept {
    return chrome_path_;
  }
  [[nodiscard]] double sample_period() const noexcept { return sample_period_; }

 private:
  std::string metrics_path_;
  std::string chrome_path_;
  double sample_period_ = 0.0;
  obs::Registry registry_;
  obs::Tracer tracer_;
};

}  // namespace paraio::core
