#include "core/obs_options.hpp"

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string_view>

#include "obs/chrome.hpp"

namespace paraio::core {

ObsOptions ObsOptions::parse(int argc, char** argv) {
  ObsOptions opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--metrics") {
      opt.metrics_path_ = value();
    } else if (arg == "--chrome-trace") {
      opt.chrome_path_ = value();
    } else if (arg == "--sample-period") {
      opt.sample_period_ = std::strtod(value(), nullptr);
    }
  }
  return opt;
}

void ObsOptions::install(ExperimentConfig& config) {
  // The sampler needs the registry, and the Chrome exporter embeds counter
  // totals, so both outputs imply metrics collection.
  if (!metrics_path_.empty() || !chrome_path_.empty()) {
    config.hooks.metrics = &registry_;
  }
  if (!chrome_path_.empty()) {
    config.hooks.tracer = &tracer_;
  }
  if (sample_period_ > 0.0) {
    config.hooks.metrics = &registry_;
    config.hooks.sample_period = sample_period_;
  }
}

bool ObsOptions::finish() {
  if (!metrics_path_.empty()) {
    std::ofstream out(metrics_path_);
    if (!out) {
      std::cerr << "error: cannot open " << metrics_path_ << "\n";
      return false;
    }
    registry_.dump(out);
  }
  if (!chrome_path_.empty()) {
    const std::string json = obs::chrome_trace_text(tracer_, &registry_);
    std::string error;
    if (!obs::validate_json(json, &error)) {
      std::cerr << "error: emitted Chrome trace is not valid JSON: " << error
                << "\n";
      return false;
    }
    std::ofstream out(chrome_path_);
    if (!out) {
      std::cerr << "error: cannot open " << chrome_path_ << "\n";
      return false;
    }
    out << json;
  }
  return true;
}

}  // namespace paraio::core
