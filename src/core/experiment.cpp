#include "core/experiment.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <string>

#include "pablo/instrument.hpp"
#include "sim/engine.hpp"

namespace paraio::core {

namespace {

/// Checkpoint participants per application: every node that reaches the
/// collective boundary (RENDER's gateway never does).
std::uint32_t checkpoint_parties(const AppConfig& app) {
  return std::visit(
      [](const auto& cfg) -> std::uint32_t {
        using Config = std::decay_t<decltype(cfg)>;
        if constexpr (std::is_same_v<Config, apps::RenderConfig>) {
          return cfg.renderers;
        } else {
          return cfg.nodes;
        }
      },
      app);
}

/// The exposure reference for data_loss_window: the first destructive fault
/// in the plan (an ION crash or disk failure kills volatile state), or run
/// end when the plan has none.
sim::SimTime loss_reference(const fault::FaultPlan& plan, sim::SimTime end) {
  sim::SimTime ref = end;
  for (const fault::FaultEvent& ev : plan.events) {
    if (ev.kind == fault::FaultKind::kIonCrash ||
        ev.kind == fault::FaultKind::kDiskFail) {
      ref = std::min(ref, ev.at);
    }
  }
  return ref;
}

/// Application wrapper so the driver can treat the application codes
/// uniformly.
template <typename App>
sim::Task<> drive(App& app, io::FileSystem& bare, ExperimentResult& result,
                  sim::Engine& engine, pfs::IoObserver* io_observer) {
  co_await app.stage(bare);
  if (io_observer) io_observer->on_measured_run_start();
  result.run_start = engine.now();
  co_await app.run();
  result.run_end = engine.now();
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  sim::Engine engine;
  engine.set_tie_break_seed(config.tie_break_seed);
  engine.set_observer(config.hooks.engine);
  hw::Machine machine(engine, config.machine);

  obs::Registry* metrics = config.hooks.metrics;
  obs::Tracer* tracer = config.hooks.tracer;
  if (metrics != nullptr) machine.attach_metrics(*metrics);
  if (tracer != nullptr) tracer->bind(engine);
  // Chains onto whatever engine observer is already attached; destroyed
  // before `engine` goes out of scope.
  std::optional<obs::Sampler> sampler;
  if (metrics != nullptr && config.hooks.sample_period > 0.0) {
    sampler.emplace(engine, *metrics, config.hooks.sample_period);
  }
  // Fault injector chains like the sampler.  With an empty plan it only
  // forwards observer callbacks, which keeps the run bit-identical.
  std::optional<fault::FaultInjector> injector;
  if (config.attach_fault_layer || !config.fault_plan.empty()) {
    injector.emplace(engine, machine, config.fault_plan, metrics, tracer);
  }

  std::unique_ptr<pfs::Pfs> pfs_fs;
  std::unique_ptr<ppfs::Ppfs> ppfs_fs;
  io::FileSystem* bare = nullptr;
  if (config.filesystem.kind == FsChoice::Kind::kPfs) {
    pfs_fs = std::make_unique<pfs::Pfs>(machine, config.filesystem.pfs_params);
    pfs_fs->set_observer(config.hooks.io);
    pfs_fs->attach_observability(metrics, tracer);
    bare = pfs_fs.get();
  } else {
    ppfs_fs =
        std::make_unique<ppfs::Ppfs>(machine, config.filesystem.ppfs_params);
    ppfs_fs->set_observer(config.hooks.io);
    ppfs_fs->attach_observability(metrics, tracer);
    bare = ppfs_fs.get();
  }

  pablo::InstrumentedFs instrumented(*bare, engine);
  ExperimentResult result;
  instrumented.add_sink(result.trace);

  // Checkpoint machinery (only when enabled).  The absorber drains through
  // the PPFS client's recovery path, so it needs a PPFS mount; the
  // write-behind baseline dumps through the bare mount (staging-style
  // traffic, kept out of the measured trace like stage() itself).
  std::optional<ckpt::WriteAbsorber> absorber;
  std::optional<ckpt::CheckpointCoordinator> coordinator;
  if (config.checkpoint.enabled) {
    if (config.checkpoint.backend == ckpt::CkptBackend::kAbsorber) {
      if (!ppfs_fs) {
        throw std::invalid_argument(
            "checkpoint backend kAbsorber requires a PPFS mount");
      }
      absorber.emplace(*ppfs_fs, config.absorber);
      absorber->attach_observability(metrics, tracer);
    }
    coordinator.emplace(machine, checkpoint_parties(config.app),
                        config.checkpoint, absorber ? &*absorber : nullptr,
                        absorber ? nullptr : bare);
    coordinator->attach_observability(metrics, tracer);
  }
  apps::CheckpointHook* hook = coordinator ? &*coordinator : nullptr;

  std::visit(
      [&](const auto& app_config) {
        using Config = std::decay_t<decltype(app_config)>;
        if constexpr (std::is_same_v<Config, apps::EscatConfig>) {
          apps::Escat app(machine, instrumented, app_config);
          app.set_checkpoint(hook);
          engine.spawn(drive(app, *bare, result, engine, config.hooks.io));
          engine.run();
          result.phases = app.phases();
        } else if constexpr (std::is_same_v<Config, apps::RenderConfig>) {
          apps::Render app(machine, instrumented, app_config);
          app.set_checkpoint(hook);
          engine.spawn(drive(app, *bare, result, engine, config.hooks.io));
          engine.run();
          result.phases = app.phases();
        } else if constexpr (std::is_same_v<Config, apps::SyntheticConfig>) {
          apps::Synthetic app(machine, instrumented, app_config);
          app.set_checkpoint(hook);
          engine.spawn(drive(app, *bare, result, engine, config.hooks.io));
          engine.run();
          result.phases = app.phases();
        } else {
          apps::Htf app(machine, instrumented, app_config);
          app.set_checkpoint(hook);
          engine.spawn(drive(app, *bare, result, engine, config.hooks.io));
          engine.run();
          result.phases = app.phases();
        }
      },
      config.app);

  result.kernel_events = engine.events_executed();
  if (coordinator) {
    result.checkpoint = coordinator->stats();
    result.checkpoint.data_loss_window = coordinator->data_loss_window(
        loss_reference(config.fault_plan, result.run_end));
  }
  if (absorber) {
    result.absorber = absorber->stats();
    result.ckpt_log = std::make_shared<ckpt::LogImage>(absorber->log());
  }
  if (pfs_fs) result.pfs_counters = pfs_fs->counters();
  if (ppfs_fs) {
    result.ppfs_counters = ppfs_fs->counters();
    result.recovery = ppfs_fs->recovery_stats();
  }
  if (injector) result.faults_injected = injector->applied();
  for (std::size_t k = 0; k < machine.io_nodes(); ++k) {
    const hw::RaidFaultStats& rf = machine.ion_array(k).fault_stats();
    result.raid_faults.disk_failures += rf.disk_failures;
    result.raid_faults.repairs += rf.repairs;
    result.raid_faults.degraded_accesses += rf.degraded_accesses;
    result.raid_faults.failed_accesses += rf.failed_accesses;
    result.raid_faults.rebuild_chunks += rf.rebuild_chunks;
    result.raid_faults.rebuild_bytes += rf.rebuild_bytes;
  }

  if (tracer != nullptr) {
    // Application compute/IO phases become spans on a machine-wide row,
    // synthesized from the phase log (consecutive phases abut).
    sim::SimTime prev = result.run_start;
    for (const auto& [name, end] : result.phases.phases()) {
      tracer->complete({obs::kGlobalProcess, 0}, name, prev, end, "phase");
      prev = end;
    }
    tracer->name_process(obs::kGlobalProcess, "app phases");
    if (coordinator) {
      tracer->name_track({obs::kGlobalProcess, 1}, "ckpt epochs");
      tracer->name_track({obs::kGlobalProcess, 2}, "ckpt drain");
    }
    for (std::size_t n = 0; n < machine.compute_nodes(); ++n) {
      tracer->name_process(static_cast<std::uint32_t>(n),
                           "node" + std::to_string(n));
    }
    for (std::size_t k = 0; k < machine.io_nodes(); ++k) {
      const hw::NodeId id = machine.ion_node_id(k);
      tracer->name_process(id, "ion" + std::to_string(k));
      tracer->name_track({id, 1}, "pfs pieces");
      tracer->name_track({id, 2}, "ppfs batches");
    }
  }
  return result;
}

// --- calibrations ----------------------------------------------------------
// Derivations in EXPERIMENTS.md.  Headline targets: the paper's per-op-class
// node-time shares (ESCAT: seeks+writes ~96 % of I/O time; RENDER: iowait
// dominates, writes ~19 %; HTF: creates expensive, SCF reads ~98 %).

pfs::PfsParams escat_pfs_params() {
  pfs::PfsParams p;
  // eseek is the expensive call (Table 1: 12,034 seeks cost 20,884 s);
  // the per-write metadata update is cheaper but still serialized.
  p.meta_service = sim::milliseconds(33.0);
  p.write_meta_service = sim::milliseconds(330.0);
  p.open_service = sim::milliseconds(71.0);
  p.close_service = sim::milliseconds(23.0);
  p.write_control_rpc = true;
  return p;
}

pfs::PfsParams render_pfs_params() {
  pfs::PfsParams p;
  // Gateway-serial opens, ~0.3 s each (Table 3: 106 opens, 32.8 s).
  p.open_service = sim::milliseconds(300.0);
  p.close_service = sim::milliseconds(65.0);
  p.meta_service = sim::milliseconds(8.0);
  p.async_issue = sim::milliseconds(10.0);
  p.write_control_rpc = false;  // large streaming writes, no per-op metadata
  return p;
}

pfs::PfsParams htf_pfs_params() {
  pfs::PfsParams p;
  // File creation was enormously expensive for this code's runs (130
  // pargos opens cost 4,057 s of node time); plain opens far cheaper
  // (157 pscf opens cost 519 s).  Per-request OS work at the I/O nodes'
  // data servers — not the media — dominates the ~80 KB record traffic
  // (SCF reads average 0.63 s each in Table 5).
  p.open_service = sim::milliseconds(400.0);
  p.create_service = sim::milliseconds(5500.0);
  p.close_service = sim::milliseconds(70.0);
  p.meta_service = sim::milliseconds(5.0);
  p.write_meta_service = sim::milliseconds(100.0);
  p.flush_service = sim::milliseconds(30.0);
  p.data_service = sim::milliseconds(50.0);
  p.write_control_rpc = true;
  return p;
}

ExperimentConfig escat_experiment() {
  ExperimentConfig cfg;
  cfg.machine = hw::MachineConfig::paragon_xps(128, 16);
  cfg.filesystem = FsChoice::pfs(escat_pfs_params());
  cfg.app = apps::EscatConfig{};
  return cfg;
}

ExperimentConfig render_experiment() {
  ExperimentConfig cfg;
  // 128 renderers + 1 gateway.
  cfg.machine = hw::MachineConfig::paragon_xps(129, 16);
  cfg.filesystem = FsChoice::pfs(render_pfs_params());
  cfg.app = apps::RenderConfig{};
  return cfg;
}

ExperimentConfig htf_experiment() {
  ExperimentConfig cfg;
  cfg.machine = hw::MachineConfig::paragon_xps(128, 16);
  cfg.filesystem = FsChoice::pfs(htf_pfs_params());
  cfg.app = apps::HtfConfig{};
  return cfg;
}

}  // namespace paraio::core
