#include "core/experiment.hpp"

#include "pablo/instrument.hpp"
#include "sim/engine.hpp"

namespace paraio::core {

namespace {

/// Application wrapper so the driver can treat the application codes
/// uniformly.
template <typename App>
sim::Task<> drive(App& app, io::FileSystem& bare, ExperimentResult& result,
                  sim::Engine& engine, pfs::IoObserver* io_observer) {
  co_await app.stage(bare);
  if (io_observer) io_observer->on_measured_run_start();
  result.run_start = engine.now();
  co_await app.run();
  result.run_end = engine.now();
}

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  sim::Engine engine;
  engine.set_observer(config.hooks.engine);
  hw::Machine machine(engine, config.machine);

  std::unique_ptr<pfs::Pfs> pfs_fs;
  std::unique_ptr<ppfs::Ppfs> ppfs_fs;
  io::FileSystem* bare = nullptr;
  if (config.filesystem.kind == FsChoice::Kind::kPfs) {
    pfs_fs = std::make_unique<pfs::Pfs>(machine, config.filesystem.pfs_params);
    pfs_fs->set_observer(config.hooks.io);
    bare = pfs_fs.get();
  } else {
    ppfs_fs =
        std::make_unique<ppfs::Ppfs>(machine, config.filesystem.ppfs_params);
    ppfs_fs->set_observer(config.hooks.io);
    bare = ppfs_fs.get();
  }

  pablo::InstrumentedFs instrumented(*bare, engine);
  ExperimentResult result;
  instrumented.add_sink(result.trace);

  std::visit(
      [&](const auto& app_config) {
        using Config = std::decay_t<decltype(app_config)>;
        if constexpr (std::is_same_v<Config, apps::EscatConfig>) {
          apps::Escat app(machine, instrumented, app_config);
          engine.spawn(drive(app, *bare, result, engine, config.hooks.io));
          engine.run();
          result.phases = app.phases();
        } else if constexpr (std::is_same_v<Config, apps::RenderConfig>) {
          apps::Render app(machine, instrumented, app_config);
          engine.spawn(drive(app, *bare, result, engine, config.hooks.io));
          engine.run();
          result.phases = app.phases();
        } else if constexpr (std::is_same_v<Config, apps::SyntheticConfig>) {
          apps::Synthetic app(machine, instrumented, app_config);
          engine.spawn(drive(app, *bare, result, engine, config.hooks.io));
          engine.run();
          result.phases = app.phases();
        } else {
          apps::Htf app(machine, instrumented, app_config);
          engine.spawn(drive(app, *bare, result, engine, config.hooks.io));
          engine.run();
          result.phases = app.phases();
        }
      },
      config.app);

  if (pfs_fs) result.pfs_counters = pfs_fs->counters();
  if (ppfs_fs) result.ppfs_counters = ppfs_fs->counters();
  return result;
}

// --- calibrations ----------------------------------------------------------
// Derivations in EXPERIMENTS.md.  Headline targets: the paper's per-op-class
// node-time shares (ESCAT: seeks+writes ~96 % of I/O time; RENDER: iowait
// dominates, writes ~19 %; HTF: creates expensive, SCF reads ~98 %).

pfs::PfsParams escat_pfs_params() {
  pfs::PfsParams p;
  // eseek is the expensive call (Table 1: 12,034 seeks cost 20,884 s);
  // the per-write metadata update is cheaper but still serialized.
  p.meta_service = sim::milliseconds(33.0);
  p.write_meta_service = sim::milliseconds(330.0);
  p.open_service = sim::milliseconds(71.0);
  p.close_service = sim::milliseconds(23.0);
  p.write_control_rpc = true;
  return p;
}

pfs::PfsParams render_pfs_params() {
  pfs::PfsParams p;
  // Gateway-serial opens, ~0.3 s each (Table 3: 106 opens, 32.8 s).
  p.open_service = sim::milliseconds(300.0);
  p.close_service = sim::milliseconds(65.0);
  p.meta_service = sim::milliseconds(8.0);
  p.async_issue = sim::milliseconds(10.0);
  p.write_control_rpc = false;  // large streaming writes, no per-op metadata
  return p;
}

pfs::PfsParams htf_pfs_params() {
  pfs::PfsParams p;
  // File creation was enormously expensive for this code's runs (130
  // pargos opens cost 4,057 s of node time); plain opens far cheaper
  // (157 pscf opens cost 519 s).  Per-request OS work at the I/O nodes'
  // data servers — not the media — dominates the ~80 KB record traffic
  // (SCF reads average 0.63 s each in Table 5).
  p.open_service = sim::milliseconds(400.0);
  p.create_service = sim::milliseconds(5500.0);
  p.close_service = sim::milliseconds(70.0);
  p.meta_service = sim::milliseconds(5.0);
  p.write_meta_service = sim::milliseconds(100.0);
  p.flush_service = sim::milliseconds(30.0);
  p.data_service = sim::milliseconds(50.0);
  p.write_control_rpc = true;
  return p;
}

ExperimentConfig escat_experiment() {
  ExperimentConfig cfg;
  cfg.machine = hw::MachineConfig::paragon_xps(128, 16);
  cfg.filesystem = FsChoice::pfs(escat_pfs_params());
  cfg.app = apps::EscatConfig{};
  return cfg;
}

ExperimentConfig render_experiment() {
  ExperimentConfig cfg;
  // 128 renderers + 1 gateway.
  cfg.machine = hw::MachineConfig::paragon_xps(129, 16);
  cfg.filesystem = FsChoice::pfs(render_pfs_params());
  cfg.app = apps::RenderConfig{};
  return cfg;
}

ExperimentConfig htf_experiment() {
  ExperimentConfig cfg;
  cfg.machine = hw::MachineConfig::paragon_xps(128, 16);
  cfg.filesystem = FsChoice::pfs(htf_pfs_params());
  cfg.app = apps::HtfConfig{};
  return cfg;
}

}  // namespace paraio::core
