// Experiment facade: one call builds the machine, mounts a file system,
// instruments it, stages the input files, runs the selected application, and
// returns the captured trace plus phase boundaries — everything the table
// and figure generators need.
#pragma once

#include <memory>
#include <variant>

#include "apps/escat.hpp"
#include "apps/htf.hpp"
#include "apps/render.hpp"
#include "apps/synthetic.hpp"
#include "ckpt/absorber.hpp"
#include "ckpt/checkpoint.hpp"
#include "ckpt/log.hpp"
#include "fault/fault.hpp"
#include "hw/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pablo/summary.hpp"
#include "pablo/trace.hpp"
#include "pfs/observer.hpp"
#include "pfs/pfs.hpp"
#include "ppfs/ppfs.hpp"

namespace paraio::core {

/// Which file system to mount, with its policy/calibration parameters.
struct FsChoice {
  enum class Kind { kPfs, kPpfs };
  Kind kind = Kind::kPfs;
  pfs::PfsParams pfs_params;
  ppfs::PpfsParams ppfs_params;

  static FsChoice pfs(pfs::PfsParams params = {}) {
    FsChoice c;
    c.kind = Kind::kPfs;
    c.pfs_params = params;
    return c;
  }
  static FsChoice ppfs(ppfs::PpfsParams params = {}) {
    FsChoice c;
    c.kind = Kind::kPpfs;
    c.ppfs_params = params;
    return c;
  }
};

using AppConfig = std::variant<apps::EscatConfig, apps::RenderConfig,
                               apps::HtfConfig, apps::SyntheticConfig>;

/// Debug observer hooks (see sim::EngineObserver and pfs::IoObserver).
/// The engine observer is attached for the whole simulation, the I/O
/// observer as soon as the mount exists; io->on_measured_run_start() fires
/// after input staging so checkers can separate staging traffic from the
/// measured run.  All hooks default to "nothing attached".
///
/// `metrics`/`tracer` opt into the obs layer: the machine's devices, the
/// mounted file system, and (post-run) the application phases publish into
/// them.  Attachment never consumes simulated time, so results and trace
/// digests are bit-identical with and without.  With metrics attached and
/// `sample_period` > 0, every gauge and counter is additionally snapshotted
/// each `sample_period` simulated seconds (see obs::Sampler).
struct ExperimentHooks {
  sim::EngineObserver* engine = nullptr;
  pfs::IoObserver* io = nullptr;
  obs::Registry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  sim::SimDuration sample_period = 0.0;
};

struct ExperimentConfig {
  hw::MachineConfig machine = hw::MachineConfig::paragon_xps(128, 16);
  FsChoice filesystem;
  AppConfig app;
  ExperimentHooks hooks;
  /// Same-instant event tie-break permutation seed (0 = the FIFO order the
  /// golden traces are recorded under).  Any seed yields a valid causal
  /// schedule; a correct simulation keeps its logical I/O signature
  /// invariant under every seed (timings may differ when simultaneous
  /// requests contend).  The testkit's schedule-perturbation checker
  /// (testkit/perturb.hpp) asserts exactly that.
  std::uint64_t tie_break_seed = 0;
  /// Timed hardware faults injected while the experiment runs (disk
  /// failures/repairs, ION crashes/restarts, interconnect loss/delay).
  /// Empty plan + attach_fault_layer=false: no fault machinery is built.
  /// Empty plan + attach_fault_layer=true: the injector is attached but
  /// idle — results and trace digests are bit-identical to no layer at all
  /// (the golden-trace tests assert this).
  fault::FaultPlan fault_plan;
  bool attach_fault_layer = false;
  /// Periodic checkpoint dumps plugged into the application's boundary
  /// hooks (disabled by default; see docs/CHECKPOINT.md).  The absorber
  /// backend requires a PPFS mount (its drain rides the PPFS recovery
  /// path); the write-behind baseline works on either mount.
  ckpt::CheckpointSpec checkpoint;
  /// Host-side log knobs, used when checkpoint.backend == kAbsorber.
  ckpt::AbsorberParams absorber;
};

struct ExperimentResult {
  pablo::Trace trace;
  apps::PhaseLog phases;
  /// Simulated time at which input staging finished and the measured run
  /// began (trace timestamps are >= this).
  sim::SimTime run_start = 0.0;
  sim::SimTime run_end = 0.0;
  /// Cumulative file-system counters (physical view).
  pfs::PfsCounters pfs_counters;      // valid for Kind::kPfs mounts
  ppfs::PpfsCounters ppfs_counters;   // valid for Kind::kPpfs mounts
  /// Graceful-degradation report: what the PPFS client-side recovery layer
  /// did (retries, failovers, dirty data lost).  Zero for PFS mounts.
  fault::RecoveryStats recovery;
  /// How many faults the injector fired, and the degraded-hardware totals
  /// summed over every RAID-3 array.
  std::size_t faults_injected = 0;
  hw::RaidFaultStats raid_faults;
  /// Total kernel events the engine executed for the whole experiment
  /// (staging + measured run).  Deterministic for a fixed config, so benches
  /// report throughput as kernel_events / wall time.
  std::uint64_t kernel_events = 0;
  /// Checkpoint accounting (zero when config.checkpoint.enabled is false):
  /// epochs started/committed, overhead time, and the data_loss_window at
  /// the first destructive fault (or run end).
  ckpt::CheckpointStats checkpoint;
  /// Absorber accounting (absorber backend only); the invariant
  /// acked == drained + resident + lost holds at quiescence.
  ckpt::AbsorberStats absorber;
  /// The durable host-side log image the run left behind (absorber backend
  /// only; null otherwise).  A "restarted" run recovers from exactly this:
  /// ckpt::recover(*ckpt_log) yields the last committed epoch and its
  /// digest, which must match `checkpoint.committed_{epoch,digest}`.
  std::shared_ptr<const ckpt::LogImage> ckpt_log;
};

/// Runs one experiment to completion (blocking; the simulation runs inside).
[[nodiscard]] ExperimentResult run_experiment(const ExperimentConfig& config);

/// PFS service-time calibrations reproducing each application's measured
/// operation costs (the CCSF Paragon ran "several versions of OSF/1 1.2",
/// and the per-op costs in Tables 1/3/5 differ markedly between runs).
/// See EXPERIMENTS.md for the derivations.
[[nodiscard]] pfs::PfsParams escat_pfs_params();
[[nodiscard]] pfs::PfsParams render_pfs_params();
[[nodiscard]] pfs::PfsParams htf_pfs_params();

/// The experiment configurations behind the paper's tables and figures.
[[nodiscard]] ExperimentConfig escat_experiment();   // Tables 1-2, Figs 2-5
[[nodiscard]] ExperimentConfig render_experiment();  // Tables 3-4, Figs 6-8
[[nodiscard]] ExperimentConfig htf_experiment();     // Tables 5-6, Figs 9-17

}  // namespace paraio::core
