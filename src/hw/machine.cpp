#include "hw/machine.hpp"

namespace paraio::hw {

Machine::Machine(sim::Engine& engine, const MachineConfig& config)
    : engine_(engine),
      config_(config),
      net_(engine, config.compute_nodes + config.io_nodes, config.net),
      framebuffer_(engine, config.hippi_bandwidth) {
  arrays_.reserve(config.io_nodes);
  for (std::size_t i = 0; i < config.io_nodes; ++i) {
    arrays_.push_back(std::make_unique<Raid3Array>(engine, config.raid));
  }
  ion_up_.assign(config.io_nodes, 1);
  ion_epoch_.assign(config.io_nodes, 0);
}

std::uint64_t Machine::total_capacity() const {
  std::uint64_t total = 0;
  for (const auto& array : arrays_) total += array->params().capacity();
  return total;
}

void Machine::attach_metrics(obs::Registry& registry) {
  net_.attach_metrics(registry, "hw.link");
  framebuffer_.attach_metrics(registry, "hw.framebuffer");
  for (std::size_t i = 0; i < arrays_.size(); ++i) {
    arrays_[i]->attach_metrics(registry, "hw.array" + std::to_string(i));
  }
}

}  // namespace paraio::hw
