#include "hw/raid.hpp"

namespace paraio::hw {

sim::SimDuration Raid3Array::service_time(std::uint64_t offset,
                                          std::uint64_t bytes) const {
  const bool sequential = offset == head_pos_;
  const DiskParams& d = params_.disk;
  sim::SimDuration positioning;
  if (sequential) {
    positioning = d.settle;
  } else if (d.distance_seek) {
    const std::uint64_t distance =
        offset > head_pos_ ? offset - head_pos_ : head_pos_ - offset;
    positioning = d.seek_time(distance) + d.half_rotation();
  } else {
    positioning = d.avg_seek + d.half_rotation();
  }
  return positioning + static_cast<double>(bytes) / params_.streaming_rate();
}

sim::Task<> Raid3Array::access(std::uint64_t offset, std::uint64_t bytes) {
  const sim::SimTime arrival = engine_.now();
  if (metrics_.qdepth != nullptr) metrics_.qdepth->record(gate_.waiters());
  co_await gate_.acquire();
  const sim::SimDuration waited = engine_.now() - arrival;
  stats_.queue_time += waited;
  const bool positioned = offset != head_pos_;
  const sim::SimDuration service = service_time(offset, bytes);
  head_pos_ = offset + bytes;
  ++stats_.requests;
  stats_.bytes += bytes;
  stats_.busy_time += service;
  if (metrics_.attached()) {
    metrics_.requests->add();
    metrics_.bytes->add(bytes);
    if (positioned) metrics_.seeks->add();
    metrics_.busy_s->add(service);
    metrics_.queue_s->add(waited);
  }
  co_await engine_.delay(service);
  gate_.release();
}

}  // namespace paraio::hw
