#include "hw/raid.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace paraio::hw {

sim::SimDuration Raid3Array::service_time(std::uint64_t offset,
                                          std::uint64_t bytes) const {
  const bool sequential = offset == head_pos_;
  const DiskParams& d = params_.disk;
  sim::SimDuration positioning;
  if (sequential) {
    positioning = d.settle;
  } else if (d.distance_seek) {
    const std::uint64_t distance =
        offset > head_pos_ ? offset - head_pos_ : head_pos_ - offset;
    positioning = d.seek_time(distance) + d.half_rotation();
  } else {
    positioning = d.avg_seek + d.half_rotation();
  }
  return positioning + static_cast<double>(bytes) / params_.streaming_rate();
}

void Raid3Array::check_disk(std::size_t disk, const char* op) const {
  if (disk >= disk_state_.size()) {
    throw std::out_of_range(std::string("Raid3Array::") + op + ": disk index " +
                            std::to_string(disk) + " out of range (array has " +
                            std::to_string(disk_state_.size()) + " disks)");
  }
}

std::size_t Raid3Array::missing_disks() const noexcept {
  std::size_t n = 0;
  for (const DiskHealth s : disk_state_) {
    if (s != DiskHealth::kHealthy) ++n;
  }
  return n;
}

DiskHealth Raid3Array::disk_health(std::size_t disk) const {
  check_disk(disk, "disk_health");
  return disk_state_[disk];
}

void Raid3Array::fail_disk(std::size_t disk) {
  check_disk(disk, "fail_disk");
  if (disk_state_[disk] == DiskHealth::kFailed) return;
  // A disk mid-rebuild can fail again; the rebuild task notices the state
  // change at its next chunk and aborts.
  disk_state_[disk] = DiskHealth::kFailed;
  ++fault_stats_.disk_failures;
}

void Raid3Array::repair_disk(std::size_t disk) {
  check_disk(disk, "repair_disk");
  if (disk_state_[disk] != DiskHealth::kFailed) return;
  disk_state_[disk] = DiskHealth::kRebuilding;
  ++fault_stats_.repairs;
  engine_.spawn(rebuild(disk));
}

sim::Task<> Raid3Array::rebuild(std::size_t disk) {
  // Reconstruct the written extent chunk by chunk through the same gate the
  // foreground requests use, so rebuild traffic visibly contends with them.
  const std::uint64_t end = max_extent_;
  const std::uint64_t chunk = std::max<std::uint64_t>(params_.rebuild_chunk, 1);
  for (std::uint64_t pos = 0; pos < end; pos += chunk) {
    if (disk_state_[disk] != DiskHealth::kRebuilding) co_return;  // re-failed
    co_await gate_.acquire();
    if (disk_state_[disk] != DiskHealth::kRebuilding) {
      gate_.release();
      co_return;
    }
    const std::uint64_t n = std::min(chunk, end - pos);
    // Reconstruction reads every survivor and writes the replacement — one
    // pass over the stripe at the aggregate rate.
    const sim::SimDuration service = service_time(pos, n);
    head_pos_ = pos + n;
    stats_.busy_time += service;
    ++fault_stats_.rebuild_chunks;
    fault_stats_.rebuild_bytes += n;
    if (m_rebuild_bytes_ != nullptr) m_rebuild_bytes_->add(n);
    co_await engine_.delay(service);
    gate_.release();
  }
  if (disk_state_[disk] == DiskHealth::kRebuilding) {
    disk_state_[disk] = DiskHealth::kHealthy;
  }
}

sim::Task<DiskOutcome> Raid3Array::access(std::uint64_t offset,
                                          std::uint64_t bytes, bool is_write) {
  if (failed()) {
    // Data is unavailable; refuse without consuming spindle time so the
    // failure is detected at controller speed.
    ++fault_stats_.failed_accesses;
    if (m_failed_ != nullptr) m_failed_->add();
    co_return DiskOutcome{.failed = true, .degraded = false};
  }
  const sim::SimTime arrival = engine_.now();
  if (metrics_.qdepth != nullptr) metrics_.qdepth->record(gate_.waiters());
  co_await gate_.acquire();
  const sim::SimDuration waited = engine_.now() - arrival;
  stats_.queue_time += waited;
  // The array may have failed while this request queued.
  if (failed()) {
    gate_.release();
    ++fault_stats_.failed_accesses;
    if (m_failed_ != nullptr) m_failed_->add();
    co_return DiskOutcome{.failed = true, .degraded = false};
  }
  const bool was_degraded = degraded();
  const bool positioned = offset != head_pos_;
  sim::SimDuration service = service_time(offset, bytes);
  if (was_degraded && !is_write) service += degraded_read_extra(bytes);
  head_pos_ = offset + bytes;
  if (is_write) max_extent_ = std::max(max_extent_, offset + bytes);
  ++stats_.requests;
  stats_.bytes += bytes;
  stats_.busy_time += service;
  if (was_degraded) {
    ++fault_stats_.degraded_accesses;
    if (m_degraded_ != nullptr) m_degraded_->add();
  }
  if (metrics_.attached()) {
    metrics_.requests->add();
    metrics_.bytes->add(bytes);
    if (positioned) metrics_.seeks->add();
    metrics_.busy_s->add(service);
    metrics_.queue_s->add(waited);
  }
  co_await engine_.delay(service);
  gate_.release();
  co_return DiskOutcome{.failed = false, .degraded = was_degraded};
}

}  // namespace paraio::hw
