#include "hw/disk.hpp"

namespace paraio::hw {

sim::SimDuration Disk::service_time(std::uint64_t offset,
                                    std::uint64_t bytes) const {
  const bool sequential = offset == head_pos_;
  sim::SimDuration positioning;
  if (sequential) {
    positioning = params_.settle;
  } else if (params_.distance_seek) {
    const std::uint64_t distance =
        offset > head_pos_ ? offset - head_pos_ : head_pos_ - offset;
    positioning = params_.seek_time(distance) + params_.half_rotation();
  } else {
    positioning = params_.avg_seek + params_.half_rotation();
  }
  return positioning + static_cast<double>(bytes) / params_.media_rate;
}

sim::Task<> Disk::access(std::uint64_t offset, std::uint64_t bytes) {
  const sim::SimTime arrival = engine_.now();
  co_await gate_.acquire();
  stats_.queue_time += engine_.now() - arrival;
  const sim::SimDuration service = service_time(offset, bytes);
  head_pos_ = offset + bytes;
  ++stats_.requests;
  stats_.bytes += bytes;
  stats_.busy_time += service;
  co_await engine_.delay(service);
  gate_.release();
}

}  // namespace paraio::hw
