// Disk-arm scheduling for the RAID arrays.
//
// §3 of the paper: minimizing the number of physical accesses and
// maximizing their efficiency "(e.g., by disk arm scheduling and request
// aggregation) is the final responsibility of the file system and device
// drivers."  Aggregation lives in ppfs::IonServer; this is the arm
// scheduler: a queue in front of one array that admits requests in FIFO
// order or in elevator (SCAN) order, reducing positioning time when many
// random requests are outstanding.
#pragma once

#include <coroutine>
#include <cstdint>
#include <map>
#include <vector>

#include "hw/raid.hpp"
#include "sim/engine.hpp"
#include "sim/task.hpp"

namespace paraio::hw {

enum class DiskSchedPolicy {
  kFifo,  ///< arrival order (what a bare Raid3Array does)
  kScan,  ///< elevator: sweep up, then down, serving by disk address
};

[[nodiscard]] const char* to_string(DiskSchedPolicy policy);

/// Wraps one Raid3Array with an admission queue and a scheduling policy.
/// Callers use `access(...)` exactly like the bare array.
class ScheduledArray {
 public:
  ScheduledArray(sim::Engine& engine, Raid3Array& array,
                 DiskSchedPolicy policy)
      : engine_(engine), array_(array), policy_(policy) {}

  sim::Task<DiskOutcome> access(std::uint64_t offset, std::uint64_t bytes,
                                bool is_write = false);

  [[nodiscard]] DiskSchedPolicy policy() const noexcept { return policy_; }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return waiting_.size();
  }
  /// Total requests admitted through the scheduler.
  [[nodiscard]] std::uint64_t admitted() const noexcept { return admitted_; }

 private:
  struct Waiter {
    std::uint64_t offset = 0;
    std::uint64_t bytes = 0;
    std::coroutine_handle<> handle;
  };

  /// Picks the index of the next request to admit per the policy.
  [[nodiscard]] std::size_t pick_next() const;
  void admit_next();

  sim::Engine& engine_;
  Raid3Array& array_;
  DiskSchedPolicy policy_;
  std::vector<Waiter> waiting_;
  bool busy_ = false;
  bool sweep_up_ = true;
  std::uint64_t head_ = 0;  // scheduler's view of the arm position
  std::uint64_t admitted_ = 0;

  friend struct ScheduledArrayAwaiter;
};

}  // namespace paraio::hw
