// Single-disk service-time model.
//
// We model a circa-1993 commodity drive (the Paragon's RAID-3 arrays were
// built from five 1.2 GB disks) with a positioning + transfer service time:
//
//   service = settle                       if the head is already there
//           = avg_seek + half_rotation     otherwise
//           + bytes / media_rate
//
// Sector-level geometry is deliberately out of scope: the paper's findings
// hinge on the fixed per-request positioning penalty that makes small
// requests expensive and aggregation profitable, which this captures.  The
// `bench_ablation_disk_model` binary quantifies the sensitivity.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace paraio::hw {

struct DiskParams {
  /// Average seek time for a random positioning move.
  sim::SimDuration avg_seek = sim::milliseconds(12.0);
  /// Head settle / track-to-track time charged on sequential continuation.
  sim::SimDuration settle = sim::milliseconds(1.0);
  /// Spindle speed, used for the average (half-) rotational latency.
  double rpm = 4500.0;
  /// Sustained media transfer rate in bytes/second.
  double media_rate = 2.5e6;
  /// Usable capacity in bytes (1.2 GB drive).
  std::uint64_t capacity = 1'200'000'000ULL;
  /// Distance-dependent seeks: positioning cost grows with the arm travel
  /// distance (settle + full-stroke term scaled by sqrt(d/capacity), the
  /// classic seek curve).  Off by default — the constant-average model is
  /// all the characterization results need — but required for disk-arm
  /// scheduling (hw::ScheduledArray) to have anything to optimize.
  bool distance_seek = false;

  [[nodiscard]] sim::SimDuration half_rotation() const {
    return 60.0 / rpm / 2.0;
  }

  /// Positioning time for a move of `distance` bytes under the
  /// distance-dependent model.  Calibrated so the mean over uniform random
  /// moves matches avg_seek (E[sqrt(U)] = 2/3).
  [[nodiscard]] sim::SimDuration seek_time(std::uint64_t distance) const {
    if (distance == 0) return settle;
    const double frac =
        static_cast<double>(distance) / static_cast<double>(capacity);
    const double full_stroke = 1.5 * (avg_seek - settle);
    return settle + full_stroke * std::sqrt(std::min(frac, 1.0));
  }
};

/// Cumulative activity counters every hardware resource exposes.
struct DeviceStats {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
  sim::SimDuration busy_time = 0.0;
  sim::SimDuration queue_time = 0.0;  // time requests spent waiting
};

/// A single disk: one server, FIFO queue, stateful head position.
class Disk {
 public:
  Disk(sim::Engine& engine, const DiskParams& params)
      : engine_(engine), params_(params), gate_(engine, 1) {}

  /// Pure service-time calculation for a request at `offset`; does not
  /// consume simulated time or mutate head state.
  [[nodiscard]] sim::SimDuration service_time(std::uint64_t offset,
                                              std::uint64_t bytes) const;

  /// Performs one access: waits for the disk, seeks, transfers.
  sim::Task<> access(std::uint64_t offset, std::uint64_t bytes);

  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const DiskParams& params() const noexcept { return params_; }

  /// Publishes this disk's activity under `<prefix>.{requests,bytes,seeks,
  /// busy_s,queue_s,qdepth}`.  Detached cost: one pointer test per access.
  void attach_metrics(obs::Registry& registry, const std::string& prefix) {
    metrics_ = obs::DeviceMetrics::bind(registry, prefix);
  }

 private:
  sim::Engine& engine_;
  DiskParams params_;
  sim::Semaphore gate_;
  std::uint64_t head_pos_ = 0;
  DeviceStats stats_;
  obs::DeviceMetrics metrics_;
};

}  // namespace paraio::hw
