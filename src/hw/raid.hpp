// RAID-3 disk-array model.
//
// RAID-3 byte-stripes every request across all data disks with a dedicated
// parity drive and synchronized spindles, so a request of B bytes keeps
// every disk busy for the time one disk needs for B/(n-1) bytes plus one
// positioning move.  Effective streaming bandwidth is therefore
// (n-1) x media_rate with a single disk's positioning latency — exactly the
// tradeoff the paper leans on when it notes PFS achieves bandwidth only
// through large requests.  The Paragon at CCSF had one such array (five
// 1.2 GB disks) per I/O node.
#pragma once

#include <cstddef>
#include <cstdint>

#include "hw/disk.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace paraio::hw {

struct Raid3Params {
  DiskParams disk;
  std::size_t disks = 5;  // 4 data + 1 parity

  [[nodiscard]] std::size_t data_disks() const { return disks - 1; }
  [[nodiscard]] double streaming_rate() const {
    return static_cast<double>(data_disks()) * disk.media_rate;
  }
  [[nodiscard]] std::uint64_t capacity() const {
    return static_cast<std::uint64_t>(data_disks()) * disk.capacity;
  }
};

/// One RAID-3 array: a single logical server (the synchronized spindle set)
/// with a FIFO queue.
class Raid3Array {
 public:
  Raid3Array(sim::Engine& engine, const Raid3Params& params)
      : engine_(engine), params_(params), gate_(engine, 1) {}

  /// Service time for one array access: one positioning move (sequential
  /// requests pay only settle time) plus transfer at the aggregate rate.
  [[nodiscard]] sim::SimDuration service_time(std::uint64_t offset,
                                              std::uint64_t bytes) const;

  /// Performs one access against the array.
  sim::Task<> access(std::uint64_t offset, std::uint64_t bytes);

  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Raid3Params& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t queue_depth() const { return gate_.waiters(); }

  /// Publishes this array's activity under `<prefix>.{requests,bytes,seeks,
  /// busy_s,queue_s,qdepth}`.  Detached cost: one pointer test per access.
  void attach_metrics(obs::Registry& registry, const std::string& prefix) {
    metrics_ = obs::DeviceMetrics::bind(registry, prefix);
  }

 private:
  sim::Engine& engine_;
  Raid3Params params_;
  sim::Semaphore gate_;
  std::uint64_t head_pos_ = 0;
  DeviceStats stats_;
  obs::DeviceMetrics metrics_;
};

}  // namespace paraio::hw
