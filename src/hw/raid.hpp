// RAID-3 disk-array model.
//
// RAID-3 byte-stripes every request across all data disks with a dedicated
// parity drive and synchronized spindles, so a request of B bytes keeps
// every disk busy for the time one disk needs for B/(n-1) bytes plus one
// positioning move.  Effective streaming bandwidth is therefore
// (n-1) x media_rate with a single disk's positioning latency — exactly the
// tradeoff the paper leans on when it notes PFS achieves bandwidth only
// through large requests.  The Paragon at CCSF had one such array (five
// 1.2 GB disks) per I/O node.
//
// The array also models the failure behaviour RAID-3 exists to provide:
// with exactly one disk missing it keeps serving, but reads pay a parity
// reconstruction penalty; a repaired disk is rebuilt by a background task
// that contends with foreground requests for the spindle set; with two or
// more disks missing the data is gone and accesses fail with a typed
// outcome.  State changes only through fail_disk()/repair_disk() (driven by
// fault::FaultInjector), so a fault-free run is byte-identical to the
// pre-fault model.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hw/disk.hpp"
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace paraio::hw {

struct Raid3Params {
  DiskParams disk;
  std::size_t disks = 5;  // 4 data + 1 parity
  /// Degraded-mode multiplier on the transfer term of a read served with
  /// one disk missing: the missing stripe is reconstructed by XOR-ing the
  /// survivors, which costs extra controller work per byte.
  double degraded_read_penalty = 1.5;
  /// Bytes a background rebuild reconstructs per array access it issues.
  std::uint64_t rebuild_chunk = 1 << 20;

  [[nodiscard]] std::size_t data_disks() const { return disks - 1; }
  [[nodiscard]] double streaming_rate() const {
    return static_cast<double>(data_disks()) * disk.media_rate;
  }
  [[nodiscard]] std::uint64_t capacity() const {
    return static_cast<std::uint64_t>(data_disks()) * disk.capacity;
  }
};

/// Result of one array access under the fault model.
struct [[nodiscard]] DiskOutcome {
  bool failed = false;    ///< >= 2 disks unavailable: data cannot be served
  bool degraded = false;  ///< served via parity reconstruction
  [[nodiscard]] bool ok() const noexcept { return !failed; }
};

enum class DiskHealth {
  kHealthy,
  kFailed,      ///< dead; contributes nothing until repaired
  kRebuilding,  ///< replaced; background rebuild is reconstructing it
};

/// Failure/recovery activity of one array (all zero on a fault-free run).
struct RaidFaultStats {
  std::uint64_t disk_failures = 0;
  std::uint64_t repairs = 0;
  std::uint64_t degraded_accesses = 0;  ///< served with one disk missing
  std::uint64_t failed_accesses = 0;    ///< refused with >= 2 missing
  std::uint64_t rebuild_chunks = 0;
  std::uint64_t rebuild_bytes = 0;
};

/// One RAID-3 array: a single logical server (the synchronized spindle set)
/// with a FIFO queue.
class Raid3Array {
 public:
  Raid3Array(sim::Engine& engine, const Raid3Params& params)
      : engine_(engine),
        params_(params),
        gate_(engine, 1),
        disk_state_(params.disks, DiskHealth::kHealthy) {}

  /// Fault-free service time for one array access: one positioning move
  /// (sequential requests pay only settle time) plus transfer at the
  /// aggregate rate.
  [[nodiscard]] sim::SimDuration service_time(std::uint64_t offset,
                                              std::uint64_t bytes) const;

  /// Extra transfer time a degraded-mode read of `bytes` pays for parity
  /// reconstruction.
  [[nodiscard]] sim::SimDuration degraded_read_extra(
      std::uint64_t bytes) const {
    return (params_.degraded_read_penalty - 1.0) * static_cast<double>(bytes) /
           params_.streaming_rate();
  }

  /// Performs one access against the array.  The outcome reports whether
  /// the access was refused (array failed) or served degraded; callers must
  /// inspect it (see the swallowed-io-error lint check).
  sim::Task<DiskOutcome> access(std::uint64_t offset, std::uint64_t bytes,
                                bool is_write = false);

  /// Marks one disk dead.  Throws std::out_of_range on a bad index.
  void fail_disk(std::size_t disk);
  /// Replaces a dead disk and starts the background rebuild, which
  /// contends with foreground requests for the spindle set.  No-op for a
  /// healthy disk; throws std::out_of_range on a bad index.
  void repair_disk(std::size_t disk);

  [[nodiscard]] DiskHealth disk_health(std::size_t disk) const;
  /// Disks currently not contributing (failed or rebuilding).
  [[nodiscard]] std::size_t missing_disks() const noexcept;
  /// True when the array serves in degraded mode (exactly one missing).
  [[nodiscard]] bool degraded() const noexcept { return missing_disks() == 1; }
  /// True when data is unavailable (two or more missing).
  [[nodiscard]] bool failed() const noexcept { return missing_disks() >= 2; }

  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const RaidFaultStats& fault_stats() const noexcept {
    return fault_stats_;
  }
  [[nodiscard]] const Raid3Params& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t queue_depth() const { return gate_.waiters(); }

  /// Publishes this array's activity under `<prefix>.{requests,bytes,seeks,
  /// busy_s,queue_s,qdepth}` plus the fault counters `<prefix>.{degraded,
  /// failed,rebuild_bytes}`.  Detached cost: one pointer test per access.
  void attach_metrics(obs::Registry& registry, const std::string& prefix) {
    metrics_ = obs::DeviceMetrics::bind(registry, prefix);
    m_degraded_ = &registry.counter(prefix + ".degraded");
    m_failed_ = &registry.counter(prefix + ".failed");
    m_rebuild_bytes_ = &registry.counter(prefix + ".rebuild_bytes");
  }

 private:
  sim::Task<> rebuild(std::size_t disk);
  void check_disk(std::size_t disk, const char* op) const;

  sim::Engine& engine_;
  Raid3Params params_;
  sim::Semaphore gate_;
  std::vector<DiskHealth> disk_state_;
  std::uint64_t head_pos_ = 0;
  /// Highest byte ever written: the extent a rebuild must reconstruct.
  std::uint64_t max_extent_ = 0;
  DeviceStats stats_;
  RaidFaultStats fault_stats_;
  obs::DeviceMetrics metrics_;
  obs::Counter* m_degraded_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_rebuild_bytes_ = nullptr;
};

}  // namespace paraio::hw
