// Machine composition: compute nodes, I/O nodes with RAID-3 arrays, the
// interconnect, and the HiPPi frame buffer — the Intel Paragon XP/S as
// configured at the Caltech Concurrent Supercomputing Facility.
#pragma once

#include <cstddef>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "hw/network.hpp"
#include "hw/raid.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace paraio::hw {

struct MachineConfig {
  std::size_t compute_nodes = 512;
  std::size_t io_nodes = 16;
  NetParams net;
  Raid3Params raid;
  /// HiPPi-class streaming sink bandwidth (bytes/second).
  double hippi_bandwidth = 80e6;

  /// The CCSF Paragon XP/S the paper measured: 512 compute nodes, 16 I/O
  /// nodes each with a five-disk RAID-3 array.  `compute` and `ions` let
  /// experiments scale the partition (the paper's runs used 128 nodes).
  static MachineConfig paragon_xps(std::size_t compute = 512,
                                   std::size_t ions = 16) {
    MachineConfig cfg;
    cfg.compute_nodes = compute;
    cfg.io_nodes = ions;
    return cfg;
  }
};

/// Owns the hardware instances for one simulated machine.  Node ids:
/// compute nodes are [0, compute_nodes); I/O nodes follow at
/// [compute_nodes, compute_nodes + io_nodes).
class Machine {
 public:
  Machine(sim::Engine& engine, const MachineConfig& config);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] Interconnect& net() noexcept { return net_; }
  [[nodiscard]] FrameBuffer& framebuffer() noexcept { return framebuffer_; }

  [[nodiscard]] std::size_t compute_nodes() const noexcept {
    return config_.compute_nodes;
  }
  [[nodiscard]] std::size_t io_nodes() const noexcept {
    return config_.io_nodes;
  }

  /// NodeId of I/O node `ion` on the interconnect.  Throws std::out_of_range
  /// on a bad index.
  [[nodiscard]] NodeId ion_node_id(std::size_t ion) const {
    check_ion(ion, "ion_node_id");
    return static_cast<NodeId>(config_.compute_nodes + ion);
  }

  /// NodeId of compute node `node`.  Throws std::out_of_range on a bad
  /// index (compute nodes occupy [0, compute_nodes) on the interconnect).
  [[nodiscard]] NodeId compute_node_id(std::size_t node) const {
    if (node >= config_.compute_nodes) {
      throw std::out_of_range(
          "Machine::compute_node_id: node index " + std::to_string(node) +
          " out of range (machine has " +
          std::to_string(config_.compute_nodes) + " compute nodes)");
    }
    return static_cast<NodeId>(node);
  }

  [[nodiscard]] Raid3Array& ion_array(std::size_t ion) {
    check_ion(ion, "ion_array");
    return *arrays_[ion];
  }
  [[nodiscard]] const Raid3Array& ion_array(std::size_t ion) const {
    check_ion(ion, "ion_array");
    return *arrays_[ion];
  }

  /// Whether I/O node `ion` is serving.  Crash/restart transitions come
  /// from fault::FaultInjector; every node is up on a fault-free run.
  [[nodiscard]] bool ion_up(std::size_t ion) const {
    check_ion(ion, "ion_up");
    return ion_up_[ion] != 0;
  }
  /// Crash (`up == false`) or restart (`up == true`) an I/O node.  A crash
  /// bumps the node's epoch, which is how servers detect that volatile
  /// state (e.g. the ION block cache) did not survive.
  void set_ion_up(std::size_t ion, bool up) {
    check_ion(ion, "set_ion_up");
    if (!up && ion_up_[ion] != 0) ++ion_epoch_[ion];
    ion_up_[ion] = up ? 1 : 0;
  }
  /// Incremented once per crash of this I/O node.
  [[nodiscard]] std::uint32_t ion_epoch(std::size_t ion) const {
    check_ion(ion, "ion_epoch");
    return ion_epoch_[ion];
  }

  /// Total storage capacity across all I/O nodes.
  [[nodiscard]] std::uint64_t total_capacity() const;

  /// Publishes every hardware resource into `registry`: per-ION RAID
  /// arrays as `hw.array<k>.*`, per-node outgoing links as `hw.link<n>.*`,
  /// and the frame buffer as `hw.framebuffer.*`.
  void attach_metrics(obs::Registry& registry);

 private:
  void check_ion(std::size_t ion, const char* op) const {
    if (ion >= arrays_.size()) {
      throw std::out_of_range(
          std::string("Machine::") + op + ": I/O node index " +
          std::to_string(ion) + " out of range (machine has " +
          std::to_string(arrays_.size()) + " I/O nodes)");
    }
  }

  sim::Engine& engine_;
  MachineConfig config_;
  Interconnect net_;
  FrameBuffer framebuffer_;
  std::vector<std::unique_ptr<Raid3Array>> arrays_;
  std::vector<char> ion_up_;          // 1 = serving; indexed like arrays_
  std::vector<std::uint32_t> ion_epoch_;
};

}  // namespace paraio::hw
