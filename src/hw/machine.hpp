// Machine composition: compute nodes, I/O nodes with RAID-3 arrays, the
// interconnect, and the HiPPi frame buffer — the Intel Paragon XP/S as
// configured at the Caltech Concurrent Supercomputing Facility.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "hw/network.hpp"
#include "hw/raid.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"

namespace paraio::hw {

struct MachineConfig {
  std::size_t compute_nodes = 512;
  std::size_t io_nodes = 16;
  NetParams net;
  Raid3Params raid;
  /// HiPPi-class streaming sink bandwidth (bytes/second).
  double hippi_bandwidth = 80e6;

  /// The CCSF Paragon XP/S the paper measured: 512 compute nodes, 16 I/O
  /// nodes each with a five-disk RAID-3 array.  `compute` and `ions` let
  /// experiments scale the partition (the paper's runs used 128 nodes).
  static MachineConfig paragon_xps(std::size_t compute = 512,
                                   std::size_t ions = 16) {
    MachineConfig cfg;
    cfg.compute_nodes = compute;
    cfg.io_nodes = ions;
    return cfg;
  }
};

/// Owns the hardware instances for one simulated machine.  Node ids:
/// compute nodes are [0, compute_nodes); I/O nodes follow at
/// [compute_nodes, compute_nodes + io_nodes).
class Machine {
 public:
  Machine(sim::Engine& engine, const MachineConfig& config);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] const MachineConfig& config() const noexcept { return config_; }
  [[nodiscard]] Interconnect& net() noexcept { return net_; }
  [[nodiscard]] FrameBuffer& framebuffer() noexcept { return framebuffer_; }

  [[nodiscard]] std::size_t compute_nodes() const noexcept {
    return config_.compute_nodes;
  }
  [[nodiscard]] std::size_t io_nodes() const noexcept {
    return config_.io_nodes;
  }

  /// NodeId of I/O node `ion` on the interconnect.
  [[nodiscard]] NodeId ion_node_id(std::size_t ion) const {
    return static_cast<NodeId>(config_.compute_nodes + ion);
  }

  [[nodiscard]] Raid3Array& ion_array(std::size_t ion) {
    return *arrays_[ion];
  }
  [[nodiscard]] const Raid3Array& ion_array(std::size_t ion) const {
    return *arrays_[ion];
  }

  /// Total storage capacity across all I/O nodes.
  [[nodiscard]] std::uint64_t total_capacity() const;

  /// Publishes every hardware resource into `registry`: per-ION RAID
  /// arrays as `hw.array<k>.*`, per-node outgoing links as `hw.link<n>.*`,
  /// and the frame buffer as `hw.framebuffer.*`.
  void attach_metrics(obs::Registry& registry);

 private:
  sim::Engine& engine_;
  MachineConfig config_;
  Interconnect net_;
  FrameBuffer framebuffer_;
  std::vector<std::unique_ptr<Raid3Array>> arrays_;
};

}  // namespace paraio::hw
