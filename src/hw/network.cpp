#include "hw/network.hpp"

namespace paraio::hw {

Interconnect::Interconnect(sim::Engine& engine, std::size_t nodes,
                           const NetParams& params)
    : engine_(engine), params_(params) {
  nics_.reserve(nodes);
  rx_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    nics_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
    rx_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
  }
}

sim::Task<> Interconnect::send(NodeId src, NodeId dst, std::uint64_t bytes) {
  assert(src < nics_.size() && dst < nics_.size());
  const sim::SimTime arrival = engine_.now();
  co_await nics_[src]->acquire();
  co_await rx_[dst]->acquire();
  stats_.queue_time += engine_.now() - arrival;
  const sim::SimDuration t = transfer_time(bytes);
  ++stats_.requests;
  stats_.bytes += bytes;
  stats_.busy_time += t;
  co_await engine_.delay(t);
  rx_[dst]->release();
  nics_[src]->release();
}

sim::Task<> Interconnect::broadcast(NodeId root, std::uint64_t bytes,
                                    std::size_t parties) {
  assert(root < nics_.size());
  if (parties <= 1) co_return;
  // Binomial tree: the critical path is `stages` sequential transmissions.
  // We charge the root's NIC for its log2(parties) sends (it is busy the
  // whole time) and model the remaining stages as pipeline latency.
  const std::size_t stages = broadcast_stages(parties);
  const sim::SimTime arrival = engine_.now();
  co_await nics_[root]->acquire();
  stats_.queue_time += engine_.now() - arrival;
  const sim::SimDuration per_stage = transfer_time(bytes);
  const sim::SimDuration total = static_cast<double>(stages) * per_stage;
  ++stats_.requests;
  stats_.bytes += bytes * (parties - 1);
  stats_.busy_time += total;
  co_await engine_.delay(total);
  nics_[root]->release();
}

sim::Task<> FrameBuffer::write(std::uint64_t bytes) {
  const sim::SimTime arrival = engine_.now();
  co_await gate_.acquire();
  stats_.queue_time += engine_.now() - arrival;
  const sim::SimDuration t = static_cast<double>(bytes) / bandwidth_;
  ++stats_.requests;
  stats_.bytes += bytes;
  stats_.busy_time += t;
  co_await engine_.delay(t);
  gate_.release();
}

}  // namespace paraio::hw
