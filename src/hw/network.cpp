#include "hw/network.hpp"

namespace paraio::hw {

Interconnect::Interconnect(sim::Engine& engine, std::size_t nodes,
                           const NetParams& params)
    : engine_(engine), params_(params) {
  nics_.reserve(nodes);
  rx_.reserve(nodes);
  for (std::size_t i = 0; i < nodes; ++i) {
    nics_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
    rx_.push_back(std::make_unique<sim::Semaphore>(engine, 1));
  }
}

void Interconnect::attach_metrics(obs::Registry& registry,
                                  const std::string& prefix) {
  link_metrics_.clear();
  link_metrics_.reserve(nics_.size());
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    link_metrics_.push_back(
        obs::DeviceMetrics::bind(registry, prefix + std::to_string(i)));
  }
}

sim::Task<> Interconnect::send(NodeId src, NodeId dst, std::uint64_t bytes) {
  assert(src < nics_.size() && dst < nics_.size());
  const sim::SimTime arrival = engine_.now();
  if (!link_metrics_.empty()) {
    link_metrics_[src].qdepth->record(nics_[src]->waiters());
  }
  co_await nics_[src]->acquire();
  co_await rx_[dst]->acquire();
  const sim::SimDuration waited = engine_.now() - arrival;
  stats_.queue_time += waited;
  const sim::SimDuration t = transfer_time(bytes);
  ++stats_.requests;
  stats_.bytes += bytes;
  stats_.busy_time += t;
  if (!link_metrics_.empty()) {
    obs::DeviceMetrics& m = link_metrics_[src];
    m.requests->add();
    m.bytes->add(bytes);
    m.busy_s->add(t);
    m.queue_s->add(waited);
  }
  co_await engine_.delay(t);
  rx_[dst]->release();
  nics_[src]->release();
}

sim::Task<> Interconnect::broadcast(NodeId root, std::uint64_t bytes,
                                    std::size_t parties) {
  assert(root < nics_.size());
  if (parties <= 1) co_return;
  // Binomial tree: the critical path is `stages` sequential transmissions.
  // We charge the root's NIC for its log2(parties) sends (it is busy the
  // whole time) and model the remaining stages as pipeline latency.
  const std::size_t stages = broadcast_stages(parties);
  const sim::SimTime arrival = engine_.now();
  if (!link_metrics_.empty()) {
    link_metrics_[root].qdepth->record(nics_[root]->waiters());
  }
  co_await nics_[root]->acquire();
  const sim::SimDuration waited = engine_.now() - arrival;
  stats_.queue_time += waited;
  const sim::SimDuration per_stage = transfer_time(bytes);
  const sim::SimDuration total = static_cast<double>(stages) * per_stage;
  ++stats_.requests;
  stats_.bytes += bytes * (parties - 1);
  stats_.busy_time += total;
  if (!link_metrics_.empty()) {
    obs::DeviceMetrics& m = link_metrics_[root];
    m.requests->add();
    m.bytes->add(bytes * (parties - 1));
    m.busy_s->add(total);
    m.queue_s->add(waited);
  }
  co_await engine_.delay(total);
  nics_[root]->release();
}

sim::Task<> FrameBuffer::write(std::uint64_t bytes) {
  const sim::SimTime arrival = engine_.now();
  if (metrics_.qdepth != nullptr) metrics_.qdepth->record(gate_.waiters());
  co_await gate_.acquire();
  const sim::SimDuration waited = engine_.now() - arrival;
  stats_.queue_time += waited;
  const sim::SimDuration t = static_cast<double>(bytes) / bandwidth_;
  ++stats_.requests;
  stats_.bytes += bytes;
  stats_.busy_time += t;
  if (metrics_.attached()) {
    metrics_.requests->add();
    metrics_.bytes->add(bytes);
    metrics_.busy_s->add(t);
    metrics_.queue_s->add(waited);
  }
  co_await engine_.delay(t);
  gate_.release();
}

}  // namespace paraio::hw
