// Interconnect model for the Paragon-class mesh.
//
// A message from src to dst costs a fixed software+wire latency plus
// serialization at the sender's network interface: each node's outgoing
// link is a FIFO resource, so concurrent sends from one node queue while
// sends from different nodes proceed in parallel.  Mesh hop counts and
// wormhole contention are below the abstraction level the paper's data
// needs (its I/O times are dominated by file-system and disk effects).
//
// Broadcast uses a binomial software tree, the standard NX-library scheme:
// ceil(log2(parties)) sequential stages, each a full message transmission.
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "hw/disk.hpp"  // DeviceStats
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace paraio::hw {

/// Index of a node (compute or I/O) within the machine.
using NodeId = std::uint32_t;

struct NetParams {
  /// One-way message latency (software + wire).
  sim::SimDuration latency = sim::microseconds(100.0);
  /// Point-to-point bandwidth in bytes/second.  The Paragon's mesh links
  /// were far faster, but OSF/1 1.2's message layer sustained on the order
  /// of 10 MB/s — the figure behind RENDER's measured ~9.5 MB/s gateway
  /// read throughput (§6.2).
  double bandwidth = 10e6;
};

class Interconnect {
 public:
  Interconnect(sim::Engine& engine, std::size_t nodes, const NetParams& params);

  /// Sends `bytes` from `src` to `dst`; completes when the message has been
  /// fully injected and the latency has elapsed (receiver-side copy is
  /// folded into the latency term).
  sim::Task<> send(NodeId src, NodeId dst, std::uint64_t bytes);

  /// Broadcast from `root` to `parties` nodes via a binomial tree.
  /// Completes when the last leaf has the data.
  sim::Task<> broadcast(NodeId root, std::uint64_t bytes, std::size_t parties);

  /// Pure cost model for one point-to-point transfer (including any active
  /// fault-injected delay spike).
  [[nodiscard]] sim::SimDuration transfer_time(std::uint64_t bytes) const {
    return params_.latency + static_cast<double>(bytes) / params_.bandwidth +
           extra_delay_;
  }

  // --- fault injection (driven by fault::FaultInjector) --------------------

  /// Message-drop probability for loss-aware paths.  Only the PPFS RPC
  /// channel consults should_drop(); PFS has no retry path, so its messages
  /// are never dropped.
  void set_drop_probability(double p) noexcept { drop_probability_ = p; }
  [[nodiscard]] double drop_probability() const noexcept {
    return drop_probability_;
  }
  /// Adds a delay spike to every transfer (0 clears it).
  void set_extra_delay(sim::SimDuration d) noexcept { extra_delay_ = d; }
  [[nodiscard]] sim::SimDuration extra_delay() const noexcept {
    return extra_delay_;
  }
  /// Reseeds the loss stream (fault::FaultPlan::seed).
  void set_fault_seed(std::uint64_t seed) { fault_rng_ = sim::Rng(seed); }
  /// One Bernoulli loss draw.  Draws from the stream only while a loss
  /// window is active, so fault-free runs consume no randomness.
  [[nodiscard]] bool should_drop() {
    if (drop_probability_ <= 0.0) return false;
    const bool drop = fault_rng_.bernoulli(drop_probability_);
    if (drop) ++dropped_;
    return drop;
  }
  [[nodiscard]] std::uint64_t dropped_messages() const noexcept {
    return dropped_;
  }

  /// Number of sequential stages a binomial broadcast needs.
  [[nodiscard]] static std::size_t broadcast_stages(std::size_t parties) {
    std::size_t stages = 0;
    std::size_t covered = 1;
    while (covered < parties) {
      covered *= 2;
      ++stages;
    }
    return stages;
  }

  [[nodiscard]] const NetParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t node_count() const noexcept { return nics_.size(); }
  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }

  /// Publishes per-link activity: node `n`'s outgoing link becomes
  /// `<prefix><n>.{requests,bytes,seeks,busy_s,queue_s,qdepth}` (seeks stay
  /// zero; qdepth samples the tx-gate queue).  Detached cost: one pointer
  /// test per send.
  void attach_metrics(obs::Registry& registry, const std::string& prefix);

 private:
  sim::Engine& engine_;
  NetParams params_;
  // One outgoing-link (tx) and one incoming-link (rx) gate per node: a
  // node receiving from many peers serializes on its rx gate, which is what
  // bottlenecks RENDER's gateway at ~link rate.  unique_ptr because
  // Semaphore is neither movable nor copyable.  Deadlock-free: every
  // transfer acquires tx then rx, and no task ever holds an rx while
  // waiting on a tx.
  std::vector<std::unique_ptr<sim::Semaphore>> nics_;
  std::vector<std::unique_ptr<sim::Semaphore>> rx_;
  DeviceStats stats_;
  std::vector<obs::DeviceMetrics> link_metrics_;  // empty until attached
  // Fault-injection state; inert (and draw-free) until a plan activates it.
  double drop_probability_ = 0.0;
  sim::SimDuration extra_delay_ = 0.0;
  sim::Rng fault_rng_{0xFA17u};
  std::uint64_t dropped_ = 0;
};

/// HiPPi frame buffer: a fixed-bandwidth streaming sink with a FIFO queue.
/// RENDER's production output path (§6.2).
class FrameBuffer {
 public:
  FrameBuffer(sim::Engine& engine, double bandwidth)
      : engine_(engine), bandwidth_(bandwidth), gate_(engine, 1) {}

  sim::Task<> write(std::uint64_t bytes);

  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double bandwidth() const noexcept { return bandwidth_; }

  /// Publishes sink activity under `<prefix>.{requests,bytes,seeks,busy_s,
  /// queue_s,qdepth}`.  Detached cost: one pointer test per write.
  void attach_metrics(obs::Registry& registry, const std::string& prefix) {
    metrics_ = obs::DeviceMetrics::bind(registry, prefix);
  }

 private:
  sim::Engine& engine_;
  double bandwidth_;
  sim::Semaphore gate_;
  DeviceStats stats_;
  obs::DeviceMetrics metrics_;
};

}  // namespace paraio::hw
