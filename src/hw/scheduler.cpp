#include "hw/scheduler.hpp"

#include <limits>

namespace paraio::hw {

const char* to_string(DiskSchedPolicy policy) {
  switch (policy) {
    case DiskSchedPolicy::kFifo:
      return "FIFO";
    case DiskSchedPolicy::kScan:
      return "SCAN";
  }
  return "unknown";
}

std::size_t ScheduledArray::pick_next() const {
  if (policy_ == DiskSchedPolicy::kFifo || waiting_.size() == 1) return 0;
  // SCAN: nearest request in the sweep direction; reverse at the end.
  auto best_in_direction = [&](bool up) -> std::pair<bool, std::size_t> {
    bool found = false;
    std::size_t best = 0;
    std::uint64_t best_key = up ? std::numeric_limits<std::uint64_t>::max()
                                : 0;
    for (std::size_t i = 0; i < waiting_.size(); ++i) {
      const std::uint64_t off = waiting_[i].offset;
      if (up ? off >= head_ : off <= head_) {
        const bool better = up ? off < best_key : off >= best_key;
        if (!found || better) {
          found = true;
          best = i;
          best_key = off;
        }
      }
    }
    return {found, best};
  };
  auto [found, index] = best_in_direction(sweep_up_);
  if (found) return index;
  auto [found2, index2] = best_in_direction(!sweep_up_);
  return found2 ? index2 : 0;
}

void ScheduledArray::admit_next() {
  if (waiting_.empty()) {
    busy_ = false;
    return;
  }
  const std::size_t index = pick_next();
  // Track sweep direction from the admitted request's position.
  sweep_up_ = waiting_[index].offset >= head_;
  auto handle = waiting_[index].handle;
  waiting_.erase(waiting_.begin() + static_cast<std::ptrdiff_t>(index));
  // busy_ stays true: ownership passes to the admitted waiter.
  engine_.call_in(0.0, [handle] { handle.resume(); });
}

sim::Task<DiskOutcome> ScheduledArray::access(std::uint64_t offset,
                                              std::uint64_t bytes,
                                              bool is_write) {
  if (busy_) {
    struct Enqueue {
      ScheduledArray& sched;
      std::uint64_t offset;
      std::uint64_t bytes;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) {
        sched.waiting_.push_back(Waiter{offset, bytes, h});
      }
      void await_resume() const noexcept {}
    };
    co_await Enqueue{*this, offset, bytes};
    // Resumed by admit_next(): we own the array now (busy_ is still true).
  } else {
    busy_ = true;
  }
  ++admitted_;
  const DiskOutcome outcome = co_await array_.access(offset, bytes, is_write);
  head_ = offset + bytes;
  admit_next();
  co_return outcome;
}

}  // namespace paraio::hw
