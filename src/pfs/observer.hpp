// Debug observation points on the physical data path, shared by both file
// system models (pfs::Pfs and ppfs::Ppfs attach the same observer type).
//
// The hooks fire synchronously on the simulation thread, with no simulated
// time cost and one pointer test of real cost when nothing is attached.
// They exist so the testkit's invariant checker can watch the disk layer —
// byte conservation, stripe-offset validity, write-behind accounting —
// without the file systems knowing anything about the checks.
#pragma once

#include <cstdint>
#include <vector>

#include "io/file.hpp"
#include "pfs/stripe.hpp"

namespace paraio::pfs {

class IoObserver {
 public:
  virtual ~IoObserver() = default;

  /// One logical data transfer is about to run: [offset, offset+bytes) of
  /// `file` (read byte counts already clipped at end-of-file), decomposed
  /// into `segments` under `stripes`.  Fired before any simulated time
  /// passes, so the segment list is exactly what the ION servers will see.
  virtual void on_transfer(io::FileId file, std::uint64_t offset,
                           std::uint64_t bytes, bool is_write,
                           const StripeParams& stripes,
                           const std::vector<Segment>& segments) {
    (void)file;
    (void)offset;
    (void)bytes;
    (void)is_write;
    (void)stripes;
    (void)segments;
  }

  /// PPFS write-behind: `new_bytes` of fresh (non-overlapping) data entered
  /// a client write buffer on behalf of `file`.
  virtual void on_write_buffered(io::FileId file, std::uint64_t new_bytes) {
    (void)file;
    (void)new_bytes;
  }

  /// PPFS write-behind: a buffer flush shipped `bytes` of `file` to the I/O
  /// nodes (the matching on_transfer calls follow).
  virtual void on_buffer_flush(io::FileId file, std::uint64_t bytes) {
    (void)file;
    (void)bytes;
  }

  /// The experiment driver finished staging input files; the measured
  /// (instrumented) run starts now.  Checkers typically zero their byte
  /// accumulators here so app-layer and disk-layer totals are comparable.
  virtual void on_measured_run_start() {}
};

}  // namespace paraio::pfs
