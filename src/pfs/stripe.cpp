#include "pfs/stripe.hpp"

#include <algorithm>
#include <cassert>

namespace paraio::pfs {

StripeMap::StripeMap(const StripeParams& params) : params_(params) {
  assert(params_.unit > 0);
  assert(params_.io_nodes > 0);
  assert(params_.first_ion < params_.io_nodes);
}

std::uint32_t StripeMap::ion_of(std::uint64_t offset) const {
  const std::uint64_t stripe = offset / params_.unit;
  return static_cast<std::uint32_t>((stripe + params_.first_ion) %
                                    params_.io_nodes);
}

std::uint64_t StripeMap::local_offset_of(std::uint64_t offset) const {
  const std::uint64_t stripe = offset / params_.unit;
  const std::uint64_t local_stripe = stripe / params_.io_nodes;
  return local_stripe * params_.unit + offset % params_.unit;
}

std::vector<Segment> StripeMap::decompose(std::uint64_t offset,
                                          std::uint64_t length) const {
  std::vector<Segment> segments;
  if (length == 0) return segments;
  const std::uint32_t n = params_.io_nodes;
  // Walk stripe by stripe, merging consecutive stripes on the same ION
  // (they are contiguous locally).  At most n distinct IONs appear.
  std::uint64_t pos = offset;
  const std::uint64_t end = offset + length;
  // Index of a node's segment in `segments`, or -1.
  std::vector<int> index(n, -1);
  while (pos < end) {
    const std::uint64_t stripe_end = (pos / params_.unit + 1) * params_.unit;
    const std::uint64_t chunk = std::min(end, stripe_end) - pos;
    const std::uint32_t ion = ion_of(pos);
    const std::uint64_t local = local_offset_of(pos);
    if (index[ion] < 0) {
      index[ion] = static_cast<int>(segments.size());
      segments.push_back(Segment{ion, local, chunk});
    } else {
      Segment& seg = segments[static_cast<std::size_t>(index[ion])];
      assert(seg.local_offset + seg.length == local &&
             "stripes on one ION must be locally contiguous");
      seg.length += chunk;
    }
    pos += chunk;
  }
  return segments;
}

}  // namespace paraio::pfs
