// Model of the Intel Paragon Parallel File System (PFS).
//
// Files are striped in 64 KB units across the machine's I/O nodes, each of
// which serves data requests from its RAID-3 array and metadata requests
// from a serialized control server.  The six parallel access modes of
// OSF/1 PFS (§3.2 of the paper) are implemented with explicit shared-pointer
// token, node-order turnstile, fixed-record layout, and global-rendezvous
// machinery, because those semantics are precisely what shaped the access
// patterns the paper observes (§5.2, §6.2).
//
// Cost model:
//  * data op    = request/data message to each touched ION (striped, served
//                 in parallel across IONs, FIFO within one) + RAID access +
//                 reply/data message back.
//  * control op = message to the file's metadata ION + serialized service
//                 (open/close/seek/lsize/flush) + reply.  Seeks being
//                 control RPCs is the documented PFS behaviour behind the
//                 enormous seek times in the paper's Table 1.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "hw/machine.hpp"
#include "io/file.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "pfs/observer.hpp"
#include "pfs/stripe.hpp"
#include "pfs/turn_gate.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace paraio::pfs {

struct PfsParams {
  /// Stripe unit in bytes (io_nodes is taken from the machine at mount).
  std::uint64_t stripe_unit = 64 * 1024;
  /// Serialized per-request service time at an I/O node's control server
  /// (seeks, lsize, token traffic).
  sim::SimDuration meta_service = sim::milliseconds(8.0);
  /// Service time of the per-write metadata update when write_control_rpc
  /// is enabled.  Negative means "same as meta_service".
  sim::SimDuration write_meta_service = -1.0;

  [[nodiscard]] sim::SimDuration effective_write_meta_service() const {
    return write_meta_service < 0 ? meta_service : write_meta_service;
  }
  /// Control service time for an open of an existing file.
  sim::SimDuration open_service = sim::milliseconds(12.0);
  /// Control service time when the open creates the file (allocation and
  /// directory updates made creates far more expensive than plain opens on
  /// PFS — compare the paper's pargos and pscf open costs in Table 5).
  /// Negative means "same as open_service".
  sim::SimDuration create_service = -1.0;

  [[nodiscard]] sim::SimDuration effective_create_service() const {
    return create_service < 0 ? open_service : create_service;
  }
  /// Control service time for a close.
  sim::SimDuration close_service = sim::milliseconds(4.0);
  /// Control service time for a flush (forces ION buffers to the array).
  sim::SimDuration flush_service = sim::milliseconds(6.0);
  /// Serialized per-segment CPU work at the I/O node's data server before
  /// each array access (request parsing, buffer management).  Dominant for
  /// workloads whose per-op OS overhead exceeds the media time (HTF).
  sim::SimDuration data_service = 0.0;
  /// Size of a control/request/ack message on the wire.
  std::uint32_t control_bytes = 64;
  /// Local cost of posting an asynchronous operation (iread/iwrite issue).
  sim::SimDuration async_issue = sim::milliseconds(8.0);
  /// PFS's synchronous write path: every independent-pointer write first
  /// performs a metadata RPC (offset registration / size update) against the
  /// file's metadata I/O node before the data moves.  This serialized
  /// control traffic — not the disks — is what makes ESCAT's synchronized
  /// 2 KB write bursts so expensive in the paper's Table 1.
  bool write_control_rpc = true;
};

/// Aggregate operation counters a mounted PFS exposes for tests/benches.
struct PfsCounters {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t seeks = 0;
  std::uint64_t opens = 0;
  std::uint64_t closes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

class Pfs;

namespace detail {

/// Rendezvous state for one M_GLOBAL operation round.
struct GlobalRound {
  explicit GlobalRound(sim::Engine& engine) : done(engine) {}
  sim::Event done;
  std::uint64_t result = 0;
};

/// Shared (cross-handle) state of one file.
struct FileObject {
  FileObject(sim::Engine& engine, io::FileId id_, std::string name_,
             const StripeParams& stripe_params, const io::OpenOptions& opts);

  io::FileId id;
  std::string name;
  io::AccessMode mode;
  std::uint32_t parties;
  std::uint64_t record_size;
  StripeMap stripes;
  std::uint64_t size = 0;
  std::uint32_t open_handles = 0;

  // Shared-pointer machinery (M_LOG / M_SYNC / M_GLOBAL).
  std::uint64_t shared_offset = 0;
  std::unique_ptr<sim::Mutex> token;      // M_LOG pointer token
  std::unique_ptr<TurnGate> turns;        // M_SYNC node-order gate
  std::uint32_t arrived = 0;              // M_GLOBAL rendezvous count
  std::shared_ptr<GlobalRound> round;     // M_GLOBAL current round

  // setiomode collective state.
  std::uint32_t mode_arrivals = 0;
  std::shared_ptr<sim::Event> mode_round;

  /// Disk placement: ION-local base address for this file's extents.  Files
  /// get disjoint 1 GiB virtual regions; only relative placement matters to
  /// the head-position model.
  [[nodiscard]] std::uint64_t disk_base() const {
    return static_cast<std::uint64_t>(id) << 30;
  }
};

}  // namespace detail

/// One per-node open handle (io::File implementation).
class PfsFile final : public io::File {
 public:
  PfsFile(Pfs& fs, std::shared_ptr<detail::FileObject> object,
          io::NodeId node, std::uint32_t rank);

  [[nodiscard]] sim::Task<std::uint64_t> read(std::uint64_t bytes) override;
  [[nodiscard]] sim::Task<std::uint64_t> write(std::uint64_t bytes) override;
  [[nodiscard]] sim::Task<> seek(std::uint64_t offset) override;
  [[nodiscard]] sim::Task<std::uint64_t> size() override;
  [[nodiscard]] sim::Task<> flush() override;
  [[nodiscard]] sim::Task<> close() override;
  [[nodiscard]] sim::Task<io::AsyncOp> read_async(std::uint64_t bytes) override;
  [[nodiscard]] sim::Task<io::AsyncOp> write_async(std::uint64_t bytes) override;
  [[nodiscard]] sim::Task<> set_mode(const io::OpenOptions& options) override;

  [[nodiscard]] std::uint64_t tell() const override { return position(); }
  [[nodiscard]] io::FileId id() const override { return object_->id; }
  [[nodiscard]] io::NodeId node() const override { return node_; }
  [[nodiscard]] io::AccessMode mode() const override { return object_->mode; }

 private:
  sim::Task<std::uint64_t> transfer_mode_dispatch(std::uint64_t bytes,
                                                  bool is_write);
  sim::Task<io::AsyncOp> submit_async(std::uint64_t bytes, bool is_write);
  [[nodiscard]] std::uint64_t position() const;
  void require_open(const char* op) const;

  Pfs& fs_;
  std::shared_ptr<detail::FileObject> object_;
  io::NodeId node_;
  std::uint32_t rank_;
  std::uint64_t offset_ = 0;        // independent-pointer modes
  std::uint64_t records_done_ = 0;  // M_RECORD per-handle op count
  bool closed_ = false;
};

class Pfs final : public io::FileSystem {
 public:
  Pfs(hw::Machine& machine, PfsParams params = {});

  [[nodiscard]] sim::Task<io::FilePtr> open(io::NodeId node, const std::string& path,
                              const io::OpenOptions& options) override;
  [[nodiscard]] bool exists(const std::string& path) const override;
  [[nodiscard]] std::uint64_t file_size(const std::string& path) const override;

  [[nodiscard]] const PfsParams& params() const noexcept { return params_; }
  [[nodiscard]] const PfsCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] hw::Machine& machine() noexcept { return machine_; }

  /// Attaches (or, with nullptr, detaches) the data-path debug observer.
  void set_observer(IoObserver* observer) { observer_ = observer; }
  [[nodiscard]] IoObserver* observer() const noexcept { return observer_; }

  /// Publishes per-stripe-server request counts and byte balance
  /// (`pfs.ion<k>.{requests,bytes}`) and mode-gate waits
  /// (`pfs.mode_wait_us` / `pfs.mode_wait_s`) into `registry`, and opens
  /// transfer spans on `tracer`.  Either may be null; detached hot-path
  /// cost is one pointer test.
  void attach_observability(obs::Registry* registry, obs::Tracer* tracer);

 private:
  friend class PfsFile;

  /// Serialized metadata RPC against `ion`'s file-metadata control server.
  sim::Task<> control_rpc(io::NodeId node, std::uint32_t ion,
                          sim::SimDuration service);

  /// Serialized RPC against `ion`'s directory server (opens/creates/closes
  /// run here, so slow creates do not stall seeks and lsize calls).
  sim::Task<> dir_rpc(io::NodeId node, std::uint32_t ion,
                      sim::SimDuration service);

  /// Physical data movement for [offset, offset+bytes): decomposes over
  /// IONs, runs segments in parallel, updates file size for writes.
  /// Returns bytes actually moved (reads clip at end-of-file).
  sim::Task<std::uint64_t> transfer(io::NodeId node, detail::FileObject& file,
                                    std::uint64_t offset, std::uint64_t bytes,
                                    bool is_write);

  /// Records one mode-gate wait (M_LOG token, M_SYNC turn, M_GLOBAL
  /// rendezvous) when metrics are attached.
  void note_mode_wait(sim::SimDuration waited);

  [[nodiscard]] std::uint32_t meta_ion_of(const detail::FileObject& file) const {
    return file.id % static_cast<std::uint32_t>(machine_.io_nodes());
  }
  [[nodiscard]] std::uint32_t meta_ion_of(const std::string& path) const {
    return static_cast<std::uint32_t>(std::hash<std::string>{}(path) %
                                      machine_.io_nodes());
  }

  hw::Machine& machine_;
  PfsParams params_;
  std::unordered_map<std::string, std::shared_ptr<detail::FileObject>> files_;
  std::vector<std::unique_ptr<sim::Semaphore>> ion_control_;
  std::vector<std::unique_ptr<sim::Semaphore>> ion_dir_;
  io::FileId next_file_id_ = 1;
  PfsCounters counters_;
  IoObserver* observer_ = nullptr;

  // Observability handles; empty/null until attach_observability.
  std::vector<obs::Counter*> ion_requests_;
  std::vector<obs::Counter*> ion_bytes_;
  obs::Histogram* mode_wait_us_ = nullptr;
  obs::Gauge* mode_wait_s_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace paraio::pfs
