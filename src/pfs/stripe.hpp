// File striping across I/O nodes.
//
// PFS stripes files round-robin in fixed units (64 KB on the CCSF Paragon)
// across the I/O nodes.  A byte range therefore decomposes into at most one
// contiguous *local* extent per I/O node, because consecutive stripes that
// land on the same I/O node are adjacent in that node's local address space.
// The decomposition below exploits this: per request we emit one Segment per
// touched I/O node, which is also what lets the disk model see sequential
// continuation for streaming access patterns.
#pragma once

#include <cstdint>
#include <vector>

namespace paraio::pfs {

struct StripeParams {
  std::uint64_t unit = 64 * 1024;  ///< stripe unit in bytes
  std::uint32_t io_nodes = 16;     ///< number of I/O nodes in the stripe set
  std::uint32_t first_ion = 0;     ///< I/O node holding stripe 0
};

/// One per-I/O-node piece of a striped request.
struct Segment {
  std::uint32_t ion = 0;            ///< I/O node index
  std::uint64_t local_offset = 0;   ///< byte offset in the ION-local space
  std::uint64_t length = 0;         ///< bytes on this I/O node
  friend bool operator==(const Segment&, const Segment&) = default;
};

class StripeMap {
 public:
  explicit StripeMap(const StripeParams& params);

  /// I/O node holding the stripe that contains file offset `offset`.
  [[nodiscard]] std::uint32_t ion_of(std::uint64_t offset) const;

  /// ION-local byte offset of file offset `offset` within its I/O node.
  [[nodiscard]] std::uint64_t local_offset_of(std::uint64_t offset) const;

  /// Decomposes [offset, offset+length) into per-I/O-node segments, one per
  /// touched node (local extents are contiguous per node).  Segments are
  /// ordered by the position of each node's first byte in the request, so
  /// iteration order is deterministic.
  [[nodiscard]] std::vector<Segment> decompose(std::uint64_t offset,
                                               std::uint64_t length) const;

  [[nodiscard]] const StripeParams& params() const noexcept { return params_; }

 private:
  StripeParams params_;
};

}  // namespace paraio::pfs
