#include "pfs/pfs.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sim/deadlock.hpp"
#include "sim/race.hpp"
#include "sim/task_group.hpp"

namespace paraio::pfs {

namespace detail {

FileObject::FileObject(sim::Engine& engine, io::FileId id_, std::string name_,
                       const StripeParams& stripe_params,
                       const io::OpenOptions& opts)
    : id(id_),
      name(std::move(name_)),
      mode(opts.mode),
      parties(opts.parties),
      record_size(opts.record_size),
      stripes(stripe_params) {
  switch (mode) {
    case io::AccessMode::kLog:
      token = std::make_unique<sim::Mutex>(engine);
      break;
    case io::AccessMode::kSync:
      turns = std::make_unique<TurnGate>(engine, parties);
      break;
    case io::AccessMode::kGlobal:
      round = std::make_shared<GlobalRound>(engine);
      break;
    default:
      break;
  }
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Pfs

Pfs::Pfs(hw::Machine& machine, PfsParams params)
    : machine_(machine), params_(std::move(params)) {
  ion_control_.reserve(machine_.io_nodes());
  ion_dir_.reserve(machine_.io_nodes());
  for (std::size_t i = 0; i < machine_.io_nodes(); ++i) {
    ion_control_.push_back(
        std::make_unique<sim::Semaphore>(machine_.engine(), 1));
    ion_dir_.push_back(std::make_unique<sim::Semaphore>(machine_.engine(), 1));
  }
}

void Pfs::attach_observability(obs::Registry* registry, obs::Tracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) {
    ion_requests_.clear();
    ion_bytes_.clear();
    mode_wait_us_ = nullptr;
    mode_wait_s_ = nullptr;
    return;
  }
  ion_requests_.clear();
  ion_bytes_.clear();
  for (std::size_t i = 0; i < machine_.io_nodes(); ++i) {
    const std::string prefix = "pfs.ion" + std::to_string(i);
    ion_requests_.push_back(&registry->counter(prefix + ".requests"));
    ion_bytes_.push_back(&registry->counter(prefix + ".bytes"));
  }
  mode_wait_us_ = &registry->histogram("pfs.mode_wait_us");
  mode_wait_s_ = &registry->gauge("pfs.mode_wait_s");
}

void Pfs::note_mode_wait(sim::SimDuration waited) {
  if (mode_wait_us_ == nullptr) return;
  mode_wait_us_->record(static_cast<std::uint64_t>(waited * 1e6));
  mode_wait_s_->add(waited);
}

sim::Task<> Pfs::control_rpc(io::NodeId node, std::uint32_t ion,
                             sim::SimDuration service) {
  const io::NodeId ion_node = machine_.ion_node_id(ion);
  co_await machine_.net().send(node, ion_node, params_.control_bytes);
  co_await ion_control_[ion]->acquire();
  co_await machine_.engine().delay(service);
  ion_control_[ion]->release();
  co_await machine_.net().send(ion_node, node, params_.control_bytes);
}

sim::Task<> Pfs::dir_rpc(io::NodeId node, std::uint32_t ion,
                         sim::SimDuration service) {
  const io::NodeId ion_node = machine_.ion_node_id(ion);
  co_await machine_.net().send(node, ion_node, params_.control_bytes);
  co_await ion_dir_[ion]->acquire();
  co_await machine_.engine().delay(service);
  ion_dir_[ion]->release();
  co_await machine_.net().send(ion_node, node, params_.control_bytes);
}

sim::Task<std::uint64_t> Pfs::transfer(io::NodeId node,
                                       detail::FileObject& file,
                                       std::uint64_t offset,
                                       std::uint64_t bytes, bool is_write) {
  if (!is_write) {
    const std::uint64_t avail =
        file.size > offset ? file.size - offset : 0;
    bytes = std::min(bytes, avail);
  }
  if (bytes == 0) co_return 0;

  const auto segments = file.stripes.decompose(offset, bytes);
  if (observer_) {
    observer_->on_transfer(file.id, offset, bytes, is_write,
                           file.stripes.params(), segments);
  }
  obs::Tracer::SpanId span = 0;
  if (tracer_ != nullptr) {
    span = tracer_->begin({node, 0}, is_write ? "pfs.write" : "pfs.read",
                          "pfs");
  }
  sim::TaskGroup group(machine_.engine());
  for (const Segment& seg : segments) {
    if (!ion_requests_.empty()) {
      ion_requests_[seg.ion]->add();
      ion_bytes_[seg.ion]->add(seg.length);
    }
    auto piece = [](Pfs& fs, io::NodeId src, detail::FileObject& f,
                    Segment s, bool write,
                    obs::Tracer::SpanId parent) -> sim::Task<> {
      const io::NodeId ion_node = fs.machine_.ion_node_id(s.ion);
      obs::Tracer::SpanId piece_span = 0;
      if (fs.tracer_ != nullptr) {
        piece_span = fs.tracer_->begin_child(
            {ion_node, 1}, write ? "pfs.piece.write" : "pfs.piece.read",
            parent, "pfs");
      }
      // Ship data (write) or the request (read) to the I/O node.
      co_await fs.machine_.net().send(
          src, ion_node, write ? s.length : fs.params_.control_bytes);
      if (fs.params_.data_service > 0.0) {
        co_await fs.ion_control_[s.ion]->acquire();
        co_await fs.machine_.engine().delay(fs.params_.data_service);
        fs.ion_control_[s.ion]->release();
      }
      const hw::DiskOutcome disk = co_await fs.machine_.ion_array(s.ion).access(
          f.disk_base() + s.local_offset, s.length, write);
      if (disk.failed) {
        // PFS has no recovery path: a dead array is fatal to the run (the
        // property generator constrains PFS fault plans to recoverable
        // faults; degraded mode is transparent, just slower).
        throw std::runtime_error("PFS: RAID-3 array on I/O node " +
                                 std::to_string(s.ion) +
                                 " has failed and PFS cannot recover");
      }
      // Ack (write) or data (read) back to the compute node.
      co_await fs.machine_.net().send(
          ion_node, src, write ? fs.params_.control_bytes : s.length);
      if (fs.tracer_ != nullptr) fs.tracer_->end(piece_span);
    };
    group.spawn(piece(*this, node, file, seg, is_write, span));
  }
  co_await group.join();
  if (tracer_ != nullptr) tracer_->end(span);

  if (is_write) {
    file.size = std::max(file.size, offset + bytes);
    ++counters_.writes;
    counters_.bytes_written += bytes;
  } else {
    ++counters_.reads;
    counters_.bytes_read += bytes;
  }
  co_return bytes;
}

sim::Task<io::FilePtr> Pfs::open(io::NodeId node, const std::string& path,
                                 const io::OpenOptions& options) {
  if (options.mode == io::AccessMode::kRecord && options.record_size == 0) {
    throw std::invalid_argument("M_RECORD open requires a record size");
  }
  if ((options.mode == io::AccessMode::kSync ||
       options.mode == io::AccessMode::kRecord ||
       options.mode == io::AccessMode::kGlobal) &&
      options.parties == 0) {
    throw std::invalid_argument("collective open requires parties > 0");
  }
  if (options.rank >= std::max<std::uint32_t>(options.parties, 1)) {
    throw std::invalid_argument("rank out of range for open");
  }

  const bool creating = options.create && !files_.contains(path);
  co_await dir_rpc(node, meta_ion_of(path),
                   creating ? params_.effective_create_service()
                            : params_.open_service);

  auto it = files_.find(path);
  if (it == files_.end()) {
    if (!options.create) {
      throw std::invalid_argument("open of missing file without create: " +
                                  path);
    }
    StripeParams sp;
    sp.unit = params_.stripe_unit;
    sp.io_nodes = static_cast<std::uint32_t>(machine_.io_nodes());
    auto object = std::make_shared<detail::FileObject>(
        machine_.engine(), next_file_id_++, path, sp, options);
    it = files_.emplace(path, std::move(object)).first;
  } else if (options.truncate) {
    it->second->size = 0;
  }

  // All handles of one file must agree on the access mode; PFS setiomode is
  // a collective that switches everyone at once, which our open subsumes.
  detail::FileObject& object = *it->second;
  if (object.open_handles > 0 && object.mode != options.mode) {
    throw std::logic_error("conflicting access modes for " + path);
  }
  if (object.open_handles == 0 && object.mode != options.mode) {
    // Re-opening a file in a different mode: rebuild mode machinery.
    detail::FileObject rebuilt(machine_.engine(), object.id, object.name,
                               object.stripes.params(), options);
    rebuilt.size = options.truncate ? 0 : object.size;
    object.mode = rebuilt.mode;
    object.parties = rebuilt.parties;
    object.record_size = rebuilt.record_size;
    object.shared_offset = 0;
    object.token = std::move(rebuilt.token);
    object.turns = std::move(rebuilt.turns);
    object.arrived = 0;
    object.round = std::move(rebuilt.round);
  }

  ++object.open_handles;
  ++counters_.opens;
  co_return std::make_shared<PfsFile>(*this, it->second, node, options.rank);
}

bool Pfs::exists(const std::string& path) const {
  return files_.contains(path);
}

std::uint64_t Pfs::file_size(const std::string& path) const {
  auto it = files_.find(path);
  return it == files_.end() ? 0 : it->second->size;
}

// ---------------------------------------------------------------------------
// PfsFile

PfsFile::PfsFile(Pfs& fs, std::shared_ptr<detail::FileObject> object,
                 io::NodeId node, std::uint32_t rank)
    : fs_(fs), object_(std::move(object)), node_(node), rank_(rank) {}

std::uint64_t PfsFile::position() const {
  switch (object_->mode) {
    case io::AccessMode::kLog:
    case io::AccessMode::kSync:
    case io::AccessMode::kGlobal:
      return object_->shared_offset;
    case io::AccessMode::kRecord:
      return (records_done_ * object_->parties + rank_) * object_->record_size;
    default:
      return offset_;
  }
}

void PfsFile::require_open(const char* op) const {
  if (closed_) {
    throw std::logic_error(std::string(op) + " on closed file " +
                           object_->name);
  }
}

sim::Task<std::uint64_t> PfsFile::transfer_mode_dispatch(std::uint64_t bytes,
                                                         bool is_write) {
  detail::FileObject& f = *object_;
  switch (f.mode) {
    case io::AccessMode::kUnix:
    case io::AccessMode::kAsync: {
      const std::uint64_t off = offset_;
      // M_ASYNC does not preserve operation atomicity (§3.2), so it skips
      // the per-write offset-registration RPC M_UNIX pays.
      if (is_write && f.mode == io::AccessMode::kUnix &&
          fs_.params().write_control_rpc) {
        // The write-path metadata update happens at the I/O node owning the
        // write's first stripe (offset registration + commit scheduling).
        co_await fs_.control_rpc(node_, f.stripes.ion_of(off),
                                 fs_.params().effective_write_meta_service());
      }
      const std::uint64_t n = co_await fs_.transfer(node_, f, off, bytes,
                                                    is_write);
      offset_ = off + n;
      co_return n;
    }
    case io::AccessMode::kLog: {
      // Reserve a region under the pointer token (one metadata RPC), then
      // transfer outside the critical section: M_LOG operations from
      // different nodes overlap physically, only the pointer is atomic.
      co_await fs_.control_rpc(node_, fs_.meta_ion_of(f),
                               fs_.params().meta_service);
      const sim::SimTime gate_arrival = fs_.machine().engine().now();
      auto* deadlocks = sim::DeadlockDetector::find(fs_.machine().engine());
      if (deadlocks) {
        deadlocks->lock_wait(deadlocks->task_for_key(node_, "node"),
                             f.token.get(), "pfs:" + f.name + ":token");
      }
      co_await f.token->lock();
      if (deadlocks) {
        deadlocks->lock_acquired(deadlocks->task_for_key(node_, "node"),
                                 f.token.get(), "pfs:" + f.name + ":token");
      }
      fs_.note_mode_wait(fs_.machine().engine().now() - gate_arrival);
      auto* races = sim::RaceDetector::find(fs_.machine().engine());
      if (races) {
        const auto task = races->task_for_key(node_, "node");
        races->acquire(task, f.token.get());  // paraio-lint: allow(missing-co-await)
        races->write(task, "pfs:" + f.name + ":shared_offset");  // paraio-lint: allow(discarded-task)
      }
      const std::uint64_t off = f.shared_offset;
      std::uint64_t reserve = bytes;
      if (!is_write) {
        reserve = std::min(bytes, f.size > off ? f.size - off : 0);
      }
      f.shared_offset = off + reserve;
      if (races) races->release(races->task_for_key(node_, "node"), f.token.get());
      if (deadlocks) {
        deadlocks->lock_released(deadlocks->task_for_key(node_, "node"),
                                 f.token.get());
      }
      f.token->unlock();
      const std::uint64_t n = co_await fs_.transfer(node_, f, off, reserve,
                                                    is_write);
      co_return n;
    }
    case io::AccessMode::kSync: {
      // Accesses proceed in node-number order; the transfer itself is part
      // of the ordered critical section.
      const sim::SimTime gate_arrival = fs_.machine().engine().now();
      co_await f.turns->await_turn(rank_);
      fs_.note_mode_wait(fs_.machine().engine().now() - gate_arrival);
      auto* races = sim::RaceDetector::find(fs_.machine().engine());
      if (races) {
        const auto task = races->task_for_key(node_, "node");
        races->acquire(task, f.turns.get());  // paraio-lint: allow(missing-co-await)
        races->write(task, "pfs:" + f.name + ":shared_offset");  // paraio-lint: allow(discarded-task)
      }
      const std::uint64_t off = f.shared_offset;
      const std::uint64_t n = co_await fs_.transfer(node_, f, off, bytes,
                                                    is_write);
      f.shared_offset = off + n;
      if (races) races->release(races->task_for_key(node_, "node"), f.turns.get());
      f.turns->advance();
      co_return n;
    }
    case io::AccessMode::kRecord: {
      if (bytes != f.record_size) {
        throw std::invalid_argument(
            "M_RECORD operations must move exactly one record");
      }
      const std::uint64_t off =
          (records_done_ * f.parties + rank_) * f.record_size;
      ++records_done_;
      if (is_write && fs_.params().write_control_rpc) {
        co_await fs_.control_rpc(node_, f.stripes.ion_of(off),
                                 fs_.params().effective_write_meta_service());
      }
      co_return co_await fs_.transfer(node_, f, off, bytes, is_write);
    }
    case io::AccessMode::kGlobal: {
      // Rendezvous of all parties; the last arrival performs one physical
      // access on behalf of everyone, then (for reads) broadcasts the data.
      auto round = f.round;
      if (++f.arrived < f.parties) {
        const sim::SimTime gate_arrival = fs_.machine().engine().now();
        co_await round->done.wait();
        fs_.note_mode_wait(fs_.machine().engine().now() - gate_arrival);
        co_return round->result;
      }
      f.arrived = 0;
      f.round = std::make_shared<detail::GlobalRound>(fs_.machine().engine());
      const std::uint64_t off = f.shared_offset;
      const std::uint64_t n = co_await fs_.transfer(node_, f, off, bytes,
                                                    is_write);
      f.shared_offset = off + n;
      if (!is_write && n > 0) {
        co_await fs_.machine().net().broadcast(node_, n, f.parties);
      }
      round->result = n;
      round->done.set();
      co_return n;
    }
  }
  co_return 0;  // unreachable
}

sim::Task<std::uint64_t> PfsFile::read(std::uint64_t bytes) {
  require_open("read");
  co_return co_await transfer_mode_dispatch(bytes, /*is_write=*/false);
}

sim::Task<std::uint64_t> PfsFile::write(std::uint64_t bytes) {
  require_open("write");
  co_return co_await transfer_mode_dispatch(bytes, /*is_write=*/true);
}

sim::Task<> PfsFile::seek(std::uint64_t offset) {
  require_open("seek");
  const io::AccessMode m = object_->mode;
  if (m != io::AccessMode::kUnix && m != io::AccessMode::kAsync) {
    throw std::logic_error("seek is only valid on independent-pointer modes");
  }
  // PFS eseek is a synchronous metadata RPC to the file's I/O node — the
  // behaviour behind the paper's dominant seek cost in Table 1.
  co_await fs_.control_rpc(node_, fs_.meta_ion_of(*object_),
                           fs_.params().meta_service);
  offset_ = offset;
  ++fs_.counters_.seeks;
}

sim::Task<std::uint64_t> PfsFile::size() {
  require_open("size");
  co_await fs_.control_rpc(node_, fs_.meta_ion_of(*object_),
                           fs_.params().meta_service);
  co_return object_->size;
}

sim::Task<> PfsFile::flush() {
  require_open("flush");
  co_await fs_.control_rpc(node_, fs_.meta_ion_of(*object_),
                           fs_.params().flush_service);
}

sim::Task<> PfsFile::close() {
  require_open("close");
  closed_ = true;
  assert(object_->open_handles > 0);
  --object_->open_handles;
  ++fs_.counters_.closes;
  co_await fs_.dir_rpc(node_, fs_.meta_ion_of(*object_),
                       fs_.params().close_service);
}

sim::Task<io::AsyncOp> PfsFile::submit_async(std::uint64_t bytes,
                                             bool is_write) {
  const io::AccessMode m = object_->mode;
  if (m != io::AccessMode::kUnix && m != io::AccessMode::kAsync) {
    throw std::logic_error("async I/O requires an independent file pointer");
  }
  auto state = std::make_shared<io::AsyncOp::State>(fs_.machine().engine());
  const std::uint64_t off = offset_;
  // The pointer advances at issue time by the requested size (clipped for
  // reads), as with Paragon iread/iwrite.
  std::uint64_t advance = bytes;
  if (!is_write) {
    advance = std::min(bytes, object_->size > off ? object_->size - off : 0);
  }
  offset_ = off + advance;

  auto background = [](Pfs& fs, std::shared_ptr<detail::FileObject> object,
                       io::NodeId node, std::uint64_t offset,
                       std::uint64_t len, bool write,
                       std::shared_ptr<io::AsyncOp::State> st) -> sim::Task<> {
    if (write && fs.params().write_control_rpc) {
      co_await fs.control_rpc(node, object->stripes.ion_of(offset),
                              fs.params().effective_write_meta_service());
    }
    st->transferred = co_await fs.transfer(node, *object, offset, len, write);
    st->done.set();
  };
  fs_.machine().engine().spawn(
      background(fs_, object_, node_, off, bytes, is_write, state));

  co_await fs_.machine().engine().delay(fs_.params().async_issue);
  co_return io::AsyncOp(state);
}

sim::Task<> PfsFile::set_mode(const io::OpenOptions& options) {
  require_open("set_mode");
  if (options.mode == io::AccessMode::kRecord && options.record_size == 0) {
    throw std::invalid_argument("M_RECORD set_mode requires a record size");
  }
  detail::FileObject& f = *object_;
  const std::uint32_t parties = std::max<std::uint32_t>(options.parties, 1);
  if (options.rank >= parties) {
    throw std::invalid_argument("rank out of range for set_mode");
  }
  // The collective synchronizes through the file's metadata server.
  co_await fs_.control_rpc(node_, fs_.meta_ion_of(f),
                           fs_.params().meta_service);

  rank_ = options.rank;
  records_done_ = 0;
  offset_ = 0;
  if (!f.mode_round) {
    f.mode_round = std::make_shared<sim::Event>(fs_.machine().engine());
  }
  auto round = f.mode_round;
  if (++f.mode_arrivals < parties) {
    co_await round->wait();
    co_return;
  }
  // Last arrival rebuilds the shared mode machinery and releases everyone.
  f.mode_arrivals = 0;
  f.mode_round.reset();
  detail::FileObject rebuilt(fs_.machine().engine(), f.id, f.name,
                             f.stripes.params(), options);
  f.mode = options.mode;
  f.parties = parties;
  f.record_size = options.record_size;
  f.shared_offset = 0;
  f.token = std::move(rebuilt.token);
  f.turns = std::move(rebuilt.turns);
  f.arrived = 0;
  f.round = std::move(rebuilt.round);
  round->set();
}

sim::Task<io::AsyncOp> PfsFile::read_async(std::uint64_t bytes) {
  require_open("read_async");
  co_return co_await submit_async(bytes, /*is_write=*/false);
}

sim::Task<io::AsyncOp> PfsFile::write_async(std::uint64_t bytes) {
  require_open("write_async");
  co_return co_await submit_async(bytes, /*is_write=*/true);
}

}  // namespace paraio::pfs
