// Node-order turnstile used by the M_SYNC access mode: rank r may proceed
// only when it is rank r's turn; finishing an access passes the turn to
// rank (r+1) mod parties.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstdint>
#include <unordered_map>

#include "sim/engine.hpp"

namespace paraio::pfs {

class TurnGate {
 public:
  TurnGate(sim::Engine& engine, std::uint32_t parties)
      : engine_(engine), parties_(parties) {
    assert(parties > 0);
  }

  [[nodiscard]] std::uint32_t turn() const noexcept { return turn_; }
  [[nodiscard]] std::uint32_t parties() const noexcept { return parties_; }

  /// Awaitable: suspends until it is `rank`'s turn.  At most one task per
  /// rank may wait at a time (each node has one handle).
  [[nodiscard]] auto await_turn(std::uint32_t rank) {
    struct Awaiter {
      TurnGate& gate;
      std::uint32_t rank;
      bool await_ready() const noexcept { return gate.turn_ == rank; }
      void await_suspend(std::coroutine_handle<> h) {
        assert(!gate.waiting_.contains(rank) && "one waiter per rank");
        gate.waiting_.emplace(rank, h);
      }
      void await_resume() const noexcept {}
    };
    assert(rank < parties_);
    return Awaiter{*this, rank};
  }

  /// Passes the turn to the next rank, waking its waiter if parked.
  void advance() {
    turn_ = (turn_ + 1) % parties_;
    auto it = waiting_.find(turn_);
    if (it != waiting_.end()) {
      auto h = it->second;
      waiting_.erase(it);
      engine_.call_in(0.0, [h] { h.resume(); });
    }
  }

 private:
  sim::Engine& engine_;
  std::uint32_t parties_;
  std::uint32_t turn_ = 0;
  std::unordered_map<std::uint32_t, std::coroutine_handle<>> waiting_;
};

}  // namespace paraio::pfs
