#include "io/file.hpp"

namespace paraio::io {

const char* to_string(AccessMode mode) {
  switch (mode) {
    case AccessMode::kUnix:
      return "M_UNIX";
    case AccessMode::kLog:
      return "M_LOG";
    case AccessMode::kSync:
      return "M_SYNC";
    case AccessMode::kRecord:
      return "M_RECORD";
    case AccessMode::kGlobal:
      return "M_GLOBAL";
    case AccessMode::kAsync:
      return "M_ASYNC";
  }
  return "M_UNKNOWN";
}

}  // namespace paraio::io
