// Typed result for fault-aware I/O paths.
//
// Under an active fault plan an I/O request can fail for reasons the model
// must surface rather than swallow: a lost message that timed out, a refusal
// from a crashed I/O node, or an array with too many dead disks.  IoOutcome
// is the client-visible verdict; every call site must inspect it (the
// `swallowed-io-error` paraio-lint check flags bare-statement discards).
#pragma once

#include <cstdint>

namespace paraio::io {

enum class IoErrc {
  kOk = 0,
  kTimeout,      ///< request or reply message lost; client timed out
  kIonDown,      ///< I/O node crashed (refused or abandoned the request)
  kArrayFailed,  ///< RAID-3 array has >= 2 unavailable disks
  kDataLost,     ///< buffered dirty data could not be made durable anywhere
};

[[nodiscard]] constexpr const char* to_string(IoErrc e) {
  switch (e) {
    case IoErrc::kOk:
      return "ok";
    case IoErrc::kTimeout:
      return "timeout";
    case IoErrc::kIonDown:
      return "ion-down";
    case IoErrc::kArrayFailed:
      return "array-failed";
    case IoErrc::kDataLost:
      return "data-lost";
  }
  return "unknown";
}

/// Verdict on one I/O request after every recovery path has been tried.
struct [[nodiscard]] IoOutcome {
  IoErrc error = IoErrc::kOk;
  /// Submissions made to the primary I/O node (1 = first try succeeded).
  std::uint32_t attempts = 1;
  /// The request completed on a substitute I/O node.
  bool failed_over = false;
  /// The serving array was running degraded (parity reconstruction).
  bool degraded = false;

  [[nodiscard]] constexpr bool ok() const noexcept {
    return error == IoErrc::kOk;
  }
};

}  // namespace paraio::io
