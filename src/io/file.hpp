// Abstract parallel-file API the application skeletons program against.
//
// Both file-system implementations (pfs — the Intel PFS model; ppfs — the
// policy-rich portable layer) implement this interface, and the Pablo
// instrumentation layer decorates it, so an application characterization is
// "same code, different mount".
//
// Data contents are not simulated — only byte counts, offsets, and timing.
// That is exactly the abstraction level of the paper's traces.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "hw/network.hpp"  // NodeId
#include "sim/engine.hpp"
#include "sim/sync.hpp"
#include "sim/task.hpp"

namespace paraio::io {

using NodeId = hw::NodeId;

/// Stable identifier of a file within one file system instance.
using FileId = std::uint32_t;

/// Intel PFS parallel access modes (§3.2 of the paper).
enum class AccessMode {
  kUnix,    ///< M_UNIX: independent file pointer per node.
  kLog,     ///< M_LOG: shared pointer, first-come-first-serve, variable size.
  kSync,    ///< M_SYNC: shared pointer, accesses in node-number order.
  kRecord,  ///< M_RECORD: independent pointers, fixed-size records laid out
            ///< in groups of N records in node order.
  kGlobal,  ///< M_GLOBAL: shared pointer, all nodes perform the same op on
            ///< the same data; one physical access serves everyone.
  kAsync,   ///< M_ASYNC: independent pointers, unrestricted, no atomicity.
};

[[nodiscard]] const char* to_string(AccessMode mode);

struct OpenOptions {
  AccessMode mode = AccessMode::kUnix;
  bool create = false;
  bool truncate = false;
  /// Number of nodes participating in this (collective) open.  Required
  /// (> 0) for kSync / kRecord / kGlobal; ignored for independent modes.
  std::uint32_t parties = 1;
  /// This node's rank within the participating group (0-based).
  std::uint32_t rank = 0;
  /// Fixed record size for kRecord mode, in bytes.
  std::uint64_t record_size = 0;
};

/// Completion handle for an asynchronous read/write (Paragon iread/iwrite).
/// The issuing call returns after the (cheap) issue cost; the remaining time
/// surfaces as iowait when the caller awaits the handle — matching how the
/// paper accounts async read time vs. iowait time in Table 3.
class AsyncOp {
 public:
  struct State {
    explicit State(sim::Engine& engine) : done(engine) {}
    sim::Event done;
    std::uint64_t transferred = 0;
  };

  AsyncOp() = default;
  explicit AsyncOp(std::shared_ptr<State> state) : state_(std::move(state)) {}

  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool completed() const { return state_ && state_->done.is_set(); }

  /// Awaits completion and returns the transferred byte count.
  [[nodiscard]] sim::Task<std::uint64_t> wait() {
    co_await state_->done.wait();
    co_return state_->transferred;
  }

 private:
  std::shared_ptr<State> state_;
};

/// One per-node open file handle.
class File {
 public:
  virtual ~File() = default;

  /// Reads `bytes` at the mode-determined position; returns bytes actually
  /// read (short at end-of-file).
  [[nodiscard]] virtual sim::Task<std::uint64_t> read(std::uint64_t bytes) = 0;

  /// Writes `bytes`; returns bytes written.  Extends the file.
  [[nodiscard]] virtual sim::Task<std::uint64_t> write(std::uint64_t bytes) = 0;

  /// Moves this handle's file pointer (independent-pointer modes only).
  [[nodiscard]] virtual sim::Task<> seek(std::uint64_t offset) = 0;

  /// Queries current file size (Paragon lsize; a metadata RPC).
  [[nodiscard]] virtual sim::Task<std::uint64_t> size() = 0;

  /// Forces buffered data to storage (Fortran FORFLUSH in the HTF code).
  [[nodiscard]] virtual sim::Task<> flush() = 0;

  /// Closes the handle.  Must be the last operation.
  [[nodiscard]] virtual sim::Task<> close() = 0;

  /// Asynchronous variants (Paragon iread/iwrite): awaiting the call charges
  /// only the issue cost and returns a completion handle; the remaining
  /// transfer time surfaces as iowait when the handle is awaited.
  [[nodiscard]] virtual sim::Task<AsyncOp> read_async(std::uint64_t bytes) = 0;
  [[nodiscard]] virtual sim::Task<AsyncOp> write_async(std::uint64_t bytes) = 0;

  /// Blocks until an asynchronous operation completes (Paragon iowait).
  /// A distinct File call — not AsyncOp::wait() directly — because iowait is
  /// an operation in its own right in the paper's accounting (Table 3) and
  /// the instrumentation layer brackets it like any other call.
  [[nodiscard]] virtual sim::Task<std::uint64_t> iowait(AsyncOp op) {
    co_return co_await op.wait();
  }

  /// Switches the file's access mode in place (Paragon PFS setiomode, a
  /// collective across options.parties open handles).  ESCAT uses this to
  /// flip its staging files from M_UNIX writing to M_RECORD reading without
  /// reopening them.  Default: unsupported.
  [[nodiscard]] virtual sim::Task<> set_mode(const OpenOptions& options) {
    (void)options;
    throw std::logic_error("set_mode not supported by this file system");
  }

  /// Current handle position (no simulated cost; bookkeeping accessor).
  [[nodiscard]] virtual std::uint64_t tell() const = 0;
  [[nodiscard]] virtual FileId id() const = 0;
  [[nodiscard]] virtual NodeId node() const = 0;
  [[nodiscard]] virtual AccessMode mode() const = 0;
};

using FilePtr = std::shared_ptr<File>;

/// A mounted file system.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` from `node`.  Creates the file when options.create is set.
  [[nodiscard]] virtual sim::Task<FilePtr> open(
      NodeId node, const std::string& path, const OpenOptions& options) = 0;

  /// True if `path` exists.
  [[nodiscard]] virtual bool exists(const std::string& path) const = 0;

  /// Size of `path` in bytes, 0 if absent (bookkeeping, no simulated cost).
  [[nodiscard]] virtual std::uint64_t file_size(const std::string& path) const = 0;
};

}  // namespace paraio::io
