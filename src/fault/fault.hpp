// Deterministic, schedule-driven fault injection.
//
// The paper's Paragon ran 16 I/O nodes each backed by a five-disk RAID-3
// array — a topology whose whole point is surviving a single disk failure —
// so this layer lets every experiment run under degraded hardware: a
// FaultPlan is a list of timed events (disk failure/repair, I/O-node
// crash/restart, interconnect loss and delay spikes) that a FaultInjector
// applies as simulated time passes.
//
// Design rules (all load-bearing for determinism):
//  * Schedule-driven, not sampled — every fault fires at a planned simulated
//    time, so the same plan + seed reproduces bit-identical traces.
//  * Injection via the chained sim::EngineObserver pattern (the Sampler /
//    RaceDetector / DeadlockDetector discipline): the injector flips state
//    on the hardware models from inside on_event() and schedules nothing
//    itself, so an attached injector with an empty plan is byte-identical
//    to no injector at all.
//  * All randomness (loss draws, retry jitter) flows through sim::Rng
//    streams seeded from the plan/policy, and no stream is drawn from
//    unless a fault window is actually active.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "hw/machine.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace paraio::fault {

enum class FaultKind {
  kDiskFail,    ///< one disk of an ION's RAID-3 array fails
  kDiskRepair,  ///< replace the disk and start a background rebuild
  kIonCrash,    ///< the I/O node stops serving (volatile server state lost)
  kIonRestart,  ///< the I/O node comes back with a fresh epoch
  kNetLoss,     ///< set interconnect message-drop probability to `value`
  kNetDelay,    ///< add `value` seconds to every transfer (0 clears)
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One timed fault.  `ion` selects the target I/O node for the disk and ION
/// kinds; `disk` the drive within that array for the disk kinds; `value`
/// carries the drop probability (kNetLoss) or extra seconds (kNetDelay).
struct FaultEvent {
  sim::SimTime at = 0.0;
  FaultKind kind = FaultKind::kDiskFail;
  std::uint32_t ion = 0;
  std::uint32_t disk = 0;
  double value = 0.0;
};

/// A timed fault schedule plus the seed for the interconnect's loss draws.
/// Events are applied in `at` order (the injector sorts a copy on attach).
struct FaultPlan {
  std::vector<FaultEvent> events;
  std::uint64_t seed = 0xFA17u;

  [[nodiscard]] bool empty() const noexcept { return events.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events.size(); }
  void add(const FaultEvent& event) { events.push_back(event); }

  /// One line per event, for test failure messages.
  [[nodiscard]] std::string describe() const;
};

/// Client-side recovery knobs for PPFS (see ppfs::PpfsParams::recovery).
/// The timeout bounds how long a client charges for a lost request before
/// declaring it failed; retries back off exponentially with seeded jitter;
/// failover re-routes a request that exhausted its retries to the next
/// surviving I/O node in deterministic scan order.
struct RecoveryPolicy {
  sim::SimDuration request_timeout = sim::milliseconds(500.0);
  std::uint32_t max_retries = 3;
  sim::SimDuration backoff_base = sim::milliseconds(50.0);
  sim::SimDuration backoff_max = sim::seconds(2.0);
  /// Jitter fraction: each backoff is scaled by a seeded uniform factor in
  /// [1 - jitter, 1 + jitter].  0 disables the draw entirely.
  double jitter = 0.25;
  std::uint64_t jitter_seed = 0x5EEDu;
  bool failover = true;
};

/// What the recovery machinery did over one run.  `requests` always equals
/// `ok + failed` once the simulation has quiesced — the accounting invariant
/// the fault property test asserts.
struct [[nodiscard]] RecoveryStats {
  std::uint64_t requests = 0;    ///< recovered submissions (one per piece)
  std::uint64_t ok = 0;          ///< completed, possibly after retry/failover
  std::uint64_t failed = 0;      ///< exhausted every recovery path
  std::uint64_t retries = 0;     ///< re-submissions after a typed error
  std::uint64_t timeouts = 0;    ///< errors that were lost-message timeouts
  std::uint64_t refused = 0;     ///< errors that were down-ION refusals
  std::uint64_t failovers = 0;   ///< requests completed on a substitute ION
  std::uint64_t failover_bytes = 0;
  std::uint64_t degraded = 0;    ///< requests served by a degraded array
  /// Write-behind dirty data that could not be made durable anywhere
  /// (flush-on-crash loss, in bytes).
  std::uint64_t dirty_bytes_lost = 0;
};

/// Applies a FaultPlan to a machine as simulated time passes.  Chains onto
/// whatever engine observer is already attached (construction attaches,
/// destruction restores), exactly like obs::Sampler.  When `metrics` /
/// `tracer` are non-null, each applied fault bumps `fault.*` counters and
/// drops a Chrome-trace instant marker.
class FaultInjector final : public sim::EngineObserver {
 public:
  FaultInjector(sim::Engine& engine, hw::Machine& machine, FaultPlan plan,
                obs::Registry* metrics = nullptr,
                obs::Tracer* tracer = nullptr);
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;
  ~FaultInjector() override;

  [[nodiscard]] sim::EngineObserver* chained() const override {
    return chained_;
  }

  /// Finds an injector anywhere in the engine's observer chain.
  [[nodiscard]] static FaultInjector* find(sim::Engine& engine);

  void on_schedule(sim::SimTime now, sim::SimTime when) override;
  void on_event(sim::SimTime when) override;
  void on_run_complete(sim::SimTime now, std::size_t pending_events,
                       std::size_t live_tasks) override;

  /// Number of plan events applied so far.
  [[nodiscard]] std::size_t applied() const noexcept { return cursor_; }
  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

 private:
  void apply(const FaultEvent& event);

  sim::Engine& engine_;
  hw::Machine& machine_;
  FaultPlan plan_;  // sorted by `at` on construction
  std::size_t cursor_ = 0;
  sim::EngineObserver* chained_ = nullptr;
  obs::Registry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace paraio::fault
