#include "fault/fault.hpp"

#include <algorithm>
#include <sstream>

namespace paraio::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDiskFail:
      return "disk-fail";
    case FaultKind::kDiskRepair:
      return "disk-repair";
    case FaultKind::kIonCrash:
      return "ion-crash";
    case FaultKind::kIonRestart:
      return "ion-restart";
    case FaultKind::kNetLoss:
      return "net-loss";
    case FaultKind::kNetDelay:
      return "net-delay";
  }
  return "unknown";
}

std::string FaultPlan::describe() const {
  std::ostringstream out;
  out << "FaultPlan seed=" << seed << " events=" << events.size() << "\n";
  for (const FaultEvent& e : events) {
    out << "  t=" << e.at << " " << to_string(e.kind) << " ion=" << e.ion
        << " disk=" << e.disk << " value=" << e.value << "\n";
  }
  return out.str();
}

FaultInjector::FaultInjector(sim::Engine& engine, hw::Machine& machine,
                             FaultPlan plan, obs::Registry* metrics,
                             obs::Tracer* tracer)
    : engine_(engine),
      machine_(machine),
      plan_(std::move(plan)),
      chained_(engine.observer()),
      metrics_(metrics),
      tracer_(tracer) {
  // Stable so same-instant plan entries keep their authored order.
  std::stable_sort(
      plan_.events.begin(), plan_.events.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  // Seeding is pure state initialization; the interconnect draws from the
  // stream only while a loss window is active, so an empty plan stays
  // byte-identical to an unattached injector.
  machine_.net().set_fault_seed(plan_.seed);
  engine_.set_observer(this);
}

FaultInjector::~FaultInjector() {
  if (engine_.observer() == this) engine_.set_observer(chained_);
}

FaultInjector* FaultInjector::find(sim::Engine& engine) {
  for (sim::EngineObserver* o = engine.observer(); o != nullptr;
       o = o->chained()) {
    if (auto* injector = dynamic_cast<FaultInjector*>(o)) return injector;
  }
  return nullptr;
}

void FaultInjector::on_schedule(sim::SimTime now, sim::SimTime when) {
  if (chained_ != nullptr) chained_->on_schedule(now, when);
}

void FaultInjector::on_event(sim::SimTime when) {
  // Apply every plan entry that is due before this event executes: faults
  // land "between" events, which is the only resolution a discrete-event
  // simulation has anyway.
  while (cursor_ < plan_.events.size() && plan_.events[cursor_].at <= when) {
    apply(plan_.events[cursor_]);
    ++cursor_;
  }
  if (chained_ != nullptr) chained_->on_event(when);
}

void FaultInjector::on_run_complete(sim::SimTime now,
                                    std::size_t pending_events,
                                    std::size_t live_tasks) {
  if (chained_ != nullptr) {
    chained_->on_run_complete(now, pending_events, live_tasks);
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kDiskFail:
      machine_.ion_array(event.ion).fail_disk(event.disk);
      break;
    case FaultKind::kDiskRepair:
      machine_.ion_array(event.ion).repair_disk(event.disk);
      break;
    case FaultKind::kIonCrash:
      machine_.set_ion_up(event.ion, false);
      break;
    case FaultKind::kIonRestart:
      machine_.set_ion_up(event.ion, true);
      break;
    case FaultKind::kNetLoss:
      machine_.net().set_drop_probability(event.value);
      break;
    case FaultKind::kNetDelay:
      machine_.net().set_extra_delay(event.value);
      break;
  }
  if (metrics_ != nullptr) {
    metrics_->counter("fault.injected").add();
    metrics_->counter(std::string("fault.") + to_string(event.kind)).add();
  }
  if (tracer_ != nullptr && tracer_->bound()) {
    const bool targets_ion = event.kind != FaultKind::kNetLoss &&
                             event.kind != FaultKind::kNetDelay;
    const std::uint32_t process =
        targets_ion ? machine_.ion_node_id(event.ion) : obs::kGlobalProcess;
    tracer_->instant({process, 0}, to_string(event.kind), "fault");
  }
}

}  // namespace paraio::fault
