#include "pablo/summary.hpp"

#include <cassert>

namespace paraio::pablo {

void OpCounters::add(const IoEvent& event) {
  const auto idx = static_cast<std::size_t>(event.op);
  assert(idx < kOpCount);
  ++count[idx];
  time[idx] += event.duration;
  if (event.moves_data_to_app()) bytes_read += event.transferred;
  if (event.moves_data_to_storage()) bytes_written += event.transferred;
}

std::uint64_t OpCounters::total_ops() const {
  std::uint64_t total = 0;
  for (auto c : count) total += c;
  return total;
}

sim::SimDuration OpCounters::total_time() const {
  sim::SimDuration total = 0.0;
  for (auto t : time) total += t;
  return total;
}

// ---------------------------------------------------------------------------

void FileLifetimeSummary::on_event(const IoEvent& event) {
  Entry& entry = files_[event.file];
  entry.counters.add(event);
  OpenState& state = open_state_[event.file];
  if (event.op == Op::kOpen) {
    if (state.open_handles == 0) {
      state.opened_at = event.timestamp + event.duration;
    }
    ++state.open_handles;
  } else if (event.op == Op::kClose) {
    if (state.open_handles > 0 && --state.open_handles == 0) {
      entry.open_time += (event.timestamp + event.duration) - state.opened_at;
    }
  }
}

void FileLifetimeSummary::absorb(const Trace& trace) {
  for (const auto& event : trace.events()) on_event(event);
}

const FileLifetimeSummary::Entry* FileLifetimeSummary::find(
    io::FileId id) const {
  auto it = files_.find(id);
  return it == files_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------

TimeWindowSummary::TimeWindowSummary(sim::SimDuration window)
    : window_(window) {
  assert(window > 0.0);
}

void TimeWindowSummary::on_event(const IoEvent& event) {
  windows_[window_of(event.timestamp)].add(event);
}

void TimeWindowSummary::absorb(const Trace& trace) {
  for (const auto& event : trace.events()) on_event(event);
}

// ---------------------------------------------------------------------------

FileRegionSummary::FileRegionSummary(std::uint64_t region_bytes)
    : region_(region_bytes) {
  assert(region_bytes > 0);
}

void FileRegionSummary::on_event(const IoEvent& event) {
  if (!event.is_data_op() && event.op != Op::kIoWait) return;
  regions_[{event.file, event.offset / region_}].add(event);
}

void FileRegionSummary::absorb(const Trace& trace) {
  for (const auto& event : trace.events()) on_event(event);
}

}  // namespace paraio::pablo
