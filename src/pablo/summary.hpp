// Pablo's three real-time performance-data reductions (§3.1):
//
//  * file-lifetime summaries — per file: counts and total durations of
//    reads/writes/seeks/opens/closes, bytes accessed, total open time;
//  * time-window summaries — the same counters bucketed by a fixed-width
//    window of simulated time;
//  * file-region summaries — the spatial analog: counters bucketed by a
//    fixed-size byte region of each file.
//
// Each is a TraceSink, so it can reduce on the fly without retaining the
// full event trace — Pablo's trade of computation perturbation for
// input/output perturbation — and can equally be replayed from a stored
// Trace (`absorb`), which the tests use to cross-check the two paths.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pablo/event.hpp"
#include "pablo/trace.hpp"

namespace paraio::pablo {

/// Counter block shared by all three reductions.
struct OpCounters {
  std::uint64_t count[kOpCount] = {};
  sim::SimDuration time[kOpCount] = {};
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;

  void add(const IoEvent& event);

  [[nodiscard]] std::uint64_t total_ops() const;
  [[nodiscard]] sim::SimDuration total_time() const;
  [[nodiscard]] std::uint64_t ops(Op op) const {
    return count[static_cast<std::size_t>(op)];
  }
  [[nodiscard]] sim::SimDuration op_time(Op op) const {
    return time[static_cast<std::size_t>(op)];
  }

  friend bool operator==(const OpCounters&, const OpCounters&) = default;
};

/// The cheapest reduction: whole-run counts and cumulative times per
/// operation class (the "counts" capture mode of §3.1).  Constant memory,
/// a few adds per event — what one attaches when even the windowed
/// summaries would perturb too much.
class CountSummary final : public TraceSink {
 public:
  void on_event(const IoEvent& event) override { counters_.add(event); }
  void absorb(const Trace& trace) {
    for (const auto& event : trace.events()) on_event(event);
  }
  [[nodiscard]] const OpCounters& counters() const noexcept {
    return counters_;
  }

 private:
  OpCounters counters_;
};

/// Per-file lifetime reduction.
class FileLifetimeSummary final : public TraceSink {
 public:
  struct Entry {
    OpCounters counters;
    sim::SimDuration open_time = 0.0;  ///< sum over handles of open->close
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  void on_event(const IoEvent& event) override;

  void absorb(const Trace& trace);

  [[nodiscard]] const std::map<io::FileId, Entry>& files() const noexcept {
    return files_;
  }
  [[nodiscard]] const Entry* find(io::FileId id) const;

 private:
  struct OpenState {
    sim::SimTime opened_at = 0.0;
    std::uint32_t open_handles = 0;
  };
  std::map<io::FileId, Entry> files_;
  std::map<io::FileId, OpenState> open_state_;
};

/// Fixed-width time-window reduction.
class TimeWindowSummary final : public TraceSink {
 public:
  explicit TimeWindowSummary(sim::SimDuration window);

  void on_event(const IoEvent& event) override;
  void absorb(const Trace& trace);

  [[nodiscard]] sim::SimDuration window() const noexcept { return window_; }
  /// Window index for a timestamp.
  [[nodiscard]] std::uint64_t window_of(sim::SimTime t) const {
    return static_cast<std::uint64_t>(t / window_);
  }
  [[nodiscard]] const std::map<std::uint64_t, OpCounters>& windows() const noexcept {
    return windows_;
  }

 private:
  sim::SimDuration window_;
  std::map<std::uint64_t, OpCounters> windows_;
};

/// Fixed-size file-region reduction (spatial analog of the time window).
class FileRegionSummary final : public TraceSink {
 public:
  explicit FileRegionSummary(std::uint64_t region_bytes);

  void on_event(const IoEvent& event) override;
  void absorb(const Trace& trace);

  [[nodiscard]] std::uint64_t region_bytes() const noexcept { return region_; }

  using RegionKey = std::pair<io::FileId, std::uint64_t>;  // (file, region)
  [[nodiscard]] const std::map<RegionKey, OpCounters>& regions() const noexcept {
    return regions_;
  }

 private:
  std::uint64_t region_;
  std::map<RegionKey, OpCounters> regions_;
};

}  // namespace paraio::pablo
