#include "pablo/trace.hpp"

namespace paraio::pablo {

const char* to_string(Op op) {
  switch (op) {
    case Op::kRead:
      return "Read";
    case Op::kWrite:
      return "Write";
    case Op::kSeek:
      return "Seek";
    case Op::kOpen:
      return "Open";
    case Op::kClose:
      return "Close";
    case Op::kLsize:
      return "Lsize";
    case Op::kFlush:
      return "Forflush";
    case Op::kAsyncRead:
      return "AsynchRead";
    case Op::kAsyncWrite:
      return "AsynchWrite";
    case Op::kIoWait:
      return "I/O Wait";
  }
  return "Unknown";
}

std::string Trace::file_name(io::FileId id) const {
  auto it = names_.find(id);
  if (it != names_.end()) return it->second;
  return "file" + std::to_string(id);
}

sim::SimTime Trace::start_time() const {
  return events_.empty() ? 0.0 : events_.front().timestamp;
}

sim::SimTime Trace::end_time() const {
  sim::SimTime end = 0.0;
  for (const auto& e : events_) {
    end = std::max(end, e.timestamp + e.duration);
  }
  return end;
}

}  // namespace paraio::pablo
