// Self-describing trace file format, modeled on Pablo's SDDF.
//
// A trace file is line-oriented ASCII:
//
//   #SDDF-ASCII paraio-io-trace 1
//   #record IoEvent timestamp:f64 duration:f64 node:u32 file:u32 op:str
//           offset:u64 requested:u64 transferred:u64 mode:str
//   #file <id> <path>
//   E <timestamp> <duration> <node> <file> <op> <offset> <requested>
//     <transferred> <mode>
//
// The header carries the record structure separately from the data
// (Pablo's meta-format idea), so readers can check field layout before
// parsing, and unknown directives are skipped for forward compatibility.
// Doubles are serialized in hex-float so the round trip is bit-exact.
#pragma once

#include <iosfwd>
#include <string>

#include "pablo/trace.hpp"

namespace paraio::pablo {

/// Writes `trace` to `out`.  Throws std::runtime_error on stream failure.
void write_trace(std::ostream& out, const Trace& trace);

/// Convenience: writes to a file path.
void write_trace_file(const std::string& path, const Trace& trace);

/// Parses a trace written by write_trace.  Throws std::runtime_error on
/// malformed input (bad magic, wrong field count, unparsable values).
[[nodiscard]] Trace read_trace(std::istream& in);

/// Convenience: reads from a file path.
[[nodiscard]] Trace read_trace_file(const std::string& path);

/// Round-trippable op/mode spellings used inside trace files (distinct from
/// the human-facing to_string forms, which contain spaces).
[[nodiscard]] const char* op_token(Op op);
[[nodiscard]] Op op_from_token(const std::string& token);
[[nodiscard]] const char* mode_token(io::AccessMode mode);
[[nodiscard]] io::AccessMode mode_from_token(const std::string& token);

}  // namespace paraio::pablo
