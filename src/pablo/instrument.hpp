// Instrumentation decorators: wrap any io::FileSystem / io::File and emit
// one IoEvent per operation to the attached sinks.
//
// This is the reproduction of the Pablo I/O instrumentation (§3.1): every
// invocation of an input/output routine is bracketed, capturing parameters
// and duration, with negligible perturbation of the traced program (here:
// zero simulated-time perturbation, matching the paper's observation that
// capture overhead was modest).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "io/file.hpp"
#include "pablo/event.hpp"
#include "pablo/trace.hpp"
#include "sim/engine.hpp"

namespace paraio::pablo {

class InstrumentedFs;

class InstrumentedFile final : public io::File {
 public:
  InstrumentedFile(InstrumentedFs& fs, io::FilePtr inner);

  sim::Task<std::uint64_t> read(std::uint64_t bytes) override;
  sim::Task<std::uint64_t> write(std::uint64_t bytes) override;
  sim::Task<> seek(std::uint64_t offset) override;
  sim::Task<std::uint64_t> size() override;
  sim::Task<> flush() override;
  sim::Task<> close() override;
  sim::Task<io::AsyncOp> read_async(std::uint64_t bytes) override;
  sim::Task<io::AsyncOp> write_async(std::uint64_t bytes) override;
  sim::Task<std::uint64_t> iowait(io::AsyncOp op) override;
  // Forwarded without an event: setiomode is not an operation class in the
  // paper's tables.
  sim::Task<> set_mode(const io::OpenOptions& options) override {
    co_await inner_->set_mode(options);
  }

  [[nodiscard]] std::uint64_t tell() const override { return inner_->tell(); }
  [[nodiscard]] io::FileId id() const override { return inner_->id(); }
  [[nodiscard]] io::NodeId node() const override { return inner_->node(); }
  [[nodiscard]] io::AccessMode mode() const override { return inner_->mode(); }

 private:
  IoEvent begin(Op op, std::uint64_t requested) const;

  InstrumentedFs& fs_;
  io::FilePtr inner_;
};

class InstrumentedFs final : public io::FileSystem {
 public:
  InstrumentedFs(io::FileSystem& inner, sim::Engine& engine)
      : inner_(inner), engine_(engine) {}

  /// Attaches a sink; sinks must outlive the file system.  Events are
  /// delivered in emission order to every sink.
  void add_sink(TraceSink& sink) { sinks_.push_back(&sink); }

  sim::Task<io::FilePtr> open(io::NodeId node, const std::string& path,
                              const io::OpenOptions& options) override;
  [[nodiscard]] bool exists(const std::string& path) const override {
    return inner_.exists(path);
  }
  [[nodiscard]] std::uint64_t file_size(const std::string& path) const override {
    return inner_.file_size(path);
  }

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }
  [[nodiscard]] io::FileSystem& inner() noexcept { return inner_; }

  void emit(const IoEvent& event) {
    for (TraceSink* sink : sinks_) sink->on_event(event);
  }
  void emit_file(io::FileId id, const std::string& path) {
    for (TraceSink* sink : sinks_) sink->on_file(id, path);
  }

 private:
  io::FileSystem& inner_;
  sim::Engine& engine_;
  std::vector<TraceSink*> sinks_;
};

}  // namespace paraio::pablo
