// Trace capture: an ordered event log plus the file-name registry.
//
// Sinks consume events as they happen ("real-time reduction" in the paper's
// terms); a Trace is itself a sink that simply retains everything for
// off-line analysis.  An experiment can attach any mix of a full Trace and
// lightweight summaries, mirroring Pablo's trade-off between trace volume
// and on-line reduction (§3.1).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "pablo/event.hpp"

namespace paraio::pablo {

/// Consumer of live instrumentation events.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const IoEvent& event) = 0;
  /// Called when a file id is first associated with a path.
  virtual void on_file(io::FileId id, const std::string& path) { (void)id; (void)path; }
};

/// Full event trace retained in memory.
class Trace final : public TraceSink {
 public:
  void on_event(const IoEvent& event) override { events_.push_back(event); }
  void on_file(io::FileId id, const std::string& path) override {
    names_.emplace(id, path);
  }

  [[nodiscard]] const std::vector<IoEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }

  /// Path registered for `id`, or "file<id>" if unknown.
  [[nodiscard]] std::string file_name(io::FileId id) const;

  /// All (id, path) registrations in id order.
  [[nodiscard]] const std::map<io::FileId, std::string>& files() const noexcept {
    return names_;
  }

  /// Simulated time of the first / last event (0 when empty).
  [[nodiscard]] sim::SimTime start_time() const;
  [[nodiscard]] sim::SimTime end_time() const;

  void clear() {
    events_.clear();
    names_.clear();
  }

  friend bool operator==(const Trace& a, const Trace& b) {
    return a.events_ == b.events_ && a.names_ == b.names_;
  }

 private:
  std::vector<IoEvent> events_;
  std::map<io::FileId, std::string> names_;
};

}  // namespace paraio::pablo
