#include "pablo/sddf.hpp"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace paraio::pablo {

namespace {

constexpr const char* kMagic = "#SDDF-ASCII paraio-io-trace 1";

constexpr std::array<const char*, kOpCount> kOpTokens = {
    "read",  "write", "seek",       "open",        "close",
    "lsize", "flush", "async-read", "async-write", "iowait"};

constexpr std::array<const char*, 6> kModeTokens = {
    "unix", "log", "sync", "record", "global", "async"};

std::string format_double(double v) {
  // Hex-float: exact round trip regardless of locale or precision settings.
  char buf[64];
  std::snprintf(buf, sizeof buf, "%a", v);
  return buf;
}

double parse_double(const std::string& s) {
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0') {
    throw std::runtime_error("bad double in trace: " + s);
  }
  return v;
}

}  // namespace

const char* op_token(Op op) {
  return kOpTokens[static_cast<std::size_t>(op)];
}

Op op_from_token(const std::string& token) {
  for (std::size_t i = 0; i < kOpTokens.size(); ++i) {
    if (token == kOpTokens[i]) return static_cast<Op>(i);
  }
  throw std::runtime_error("unknown op token: " + token);
}

const char* mode_token(io::AccessMode mode) {
  return kModeTokens[static_cast<std::size_t>(mode)];
}

io::AccessMode mode_from_token(const std::string& token) {
  for (std::size_t i = 0; i < kModeTokens.size(); ++i) {
    if (token == kModeTokens[i]) return static_cast<io::AccessMode>(i);
  }
  throw std::runtime_error("unknown mode token: " + token);
}

void write_trace(std::ostream& out, const Trace& trace) {
  out << kMagic << '\n';
  out << "#record IoEvent timestamp:f64 duration:f64 node:u32 file:u32 "
         "op:str offset:u64 requested:u64 transferred:u64 mode:str\n";
  for (const auto& [id, path] : trace.files()) {
    out << "#file " << id << ' ' << path << '\n';
  }
  for (const auto& e : trace.events()) {
    out << "E " << format_double(e.timestamp) << ' '
        << format_double(e.duration) << ' ' << e.node << ' ' << e.file << ' '
        << op_token(e.op) << ' ' << e.offset << ' ' << e.requested << ' '
        << e.transferred << ' ' << mode_token(e.mode) << '\n';
  }
  if (!out) throw std::runtime_error("trace write failed");
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  write_trace(out, trace);
}

Trace read_trace(std::istream& in) {
  Trace trace;
  std::string line;
  if (!std::getline(in, line) || line != kMagic) {
    throw std::runtime_error("bad trace magic");
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream ls(line);
      std::string directive;
      ls >> directive;
      if (directive == "#file") {
        std::uint64_t id = 0;
        std::string path;
        ls >> id;
        // The path is the remainder (may contain no spaces in practice, but
        // be permissive).
        std::getline(ls, path);
        if (!path.empty() && path.front() == ' ') path.erase(0, 1);
        if (!ls && path.empty()) {
          throw std::runtime_error("bad #file directive: " + line);
        }
        trace.on_file(static_cast<io::FileId>(id), path);
      }
      // Other directives (#record, future extensions) are informative only.
      continue;
    }
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag != "E") throw std::runtime_error("bad record tag: " + line);
    std::string ts, dur, op, mode;
    std::uint64_t node = 0, file = 0, offset = 0, requested = 0,
                  transferred = 0;
    ls >> ts >> dur >> node >> file >> op >> offset >> requested >>
        transferred >> mode;
    if (!ls) throw std::runtime_error("truncated record: " + line);
    IoEvent e;
    e.timestamp = parse_double(ts);
    e.duration = parse_double(dur);
    e.node = static_cast<io::NodeId>(node);
    e.file = static_cast<io::FileId>(file);
    e.op = op_from_token(op);
    e.offset = offset;
    e.requested = requested;
    e.transferred = transferred;
    e.mode = mode_from_token(mode);
    trace.on_event(e);
  }
  return trace;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  return read_trace(in);
}

}  // namespace paraio::pablo
