// Trace manipulation utilities: filtering, slicing, and merging captured
// traces — the off-line toolbox for working with stored runs (compare two
// mounts, isolate one node's stream, carve out a phase).
#pragma once

#include <functional>
#include <vector>

#include "pablo/trace.hpp"

namespace paraio::pablo {

/// New trace holding the events for which `predicate` returns true.  The
/// file-name registry is carried over for every file that still appears.
[[nodiscard]] Trace filter(const Trace& trace,
                           const std::function<bool(const IoEvent&)>& predicate);

/// Events with timestamp in [t0, t1).
[[nodiscard]] Trace slice(const Trace& trace, double t0, double t1);

/// Events issued by one node.
[[nodiscard]] Trace node_stream(const Trace& trace, io::NodeId node);

/// Events touching one file.
[[nodiscard]] Trace file_stream(const Trace& trace, io::FileId file);

/// Merges traces into one, ordered by timestamp (stable for ties).  File
/// registries must agree where they overlap; later registrations win
/// otherwise.  Useful for combining per-partition captures of one run.
[[nodiscard]] Trace merge(const std::vector<const Trace*>& traces);

}  // namespace paraio::pablo
