#include "pablo/filter.hpp"

#include <algorithm>
#include <set>

namespace paraio::pablo {

namespace {

/// Copies registry entries for the files that appear in `out`.
void carry_registry(const Trace& source, Trace& out) {
  std::set<io::FileId> seen;
  for (const auto& e : out.events()) seen.insert(e.file);
  for (const auto& [id, path] : source.files()) {
    if (seen.contains(id)) out.on_file(id, path);
  }
}

}  // namespace

Trace filter(const Trace& trace,
             const std::function<bool(const IoEvent&)>& predicate) {
  Trace out;
  for (const auto& e : trace.events()) {
    if (predicate(e)) out.on_event(e);
  }
  carry_registry(trace, out);
  return out;
}

Trace slice(const Trace& trace, double t0, double t1) {
  return filter(trace, [t0, t1](const IoEvent& e) {
    return e.timestamp >= t0 && e.timestamp < t1;
  });
}

Trace node_stream(const Trace& trace, io::NodeId node) {
  return filter(trace, [node](const IoEvent& e) { return e.node == node; });
}

Trace file_stream(const Trace& trace, io::FileId file) {
  return filter(trace, [file](const IoEvent& e) { return e.file == file; });
}

Trace merge(const std::vector<const Trace*>& traces) {
  Trace out;
  std::vector<IoEvent> events;
  for (const Trace* t : traces) {
    events.insert(events.end(), t->events().begin(), t->events().end());
    for (const auto& [id, path] : t->files()) out.on_file(id, path);
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const IoEvent& a, const IoEvent& b) {
                     return a.timestamp < b.timestamp;
                   });
  for (const auto& e : events) out.on_event(e);
  return out;
}

}  // namespace paraio::pablo
