#include "pablo/instrument.hpp"

namespace paraio::pablo {

InstrumentedFile::InstrumentedFile(InstrumentedFs& fs, io::FilePtr inner)
    : fs_(fs), inner_(std::move(inner)) {}

IoEvent InstrumentedFile::begin(Op op, std::uint64_t requested) const {
  IoEvent ev;
  ev.timestamp = fs_.engine().now();
  ev.node = inner_->node();
  ev.file = inner_->id();
  ev.op = op;
  ev.offset = inner_->tell();
  ev.requested = requested;
  ev.mode = inner_->mode();
  return ev;
}

sim::Task<std::uint64_t> InstrumentedFile::read(std::uint64_t bytes) {
  IoEvent ev = begin(Op::kRead, bytes);
  const std::uint64_t n = co_await inner_->read(bytes);
  ev.duration = fs_.engine().now() - ev.timestamp;
  ev.transferred = n;
  fs_.emit(ev);
  co_return n;
}

sim::Task<std::uint64_t> InstrumentedFile::write(std::uint64_t bytes) {
  IoEvent ev = begin(Op::kWrite, bytes);
  const std::uint64_t n = co_await inner_->write(bytes);
  ev.duration = fs_.engine().now() - ev.timestamp;
  ev.transferred = n;
  fs_.emit(ev);
  co_return n;
}

sim::Task<> InstrumentedFile::seek(std::uint64_t offset) {
  IoEvent ev = begin(Op::kSeek, 0);
  co_await inner_->seek(offset);
  ev.duration = fs_.engine().now() - ev.timestamp;
  fs_.emit(ev);
}

sim::Task<std::uint64_t> InstrumentedFile::size() {
  IoEvent ev = begin(Op::kLsize, 0);
  const std::uint64_t n = co_await inner_->size();
  ev.duration = fs_.engine().now() - ev.timestamp;
  fs_.emit(ev);
  co_return n;
}

sim::Task<> InstrumentedFile::flush() {
  IoEvent ev = begin(Op::kFlush, 0);
  co_await inner_->flush();
  ev.duration = fs_.engine().now() - ev.timestamp;
  fs_.emit(ev);
}

sim::Task<> InstrumentedFile::close() {
  IoEvent ev = begin(Op::kClose, 0);
  co_await inner_->close();
  ev.duration = fs_.engine().now() - ev.timestamp;
  fs_.emit(ev);
}

sim::Task<io::AsyncOp> InstrumentedFile::read_async(std::uint64_t bytes) {
  IoEvent ev = begin(Op::kAsyncRead, bytes);
  io::AsyncOp op = co_await inner_->read_async(bytes);
  ev.duration = fs_.engine().now() - ev.timestamp;
  // Volume is attributed to the issuing call (as in the paper's Table 3);
  // the file pointer advances at issue time by the amount that will move.
  // Only the issue *time* is accounted here; the transfer time shows up
  // under iowait, whose volume the tables skip to avoid double counting.
  ev.transferred = inner_->tell() - ev.offset;
  fs_.emit(ev);
  co_return op;
}

sim::Task<io::AsyncOp> InstrumentedFile::write_async(std::uint64_t bytes) {
  IoEvent ev = begin(Op::kAsyncWrite, bytes);
  io::AsyncOp op = co_await inner_->write_async(bytes);
  ev.duration = fs_.engine().now() - ev.timestamp;
  ev.transferred = inner_->tell() - ev.offset;
  fs_.emit(ev);
  co_return op;
}

sim::Task<std::uint64_t> InstrumentedFile::iowait(io::AsyncOp op) {
  IoEvent ev = begin(Op::kIoWait, 0);
  const std::uint64_t n = co_await inner_->iowait(std::move(op));
  ev.duration = fs_.engine().now() - ev.timestamp;
  ev.transferred = n;
  fs_.emit(ev);
  co_return n;
}

sim::Task<io::FilePtr> InstrumentedFs::open(io::NodeId node,
                                            const std::string& path,
                                            const io::OpenOptions& options) {
  IoEvent ev;
  ev.timestamp = engine_.now();
  ev.node = node;
  ev.op = Op::kOpen;
  ev.mode = options.mode;
  io::FilePtr inner = co_await inner_.open(node, path, options);
  ev.duration = engine_.now() - ev.timestamp;
  ev.file = inner->id();
  emit_file(inner->id(), path);
  emit(ev);
  co_return std::make_shared<InstrumentedFile>(*this, std::move(inner));
}

}  // namespace paraio::pablo
