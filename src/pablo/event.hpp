// Trace event records — the unit of data the whole characterization
// pipeline operates on.
//
// Every application file operation is bracketed by the instrumentation
// layer, producing one IoEvent with the call's parameters, start timestamp,
// and duration — the Pablo I/O extension's capture model (§3.1).
#pragma once

#include <cstdint>
#include <string>

#include "io/file.hpp"
#include "sim/time.hpp"

namespace paraio::pablo {

/// Operation kinds, matching the rows of the paper's Tables 1/3/5.
enum class Op : std::uint8_t {
  kRead,
  kWrite,
  kSeek,
  kOpen,
  kClose,
  kLsize,      // file size query (Table 5, "Lsize")
  kFlush,      // Fortran buffer flush (Table 5, "Forflush")
  kAsyncRead,  // iread issue (Table 3, "AsynchRead")
  kAsyncWrite, // iwrite issue
  kIoWait,     // iowait (Table 3, "I/O Wait")
};

[[nodiscard]] const char* to_string(Op op);

/// Number of distinct Op values (for fixed-size per-op accumulators).
inline constexpr std::size_t kOpCount = 10;

/// One bracketed file operation.
struct IoEvent {
  sim::SimTime timestamp = 0.0;      ///< operation start time
  sim::SimDuration duration = 0.0;   ///< wall (simulated) time in the call
  io::NodeId node = 0;               ///< issuing compute node
  io::FileId file = 0;               ///< target file
  Op op = Op::kRead;
  std::uint64_t offset = 0;          ///< file position at the start
  std::uint64_t requested = 0;       ///< bytes requested (0 for control ops)
  std::uint64_t transferred = 0;     ///< bytes actually moved
  io::AccessMode mode = io::AccessMode::kUnix;

  [[nodiscard]] bool is_data_op() const {
    return op == Op::kRead || op == Op::kWrite || op == Op::kAsyncRead ||
           op == Op::kAsyncWrite;
  }
  [[nodiscard]] bool moves_data_to_app() const {
    return op == Op::kRead || op == Op::kAsyncRead;
  }
  [[nodiscard]] bool moves_data_to_storage() const {
    return op == Op::kWrite || op == Op::kAsyncWrite;
  }

  friend bool operator==(const IoEvent&, const IoEvent&) = default;
};

}  // namespace paraio::pablo
