// Figure-series extraction: the timelines plotted in the paper's Figures
// 2-17.
//
//  * TimelineSeries — request size vs. time for one operation family
//    (read-family figures 2/3/6/9/11/13; write-family figures 4/7/10/12/14);
//  * FileAccessMap  — file id vs. time with a read/write mark (figures
//    5/8/15/16/17);
//  * burst analysis — clustering of synchronized writes and inter-burst
//    gaps, quantifying Figure 4's "group spacing shrinks from ~160 s to
//    ~80 s" observation and the §5.2 PPFS ablation.
#pragma once

#include <cstdint>
#include <vector>

#include "pablo/trace.hpp"

namespace paraio::analysis {

struct TimelinePoint {
  double time = 0.0;
  std::uint64_t size = 0;
  io::NodeId node = 0;
  io::FileId file = 0;
};

enum class OpFamily { kReads, kWrites };

/// Extracts (time, size) points for the chosen family, including the
/// asynchronous variants, ordered by time.  Optional [t0, t1) window.
[[nodiscard]] std::vector<TimelinePoint> timeline(
    const pablo::Trace& trace, OpFamily family,
    double t0 = -1e300, double t1 = 1e300);

struct FileAccessPoint {
  double time = 0.0;
  io::FileId file = 0;
  bool is_read = false;  // else write
};

/// Extracts the file-access timeline (diamonds = reads, crosses = writes in
/// the paper's rendering).
[[nodiscard]] std::vector<FileAccessPoint> file_access_map(
    const pablo::Trace& trace, double t0 = -1e300, double t1 = 1e300);

struct Burst {
  double start = 0.0;   ///< first operation start
  double end = 0.0;     ///< last operation start
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
};

/// Clusters a family's operations into bursts: a new burst starts when the
/// inter-operation gap exceeds `gap_threshold` seconds.  Used for Figure 4's
/// write-group structure and its disappearance under PPFS write-behind.
[[nodiscard]] std::vector<Burst> bursts(const pablo::Trace& trace,
                                        OpFamily family,
                                        double gap_threshold);

/// Start-to-start gaps between consecutive bursts (size n-1).
[[nodiscard]] std::vector<double> burst_gaps(const std::vector<Burst>& bursts);

/// Least-squares slope of gap vs. burst index: negative means the spacing
/// between write groups shrinks over the run, the paper's Fig. 4 trend.
[[nodiscard]] double gap_trend(const std::vector<double>& gaps);

}  // namespace paraio::analysis
