// Write-survival analysis.
//
// §8 of the paper: "Another common characteristic of the codes is that most
// of the data written eventually was propagated to secondary storage ...
// [this] differs markedly from Unix file systems where statistics generally
// record many small short-lived temporary files.  If all output data
// survives to disk, the objective of write caching in the file system must
// be to increase the achieved bandwidth ... not to reduce the input/output
// volume."
//
// This analysis measures exactly that: of all bytes an application wrote,
// how many were later overwritten (and so never needed to reach disk) vs.
// how many survive to the end of the run.
#pragma once

#include <cstdint>
#include <map>

#include "pablo/trace.hpp"

namespace paraio::analysis {

struct WriteSurvival {
  std::uint64_t bytes_written = 0;      ///< total bytes of write traffic
  std::uint64_t bytes_overwritten = 0;  ///< bytes later written again
  std::uint64_t bytes_surviving = 0;    ///< distinct bytes live at the end

  /// Fraction of write traffic whose data survives (1.0 when nothing is
  /// ever overwritten — the paper's finding for all three codes).
  [[nodiscard]] double survival_fraction() const {
    return bytes_written == 0
               ? 1.0
               : static_cast<double>(bytes_written - bytes_overwritten) /
                     static_cast<double>(bytes_written);
  }
};

/// Computes survival over all writes in `trace` (async writes included).
[[nodiscard]] WriteSurvival write_survival(const pablo::Trace& trace);

}  // namespace paraio::analysis
