#include "analysis/timeline.hpp"

#include <algorithm>

namespace paraio::analysis {

namespace {

bool in_family(const pablo::IoEvent& e, OpFamily family) {
  if (family == OpFamily::kReads) return e.moves_data_to_app();
  return e.moves_data_to_storage();
}

}  // namespace

std::vector<TimelinePoint> timeline(const pablo::Trace& trace,
                                    OpFamily family, double t0, double t1) {
  std::vector<TimelinePoint> points;
  for (const auto& e : trace.events()) {
    if (!in_family(e, family)) continue;
    if (e.timestamp < t0 || e.timestamp >= t1) continue;
    points.push_back(TimelinePoint{e.timestamp, e.transferred, e.node, e.file});
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const TimelinePoint& a, const TimelinePoint& b) {
                     return a.time < b.time;
                   });
  return points;
}

std::vector<FileAccessPoint> file_access_map(const pablo::Trace& trace,
                                             double t0, double t1) {
  std::vector<FileAccessPoint> points;
  for (const auto& e : trace.events()) {
    if (!e.is_data_op()) continue;
    if (e.timestamp < t0 || e.timestamp >= t1) continue;
    points.push_back(
        FileAccessPoint{e.timestamp, e.file, e.moves_data_to_app()});
  }
  std::stable_sort(points.begin(), points.end(),
                   [](const FileAccessPoint& a, const FileAccessPoint& b) {
                     return a.time < b.time;
                   });
  return points;
}

std::vector<Burst> bursts(const pablo::Trace& trace, OpFamily family,
                          double gap_threshold) {
  auto points = timeline(trace, family);
  std::vector<Burst> result;
  for (const auto& p : points) {
    if (result.empty() || p.time - result.back().end > gap_threshold) {
      result.push_back(Burst{p.time, p.time, 0, 0});
    }
    Burst& b = result.back();
    b.end = p.time;
    ++b.ops;
    b.bytes += p.size;
  }
  return result;
}

std::vector<double> burst_gaps(const std::vector<Burst>& all) {
  std::vector<double> gaps;
  for (std::size_t i = 1; i < all.size(); ++i) {
    gaps.push_back(all[i].start - all[i - 1].start);
  }
  return gaps;
}

double gap_trend(const std::vector<double>& gaps) {
  const std::size_t n = gaps.size();
  if (n < 2) return 0.0;
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i);
    sx += x;
    sy += gaps[i];
    sxx += x * x;
    sxy += x * gaps[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (dn * sxy - sx * sy) / denom;
}

}  // namespace paraio::analysis
