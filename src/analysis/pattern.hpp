// Access-pattern classification.
//
// The paper's conclusions (§8, §10) call for file systems that recognize
// access patterns and choose policies accordingly; its future work proposes
// "automatically classifying and predicting access patterns".  This is the
// off-line classifier: per (file, node, direction) request stream it
// labels the stream sequential, strided, or random, with the sequential
// fraction and dominant stride.  The ppfs AdaptivePrefetcher uses the same
// logic on-line.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "pablo/trace.hpp"

namespace paraio::analysis {

enum class AccessPattern {
  kSingle,      ///< fewer than 3 operations: not classifiable
  kSequential,  ///< each request starts where the previous ended
  kStrided,     ///< constant non-zero gap between consecutive requests
  kRandom,
};

[[nodiscard]] const char* to_string(AccessPattern pattern);

struct StreamClass {
  AccessPattern pattern = AccessPattern::kSingle;
  std::uint64_t ops = 0;
  std::uint64_t bytes = 0;
  double sequential_fraction = 0.0;  ///< fraction of sequential transitions
  std::int64_t stride = 0;           ///< dominant stride (strided streams)
};

/// Classifies one stream of (offset, size) requests.  `threshold` is the
/// transition-fraction needed to call a stream sequential or strided.
[[nodiscard]] StreamClass classify_stream(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>>& requests,
    double threshold = 0.9);

struct StreamKey {
  io::FileId file = 0;
  io::NodeId node = 0;
  bool is_read = false;
  auto operator<=>(const StreamKey&) const = default;
};

/// Splits a trace into per-(file, node, direction) streams and classifies
/// each.
[[nodiscard]] std::map<StreamKey, StreamClass> classify_trace(
    const pablo::Trace& trace, double threshold = 0.9);

struct PatternMix {
  std::uint64_t sequential = 0;
  std::uint64_t strided = 0;
  std::uint64_t random = 0;
  std::uint64_t single = 0;
  [[nodiscard]] std::uint64_t total() const {
    return sequential + strided + random + single;
  }
};

/// Counts streams by class — "the majority of request patterns are
/// sequential" (§10) is checkable as mix.sequential dominating.
[[nodiscard]] PatternMix pattern_mix(
    const std::map<StreamKey, StreamClass>& streams);

}  // namespace paraio::analysis
