// Table generators matching the paper's evaluation tables.
//
// OperationTable reproduces the "Number, size, and duration of I/O
// operations" tables (1, 3, and the three sections of 5): per operation
// class, the operation count, byte volume, total node time (durations summed
// over all nodes), and percentage of total I/O time.
//
// SizeTable reproduces the read/write size-class tables (2, 4, 6):
// synchronous and asynchronous transfers are folded into the Read/Write rows,
// exactly as the paper does (Table 4's 436 large "reads" are Table 3's
// asynchronous reads).
#pragma once

#include <string>
#include <vector>

#include "analysis/histogram.hpp"
#include "pablo/trace.hpp"

namespace paraio::analysis {

struct OperationRow {
  std::string label;
  std::uint64_t count = 0;
  std::uint64_t bytes = 0;
  double node_time = 0.0;
  double pct_io_time = 0.0;
};

class OperationTable {
 public:
  /// Builds from every event in `trace`.
  explicit OperationTable(const pablo::Trace& trace);
  /// Builds from the events with timestamp in [t0, t1) — used for the
  /// per-phase HTF tables.
  OperationTable(const pablo::Trace& trace, double t0, double t1);

  /// Rows: "All I/O" first, then one row per op class that occurred, in the
  /// paper's order (Read, AsynchRead, I/O Wait, Write, Seek, Open, Close,
  /// Lsize, Forflush).
  [[nodiscard]] const std::vector<OperationRow>& rows() const noexcept {
    return rows_;
  }

  /// Row for one op class; count==0 row with that label if it never occurred.
  [[nodiscard]] OperationRow row(pablo::Op op) const;
  [[nodiscard]] const OperationRow& all() const { return rows_.front(); }

 private:
  void build(const pablo::Trace& trace, double t0, double t1);
  std::vector<OperationRow> rows_;
};

struct SizeRow {
  std::string label;                                    // "Read" / "Write"
  std::array<std::uint64_t, SizeClassHistogram::kClasses> counts{};
};

class SizeTable {
 public:
  explicit SizeTable(const pablo::Trace& trace);
  SizeTable(const pablo::Trace& trace, double t0, double t1);

  [[nodiscard]] const SizeRow& reads() const noexcept { return read_row_; }
  [[nodiscard]] const SizeRow& writes() const noexcept { return write_row_; }
  [[nodiscard]] const SizeClassHistogram& read_histogram() const noexcept {
    return read_hist_;
  }
  [[nodiscard]] const SizeClassHistogram& write_histogram() const noexcept {
    return write_hist_;
  }

 private:
  void build(const pablo::Trace& trace, double t0, double t1);
  SizeClassHistogram read_hist_;
  SizeClassHistogram write_hist_;
  SizeRow read_row_;
  SizeRow write_row_;
};

/// Paper-style fixed-width text rendering (what the benches print).
[[nodiscard]] std::string to_text(const OperationTable& table,
                                  const std::string& title);
[[nodiscard]] std::string to_text(const SizeTable& table,
                                  const std::string& title);

/// Machine-readable renderings.
[[nodiscard]] std::string to_csv(const OperationTable& table);
[[nodiscard]] std::string to_csv(const SizeTable& table);
[[nodiscard]] std::string to_markdown(const OperationTable& table);
[[nodiscard]] std::string to_markdown(const SizeTable& table);

}  // namespace paraio::analysis
