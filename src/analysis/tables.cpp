#include "analysis/tables.hpp"

#include <array>
#include <cstdio>
#include <limits>
#include <sstream>

namespace paraio::analysis {

namespace {

using pablo::Op;

// The paper's row order for the operation tables.
constexpr std::array<Op, 9> kRowOrder = {
    Op::kRead,  Op::kAsyncRead, Op::kIoWait, Op::kWrite, Op::kSeek,
    Op::kOpen,  Op::kClose,     Op::kLsize,  Op::kFlush};

std::string format_count(std::uint64_t v) {
  // Thousands separators, as in the paper's tables.
  std::string digits = std::to_string(v);
  std::string out;
  int c = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (c && c % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++c;
  }
  return {out.rbegin(), out.rend()};
}

std::string format_time(double t) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", t);
  return buf;
}

}  // namespace

OperationTable::OperationTable(const pablo::Trace& trace) {
  build(trace, -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity());
}

OperationTable::OperationTable(const pablo::Trace& trace, double t0,
                               double t1) {
  build(trace, t0, t1);
}

void OperationTable::build(const pablo::Trace& trace, double t0, double t1) {
  std::array<OperationRow, pablo::kOpCount> acc;
  OperationRow all;
  all.label = "All I/O";
  for (const auto& e : trace.events()) {
    if (e.timestamp < t0 || e.timestamp >= t1) continue;
    auto& row = acc[static_cast<std::size_t>(e.op)];
    ++row.count;
    row.node_time += e.duration;
    // Volume counts data actually moved by the operation.  I/O-wait volume
    // is already attributed to the asynchronous issue, so skip it here to
    // avoid double counting.
    if (e.is_data_op()) row.bytes += e.transferred;
    ++all.count;
    all.node_time += e.duration;
    if (e.is_data_op()) all.bytes += e.transferred;
  }
  rows_.push_back(all);
  for (Op op : kRowOrder) {
    auto& row = acc[static_cast<std::size_t>(op)];
    if (row.count == 0) continue;
    row.label = pablo::to_string(op);
    row.pct_io_time =
        all.node_time > 0 ? 100.0 * row.node_time / all.node_time : 0.0;
    rows_.push_back(row);
  }
  rows_.front().pct_io_time = all.node_time > 0 ? 100.0 : 0.0;
}

OperationRow OperationTable::row(pablo::Op op) const {
  const std::string label = pablo::to_string(op);
  for (const auto& r : rows_) {
    if (r.label == label) return r;
  }
  OperationRow empty;
  empty.label = label;
  return empty;
}

SizeTable::SizeTable(const pablo::Trace& trace) {
  build(trace, -std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::infinity());
}

SizeTable::SizeTable(const pablo::Trace& trace, double t0, double t1) {
  build(trace, t0, t1);
}

void SizeTable::build(const pablo::Trace& trace, double t0, double t1) {
  for (const auto& e : trace.events()) {
    if (e.timestamp < t0 || e.timestamp >= t1) continue;
    if (e.moves_data_to_app()) read_hist_.add(e.transferred);
    if (e.moves_data_to_storage()) write_hist_.add(e.transferred);
  }
  read_row_.label = "Read";
  read_row_.counts = read_hist_.counts();
  write_row_.label = "Write";
  write_row_.counts = write_hist_.counts();
}

std::string to_text(const OperationTable& table, const std::string& title) {
  std::ostringstream out;
  out << title << '\n';
  char line[160];
  std::snprintf(line, sizeof line, "  %-12s %12s %16s %14s %10s\n",
                "Operation", "Count", "Volume(Bytes)", "NodeTime(s)",
                "%IO Time");
  out << line;
  for (const auto& r : table.rows()) {
    std::snprintf(line, sizeof line, "  %-12s %12s %16s %14s %9.2f%%\n",
                  r.label.c_str(), format_count(r.count).c_str(),
                  r.bytes ? format_count(r.bytes).c_str() : "-",
                  format_time(r.node_time).c_str(), r.pct_io_time);
    out << line;
  }
  return out.str();
}

std::string to_text(const SizeTable& table, const std::string& title) {
  std::ostringstream out;
  out << title << '\n';
  char line[160];
  std::snprintf(line, sizeof line, "  %-10s %10s %10s %10s %10s\n",
                "Operation", "< 4 KB", "< 64 KB", "< 256 KB", ">= 256 KB");
  out << line;
  for (const SizeRow* row : {&table.reads(), &table.writes()}) {
    std::snprintf(line, sizeof line, "  %-10s %10s %10s %10s %10s\n",
                  row->label.c_str(), format_count(row->counts[0]).c_str(),
                  format_count(row->counts[1]).c_str(),
                  format_count(row->counts[2]).c_str(),
                  format_count(row->counts[3]).c_str());
    out << line;
  }
  return out.str();
}

std::string to_csv(const OperationTable& table) {
  std::ostringstream out;
  out << "operation,count,bytes,node_time_s,pct_io_time\n";
  for (const auto& r : table.rows()) {
    out << r.label << ',' << r.count << ',' << r.bytes << ',' << r.node_time
        << ',' << r.pct_io_time << '\n';
  }
  return out.str();
}

std::string to_csv(const SizeTable& table) {
  std::ostringstream out;
  out << "operation,lt_4k,lt_64k,lt_256k,ge_256k\n";
  for (const SizeRow* row : {&table.reads(), &table.writes()}) {
    out << row->label;
    for (auto c : row->counts) out << ',' << c;
    out << '\n';
  }
  return out.str();
}

std::string to_markdown(const OperationTable& table) {
  std::ostringstream out;
  out << "| Operation | Count | Volume (Bytes) | Node Time (s) | % I/O Time |\n"
      << "|---|---:|---:|---:|---:|\n";
  for (const auto& r : table.rows()) {
    out << "| " << r.label << " | " << format_count(r.count) << " | "
        << (r.bytes ? format_count(r.bytes) : std::string("-")) << " | "
        << format_time(r.node_time) << " | " << format_time(r.pct_io_time)
        << " |\n";
  }
  return out.str();
}

std::string to_markdown(const SizeTable& table) {
  std::ostringstream out;
  out << "| Operation | < 4 KB | < 64 KB | < 256 KB | >= 256 KB |\n"
      << "|---|---:|---:|---:|---:|\n";
  for (const SizeRow* row : {&table.reads(), &table.writes()}) {
    out << "| " << row->label;
    for (auto c : row->counts) out << " | " << format_count(c);
    out << " |\n";
  }
  return out.str();
}

}  // namespace paraio::analysis
