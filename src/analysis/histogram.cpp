#include "analysis/histogram.hpp"

#include <bit>

namespace paraio::analysis {

bool SizeClassHistogram::is_bimodal(double significant_fraction) const {
  const std::uint64_t n = total();
  if (n == 0) return false;
  const double small = static_cast<double>(counts_[0]) / static_cast<double>(n);
  const double large =
      static_cast<double>(counts_[2] + counts_[3]) / static_cast<double>(n);
  const double mid = static_cast<double>(counts_[1]) / static_cast<double>(n);
  return small >= significant_fraction && large >= significant_fraction &&
         mid < small && mid < large;
}

std::size_t Log2Histogram::bucket_of(std::uint64_t size) const {
  if (size == 0) return 0;
  return static_cast<std::size_t>(std::bit_width(size) - 1);
}

void Log2Histogram::add(std::uint64_t size) {
  const std::size_t b = bucket_of(size);
  if (b >= counts_.size()) counts_.resize(b + 1, 0);
  ++counts_[b];
}

std::uint64_t Log2Histogram::count(std::size_t bucket) const {
  return bucket < counts_.size() ? counts_[bucket] : 0;
}

std::uint64_t Log2Histogram::total() const {
  std::uint64_t t = 0;
  for (auto c : counts_) t += c;
  return t;
}

}  // namespace paraio::analysis
