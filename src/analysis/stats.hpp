// Streaming statistics (Welford's algorithm) for operation durations and
// sizes — the "means, variances, minima, maxima" the paper computes off-line
// from event traces (§3.1).
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace paraio::analysis {

class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double sum() const noexcept { return n_ ? sum_ : 0.0; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Merges another accumulator (parallel reduction form of Welford).
  void merge(const RunningStats& other);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace paraio::analysis
