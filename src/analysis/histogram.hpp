// Request-size histograms.
//
// SizeClassHistogram uses the paper's four bins (< 4 KB, < 64 KB, < 256 KB,
// >= 256 KB) — the columns of Tables 2, 4 and 6.  Log2Histogram provides a
// finer general-purpose distribution for the off-line statistics.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace paraio::analysis {

class SizeClassHistogram {
 public:
  static constexpr std::array<std::uint64_t, 3> kBounds = {
      4 * 1024, 64 * 1024, 256 * 1024};
  static constexpr std::size_t kClasses = 4;
  static constexpr std::array<const char*, kClasses> kLabels = {
      "< 4 KB", "< 64 KB", "< 256 KB", ">= 256 KB"};

  void add(std::uint64_t size) { ++counts_[class_of(size)]; }

  [[nodiscard]] static std::size_t class_of(std::uint64_t size) {
    for (std::size_t i = 0; i < kBounds.size(); ++i) {
      if (size < kBounds[i]) return i;
    }
    return kBounds.size();
  }

  [[nodiscard]] std::uint64_t count(std::size_t cls) const {
    return counts_.at(cls);
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts_) t += c;
    return t;
  }
  [[nodiscard]] const std::array<std::uint64_t, kClasses>& counts() const {
    return counts_;
  }

  /// Bimodality in the paper's sense: significant mass in the smallest class
  /// and in one of the two largest, with little in between.
  [[nodiscard]] bool is_bimodal(double significant_fraction = 0.1) const;

 private:
  std::array<std::uint64_t, kClasses> counts_{};
};

/// Power-of-two bucketed histogram: bucket b holds sizes in [2^b, 2^(b+1)).
class Log2Histogram {
 public:
  void add(std::uint64_t size);

  [[nodiscard]] std::size_t bucket_of(std::uint64_t size) const;
  [[nodiscard]] std::uint64_t count(std::size_t bucket) const;
  [[nodiscard]] std::uint64_t total() const;
  /// Highest non-empty bucket + 1 (0 when empty).
  [[nodiscard]] std::size_t buckets() const { return counts_.size(); }

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace paraio::analysis
