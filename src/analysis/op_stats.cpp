#include "analysis/op_stats.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace paraio::analysis {

OperationStats::OperationStats(const pablo::Trace& trace) {
  std::array<double, pablo::kOpCount> last_start;
  last_start.fill(-1.0);
  double last_any = -1.0;
  for (const auto& e : trace.events()) {
    const auto idx = static_cast<std::size_t>(e.op);
    OpClassStats& s = per_op_[idx];
    s.duration.add(e.duration);
    all_.duration.add(e.duration);
    if (e.is_data_op()) {
      s.size.add(static_cast<double>(e.transferred));
      s.size_histogram.add(e.transferred);
      all_.size.add(static_cast<double>(e.transferred));
      all_.size_histogram.add(e.transferred);
    }
    if (last_start[idx] >= 0.0) {
      s.inter_arrival.add(e.timestamp - last_start[idx]);
    }
    last_start[idx] = e.timestamp;
    if (last_any >= 0.0) all_.inter_arrival.add(e.timestamp - last_any);
    last_any = e.timestamp;
  }
}

double OperationStats::burstiness(pablo::Op op) const {
  const RunningStats& ia = of(op).inter_arrival;
  if (ia.count() < 2 || ia.mean() <= 0.0) return 0.0;
  return ia.stddev() / ia.mean();
}

std::string to_text(const OperationStats& stats, const std::string& title) {
  std::ostringstream out;
  out << title << '\n';
  char line[192];
  std::snprintf(line, sizeof line,
                "  %-12s %9s %12s %12s %12s %12s %10s\n", "Operation",
                "Count", "mean dur(s)", "max dur(s)", "mean size", "max size",
                "arrival CV");
  out << line;
  for (std::size_t i = 0; i < pablo::kOpCount; ++i) {
    const auto op = static_cast<pablo::Op>(i);
    const OpClassStats& s = stats.of(op);
    if (s.duration.count() == 0) continue;
    std::snprintf(line, sizeof line,
                  "  %-12s %9llu %12.4g %12.4g %12.4g %12.4g %10.2f\n",
                  pablo::to_string(op),
                  static_cast<unsigned long long>(s.duration.count()),
                  s.duration.mean(), s.duration.max(), s.size.mean(),
                  s.size.max(), stats.burstiness(op));
    out << line;
  }
  return out.str();
}

}  // namespace paraio::analysis
