// Rendering helpers for figure series: CSV for post-processing and ASCII
// scatter plots so the bench binaries can show the paper's figures directly
// in a terminal.
#pragma once

#include <string>
#include <vector>

#include "analysis/timeline.hpp"

namespace paraio::analysis {

[[nodiscard]] std::string to_csv(const std::vector<TimelinePoint>& points);
[[nodiscard]] std::string to_csv(const std::vector<FileAccessPoint>& points);

struct PlotOptions {
  int width = 78;
  int height = 18;
  std::string title;
  std::string x_label = "time (s)";
  std::string y_label;
  bool log_y = false;  ///< log2 y axis — matches the paper's size timelines
};

/// Scatter of request size vs. time (Figures 2-4, 6-7, 9-14 style).
[[nodiscard]] std::string ascii_plot(const std::vector<TimelinePoint>& points,
                                     const PlotOptions& options);

/// File-access map: file id vs. time, 'r' for reads, 'w' for writes, '*'
/// where both hit one cell (Figures 5, 8, 15-17 style).
[[nodiscard]] std::string ascii_plot(
    const std::vector<FileAccessPoint>& points, const PlotOptions& options);

}  // namespace paraio::analysis
