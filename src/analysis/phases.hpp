// Automatic I/O phase detection.
//
// The paper identifies application phases by inspecting timelines ("the
// first spike is the initial, compulsory data input; the phase three read
// operations at the far right..."), and its conclusion calls for systems
// that recognize access-pattern regimes automatically.  This detector turns
// the visual procedure into an algorithm: time is bucketed into fixed
// windows, each window is labeled by its dominant data direction by byte
// volume (read / write / mixed / idle), and maximal runs of equal labels —
// idle gaps merging into whichever labeled run they separate when the
// labels match — become phases.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pablo/trace.hpp"

namespace paraio::analysis {

enum class PhaseKind { kIdle, kReadIntensive, kWriteIntensive, kMixed };

[[nodiscard]] const char* to_string(PhaseKind kind);

struct DetectedPhase {
  PhaseKind kind = PhaseKind::kIdle;
  double start = 0.0;  ///< start of the first window of the run
  double end = 0.0;    ///< end of the last window of the run
  std::uint64_t ops = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
};

struct PhaseDetectorOptions {
  /// Window width in seconds.
  double window = 60.0;
  /// A window is "mixed" when the minority direction still carries at
  /// least this fraction of the window's data bytes.
  double mixed_threshold = 0.25;
};

/// Segments `trace` into labeled phases.  Idle stretches between two runs
/// of the same label are absorbed into the merged run; idle stretches
/// between different labels are dropped (they belong to computation).
/// Never returns kIdle phases.
[[nodiscard]] std::vector<DetectedPhase> detect_phases(
    const pablo::Trace& trace, const PhaseDetectorOptions& options = {});

/// One line per phase, human-readable.
[[nodiscard]] std::string to_text(const std::vector<DetectedPhase>& phases);

}  // namespace paraio::analysis
